package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// DeliverTraced must leave one decision record in the flight recorder
// per delivery, carrying the caller's trace id and mirroring the
// returned Decision (method, |s|, |S_q|, ratio in ppm).
func TestDeliverTracedRecordsDecision(t *testing.T) {
	f := newFixture(t, 11, cluster.AlgForgyKMeans)
	rec := telemetry.NewRecorder(1024)
	p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{
		Threshold: 0.15,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	publishers := f.g.NodesByRole(topology.RoleTransit)

	// Find a publication somebody cares about, so the record is
	// interesting (nonzero interested count).
	for i := 0; i < 3000; i++ {
		ev := f.model.Sample(rng)
		trace := telemetry.NewTraceID()
		d, err := p.DeliverTraced(publishers[rng.Intn(len(publishers))], ev, trace)
		if err != nil {
			t.Fatal(err)
		}
		recs := rec.SnapshotFilter(trace, telemetry.KindDecision, 0)
		if len(recs) != 1 {
			t.Fatalf("decision records for trace = %d, want 1", len(recs))
		}
		got := recs[0]
		if got.Args[0] != int64(d.Method) || got.Args[1] != int64(d.Interested) || got.Args[2] != int64(d.GroupSize) {
			t.Fatalf("record args = %v, decision = %+v", got.Args, d)
		}
		wantPPM := int64(0)
		if d.GroupSize > 0 {
			wantPPM = int64(d.Interested) * 1_000_000 / int64(d.GroupSize)
		}
		if got.Args[3] != wantPPM {
			t.Fatalf("ratio_ppm = %d, want %d", got.Args[3], wantPPM)
		}
		if d.Interested > 0 {
			return // exercised a non-trivial decision; done
		}
	}
	t.Fatal("no publication matched any subscriber in 3000 samples")
}

// An untraced Deliver still records its decision, uncorrelated, so the
// recorder's dispatch history is complete even without tracing.
func TestUntracedDeliverStillRecords(t *testing.T) {
	f := newFixture(t, 5, cluster.AlgForgyKMeans)
	rec := telemetry.NewRecorder(1024)
	p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := p.Deliver(0, f.model.Sample(rng)); err != nil {
		t.Fatal(err)
	}
	recs := rec.SnapshotFilter(0, telemetry.KindDecision, 0)
	if len(recs) != 1 {
		t.Fatalf("decision records = %d, want 1", len(recs))
	}
	if recs[0].TraceID != 0 {
		t.Fatalf("untraced decision carries trace %x", recs[0].TraceID)
	}
}
