package dispatch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/multicast"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// fixture builds a small but complete pipeline: topology, subscriptions,
// clustering, matcher, planner.
type fixture struct {
	g          *topology.Graph
	subs       []workload.PlacedSubscription
	clustering *cluster.Clustering
	matcher    match.Matcher
	cost       *multicast.CostModel
	nodes      []int
	model      workload.PublicationModel
}

func newFixture(t *testing.T, groups int, alg cluster.Algorithm) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(2003))
	g := topology.MustGenerate(topology.DefaultConfig(), rng)
	space := workload.StockSpace()
	cfg := workload.DefaultSubscriptionConfig()
	cfg.Count = 300
	subs, err := workload.GenerateSubscriptions(g, space, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := workload.MustStockPublications(9)

	interests := make([]cluster.Interest, len(subs))
	msubs := make([]match.Subscription, len(subs))
	nodes := make([]int, len(subs))
	for i, s := range subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	clustering, err := cluster.Build(interests, model, space.Domain, cluster.Config{
		Groups: groups, TopCells: 100, GridRes: 8, Algorithm: alg,
	})
	if err != nil {
		t.Fatal(err)
	}
	matcher := match.MustNew(msubs, match.Options{Algorithm: match.AlgSTree})
	return &fixture{
		g:          g,
		subs:       subs,
		clustering: clustering,
		matcher:    matcher,
		cost:       multicast.NewCostModel(g),
		nodes:      nodes,
		model:      model,
	}
}

func (f *fixture) planner(t *testing.T, threshold float64) *Planner {
	t.Helper()
	p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlannerValidation(t *testing.T) {
	f := newFixture(t, 5, cluster.AlgForgyKMeans)
	if _, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Threshold: -0.1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Threshold: 1.1}); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := NewPlanner(nil, f.matcher, f.cost, f.nodes, Config{}); err == nil {
		t.Error("nil clustering accepted")
	}
	if _, err := NewPlanner(f.clustering, nil, f.cost, f.nodes, Config{}); err == nil {
		t.Error("nil matcher accepted")
	}
	if _, err := NewPlanner(f.clustering, f.matcher, nil, f.nodes, Config{}); err == nil {
		t.Error("nil cost model accepted")
	}
	bad := append([]int(nil), f.nodes...)
	bad[0] = -5
	if _, err := NewPlanner(f.clustering, f.matcher, f.cost, bad, Config{}); err == nil {
		t.Error("invalid node mapping accepted")
	}
}

func TestMethodString(t *testing.T) {
	if MethodNone.String() != "none" || MethodUnicast.String() != "unicast" || MethodMulticast.String() != "multicast" {
		t.Error("method names wrong")
	}
	if Method(7).String() != "method(7)" {
		t.Error("unknown method name wrong")
	}
}

func TestDeliverDecisions(t *testing.T) {
	f := newFixture(t, 11, cluster.AlgForgyKMeans)
	p := f.planner(t, 0.15)
	rng := rand.New(rand.NewSource(7))
	publishers := f.g.NodesByRole(topology.RoleTransit)

	sawMulticast, sawUnicast, sawNone := false, false, false
	for i := 0; i < 3000; i++ {
		ev := f.model.Sample(rng)
		pub := publishers[rng.Intn(len(publishers))]
		d, err := p.Deliver(pub, ev)
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check against brute-force matching.
		want := len(match.MatchSet(match.BruteForce(bruteSubs(f)), ev))
		if d.Interested != want {
			t.Fatalf("Interested = %d, want %d", d.Interested, want)
		}
		switch d.Method {
		case MethodNone:
			sawNone = true
			if d.Interested != 0 {
				t.Fatalf("MethodNone with %d interested", d.Interested)
			}
			if d.Cost != 0 {
				t.Fatalf("MethodNone with cost %v", d.Cost)
			}
		case MethodUnicast:
			sawUnicast = true
			if d.Cost != d.UnicastCost {
				t.Fatalf("unicast cost %v != %v", d.Cost, d.UnicastCost)
			}
			if d.Group >= 0 {
				ratio := float64(d.Interested) / float64(d.GroupSize)
				if ratio >= p.Threshold() {
					t.Fatalf("unicast chosen at ratio %v >= threshold %v", ratio, p.Threshold())
				}
			}
		case MethodMulticast:
			sawMulticast = true
			if d.Group < 0 {
				t.Fatal("multicast outside any group")
			}
			ratio := float64(d.Interested) / float64(d.GroupSize)
			if ratio < p.Threshold() {
				t.Fatalf("multicast chosen at ratio %v < threshold %v", ratio, p.Threshold())
			}
			// Multicast to a superset of the interested nodes can never
			// be cheaper than the ideal.
			if d.Cost < d.IdealCost-1e-9 {
				t.Fatalf("multicast cost %v below ideal %v", d.Cost, d.IdealCost)
			}
		}
		if d.Method != MethodNone {
			if d.IdealCost > d.UnicastCost+1e-9 {
				t.Fatalf("ideal %v above unicast %v", d.IdealCost, d.UnicastCost)
			}
		}
	}
	if !sawMulticast || !sawUnicast || !sawNone {
		t.Errorf("decision variety: multicast=%v unicast=%v none=%v — all should occur",
			sawMulticast, sawUnicast, sawNone)
	}
}

func bruteSubs(f *fixture) []match.Subscription {
	out := make([]match.Subscription, len(f.subs))
	for i, s := range f.subs {
		out[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
	}
	return out
}

func TestZeroThresholdAlwaysMulticastsInGroups(t *testing.T) {
	f := newFixture(t, 11, cluster.AlgForgyKMeans)
	p := f.planner(t, 0)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		ev := f.model.Sample(rng)
		d, err := p.Deliver(0, ev)
		if err != nil {
			t.Fatal(err)
		}
		if d.Group >= 0 && d.Interested > 0 && d.Method != MethodMulticast {
			t.Fatalf("threshold 0 chose %v inside group %d", d.Method, d.Group)
		}
	}
}

func TestFullThresholdAlwaysUnicasts(t *testing.T) {
	f := newFixture(t, 11, cluster.AlgForgyKMeans)
	p := f.planner(t, 1.0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		ev := f.model.Sample(rng)
		d, err := p.Deliver(0, ev)
		if err != nil {
			t.Fatal(err)
		}
		// ratio < 1 except when the whole group is interested.
		if d.Method == MethodMulticast && d.Interested < d.GroupSize {
			t.Fatalf("threshold 1 multicast with ratio %d/%d", d.Interested, d.GroupSize)
		}
	}
}

func TestCatchAllIsUnicast(t *testing.T) {
	f := newFixture(t, 5, cluster.AlgForgyKMeans)
	p := f.planner(t, 0.15)
	// An event far outside the domain matches nobody: MethodNone.
	d, err := p.Deliver(0, geometry.Point{-100, -100, -100, -100})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != MethodNone || d.Group != -1 {
		t.Errorf("far-out event: %+v", d)
	}
}

func TestTotalsAccumulation(t *testing.T) {
	var tot Totals
	tot.Add(Decision{Method: MethodUnicast, Cost: 10, UnicastCost: 10, IdealCost: 5})
	tot.Add(Decision{Method: MethodMulticast, Cost: 7, UnicastCost: 10, IdealCost: 5})
	tot.Add(Decision{Method: MethodNone})
	if tot.Messages != 3 || tot.Unicasts != 1 || tot.Multicasts != 1 || tot.Suppressed != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Cost != 17 || tot.UnicastCost != 20 || tot.IdealCost != 10 {
		t.Fatalf("costs = %+v", tot)
	}
	// Improvement: (20-17)/(20-10) = 30%.
	if got := tot.Improvement(); math.Abs(got-30) > 1e-9 {
		t.Errorf("Improvement = %v, want 30", got)
	}
}

func TestDynamicBeatsPureMulticastHere(t *testing.T) {
	// The paper's core claim (Figure 6): a moderate threshold improves on
	// threshold 0 (pure multicast) for the 9-mode workload.
	f := newFixture(t, 11, cluster.AlgForgyKMeans)
	rng := rand.New(rand.NewSource(10))
	events := f.model.SampleN(rng, 4000)
	publishers := f.g.NodesByRole(topology.RoleTransit)
	pubs := make([]int, len(events))
	for i := range pubs {
		pubs[i] = publishers[rng.Intn(len(publishers))]
	}

	run := func(threshold float64) Totals {
		p := f.planner(t, threshold)
		var tot Totals
		for i, ev := range events {
			d, err := p.Deliver(pubs[i], ev)
			if err != nil {
				t.Fatal(err)
			}
			tot.Add(d)
		}
		return tot
	}
	pure := run(0)
	dynamic := run(0.15)
	if dynamic.Cost > pure.Cost {
		t.Errorf("dynamic scheme cost %v exceeds pure multicast %v", dynamic.Cost, pure.Cost)
	}
	if dynamic.Improvement() < pure.Improvement() {
		t.Errorf("dynamic improvement %.1f%% below pure multicast %.1f%%",
			dynamic.Improvement(), pure.Improvement())
	}
}

func TestPlannerWorksWithAllClusterAlgorithms(t *testing.T) {
	for _, alg := range []cluster.Algorithm{cluster.AlgForgyKMeans, cluster.AlgPairwise, cluster.AlgMST} {
		t.Run(alg.String(), func(t *testing.T) {
			f := newFixture(t, 7, alg)
			p := f.planner(t, 0.15)
			rng := rand.New(rand.NewSource(11))
			var tot Totals
			for i := 0; i < 500; i++ {
				d, err := p.Deliver(rng.Intn(f.g.NumNodes()), f.model.Sample(rng))
				if err != nil {
					t.Fatal(err)
				}
				tot.Add(d)
			}
			if tot.Messages != 500 {
				t.Errorf("messages = %d", tot.Messages)
			}
		})
	}
}

func TestPropDecisionInvariants(t *testing.T) {
	// Across random thresholds and publishers, every decision satisfies
	// the structural invariants: costs ordered, method consistent with
	// the rule, counts sane.
	f := newFixture(t, 9, cluster.AlgForgyKMeans)
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(77))}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		th := rng.Float64()
		p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Threshold: th})
		if err != nil {
			t.Log(err)
			return false
		}
		for i := 0; i < 60; i++ {
			d, err := p.Deliver(rng.Intn(f.g.NumNodes()), f.model.Sample(rng))
			if err != nil {
				t.Log(err)
				return false
			}
			const eps = 1e-9
			switch {
			case d.Interested < 0,
				d.Group >= f.clustering.NumGroups(),
				d.Method == MethodNone && d.Cost != 0,
				d.Method != MethodNone && d.IdealCost > d.UnicastCost+eps,
				d.Method == MethodUnicast && d.Cost != d.UnicastCost,
				d.Method == MethodMulticast && d.Group < 0,
				d.Method == MethodMulticast && d.Cost < d.IdealCost-eps:
				t.Logf("seed %d: invariant violated: %s (threshold %.2f)", seed, d, th)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestDispatchMetrics(t *testing.T) {
	f := newFixture(t, 7, cluster.AlgForgyKMeans)
	reg := telemetry.NewRegistry()
	p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Threshold: 0.15, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	publishers := f.g.NodesByRole(topology.RoleTransit)
	var tot Totals
	const n = 500
	for i := 0; i < n; i++ {
		d, err := p.Deliver(publishers[rng.Intn(len(publishers))], f.model.Sample(rng))
		if err != nil {
			t.Fatal(err)
		}
		tot.Add(d)
	}
	if got := reg.CounterValue("pubsub_dispatch_decisions_total"); got != n {
		t.Errorf("decisions total = %g, want %d", got, n)
	}
	// Per-method counters agree with the totals the decisions reported.
	want := map[string]float64{
		"none":      float64(tot.Suppressed),
		"unicast":   float64(tot.Unicasts),
		"multicast": float64(tot.Multicasts),
	}
	for _, fam := range reg.Gather() {
		if fam.Name != "pubsub_dispatch_decisions_total" {
			continue
		}
		for _, s := range fam.Samples {
			if len(s.Labels) != 1 {
				t.Fatalf("unexpected labels %v", s.Labels)
			}
			if w := want[s.Labels[0].Value]; s.Value != w {
				t.Errorf("decisions{method=%q} = %g, want %g", s.Labels[0].Value, s.Value, w)
			}
		}
	}
	// The ratio histogram records only in-group publications and stays
	// within [0, 1]-ish bounds (ratio can exceed 1 when subscribers of
	// other groups are also interested; the +Inf bucket absorbs that).
	h := reg.Histogram1("pubsub_dispatch_interest_ratio")
	if h.Count == 0 {
		t.Fatal("interest ratio histogram empty")
	}
	if lat := reg.Histogram1("pubsub_dispatch_decide_seconds"); lat.Count != n {
		t.Errorf("decide latency count = %d, want %d", lat.Count, n)
	}
}
