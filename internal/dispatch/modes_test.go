package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/multicast"
)

func TestPlannerModeValidation(t *testing.T) {
	f := newFixture(t, 5, cluster.AlgForgyKMeans)
	if _, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes,
		Config{Mode: multicast.Mode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestPlannerModes(t *testing.T) {
	f := newFixture(t, 7, cluster.AlgForgyKMeans)
	rng := rand.New(rand.NewSource(21))
	events := f.model.SampleN(rng, 800)
	publishers := make([]int, len(events))
	for i := range publishers {
		publishers[i] = rng.Intn(f.g.NumNodes())
	}

	totals := map[multicast.Mode]Totals{}
	for _, mode := range []multicast.Mode{multicast.ModeDense, multicast.ModeSparse, multicast.ModeALM} {
		p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes,
			Config{Threshold: 0.05, Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if p.Mode() != mode {
			t.Fatalf("Mode() = %v", p.Mode())
		}
		var tot Totals
		for i, ev := range events {
			d, err := p.Deliver(publishers[i], ev)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			tot.Add(d)
		}
		totals[mode] = tot
	}

	// Decisions (unicast/multicast split) are identical across modes —
	// the threshold rule does not depend on the mechanism — only the
	// multicast pricing differs.
	dense := totals[multicast.ModeDense]
	for mode, tot := range totals {
		if tot.Unicasts != dense.Unicasts || tot.Multicasts != dense.Multicasts {
			t.Errorf("%v: decision split %d/%d differs from dense %d/%d",
				mode, tot.Unicasts, tot.Multicasts, dense.Unicasts, dense.Multicasts)
		}
		if tot.Multicasts > 0 && tot.Cost <= 0 {
			t.Errorf("%v: degenerate cost %v", mode, tot.Cost)
		}
	}
	// Dense in-network trees are the cheapest mechanism on aggregate for
	// these group sizes (sparse pays the RP detour, ALM pays per-hop
	// path costs).
	if dense.Cost > totals[multicast.ModeSparse].Cost {
		t.Errorf("dense %v above sparse %v", dense.Cost, totals[multicast.ModeSparse].Cost)
	}
}

func TestSparseModeUsesRendezvousCandidates(t *testing.T) {
	f := newFixture(t, 3, cluster.AlgForgyKMeans)
	// Restricting RP placement to one arbitrary node must still work.
	p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes,
		Config{Threshold: 0, Mode: multicast.ModeSparse, RendezvousCandidates: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	for q := range p.groupRP {
		if p.groupRP[q] != 0 {
			t.Fatalf("group %d RP = %d, want forced 0", q, p.groupRP[q])
		}
	}
}

func TestCostOracleRule(t *testing.T) {
	f := newFixture(t, 7, cluster.AlgForgyKMeans)
	oracle, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes,
		Config{Rule: RuleCost})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Rule() != RuleCost {
		t.Fatalf("Rule() = %v", oracle.Rule())
	}
	rng := rand.New(rand.NewSource(31))
	events := f.model.SampleN(rng, 1200)
	publishers := make([]int, len(events))
	for i := range publishers {
		publishers[i] = rng.Intn(f.g.NumNodes())
	}
	var oracleTot Totals
	for i, ev := range events {
		d, err := oracle.Deliver(publishers[i], ev)
		if err != nil {
			t.Fatal(err)
		}
		// The oracle never pays more than unicast.
		if d.Method != MethodNone && d.Cost > d.UnicastCost+1e-9 {
			t.Fatalf("oracle cost %v above unicast %v", d.Cost, d.UnicastCost)
		}
		oracleTot.Add(d)
	}
	// And it dominates every threshold setting on the same stream.
	for _, th := range []float64{0, 0.10, 0.25} {
		p, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes, Config{Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		var tot Totals
		for i, ev := range events {
			d, err := p.Deliver(publishers[i], ev)
			if err != nil {
				t.Fatal(err)
			}
			tot.Add(d)
		}
		if oracleTot.Cost > tot.Cost+1e-6 {
			t.Errorf("oracle total %v above threshold %.2f total %v", oracleTot.Cost, th, tot.Cost)
		}
	}
}

func TestRuleValidation(t *testing.T) {
	f := newFixture(t, 3, cluster.AlgForgyKMeans)
	if _, err := NewPlanner(f.clustering, f.matcher, f.cost, f.nodes,
		Config{Rule: Rule(9)}); err == nil {
		t.Error("unknown rule accepted")
	}
	if RuleThreshold.String() != "threshold" || RuleCost.String() != "cost" || Rule(9).String() != "rule(9)" {
		t.Error("rule names wrong")
	}
}
