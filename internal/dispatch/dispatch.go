// Package dispatch implements the paper's distribution method scheme
// (Section 4): the online, per-publication decision whether to deliver
// via the precomputed multicast group covering the event or via unicast
// messages to exactly the interested subscribers.
//
// Given a clustering S_1..S_n (plus catch-all S_0) and a matcher, the
// planner processes a publication ω as follows:
//
//  1. If ω ∈ S_0, deliver by unicast to the matched subscribers.
//  2. Otherwise ω ∈ S_q for a unique q. Run the matching algorithm to
//     obtain the interested subscriber list s. If s is empty, do not send.
//  3. If |s|/|S_q| < t for the threshold t, deliver by unicast to s;
//     otherwise multicast once to the whole group M_q.
package dispatch

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/multicast"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Method is the delivery method chosen for one publication.
type Method int

const (
	// MethodNone means no interested subscriber existed; nothing was
	// sent.
	MethodNone Method = iota
	// MethodUnicast means one message per interested subscriber node.
	MethodUnicast
	// MethodMulticast means a single dense-mode multicast to the
	// covering group.
	MethodMulticast
)

// String returns the method's display name.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "none"
	case MethodUnicast:
		return "unicast"
	case MethodMulticast:
		return "multicast"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Decision records the outcome of delivering one publication, including
// the cost accounting needed for the paper's improvement metric.
type Decision struct {
	// Group is the covering group index, or -1 for the catch-all S_0.
	Group int
	// Method is the chosen delivery method.
	Method Method
	// Interested is the number of interested subscribers |s|.
	Interested int
	// GroupSize is |S_q| (0 in the catch-all region).
	GroupSize int
	// Cost is the network cost actually paid.
	Cost float64
	// UnicastCost is what pure unicast delivery would have cost.
	UnicastCost float64
	// IdealCost is the per-message ideal (multicast tree spanning
	// exactly the interested nodes) — the 100%-improvement bound.
	IdealCost float64
}

// Rule selects how the planner decides between unicast and multicast
// for publications that fall inside a group.
type Rule int

const (
	// RuleThreshold is the paper's scheme: unicast when the interested
	// fraction |s|/|S_q| is below the threshold t.
	RuleThreshold Rule = iota
	// RuleCost compares the actual unicast cost against the actual
	// group-multicast cost and picks the cheaper — the oracle answering
	// the paper's future-work question of "where to draw the line" on
	// employing an inefficient multicast group. A deployed system would
	// approximate these costs; the oracle bounds what any threshold
	// rule can achieve.
	RuleCost
)

// String returns the rule's display name.
func (r Rule) String() string {
	switch r {
	case RuleThreshold:
		return "threshold"
	case RuleCost:
		return "cost"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Config parameterises the planner.
type Config struct {
	// Threshold is t: the publication is unicast when the interested
	// fraction |s|/|S_q| falls below it. 0 disables the dynamic scheme
	// (always multicast to the covering group); the paper finds ~0.15
	// consistently best. Ignored under RuleCost.
	Threshold float64
	// Rule selects the decision rule (RuleThreshold by default).
	Rule Rule
	// Mode selects the multicast mechanism (dense-mode network
	// multicast by default; sparse-mode and application-level multicast
	// are provided for the abl-mode ablation).
	Mode multicast.Mode
	// RendezvousCandidates restricts sparse-mode rendezvous-point
	// placement to these nodes. Empty selects the topology's transit
	// nodes (or, if there are none, all nodes).
	RendezvousCandidates []int
	// Metrics, when non-nil, receives the planner's decision counters
	// (by method) and the interested-fraction histogram. Nil disables
	// metrics at zero cost per decision.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, samples deliveries and logs their
	// match→decide stage timings. Nil disables tracing.
	Tracer *telemetry.Tracer
	// Recorder receives one flight-recorder decision record per
	// delivery (method, interested count, group size, interest ratio).
	// Nil selects the process-wide telemetry.Default() recorder.
	Recorder *telemetry.Recorder
}

func (c Config) validate() error {
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("dispatch: threshold must lie in [0, 1], got %g", c.Threshold)
	}
	switch c.Mode {
	case multicast.ModeDense, multicast.ModeSparse, multicast.ModeALM:
	default:
		return fmt.Errorf("dispatch: unknown multicast mode %d", int(c.Mode))
	}
	switch c.Rule {
	case RuleThreshold, RuleCost:
	default:
		return fmt.Errorf("dispatch: unknown decision rule %d", int(c.Rule))
	}
	return nil
}

// Planner makes per-publication delivery decisions. Build one with
// NewPlanner; it is safe for concurrent use.
type Planner struct {
	clustering *cluster.Clustering
	matcher    match.Matcher
	cost       *multicast.CostModel
	threshold  float64
	mode       multicast.Mode
	rule       Rule

	// subscriberNode maps subscriber id -> topology node.
	subscriberNode []int
	// groupNodes caches, per group, the deduplicated sorted node list of
	// its members (the multicast tree receivers).
	groupNodes [][]int
	// groupRP caches, per group, the sparse-mode rendezvous point
	// (only populated for ModeSparse).
	groupRP []int

	tel    *dispatchTel
	tracer *telemetry.Tracer
	rec    *telemetry.Recorder
}

// dispatchTel bundles the planner's metric handles; nil disables them.
type dispatchTel struct {
	decisions [3]*telemetry.Counter // indexed by Method
	ratio     *telemetry.Histogram
	latency   *telemetry.Histogram
}

// RegisterDispatchMetrics registers the planner's metric families
// against reg and returns the handles. It is exported (beyond planner
// construction) so a daemon can pre-register the families — making them
// visible, zero-valued, on /metrics — before any planner exists;
// idempotent registration means a later planner shares them.
func RegisterDispatchMetrics(reg *telemetry.Registry) *dispatchTel {
	if reg == nil {
		return nil
	}
	t := &dispatchTel{
		ratio: reg.Histogram("pubsub_dispatch_interest_ratio",
			"Interested fraction |s|/|S_q| per in-group publication.", telemetry.RatioBuckets()),
		latency: reg.Histogram("pubsub_dispatch_decide_seconds",
			"Deliver decision latency: match plus cost accounting.", telemetry.LatencyBuckets()),
	}
	for _, m := range []Method{MethodNone, MethodUnicast, MethodMulticast} {
		t.decisions[m] = reg.Counter("pubsub_dispatch_decisions_total",
			"Delivery decisions by chosen method.", telemetry.L("method", m.String()))
	}
	return t
}

// record counts one decision.
func (t *dispatchTel) record(d Decision, took float64) {
	if t == nil {
		return
	}
	if int(d.Method) >= 0 && int(d.Method) < len(t.decisions) {
		t.decisions[d.Method].Inc()
	}
	if d.GroupSize > 0 {
		t.ratio.Observe(float64(d.Interested) / float64(d.GroupSize))
	}
	t.latency.Observe(took)
}

// NewPlanner assembles a planner. subscriberNode maps every subscriber id
// the matcher can return (and every id in the clustering's groups) to its
// topology node.
func NewPlanner(
	c *cluster.Clustering,
	m match.Matcher,
	cost *multicast.CostModel,
	subscriberNode []int,
	cfg Config,
) (*Planner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if c == nil || m == nil || cost == nil {
		return nil, fmt.Errorf("dispatch: clustering, matcher and cost model are all required")
	}
	nodes := cost.Graph().NumNodes()
	for id, node := range subscriberNode {
		if node < 0 || node >= nodes {
			return nil, fmt.Errorf("dispatch: subscriber %d mapped to invalid node %d", id, node)
		}
	}
	p := &Planner{
		clustering:     c,
		matcher:        m,
		cost:           cost,
		threshold:      cfg.Threshold,
		mode:           cfg.Mode,
		rule:           cfg.Rule,
		subscriberNode: append([]int(nil), subscriberNode...),
		groupNodes:     make([][]int, c.NumGroups()),
		tel:            RegisterDispatchMetrics(cfg.Metrics),
		tracer:         cfg.Tracer,
		rec:            cfg.Recorder,
	}
	if p.rec == nil {
		p.rec = telemetry.Default()
	}
	for q := 0; q < c.NumGroups(); q++ {
		g := c.Group(q)
		nodes, err := p.nodesOf(g.Subscribers)
		if err != nil {
			return nil, fmt.Errorf("dispatch: group %d: %w", q, err)
		}
		p.groupNodes[q] = nodes
	}
	if cfg.Mode == multicast.ModeSparse {
		candidates := cfg.RendezvousCandidates
		if len(candidates) == 0 {
			candidates = cost.Graph().NodesByRole(topology.RoleTransit)
		}
		p.groupRP = make([]int, c.NumGroups())
		for q := range p.groupRP {
			rp, err := cost.BestRendezvous(p.groupNodes[q], candidates)
			if err != nil {
				return nil, fmt.Errorf("dispatch: group %d rendezvous: %w", q, err)
			}
			p.groupRP[q] = rp
		}
	}
	return p, nil
}

// Mode returns the configured multicast mode.
func (p *Planner) Mode() multicast.Mode { return p.mode }

// Rule returns the configured decision rule.
func (p *Planner) Rule() Rule { return p.rule }

// multicastCost prices one multicast to group q from the publisher under
// the configured mode.
func (p *Planner) multicastCost(publisher, q int) (float64, error) {
	switch p.mode {
	case multicast.ModeSparse:
		return p.cost.SparseCost(publisher, p.groupRP[q], p.groupNodes[q])
	case multicast.ModeALM:
		return p.cost.ALMCost(publisher, p.groupNodes[q])
	default:
		return p.cost.MulticastCost(publisher, p.groupNodes[q])
	}
}

// Threshold returns the configured threshold t.
func (p *Planner) Threshold() float64 { return p.threshold }

// nodesOf maps subscriber ids to a sorted, deduplicated node list.
// Co-located subscribers receive one network message; endpoint fan-out is
// free in the cost model.
func (p *Planner) nodesOf(subscribers []int) ([]int, error) {
	seen := make(map[int]struct{}, len(subscribers))
	nodes := make([]int, 0, len(subscribers))
	for _, s := range subscribers {
		if s < 0 || s >= len(p.subscriberNode) {
			return nil, fmt.Errorf("dispatch: subscriber id %d has no node mapping", s)
		}
		n := p.subscriberNode[s]
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes, nil
}

// Deliver decides and cost-accounts the delivery of one publication from
// the given publisher node.
func (p *Planner) Deliver(publisher int, event geometry.Point) (Decision, error) {
	return p.DeliverTraced(publisher, event, 0)
}

// DeliverTraced is Deliver correlated with a publication trace: the
// decision is written to the flight recorder under the given trace id
// (0 leaves the record uncorrelated), and a sampled span carries the id
// in its log line.
func (p *Planner) DeliverTraced(publisher int, event geometry.Point, traceID uint64) (Decision, error) {
	if p.tel == nil && p.tracer == nil {
		d, err := p.deliver(publisher, event)
		if err == nil {
			p.recordDecision(d, traceID)
		}
		return d, err
	}
	span := p.tracer.StartWith("dispatch", traceID)
	t0 := time.Now()
	d, err := p.deliver(publisher, event)
	took := time.Since(t0)
	if err != nil {
		return d, err
	}
	p.tel.record(d, took.Seconds())
	p.recordDecision(d, traceID)
	if span != nil {
		span.Stage("decide", took)
		span.Str("method", d.Method.String())
		span.Int("interested", d.Interested)
		span.Int("group", d.Group)
		if d.GroupSize > 0 {
			span.Float("ratio", float64(d.Interested)/float64(d.GroupSize))
		}
		span.End()
	}
	return d, nil
}

// recordDecision writes one flight-recorder decision record. The
// interest ratio |s|/|S_q| is carried in parts per million so the
// fixed-size integer record can express it.
func (p *Planner) recordDecision(d Decision, traceID uint64) {
	ratioPPM := int64(0)
	if d.GroupSize > 0 {
		ratioPPM = int64(d.Interested) * 1_000_000 / int64(d.GroupSize)
	}
	p.rec.Record(telemetry.KindDecision, traceID, 0,
		int64(d.Method), int64(d.Interested), int64(d.GroupSize), ratioPPM)
}

func (p *Planner) deliver(publisher int, event geometry.Point) (Decision, error) {
	d := Decision{Group: p.clustering.Locate(event)}

	// Match: the interested subscriber list s.
	interested := match.MatchUnique(p.matcher, event)
	d.Interested = len(interested)
	if len(interested) == 0 {
		// Nothing to send. (In S_0 there is nobody to reach; in a group,
		// the paper's rule is explicit: "If this list is empty, the
		// publication will be not sent.")
		d.Method = MethodNone
		return d, nil
	}
	interestedNodes, err := p.nodesOf(interested)
	if err != nil {
		return Decision{}, err
	}

	d.UnicastCost, err = p.cost.UnicastCost(publisher, interestedNodes)
	if err != nil {
		return Decision{}, err
	}
	d.IdealCost, err = p.cost.IdealCost(publisher, interestedNodes)
	if err != nil {
		return Decision{}, err
	}

	if d.Group < 0 {
		// Catch-all region: always unicast.
		d.Method = MethodUnicast
		d.Cost = d.UnicastCost
		return d, nil
	}

	g := p.clustering.Group(d.Group)
	d.GroupSize = g.Size()

	if p.rule == RuleCost {
		mc, err := p.multicastCost(publisher, d.Group)
		if err != nil {
			return Decision{}, err
		}
		if d.UnicastCost <= mc {
			d.Method = MethodUnicast
			d.Cost = d.UnicastCost
		} else {
			d.Method = MethodMulticast
			d.Cost = mc
		}
		return d, nil
	}

	ratio := float64(d.Interested) / float64(d.GroupSize)
	if ratio < p.threshold {
		d.Method = MethodUnicast
		d.Cost = d.UnicastCost
		return d, nil
	}
	d.Method = MethodMulticast
	d.Cost, err = p.multicastCost(publisher, d.Group)
	if err != nil {
		return Decision{}, err
	}
	return d, nil
}

// Totals aggregates decisions into the paper's improvement metric.
type Totals struct {
	Messages   int
	Unicasts   int
	Multicasts int
	Suppressed int // publications with no interested subscriber

	Cost        float64
	UnicastCost float64
	IdealCost   float64
}

// Add accumulates one decision.
func (t *Totals) Add(d Decision) {
	t.Messages++
	switch d.Method {
	case MethodNone:
		t.Suppressed++
		return
	case MethodUnicast:
		t.Unicasts++
	case MethodMulticast:
		t.Multicasts++
	}
	t.Cost += d.Cost
	t.UnicastCost += d.UnicastCost
	t.IdealCost += d.IdealCost
}

// Improvement returns the aggregate improvement percentage over pure
// unicast (0% = all unicast, 100% = per-message ideal multicast).
func (t *Totals) Improvement() float64 {
	return multicast.Improvement(t.UnicastCost, t.Cost, t.IdealCost)
}

// String renders a decision for logs and debugging.
func (d Decision) String() string {
	group := "S_0"
	if d.Group >= 0 {
		group = fmt.Sprintf("S_%d(|%d|)", d.Group+1, d.GroupSize)
	}
	return fmt.Sprintf("%s in %s: %d interested, cost %.1f (unicast %.1f, ideal %.1f)",
		d.Method, group, d.Interested, d.Cost, d.UnicastCost, d.IdealCost)
}
