package dispatch

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestRecorderAggregation(t *testing.T) {
	r := NewRecorder()
	r.Record(Decision{Group: 0, Method: MethodMulticast, Interested: 5, GroupSize: 10,
		Cost: 7, UnicastCost: 10, IdealCost: 5})
	r.Record(Decision{Group: 0, Method: MethodUnicast, Interested: 1, GroupSize: 10,
		Cost: 3, UnicastCost: 3, IdealCost: 2})
	r.Record(Decision{Group: -1, Method: MethodUnicast, Interested: 2,
		Cost: 4, UnicastCost: 4, IdealCost: 3})
	r.Record(Decision{Group: 1, Method: MethodNone})

	groups := r.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if groups[0].Group != -1 || groups[1].Group != 0 || groups[2].Group != 1 {
		t.Fatalf("group order: %v %v %v", groups[0].Group, groups[1].Group, groups[2].Group)
	}
	g0 := groups[1]
	if g0.Messages != 2 || g0.Unicasts != 1 || g0.Multicasts != 1 {
		t.Errorf("group 0 stats = %+v", g0.Totals)
	}
	// Mean ratio of group 0: (0.5 + 0.1)/2 = 0.3.
	if math.Abs(g0.MeanRatio()-0.3) > 1e-12 {
		t.Errorf("MeanRatio = %v, want 0.3", g0.MeanRatio())
	}
	// Catch-all has no ratio.
	if groups[0].MeanRatio() != 0 {
		t.Errorf("catch-all MeanRatio = %v", groups[0].MeanRatio())
	}
	all := r.Totals()
	if all.Messages != 4 || all.Suppressed != 1 {
		t.Errorf("totals = %+v", all)
	}

	var sb strings.Builder
	r.WriteTable(&sb)
	out := sb.String()
	if !strings.Contains(out, "S_0") || !strings.Contains(out, "all") {
		t.Errorf("table missing rows: %q", out)
	}
}

func TestRecorderOnRealTraffic(t *testing.T) {
	f := newFixture(t, 7, cluster.AlgForgyKMeans)
	p := f.planner(t, 0.10)
	rec := NewRecorder()
	rng := rand.New(rand.NewSource(99))
	var plain Totals
	for i := 0; i < 1500; i++ {
		d, err := p.Deliver(rng.Intn(f.g.NumNodes()), f.model.Sample(rng))
		if err != nil {
			t.Fatal(err)
		}
		rec.Record(d)
		plain.Add(d)
	}
	if rec.Totals() != plain {
		t.Fatalf("recorder totals %+v != direct %+v", rec.Totals(), plain)
	}
	// Per-group message counts sum to the total.
	sum := 0
	for _, g := range rec.Groups() {
		sum += g.Messages
	}
	if sum != plain.Messages {
		t.Errorf("per-group sum %d != %d", sum, plain.Messages)
	}
	// Ratios are valid fractions.
	for _, g := range rec.Groups() {
		if r := g.MeanRatio(); r < 0 || r > 1 {
			t.Errorf("group %d mean ratio %v", g.Group, r)
		}
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Group: 2, Method: MethodMulticast, Interested: 5, GroupSize: 40,
		Cost: 12.5, UnicastCost: 20, IdealCost: 10}
	s := d.String()
	for _, want := range []string{"multicast", "S_3(|40|)", "5 interested", "12.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	s0 := Decision{Group: -1, Method: MethodUnicast}.String()
	if !strings.Contains(s0, "S_0") {
		t.Errorf("catch-all String() = %q", s0)
	}
}
