package dispatch

import (
	"fmt"
	"io"
	"sort"
)

// GroupStats aggregates the decisions that landed in one multicast group
// (or the catch-all region), for observability when tuning the threshold.
type GroupStats struct {
	Group int // -1 for the catch-all S_0
	Totals
	// RatioSum accumulates |s|/|S_q| over in-group publications, so
	// MeanRatio() reports how interested the group's traffic really is.
	RatioSum float64
}

// MeanRatio returns the mean interested fraction of the group's
// publications (0 for the catch-all, which has no group size).
func (g *GroupStats) MeanRatio() float64 {
	n := g.Unicasts + g.Multicasts
	if n == 0 || g.Group < 0 {
		return 0
	}
	return g.RatioSum / float64(n)
}

// Recorder accumulates per-group delivery statistics. It is not safe for
// concurrent use; aggregate per goroutine and merge.
type Recorder struct {
	groups map[int]*GroupStats
	all    Totals
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{groups: make(map[int]*GroupStats)}
}

// Record accumulates one decision.
func (r *Recorder) Record(d Decision) {
	r.all.Add(d)
	g, ok := r.groups[d.Group]
	if !ok {
		g = &GroupStats{Group: d.Group}
		r.groups[d.Group] = g
	}
	g.Add(d)
	if d.Group >= 0 && d.GroupSize > 0 && d.Method != MethodNone {
		g.RatioSum += float64(d.Interested) / float64(d.GroupSize)
	}
}

// Totals returns the overall aggregate.
func (r *Recorder) Totals() Totals { return r.all }

// Groups returns the per-group statistics ordered by group index, with
// the catch-all (-1) first when present.
func (r *Recorder) Groups() []GroupStats {
	out := make([]GroupStats, 0, len(r.groups))
	for _, g := range r.groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// WriteTable renders the per-group breakdown.
func (r *Recorder) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%6s %9s %9s %10s %10s %10s %11s\n",
		"group", "messages", "unicast", "multicast", "suppressed", "meanratio", "improvement")
	for _, g := range r.Groups() {
		label := fmt.Sprintf("%d", g.Group)
		if g.Group < 0 {
			label = "S_0"
		}
		fmt.Fprintf(w, "%6s %9d %9d %10d %10d %9.1f%% %10.1f%%\n",
			label, g.Messages, g.Unicasts, g.Multicasts, g.Suppressed,
			100*g.MeanRatio(), g.Improvement())
	}
	t := r.Totals()
	fmt.Fprintf(w, "%6s %9d %9d %10d %10d %10s %10.1f%%\n",
		"all", t.Messages, t.Unicasts, t.Multicasts, t.Suppressed, "", t.Improvement())
}
