package wire

import (
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
)

func TestDialReconnectingFailsFast(t *testing.T) {
	if _, err := DialReconnecting("127.0.0.1:1", ReconnectOptions{}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestReconnectingSurvivesServerRestart(t *testing.T) {
	// Start a server on a concrete port we can rebind after shutdown.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	b1 := broker.New(broker.Options{})
	s1 := NewServer(b1)
	go func() { _ = s1.Serve(ln) }()

	rc, err := DialReconnecting(addr, ReconnectOptions{InitialBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}

	// First generation works.
	if n, err := rc.Publish(geometry.Point{5}, []byte("one")); err != nil || n != 1 {
		t.Fatalf("first publish: n=%d err=%v", n, err)
	}
	select {
	case ev := <-rc.Events():
		if string(ev.Payload) != "one" {
			t.Fatalf("payload %q", ev.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event before restart")
	}

	// Kill the server; bring up a fresh broker on the same address.
	s1.Close()
	b1.Close()
	var ln2 net.Listener
	deadline := time.Now().Add(3 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b2 := broker.New(broker.Options{})
	s2 := NewServer(b2)
	go func() { _ = s2.Serve(ln2) }()
	defer func() { s2.Close(); b2.Close() }()

	// Wait for the client to reconnect and resubscribe.
	deadline = time.Now().Add(5 * time.Second)
	for b2.Stats().Subscriptions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never resubscribed on the new server")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Publishing through the reconnected client reaches the replayed
	// subscription.
	deadline = time.Now().Add(5 * time.Second)
	for {
		n, err := rc.Publish(geometry.Point{5}, []byte("two"))
		if err == nil && n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish after restart: n=%d err=%v", n, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for {
		select {
		case ev := <-rc.Events():
			if string(ev.Payload) == "two" {
				return // success
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no event after restart")
		}
	}
}

func TestReconnectingSubscribeValidation(t *testing.T) {
	_, addr := startServer(t)
	rc, err := DialReconnecting(addr, ReconnectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Subscribe(); err == nil {
		t.Error("empty subscribe accepted")
	}
	// Handles are stable and distinct.
	a, err := rc.Subscribe(geometry.NewRect(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rc.Subscribe(geometry.NewRect(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("duplicate local handles")
	}
}

func TestReconnectingCloseIsFinal(t *testing.T) {
	_, addr := startServer(t)
	rc, err := DialReconnecting(addr, ReconnectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := rc.Subscribe(geometry.NewRect(0, 1)); err == nil {
		t.Error("subscribe after close accepted")
	}
	if _, err := rc.Publish(geometry.Point{1}, nil); err == nil {
		t.Error("publish after close accepted")
	}
	if _, open := <-rc.Events(); open {
		t.Error("events channel open after close")
	}
}
