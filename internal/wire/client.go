package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/telemetry"
)

// ClientOptions tune a wire client.
type ClientOptions struct {
	// Recorder receives flight-recorder records for publishes sent and
	// events received, correlated by trace id with the server's records.
	// Nil selects the process-wide telemetry.Default() recorder.
	Recorder *telemetry.Recorder
	// Metrics, when non-nil, registers the waterfall's client_recv
	// stage: the latency from this client's PublishTraced to its own
	// first matching event frame, with the publication's trace id as
	// the bucket exemplar. Only publishes sent by this client are
	// measured (the client has no send timestamp for anyone else's).
	Metrics *telemetry.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Recorder == nil {
		o.Recorder = telemetry.Default()
	}
	return o
}

// Client is a TCP client for a wire server. Create one with Dial. Methods
// are safe for concurrent use; replies are matched to requests by strict
// ordering, so requests are serialised internally.
type Client struct {
	conn net.Conn
	opts ClientOptions

	reqMu   sync.Mutex // serialises request/reply exchanges
	writeMu sync.Mutex

	events  chan broker.Event
	replies chan *Message

	closeOnce sync.Once
	readErr   error
	readDone  chan struct{}

	droppedMu    sync.Mutex
	dropped      uint64
	firstDropped uint64 // Seq of the first drop since ClearFirstDropped
	hasDropped   bool

	// stageRecv plus the sent ring implement the client_recv waterfall
	// stage. PublishTraced stamps its trace id and send time into the
	// ring slot traceID%clientTraceRing (nanos first, id last — the id
	// is the guard); the read loop CASes the id out on the first
	// matching event frame, so each publish is measured exactly once
	// even when it fans out to several local subscriptions. Collisions
	// just overwrite a slot: a bounded, lossy sample by design.
	stageRecv *telemetry.Histogram
	sentTrace [clientTraceRing]atomic.Uint64
	sentNanos [clientTraceRing]atomic.Int64
}

// clientTraceRing sizes the in-flight publish ring backing the
// client_recv stage. Power of two; 256 publishes in flight before
// samples start overwriting each other.
const clientTraceRing = 256

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, ClientOptions{})
}

// DialWith is Dial with explicit client options.
func DialWith(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return NewClientWith(conn, opts), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return NewClientWith(conn, ClientOptions{})
}

// NewClientWith wraps an established connection with explicit options.
func NewClientWith(conn net.Conn, opts ClientOptions) *Client {
	c := &Client{
		conn:     conn,
		opts:     opts.withDefaults(),
		events:   make(chan broker.Event, 1024),
		replies:  make(chan *Message, 1),
		readDone: make(chan struct{}),
	}
	c.stageRecv = telemetry.StageHistogram(c.opts.Metrics, telemetry.StageClientRecv)
	go c.readLoop()
	return c
}

// noteRecv closes the client_recv measurement for an event frame whose
// trace id matches a publish this client sent. The CAS claims the ring
// slot so duplicate deliveries of the same publication measure once.
func (c *Client) noteRecv(traceID uint64) {
	if c.stageRecv == nil || traceID == 0 {
		return
	}
	slot := traceID % clientTraceRing
	if c.sentTrace[slot].Load() != traceID || !c.sentTrace[slot].CompareAndSwap(traceID, 0) {
		return
	}
	d := time.Duration(time.Now().UnixNano() - c.sentNanos[slot].Load())
	c.stageRecv.ObserveExemplar(d.Seconds(), traceID)
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	defer close(c.events)
	for {
		m, err := ReadMessage(c.conn)
		if err != nil {
			c.readErr = err
			return
		}
		switch m.Type {
		case TypeEvent:
			c.noteRecv(m.TraceID)
			ev := broker.Event{Point: geometry.Point(m.Point), Payload: m.Payload, Seq: m.Seq, TraceID: m.TraceID}
			select {
			case c.events <- ev:
				c.opts.Recorder.Record(telemetry.KindClientRecv, m.TraceID, m.Seq,
					int64(m.SubID), int64(len(m.Payload)), 0, 0)
			default:
				c.droppedMu.Lock()
				c.dropped++
				first := !c.hasDropped
				if first {
					c.firstDropped, c.hasDropped = m.Seq, true
				}
				c.droppedMu.Unlock()
				// first_drop marks the drop that opened the current loss
				// window: the Seq a resume replay must refetch from.
				firstArg := int64(0)
				if first {
					firstArg = 1
				}
				c.opts.Recorder.Record(telemetry.KindClientRecv, m.TraceID, m.Seq,
					int64(m.SubID), int64(len(m.Payload)), 1, firstArg)
			}
		case TypeOK, TypeError:
			select {
			case c.replies <- m:
			default:
				// Unsolicited reply; drop it rather than deadlock.
			}
		case TypePing:
			// Server-side keepalive probe: answer so an idle but live
			// connection is not evicted by the server's idle timeout.
			c.writeMu.Lock()
			//pubsub:allow locksafe -- single small pong frame; writeMu exists precisely to order frames on the wire
			_ = WriteMessage(c.conn, &Message{Type: TypePong})
			c.writeMu.Unlock()
		}
	}
}

// roundTrip sends a request and waits for its reply.
func (c *Client) roundTrip(req *Message) (*Message, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()

	c.writeMu.Lock()
	//pubsub:allow locksafe -- the frame write under writeMu is the protocol's serialization point
	err := WriteMessage(c.conn, req)
	c.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	//pubsub:allow locksafe -- the reply wait must stay under reqMu: one request in flight, replies in order
	select {
	case reply := <-c.replies:
		if reply.Type == TypeError {
			return nil, fmt.Errorf("wire: server error: %s", reply.Error)
		}
		return reply, nil
	case <-c.readDone:
		if c.readErr != nil {
			return nil, fmt.Errorf("wire: connection lost: %w", c.readErr)
		}
		return nil, fmt.Errorf("wire: connection closed")
	}
}

// Subscribe registers a subscription for the union of the rectangles and
// returns its server-assigned id.
func (c *Client) Subscribe(rects ...geometry.Rect) (int, error) {
	return c.SubscribeFrom(0, rects...)
}

// SubscribeFrom is Subscribe with offset-based resume: when from is
// nonzero, a durability-enabled server first streams the matching
// events already in its publication log starting at that offset
// (clamped to the oldest retained record), then switches to live
// fanout with no gap or duplicate at the boundary. Replayed and live
// events alike arrive on Events(); replays larger than the client's
// event buffer must be drained concurrently or they count as Dropped.
// A zero from is never sent on the wire, keeping the frame
// byte-identical to a pre-offset client's.
func (c *Client) SubscribeFrom(from uint64, rects ...geometry.Rect) (int, error) {
	if len(rects) == 0 {
		return 0, fmt.Errorf("wire: subscription needs at least one rectangle")
	}
	req := &Message{Type: TypeSubscribe, Rects: make([]Rect, len(rects)), FromOffset: from}
	for i, r := range rects {
		req.Rects[i] = RectToWire(r)
	}
	reply, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	return reply.SubID, nil
}

// Replay fetches the server's durable publication log from the given
// offset (0 and 1 both mean "the oldest retained record") without
// registering a live subscription, returning the records as events in
// log order. The server sends its reply after the last replayed frame,
// so the returned slice is complete. Replay drains Events() while it
// waits; run it on a connection with no live subscriptions, or
// concurrent live deliveries will be folded into the returned slice.
func (c *Client) Replay(from uint64) ([]broker.Event, error) {
	if from == 0 {
		from = 1
	}
	c.reqMu.Lock()
	defer c.reqMu.Unlock()

	c.writeMu.Lock()
	//pubsub:allow locksafe -- the frame write under writeMu is the protocol's serialization point
	err := WriteMessage(c.conn, &Message{Type: TypeSubscribe, FromOffset: from})
	c.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	var evs []broker.Event
	for {
		//pubsub:allow locksafe -- the replay wait must stay under reqMu: one request in flight, replies in order
		select {
		case ev, open := <-c.events:
			if !open {
				return nil, fmt.Errorf("wire: connection closed mid-replay")
			}
			evs = append(evs, ev)
		case reply := <-c.replies:
			if reply.Type == TypeError {
				return nil, fmt.Errorf("wire: server error: %s", reply.Error)
			}
			// The reader enqueued every replayed event before the reply;
			// collect any still buffered ahead of it.
			for {
				select {
				case ev := <-c.events:
					evs = append(evs, ev)
				default:
					return evs, nil
				}
			}
		case <-c.readDone:
			if c.readErr != nil {
				return nil, fmt.Errorf("wire: connection lost: %w", c.readErr)
			}
			return nil, fmt.Errorf("wire: connection closed")
		}
	}
}

// Unsubscribe cancels a subscription previously created by this client.
func (c *Client) Unsubscribe(subID int) error {
	_, err := c.roundTrip(&Message{Type: TypeUnsubscribe, SubID: subID})
	return err
}

// Ping performs a liveness round trip.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Message{Type: TypePing})
	return err
}

// Publish sends an event and returns how many subscribers it was
// delivered to (across all of the broker's clients).
func (c *Client) Publish(p geometry.Point, payload []byte) (int, error) {
	n, _, err := c.PublishTraced(p, payload)
	return n, err
}

// PublishTraced is Publish exposing the publication's trace id: the
// client assigns a fresh 64-bit id, records the send in its flight
// recorder, carries the id on the publish frame (old servers ignore the
// unknown field and the id from the reply is then 0), and returns it so
// the caller can correlate the publication across the server's
// /debug/events dump and its own recorder.
func (c *Client) PublishTraced(p geometry.Point, payload []byte) (int, uint64, error) {
	traceID := telemetry.NewTraceID()
	c.opts.Recorder.Record(telemetry.KindClientPublish, traceID, 0,
		int64(len(p)), int64(len(payload)), 0, 0)
	if c.stageRecv != nil {
		slot := traceID % clientTraceRing
		c.sentNanos[slot].Store(time.Now().UnixNano())
		c.sentTrace[slot].Store(traceID)
	}
	reply, err := c.roundTrip(&Message{Type: TypePublish, Point: p, Payload: payload, TraceID: traceID})
	if err != nil {
		return 0, traceID, err
	}
	return reply.Delivered, traceID, nil
}

// Events returns the channel of asynchronous event deliveries for all of
// this client's subscriptions. The channel closes when the connection
// drops or Close is called.
func (c *Client) Events() <-chan broker.Event { return c.events }

// Dropped reports events discarded because the local event buffer was
// full.
func (c *Client) Dropped() uint64 {
	c.droppedMu.Lock()
	defer c.droppedMu.Unlock()
	return c.dropped
}

// FirstDropped reports the sequence number of the first event discarded
// since the last ClearFirstDropped (or ever), and whether one was. A
// consumer draining a resume replay uses it as the exclusive upper bound
// of the loss-free prefix: everything below it was delivered in order.
func (c *Client) FirstDropped() (uint64, bool) {
	c.droppedMu.Lock()
	defer c.droppedMu.Unlock()
	return c.firstDropped, c.hasDropped
}

// ClearFirstDropped resets FirstDropped's tracking so it reports only
// drops from this point on. The cumulative Dropped counter is
// unaffected. Call it before a replay-bearing request so an old live
// overflow is not mistaken for a hole in the fresh replay.
func (c *Client) ClearFirstDropped() {
	c.droppedMu.Lock()
	defer c.droppedMu.Unlock()
	c.firstDropped, c.hasDropped = 0, false
}

// Close tears down the connection. Safe to call more than once.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		err = c.conn.Close()
		<-c.readDone
	})
	return err
}
