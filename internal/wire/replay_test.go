package wire

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/wal"
)

// startDurableServer runs a broker backed by a fresh WAL plus a server
// on a loopback listener.
func startDurableServer(t *testing.T) (*Server, string) {
	t.Helper()
	log, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(broker.Options{Log: log})
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		b.Close()
		log.Close()
	})
	return s, ln.Addr().String()
}

func publishN(t *testing.T, cli *Client, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if _, err := cli.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
}

// TestClientReplay: a replay-only subscribe returns the full durable
// history in offset order, and the OK's Delivered matches.
func TestClientReplay(t *testing.T) {
	_, addr := startDurableServer(t)
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishN(t, pub, 1, 20)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	evs, err := cli.Replay(0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(evs) != 20 {
		t.Fatalf("replayed %d events, want 20", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if want := fmt.Sprintf("e%d", i+1); string(ev.Payload) != want {
			t.Fatalf("event %d payload %q, want %q", i, ev.Payload, want)
		}
	}
	// A mid-log start.
	evs, err = cli.Replay(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 || evs[0].Seq != 15 {
		t.Fatalf("Replay(15): %d events starting at %d", len(evs), evs[0].Seq)
	}
}

// TestReplayOnNonDurableServer: from_offset against a log-less server is
// a protocol error, not a hang or a silent live subscribe.
func TestReplayOnNonDurableServer(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Replay(0); err == nil {
		t.Fatal("Replay succeeded against a server with no log")
	}
	if _, err := cli.SubscribeFrom(1, geometry.NewRect(0, 10)); err == nil {
		t.Fatal("SubscribeFrom succeeded against a server with no log")
	}
	// A plain subscribe still works on the same connection.
	if _, err := cli.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatalf("plain Subscribe after failed replay: %v", err)
	}
}

// TestSubscribeFromBridgesReplayToLive: history arrives first, then live
// events, seamlessly ordered with no duplicate or gap at the boundary.
func TestSubscribeFromBridgesReplayToLive(t *testing.T) {
	_, addr := startDurableServer(t)
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishN(t, pub, 1, 10)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.SubscribeFrom(1, geometry.NewRect(0, 100)); err != nil {
		t.Fatal(err)
	}
	publishN(t, pub, 11, 20)

	seen := make(map[uint64]bool)
	last := uint64(0)
	timeout := time.After(5 * time.Second)
	for len(seen) < 20 {
		select {
		case ev := <-cli.Events():
			if seen[ev.Seq] {
				t.Fatalf("Seq %d delivered twice", ev.Seq)
			}
			if ev.Seq <= last {
				t.Fatalf("Seq %d after %d: out of order", ev.Seq, last)
			}
			seen[ev.Seq] = true
			last = ev.Seq
		case <-timeout:
			t.Fatalf("saw %d of 20 events", len(seen))
		}
	}
}

// TestSubscribeFromFiltersReplayByRect: replayed history is filtered by
// the subscription's rectangles just like live fanout.
func TestSubscribeFromFiltersReplayByRect(t *testing.T) {
	_, addr := startDurableServer(t)
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Points 1..10: only 4..6 fall in (3, 6].
	publishN(t, pub, 1, 10)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.SubscribeFrom(1, geometry.NewRect(3, 6)); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	timeout := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-cli.Events():
			if p := ev.Point[0]; p <= 3 || p > 6 {
				t.Fatalf("replayed point %v outside the subscription rect", ev.Point)
			}
			got = append(got, ev.Seq)
		case <-timeout:
			t.Fatalf("saw %d of 3 filtered events: %v", len(got), got)
		}
	}
}

// TestReconnectingClientResume is the kill-and-restart satellite: a
// resuming subscriber must see every durable event exactly once, in
// order, across a full server restart — without relying on Dropped().
func TestReconnectingClientResume(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	boot := func(ln net.Listener) (*Server, *broker.Broker, *wal.Log) {
		log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		b := broker.New(broker.Options{Log: log})
		s := NewServer(b)
		go func() { _ = s.Serve(ln) }()
		return s, b, log
	}
	s1, b1, log1 := boot(ln)

	rc, err := DialReconnecting(addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.SubscribeFrom(1, geometry.NewRect(0, 1000)); err != nil {
		t.Fatal(err)
	}

	pub := func(b *broker.Broker, from, to int) {
		t.Helper()
		for i := from; i <= to; i++ {
			if _, err := b.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
		}
	}
	pub(b1, 1, 30)

	// Kill the server mid-stream (hard close: buffered events may die
	// with the connections — the log is the source of truth).
	s1.Close()
	b1.Close()
	log1.Close()

	// Restart on the same address over the same data directory. The
	// rebind can briefly race the dying listener.
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2, b2, log2 := boot(ln2)
	defer func() {
		s2.Close()
		b2.Close()
		log2.Close()
	}()
	pub(b2, 31, 60)

	// Every durable event 1..60 exactly once, in order, across the kill.
	seen := make(map[uint64]bool)
	last := uint64(0)
	timeout := time.After(15 * time.Second)
	for len(seen) < 60 {
		select {
		case ev := <-rc.Events():
			if seen[ev.Seq] {
				t.Fatalf("Seq %d delivered twice", ev.Seq)
			}
			if ev.Seq <= last {
				t.Fatalf("Seq %d after %d: out of order", ev.Seq, last)
			}
			if want := fmt.Sprintf("e%d", ev.Seq); string(ev.Payload) != want {
				t.Fatalf("Seq %d payload %q, want %q", ev.Seq, ev.Payload, want)
			}
			seen[ev.Seq] = true
			last = ev.Seq
		case <-timeout:
			t.Fatalf("saw %d of 60 events (last %d)", len(seen), last)
		}
	}
}

// startDurableBroker is startDurableServer exposing the broker, for
// tests that publish in-process while driving the wire protocol.
func startDurableBroker(t *testing.T) (*broker.Broker, string) {
	t.Helper()
	log, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(broker.Options{Log: log})
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		b.Close()
		log.Close()
	})
	return b, ln.Addr().String()
}

// TestReplayLiveBoundaryLossless: events published while a long replay
// streams must not fall into a gap at the replay/live boundary. The
// subscription uses a 1-slot buffer, so without the pump's backlog mode
// every live event racing the 400-record replay would overflow and be
// silently dropped before the pump went live.
func TestReplayLiveBoundaryLossless(t *testing.T) {
	b, addr := startDurableBroker(t)
	pub := func(from, to int) error {
		for i := from; i <= to; i++ {
			if _, err := b.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
				return fmt.Errorf("publish %d: %w", i, err)
			}
		}
		return nil
	}
	if err := pub(1, 400); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(20 * time.Second))
	req := &Message{Type: TypeSubscribe, FromOffset: 1, Buffer: 1,
		Rects: []Rect{RectToWire(geometry.NewRect(0, 100))}}
	if err := WriteMessage(conn, req); err != nil {
		t.Fatal(err)
	}

	// Race live publishes against the replay.
	pubErr := make(chan error, 1)
	go func() { pubErr <- pub(401, 800) }()

	seen := make(map[uint64]bool)
	last := uint64(0)
	for len(seen) < 800 {
		m, err := ReadMessage(conn)
		if err != nil {
			t.Fatalf("read after %d events: %v", len(seen), err)
		}
		if m.Type != TypeEvent { // the subscribe OK
			continue
		}
		if seen[m.Seq] {
			t.Fatalf("Seq %d delivered twice", m.Seq)
		}
		if m.Seq <= last {
			t.Fatalf("Seq %d after %d: out of order", m.Seq, last)
		}
		seen[m.Seq] = true
		last = m.Seq
	}
	if err := <-pubErr; err != nil {
		t.Fatal(err)
	}
}

// TestResumeFromZeroSkipsHistoryOnReconnect: SubscribeFrom(0) means
// "new events only". A reconnect before the first event has been
// delivered has no high-water mark to resume from and must subscribe
// live again — not replay the server's entire retained log.
func TestResumeFromZeroSkipsHistoryOnReconnect(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	boot := func(ln net.Listener) (*Server, *broker.Broker, *wal.Log) {
		log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		b := broker.New(broker.Options{Log: log})
		s := NewServer(b)
		go func() { _ = s.Serve(ln) }()
		return s, b, log
	}
	s1, b1, log1 := boot(ln)
	// 30 events of durable history the subscriber never asked to see.
	for i := 1; i <= 30; i++ {
		if _, err := b1.Publish(geometry.Point{1}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	rc, err := DialReconnecting(addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.SubscribeFrom(0, geometry.NewRect(0, 1000)); err != nil {
		t.Fatal(err)
	}

	// Kill and restart before anything was delivered.
	s1.Close()
	b1.Close()
	log1.Close()
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2, b2, log2 := boot(ln2)
	defer func() {
		s2.Close()
		b2.Close()
		log2.Close()
	}()

	// Publish fresh events until the reconnected subscription delivers
	// one; the first delivery must be post-outage, not replayed history.
	deadline := time.NewTimer(15 * time.Second)
	defer deadline.Stop()
	first := uint64(0)
	for i := 31; first == 0; i++ {
		if _, err := b2.Publish(geometry.Point{1}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-rc.Events():
			first = ev.Seq
		case <-time.After(20 * time.Millisecond):
		case <-deadline.C:
			t.Fatal("no event delivered after reconnect")
		}
	}
	if first <= 30 {
		t.Fatalf("first event after reconnect has Seq %d: retained history was replayed", first)
	}
	// Grace period: no stale history may trail in either.
	for {
		select {
		case ev := <-rc.Events():
			if ev.Seq <= 30 {
				t.Fatalf("history Seq %d delivered after live event %d", ev.Seq, first)
			}
		case <-time.After(200 * time.Millisecond):
			return
		}
	}
}

// TestResumeReplayLargerThanClientBuffer: a resume replay spanning an
// outage window larger than the Client's 1024-event buffer must arrive
// in full. The reconnect pump has to drain the replay while the
// resubscribe round trip is still in flight; without it the tail of the
// replay overflows client-side and the events are gone for good.
func TestResumeReplayLargerThanClientBuffer(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	boot := func(ln net.Listener) (*Server, *broker.Broker, *wal.Log) {
		log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		b := broker.New(broker.Options{Log: log})
		s := NewServer(b)
		go func() { _ = s.Serve(ln) }()
		return s, b, log
	}
	s1, b1, log1 := boot(ln)

	rc, err := DialReconnecting(addr, ReconnectOptions{
		// The first redial lands comfortably after the post-restart
		// publishes below, so the resume replay streams while this test
		// is already draining Events().
		InitialBackoff: 150 * time.Millisecond,
		MaxBackoff:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.SubscribeFrom(1, geometry.NewRect(0, 1000)); err != nil {
		t.Fatal(err)
	}

	pub := func(b *broker.Broker, from, to int) {
		t.Helper()
		for i := from; i <= to; i++ {
			if _, err := b.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
		}
	}
	seen := make(map[uint64]bool)
	last := uint64(0)
	recv := func(n int) {
		t.Helper()
		timeout := time.After(30 * time.Second)
		for len(seen) < n {
			select {
			case ev := <-rc.Events():
				if seen[ev.Seq] {
					t.Fatalf("Seq %d delivered twice", ev.Seq)
				}
				if ev.Seq <= last {
					t.Fatalf("Seq %d after %d: out of order", ev.Seq, last)
				}
				seen[ev.Seq] = true
				last = ev.Seq
			case <-timeout:
				t.Fatalf("saw %d of %d events (last %d)", len(seen), n, last)
			}
		}
	}
	pub(b1, 1, 20)
	recv(20) // high-water mark is now 20

	// Kill, restart over the same log, and publish an outage window
	// half again larger than the Client's event buffer.
	s1.Close()
	b1.Close()
	log1.Close()
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2, b2, log2 := boot(ln2)
	defer func() {
		s2.Close()
		b2.Close()
		log2.Close()
	}()
	pub(b2, 21, 1620)
	recv(1620)
}

// TestInitialSubscribeFromLargeHistory: the very first SubscribeFrom
// against durable history larger than the Client's event buffer must
// deliver it all. This exercises the app-initiated subscribe path (not
// resubscribe): the pump backlogs the replay during the round trip, and
// if the buffer overflowed anyway the connection is retired so the
// redial loop fetches the rest — the application just sees a complete,
// in-order stream.
func TestInitialSubscribeFromLargeHistory(t *testing.T) {
	b, addr := startDurableBroker(t)
	for i := 1; i <= 1600; i++ {
		if _, err := b.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	rc, err := DialReconnecting(addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.SubscribeFrom(1, geometry.NewRect(0, 1000)); err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]bool)
	last := uint64(0)
	timeout := time.After(30 * time.Second)
	for len(seen) < 1600 {
		select {
		case ev := <-rc.Events():
			if seen[ev.Seq] {
				t.Fatalf("Seq %d delivered twice", ev.Seq)
			}
			if ev.Seq <= last {
				t.Fatalf("Seq %d after %d: out of order", ev.Seq, last)
			}
			seen[ev.Seq] = true
			last = ev.Seq
		case <-timeout:
			t.Fatalf("saw %d of 1600 events (last %d)", len(seen), last)
		}
	}
}
