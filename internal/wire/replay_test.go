package wire

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/wal"
)

// startDurableServer runs a broker backed by a fresh WAL plus a server
// on a loopback listener.
func startDurableServer(t *testing.T) (*Server, string) {
	t.Helper()
	log, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(broker.Options{Log: log})
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		b.Close()
		log.Close()
	})
	return s, ln.Addr().String()
}

func publishN(t *testing.T, cli *Client, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if _, err := cli.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
}

// TestClientReplay: a replay-only subscribe returns the full durable
// history in offset order, and the OK's Delivered matches.
func TestClientReplay(t *testing.T) {
	_, addr := startDurableServer(t)
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishN(t, pub, 1, 20)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	evs, err := cli.Replay(0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(evs) != 20 {
		t.Fatalf("replayed %d events, want 20", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if want := fmt.Sprintf("e%d", i+1); string(ev.Payload) != want {
			t.Fatalf("event %d payload %q, want %q", i, ev.Payload, want)
		}
	}
	// A mid-log start.
	evs, err = cli.Replay(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 || evs[0].Seq != 15 {
		t.Fatalf("Replay(15): %d events starting at %d", len(evs), evs[0].Seq)
	}
}

// TestReplayOnNonDurableServer: from_offset against a log-less server is
// a protocol error, not a hang or a silent live subscribe.
func TestReplayOnNonDurableServer(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Replay(0); err == nil {
		t.Fatal("Replay succeeded against a server with no log")
	}
	if _, err := cli.SubscribeFrom(1, geometry.NewRect(0, 10)); err == nil {
		t.Fatal("SubscribeFrom succeeded against a server with no log")
	}
	// A plain subscribe still works on the same connection.
	if _, err := cli.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatalf("plain Subscribe after failed replay: %v", err)
	}
}

// TestSubscribeFromBridgesReplayToLive: history arrives first, then live
// events, seamlessly ordered with no duplicate or gap at the boundary.
func TestSubscribeFromBridgesReplayToLive(t *testing.T) {
	_, addr := startDurableServer(t)
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishN(t, pub, 1, 10)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.SubscribeFrom(1, geometry.NewRect(0, 100)); err != nil {
		t.Fatal(err)
	}
	publishN(t, pub, 11, 20)

	seen := make(map[uint64]bool)
	last := uint64(0)
	timeout := time.After(5 * time.Second)
	for len(seen) < 20 {
		select {
		case ev := <-cli.Events():
			if seen[ev.Seq] {
				t.Fatalf("Seq %d delivered twice", ev.Seq)
			}
			if ev.Seq <= last {
				t.Fatalf("Seq %d after %d: out of order", ev.Seq, last)
			}
			seen[ev.Seq] = true
			last = ev.Seq
		case <-timeout:
			t.Fatalf("saw %d of 20 events", len(seen))
		}
	}
}

// TestSubscribeFromFiltersReplayByRect: replayed history is filtered by
// the subscription's rectangles just like live fanout.
func TestSubscribeFromFiltersReplayByRect(t *testing.T) {
	_, addr := startDurableServer(t)
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Points 1..10: only 4..6 fall in (3, 6].
	publishN(t, pub, 1, 10)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.SubscribeFrom(1, geometry.NewRect(3, 6)); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	timeout := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-cli.Events():
			if p := ev.Point[0]; p <= 3 || p > 6 {
				t.Fatalf("replayed point %v outside the subscription rect", ev.Point)
			}
			got = append(got, ev.Seq)
		case <-timeout:
			t.Fatalf("saw %d of 3 filtered events: %v", len(got), got)
		}
	}
}

// TestReconnectingClientResume is the kill-and-restart satellite: a
// resuming subscriber must see every durable event exactly once, in
// order, across a full server restart — without relying on Dropped().
func TestReconnectingClientResume(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	boot := func(ln net.Listener) (*Server, *broker.Broker, *wal.Log) {
		log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		b := broker.New(broker.Options{Log: log})
		s := NewServer(b)
		go func() { _ = s.Serve(ln) }()
		return s, b, log
	}
	s1, b1, log1 := boot(ln)

	rc, err := DialReconnecting(addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.SubscribeFrom(1, geometry.NewRect(0, 1000)); err != nil {
		t.Fatal(err)
	}

	pub := func(b *broker.Broker, from, to int) {
		t.Helper()
		for i := from; i <= to; i++ {
			if _, err := b.Publish(geometry.Point{float64(i%10 + 1)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
		}
	}
	pub(b1, 1, 30)

	// Kill the server mid-stream (hard close: buffered events may die
	// with the connections — the log is the source of truth).
	s1.Close()
	b1.Close()
	log1.Close()

	// Restart on the same address over the same data directory. The
	// rebind can briefly race the dying listener.
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2, b2, log2 := boot(ln2)
	defer func() {
		s2.Close()
		b2.Close()
		log2.Close()
	}()
	pub(b2, 31, 60)

	// Every durable event 1..60 exactly once, in order, across the kill.
	seen := make(map[uint64]bool)
	last := uint64(0)
	timeout := time.After(15 * time.Second)
	for len(seen) < 60 {
		select {
		case ev := <-rc.Events():
			if seen[ev.Seq] {
				t.Fatalf("Seq %d delivered twice", ev.Seq)
			}
			if ev.Seq <= last {
				t.Fatalf("Seq %d after %d: out of order", ev.Seq, last)
			}
			if want := fmt.Sprintf("e%d", ev.Seq); string(ev.Payload) != want {
				t.Fatalf("Seq %d payload %q, want %q", ev.Seq, ev.Payload, want)
			}
			seen[ev.Seq] = true
			last = ev.Seq
		case <-timeout:
			t.Fatalf("saw %d of 60 events (last %d)", len(seen), last)
		}
	}
}
