package wire

import (
	"bytes"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
)

func TestRectWireRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		r    geometry.Rect
	}{
		{name: "bounded", r: geometry.NewRect(0, 1, -5, 5)},
		{name: "right-unbounded", r: geometry.Rect{geometry.AtLeast(999), {Lo: 0, Hi: 1}}},
		{name: "left-unbounded", r: geometry.Rect{geometry.AtMost(3)}},
		{name: "full", r: geometry.FullRect(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := WireToRect(RectToWire(tt.r))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(tt.r) {
				t.Errorf("round trip = %v, want %v", got, tt.r)
			}
		})
	}
}

func TestWireToRectValidation(t *testing.T) {
	if _, err := WireToRect(nil); err == nil {
		t.Error("empty rect accepted")
	}
	five := 5.0
	if _, err := WireToRect(Rect{{Lo: &five, Hi: &five}}); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{Type: TypePublish, Point: []float64{1, 2, 3}, Payload: []byte("x")}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypePublish || len(out.Point) != 3 || string(out.Payload) != "x" {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadMessageRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("huge frame accepted")
	}
}

func TestReadMessageRejectsBadJSON(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("{{{")
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("bad JSON accepted")
	}
}

// startServer runs a broker+server on a loopback listener.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	b := broker.New(broker.Options{})
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	return s, ln.Addr().String()
}

func TestEndToEndPubSub(t *testing.T) {
	_, addr := startServer(t)

	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subCli.Close()
	pubCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pubCli.Close()

	subID, err := subCli.Subscribe(geometry.NewRect(0, 10, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if subID < 0 {
		t.Fatalf("subID = %d", subID)
	}

	n, err := pubCli.Publish(geometry.Point{5, 5}, []byte("tick"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered = %d, want 1", n)
	}
	select {
	case ev := <-subCli.Events():
		if string(ev.Payload) != "tick" || ev.Point[0] != 5 {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event within deadline")
	}

	// Non-matching publish delivers to nobody.
	n, err = pubCli.Publish(geometry.Point{50, 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("delivered = %d, want 0", n)
	}
}

func TestEndToEndUnboundedSubscription(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// volume >= 1000 with no upper bound, as in the paper's example.
	if _, err := cli.Subscribe(geometry.Rect{geometry.AtLeast(999)}); err != nil {
		t.Fatal(err)
	}
	n, err := cli.Publish(geometry.Point{math.MaxFloat64 / 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("delivered = %d, want 1", n)
	}
}

func TestServerRejectsBadMessages(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Unknown type gets an error reply.
	if err := WriteMessage(conn, &Message{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError || !strings.Contains(reply.Error, "unknown") {
		t.Errorf("reply = %+v", reply)
	}

	// Publish without a point.
	if err := WriteMessage(conn, &Message{Type: TypePublish}); err != nil {
		t.Fatal(err)
	}
	reply, err = ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError {
		t.Errorf("reply = %+v", reply)
	}

	// Subscribe with a bad rectangle.
	five := 5.0
	bad := &Message{Type: TypeSubscribe, Rects: []Rect{{{Lo: &five, Hi: &five}}}}
	if err := WriteMessage(conn, bad); err != nil {
		t.Fatal(err)
	}
	reply, err = ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError {
		t.Errorf("reply = %+v", reply)
	}
}

func TestClientSubscribeValidation(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(); err == nil {
		t.Error("no-rectangle subscribe accepted client-side")
	}
}

func TestDisconnectCancelsSubscriptions(t *testing.T) {
	b := broker.New(broker.Options{})
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() { s.Close(); b.Close() }()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Subscribe(geometry.NewRect(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Subscriptions; got != 1 {
		t.Fatalf("subscriptions = %d", got)
	}
	cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Subscriptions != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not cancelled after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(geometry.NewRect(0, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	select {
	case _, open := <-cli.Events():
		if open {
			t.Error("expected closed event channel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event channel not closed after server shutdown")
	}
	if _, err := cli.Publish(geometry.Point{0.5}, nil); err == nil {
		t.Error("publish succeeded after server close")
	}
}

func TestManyClientsFanOut(t *testing.T) {
	_, addr := startServer(t)
	const clients = 8
	subs := make([]*Client, clients)
	for i := range subs {
		cli, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if _, err := cli.Subscribe(geometry.NewRect(0, 100)); err != nil {
			t.Fatal(err)
		}
		subs[i] = cli
	}
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	n, err := pub.Publish(geometry.Point{50}, []byte("fan"))
	if err != nil {
		t.Fatal(err)
	}
	if n != clients {
		t.Fatalf("delivered = %d, want %d", n, clients)
	}
	for i, cli := range subs {
		select {
		case ev := <-cli.Events():
			if string(ev.Payload) != "fan" {
				t.Errorf("client %d payload %q", i, ev.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("client %d got no event", i)
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	id, err := cli.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := pub.Publish(geometry.Point{5}, nil); n != 1 {
		t.Fatalf("delivered %d before unsubscribe", n)
	}
	if err := cli.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if n, _ := pub.Publish(geometry.Point{5}, nil); n != 0 {
		t.Fatalf("delivered %d after unsubscribe", n)
	}
	// Double unsubscribe is a protocol error, not a connection failure.
	if err := cli.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe succeeded")
	}
	// The connection is still usable afterwards.
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after protocol error: %v", err)
	}
}

func TestUnsubscribeForeignIDRejected(t *testing.T) {
	_, addr := startServer(t)
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	id, err := a.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	// b cannot cancel a's subscription.
	if err := b.Unsubscribe(id); err == nil {
		t.Error("foreign unsubscribe succeeded")
	}
	// a's subscription still works.
	if n, _ := b.Publish(geometry.Point{5}, nil); n != 1 {
		t.Error("subscription lost after foreign unsubscribe attempt")
	}
}

func TestPing(t *testing.T) {
	s, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if err := cli.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := cli.Ping(); err == nil {
		t.Error("ping succeeded after server close")
	}
}

func TestTruncatedFrameDisconnects(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising more bytes than sent: the server must
	// simply wait; closing mid-frame must disconnect cleanly without
	// wedging the server.
	if _, err := conn.Write([]byte{0, 0, 0, 100, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Server still serves other clients.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("server wedged after truncated frame: %v", err)
	}
}

func TestClientDroppedCounter(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Dropped() != 0 {
		t.Errorf("fresh client dropped = %d", cli.Dropped())
	}
}
