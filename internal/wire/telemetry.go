package wire

import (
	"net"

	"repro/internal/telemetry"
)

// wireTel bundles the server's metric handles. A nil *wireTel disables
// instrumentation: the handle methods and the nil-safe collectors make
// every record site a single nil check.
type wireTel struct {
	activeConns     *telemetry.Gauge
	connsTotal      *telemetry.Counter
	bytesIn         *telemetry.Counter
	bytesOut        *telemetry.Counter
	framesIn        *telemetry.Counter
	framesOut       *telemetry.Counter
	writeLatency    *telemetry.Histogram
	keepaliveMisses *telemetry.Counter
	// stageWrite is the waterfall's subscriber-socket-write stage
	// (shared pubsub_stage_seconds family; the broker registers the
	// upstream stages). Event frames only, with the frame's trace id
	// as the bucket exemplar.
	stageWrite *telemetry.Histogram
}

func newWireTel(reg *telemetry.Registry) *wireTel {
	if reg == nil {
		return nil
	}
	return &wireTel{
		activeConns: reg.Gauge("pubsub_wire_active_connections",
			"Currently open server connections."),
		connsTotal: reg.Counter("pubsub_wire_connections_total",
			"Connections accepted since start."),
		bytesIn: reg.Counter("pubsub_wire_bytes_read_total",
			"Bytes read from peers."),
		bytesOut: reg.Counter("pubsub_wire_bytes_written_total",
			"Bytes written to peers."),
		framesIn: reg.Counter("pubsub_wire_frames_read_total",
			"Frames read from peers."),
		framesOut: reg.Counter("pubsub_wire_frames_written_total",
			"Frames written to peers."),
		writeLatency: reg.Histogram("pubsub_wire_write_seconds",
			"Frame write latency, including any deadline wait.", telemetry.LatencyBuckets()),
		keepaliveMisses: reg.Counter("pubsub_wire_keepalive_misses_total",
			"Connections evicted because the peer sent nothing within the idle timeout."),
		stageWrite: telemetry.StageHistogram(reg, telemetry.StageWrite),
	}
}

// countingConn wraps a net.Conn, accumulating byte counts into the
// shared registry counters. It is installed only when metrics are
// enabled, so uninstrumented servers keep the bare conn.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}
