package wire

import (
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/telemetry"
)

func gaugeValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name == name && len(f.Samples) > 0 {
			return f.Samples[0].Value
		}
	}
	t.Fatalf("gauge %s not registered", name)
	return 0
}

func TestServerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := broker.New(broker.Options{Metrics: reg})
	s := NewServerWith(b, ServerOptions{Metrics: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		b.Close()
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Publish(geometry.Point{5}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Wait for the event pump to write the event frame.
	select {
	case <-cli.Events():
	case <-time.After(2 * time.Second):
		t.Fatal("no event within deadline")
	}

	if got := reg.CounterValue("pubsub_wire_connections_total"); got != 1 {
		t.Errorf("connections total = %g, want 1", got)
	}
	if got := gaugeValue(t, reg, "pubsub_wire_active_connections"); got != 1 {
		t.Errorf("active connections = %g, want 1", got)
	}
	if got := reg.CounterValue("pubsub_wire_bytes_read_total"); got == 0 {
		t.Error("no bytes counted in")
	}
	if got := reg.CounterValue("pubsub_wire_bytes_written_total"); got == 0 {
		t.Error("no bytes counted out")
	}
	// Two requests (subscribe, publish) read; at least two OK replies
	// plus the event frame written.
	if got := reg.CounterValue("pubsub_wire_frames_read_total"); got != 2 {
		t.Errorf("frames read = %g, want 2", got)
	}
	if got := reg.CounterValue("pubsub_wire_frames_written_total"); got < 3 {
		t.Errorf("frames written = %g, want >= 3", got)
	}
	if h := reg.Histogram1("pubsub_wire_write_seconds"); h.Count < 3 {
		t.Errorf("write latency count = %d, want >= 3", h.Count)
	}

	// Disconnect: the active-connection gauge returns to zero.
	_ = cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for gaugeValue(t, reg, "pubsub_wire_active_connections") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("active connections never returned to 0")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerKeepaliveMissMetric(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := broker.New(broker.Options{})
	// Idle timeout with pings disabled: a silent peer expires and counts
	// as a keepalive miss.
	s := NewServerWith(b, ServerOptions{IdleTimeout: 60 * time.Millisecond, PingInterval: -1, Metrics: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		b.Close()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for reg.CounterValue("pubsub_wire_keepalive_misses_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("keepalive miss never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReconnectMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := broker.New(broker.Options{})
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = s.Serve(ln) }()

	rc, err := DialReconnecting(addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}

	// Kill the server, then bring a new one up on the same address.
	s.Close()
	b.Close()
	var ln2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	b2 := broker.New(broker.Options{})
	s2 := NewServer(b2)
	go func() { _ = s2.Serve(ln2) }()
	defer func() {
		s2.Close()
		b2.Close()
	}()

	deadline = time.Now().Add(5 * time.Second)
	for reg.CounterValue("pubsub_wire_reconnects_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect counted (attempts=%g)",
				reg.CounterValue("pubsub_wire_reconnect_attempts_total"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reg.CounterValue("pubsub_wire_reconnect_attempts_total") == 0 {
		t.Error("reconnect succeeded without any attempt counted")
	}
}
