package wire

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkGoroutines waits for the goroutine count to settle back to the
// baseline (small tolerance for runtime helpers).
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			k := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", base, n, buf[:k])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func startHardenedServer(t *testing.T, opts ServerOptions) (*Server, *broker.Broker, string) {
	t.Helper()
	b := broker.New(broker.Options{})
	s := NewServerWith(b, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	return s, b, ln.Addr().String()
}

func TestShutdownDrainsBufferedEvents(t *testing.T) {
	s, _, addr := startHardenedServer(t, ServerOptions{WriteTimeout: 2 * time.Second})

	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, err := sub.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	const events = 50
	for i := 0; i < events; i++ {
		if n, err := pub.Publish(geometry.Point{5}, []byte{byte(i)}); err != nil || n != 1 {
			t.Fatalf("publish %d: n=%d err=%v", i, n, err)
		}
	}

	// Every published event is now buffered server-side. A graceful
	// shutdown must flush all of them to the subscriber before closing.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got := 0
	for range sub.Events() {
		got++
	}
	if got != events {
		t.Errorf("subscriber received %d of %d events across graceful drain", got, events)
	}
}

func TestShutdownDrainsWithKeepalivePeerStillConnected(t *testing.T) {
	// Regression: the keepalive pinger is one of the connection's pumps,
	// and the connection only closes after the pumps exit. A drain that
	// does not stop the pinger therefore deadlocks until the context
	// expires whenever a pinging peer is still connected.
	s, _, addr := startHardenedServer(t, ServerOptions{IdleTimeout: time.Second})

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with connected peer: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("drain of an idle peer took %v, should be nearly immediate", d)
	}
}

func TestShutdownIsIdempotentAndUnblocksServe(t *testing.T) {
	b := broker.New(broker.Options{})
	defer b.Close()
	s := NewServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	waitFor(t, "server accepting", 2*time.Second, func() bool {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	s.Close() // Close after Shutdown is a no-op, not a panic
	select {
	case <-served:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

func TestShutdownContextExpiryHardCloses(t *testing.T) {
	s, _, addr := startHardenedServer(t, ServerOptions{}) // no write timeout: pump can wedge

	// A subscriber that never reads: its TCP buffers fill and the event
	// pump blocks mid-write forever.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if err := WriteMessage(stalled, &Message{Type: TypeSubscribe, Rects: []Rect{RectToWire(geometry.NewRect(0, 10))}}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(stalled); err != nil || m.Type != TypeOK {
		t.Fatalf("subscribe reply: %+v err=%v", m, err)
	}

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Enough backlog that the OS socket buffers cannot absorb it: the
	// pump must block mid-write.
	big := make([]byte, 512<<10)
	for i := 0; i < 40; i++ {
		if _, err := pub.Publish(geometry.Point{5}, big); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("shutdown did not hard-close promptly after ctx expiry")
	}
}

func TestWriteDeadlineEvictsStalledPeer(t *testing.T) {
	_, b, addr := startHardenedServer(t, ServerOptions{WriteTimeout: 150 * time.Millisecond})

	// Subscribe from a raw connection and then stop reading entirely.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if err := WriteMessage(stalled, &Message{Type: TypeSubscribe, Rects: []Rect{RectToWire(geometry.NewRect(0, 10))}}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(stalled); err != nil || m.Type != TypeOK {
		t.Fatalf("subscribe reply: %+v err=%v", m, err)
	}
	if got := b.Stats().Subscriptions; got != 1 {
		t.Fatalf("subscriptions = %d", got)
	}

	// Flood with large events until the peer's TCP buffers fill, the
	// pump's write blocks, and the write deadline evicts the connection.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	big := make([]byte, 256<<10)
	deadline := time.Now().Add(10 * time.Second)
	for b.Stats().Subscriptions != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled peer never evicted by write deadline")
		}
		if _, err := pub.Publish(geometry.Point{5}, big); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}

	// The healthy publisher connection is unaffected by the eviction.
	if err := pub.Ping(); err != nil {
		t.Errorf("publisher broken after peer eviction: %v", err)
	}
}

func TestIdleTimeoutEvictsSilentConn(t *testing.T) {
	_, b, addr := startHardenedServer(t, ServerOptions{IdleTimeout: 150 * time.Millisecond})

	// A raw connection that subscribes and then goes completely silent —
	// it does not even answer the server's keepalive pings, like a
	// half-open TCP connection whose peer died.
	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if err := WriteMessage(silent, &Message{Type: TypeSubscribe, Rects: []Rect{RectToWire(geometry.NewRect(0, 10))}}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(silent); err != nil || m.Type != TypeOK {
		t.Fatalf("subscribe reply: %+v err=%v", m, err)
	}
	waitFor(t, "silent peer eviction", 5*time.Second, func() bool {
		return b.Stats().Subscriptions == 0
	})
}

func TestPingKeepsIdleClientAlive(t *testing.T) {
	_, b, addr := startHardenedServer(t, ServerOptions{IdleTimeout: 150 * time.Millisecond})

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	// The client sends nothing on its own, but answers server pings with
	// pongs; several idle periods later it must still be registered.
	time.Sleep(600 * time.Millisecond)
	if got := b.Stats().Subscriptions; got != 1 {
		t.Fatalf("idle but live client evicted (subscriptions = %d)", got)
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after idle period: %v", err)
	}
}

func TestServerIgnoresUnsolicitedPong(t *testing.T) {
	_, _, addr := startHardenedServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Message{Type: TypePong}); err != nil {
		t.Fatal(err)
	}
	// The pong must not produce an error reply; the next ping's OK is
	// the first frame back.
	if err := WriteMessage(conn, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeOK {
		t.Errorf("reply = %+v, want ok", m)
	}
}

func TestNoGoroutineLeaksAcrossLifecycles(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		b := broker.New(broker.Options{})
		s := NewServerWith(b, ServerOptions{
			WriteTimeout: time.Second,
			IdleTimeout:  time.Second,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = s.Serve(ln) }()
		addr := ln.Addr().String()

		rc, err := DialReconnecting(addr, ReconnectOptions{InitialBackoff: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Subscribe(geometry.NewRect(0, 10)); err != nil {
			t.Fatal(err)
		}
		cli, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Publish(geometry.Point{5}, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := rc.Close(); err != nil {
			t.Fatal(err)
		}
		cli.Close()
		if i%2 == 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := s.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			cancel()
		} else {
			s.Close()
		}
		b.Close()
	}
	checkGoroutines(t, base)
}
