// Package wire implements a small TCP protocol exposing the broker over
// the network, plus the matching client. Frames are 4-byte big-endian
// length prefixes followed by a JSON message body.
//
// The protocol is strictly request/response from the client's point of
// view — subscribe and publish each receive exactly one ok/error reply,
// in order — while event deliveries are pushed asynchronously by the
// server and never acknowledged.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/geometry"
)

// MaxFrame bounds a single frame's body size to keep a malicious or
// buggy peer from exhausting memory.
const MaxFrame = 1 << 20

// Type discriminates protocol messages.
type Type string

// Protocol message types.
const (
	TypeSubscribe   Type = "subscribe"   // client -> server
	TypeUnsubscribe Type = "unsubscribe" // client -> server
	TypePublish     Type = "publish"     // client -> server
	TypePing        Type = "ping"        // either direction (keepalive probe)
	TypePong        Type = "pong"        // client -> server (keepalive answer, unsolicited)
	TypeEvent       Type = "event"       // server -> client (async)
	TypeOK          Type = "ok"          // server -> client (reply)
	TypeError       Type = "error"       // server -> client (reply)
)

// Interval is the wire form of a half-open interval. Nil bounds encode
// the infinities, which JSON numbers cannot represent.
type Interval struct {
	Lo *float64 `json:"lo"`
	Hi *float64 `json:"hi"`
}

// Rect is the wire form of a subscription rectangle.
type Rect []Interval

// RectToWire converts a geometry rectangle to its wire form.
func RectToWire(r geometry.Rect) Rect {
	out := make(Rect, len(r))
	for i, iv := range r {
		w := Interval{}
		if !math.IsInf(iv.Lo, -1) {
			lo := iv.Lo
			w.Lo = &lo
		}
		if !math.IsInf(iv.Hi, 1) {
			hi := iv.Hi
			w.Hi = &hi
		}
		out[i] = w
	}
	return out
}

// WireToRect converts a wire rectangle back to geometry form.
func WireToRect(w Rect) (geometry.Rect, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("wire: empty rectangle")
	}
	r := make(geometry.Rect, len(w))
	for i, iv := range w {
		lo, hi := math.Inf(-1), math.Inf(1)
		if iv.Lo != nil {
			lo = *iv.Lo
		}
		if iv.Hi != nil {
			hi = *iv.Hi
		}
		r[i] = geometry.NewInterval(lo, hi)
		if r[i].Empty() {
			return nil, fmt.Errorf("wire: dimension %d is empty: (%v, %v]", i, lo, hi)
		}
	}
	return r, nil
}

// Message is one protocol frame body. Only the fields relevant to the
// type are populated.
type Message struct {
	Type Type `json:"type"`

	// Subscribe fields.
	Rects  []Rect `json:"rects,omitempty"`
	Buffer int    `json:"buffer,omitempty"`
	// FromOffset, when nonzero, asks a durability-enabled server to
	// stream the publication log from that offset (clamped to the oldest
	// retained record) before the subscription goes live; with no rects
	// it requests a pure log replay and no live subscription. Optional
	// like TraceID: zero is omitted from the frame, so a client that
	// never sets it produces byte-identical frames to a pre-offset
	// client, and an old server ignores the unknown key (the replayed
	// history is simply not sent).
	FromOffset uint64 `json:"from_offset,omitempty"`

	// Publish / Event fields.
	Point   []float64 `json:"point,omitempty"`
	Payload []byte    `json:"payload,omitempty"`
	Seq     uint64    `json:"seq,omitempty"`
	// TraceID correlates a publication across processes. Optional: a
	// zero id is omitted from the frame, an old peer that does not know
	// the field ignores it (encoding/json skips unknown keys), and a new
	// server assigns a fresh id when a publish arrives without one. On
	// publish frames it is the client-assigned id; on the matching OK
	// reply the server echoes the id it used; on event frames it is the
	// originating publication's id.
	TraceID uint64 `json:"trace_id,omitempty"`

	// OK fields.
	SubID     int `json:"sub_id,omitempty"`
	Delivered int `json:"delivered,omitempty"`

	// Error field.
	Error string `json:"error,omitempty"`
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encoding message: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: message of %d bytes exceeds frame limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("wire: decoding message: %w", err)
	}
	return &m, nil
}
