package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/broker"
	"repro/internal/geometry"
)

// Server exposes a broker over TCP. Create one with NewServer, then call
// Serve with a listener; Close shuts everything down.
type Server struct {
	b *broker.Broker

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps the broker.
func NewServer(b *broker.Broker) *Server {
	return &Server{b: b, conns: make(map[net.Conn]struct{})}
}

// Serve accepts and handles connections until the listener is closed. It
// always returns a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and tears down every connection. Safe to call
// more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// connState tracks one connection's subscriptions and serialises writes.
type connState struct {
	conn    net.Conn
	writeMu sync.Mutex
	subsMu  sync.Mutex
	subs    map[int]*broker.Subscription
	done    chan struct{}
}

func (cs *connState) addSub(sub *broker.Subscription) {
	cs.subsMu.Lock()
	defer cs.subsMu.Unlock()
	cs.subs[sub.ID()] = sub
}

func (cs *connState) takeSub(id int) *broker.Subscription {
	cs.subsMu.Lock()
	defer cs.subsMu.Unlock()
	sub := cs.subs[id]
	delete(cs.subs, id)
	return sub
}

func (cs *connState) drainSubs() []*broker.Subscription {
	cs.subsMu.Lock()
	defer cs.subsMu.Unlock()
	out := make([]*broker.Subscription, 0, len(cs.subs))
	for id, sub := range cs.subs {
		out = append(out, sub)
		delete(cs.subs, id)
	}
	return out
}

func (cs *connState) write(m *Message) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return WriteMessage(cs.conn, m)
}

func (s *Server) handle(conn net.Conn) {
	cs := &connState{conn: conn, subs: make(map[int]*broker.Subscription), done: make(chan struct{})}
	defer func() {
		close(cs.done)
		for _, sub := range cs.drainSubs() {
			sub.Cancel()
		}
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return // disconnect (clean EOF or otherwise)
		}
		switch m.Type {
		case TypeSubscribe:
			err = s.handleSubscribe(cs, m)
		case TypeUnsubscribe:
			err = s.handleUnsubscribe(cs, m)
		case TypePublish:
			err = s.handlePublish(cs, m)
		case TypePing:
			err = cs.write(&Message{Type: TypeOK})
		default:
			err = cs.write(&Message{Type: TypeError, Error: fmt.Sprintf("unknown message type %q", m.Type)})
		}
		if err != nil {
			return
		}
	}
}

// handleSubscribe registers the subscription and starts its event pump.
// The returned error is a connection-level failure; protocol errors are
// reported to the peer instead.
func (s *Server) handleSubscribe(cs *connState, m *Message) error {
	rects := make([]geometry.Rect, 0, len(m.Rects))
	for _, w := range m.Rects {
		r, err := WireToRect(w)
		if err != nil {
			return cs.write(&Message{Type: TypeError, Error: err.Error()})
		}
		rects = append(rects, r)
	}
	buffer := m.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	sub, err := s.b.SubscribeBuffered(buffer, rects...)
	if err != nil {
		return cs.write(&Message{Type: TypeError, Error: err.Error()})
	}
	cs.addSub(sub)

	// Pump events to the connection until the subscription or the
	// connection dies.
	go func() {
		for {
			select {
			case ev, open := <-sub.Events():
				if !open {
					return
				}
				msg := &Message{
					Type:    TypeEvent,
					Point:   ev.Point,
					Payload: ev.Payload,
					Seq:     ev.Seq,
					SubID:   sub.ID(),
				}
				if err := cs.write(msg); err != nil {
					sub.Cancel()
					return
				}
			case <-cs.done:
				return
			}
		}
	}()
	return cs.write(&Message{Type: TypeOK, SubID: sub.ID()})
}

// handleUnsubscribe cancels one of this connection's subscriptions.
func (s *Server) handleUnsubscribe(cs *connState, m *Message) error {
	sub := cs.takeSub(m.SubID)
	if sub == nil {
		return cs.write(&Message{Type: TypeError, Error: fmt.Sprintf("no subscription %d on this connection", m.SubID)})
	}
	sub.Cancel()
	return cs.write(&Message{Type: TypeOK, SubID: m.SubID})
}

func (s *Server) handlePublish(cs *connState, m *Message) error {
	if len(m.Point) == 0 {
		return cs.write(&Message{Type: TypeError, Error: "publish needs a point"})
	}
	n, err := s.b.Publish(geometry.Point(m.Point), m.Payload)
	if err != nil {
		return cs.write(&Message{Type: TypeError, Error: err.Error()})
	}
	return cs.write(&Message{Type: TypeOK, Delivered: n})
}

// ErrServerClosed is returned by helpers when the server has shut down.
var ErrServerClosed = errors.New("wire: server closed")
