package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/health"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// ServerOptions harden a server against slow, stalled or half-open
// peers. The zero value disables every deadline, matching the behavior
// of a bare NewServer.
type ServerOptions struct {
	// WriteTimeout bounds each frame write. A connection whose peer
	// cannot absorb a frame within it is evicted, so one stalled reader
	// cannot wedge its event pump forever. Zero disables.
	WriteTimeout time.Duration
	// IdleTimeout evicts connections that send nothing for this long.
	// The server pings idle peers (see PingInterval); a live client
	// answers with a pong, so only dead or partitioned peers expire.
	// Zero disables.
	IdleTimeout time.Duration
	// PingInterval is how often the server pings each connection to
	// solicit the pong that keeps IdleTimeout from firing. Zero selects
	// IdleTimeout/3 when IdleTimeout is set, otherwise pings are off.
	PingInterval time.Duration
	// Metrics, when non-nil, receives the server's connection, byte and
	// frame-latency families. Nil disables metrics.
	Metrics *telemetry.Registry
	// Recorder receives flight-recorder records for publish ingest and
	// keepalive misses. Nil selects the process-wide telemetry.Default()
	// recorder.
	Recorder *telemetry.Recorder
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.PingInterval == 0 && o.IdleTimeout > 0 {
		o.PingInterval = o.IdleTimeout / 3
	}
	if o.Recorder == nil {
		o.Recorder = telemetry.Default()
	}
	return o
}

// connIDs numbers server connections for flight-recorder records.
var connIDs atomic.Int64

// Server exposes a broker over TCP. Create one with NewServer (or
// NewServerWith for hardened deadlines), then call Serve with a
// listener; Close tears everything down immediately, Shutdown drains
// gracefully first.
type Server struct {
	b    *broker.Broker
	opts ServerOptions
	tel  *wireTel

	// keepMisses mirrors the keepalive-miss metric independently of
	// whether metrics are enabled, so RegisterHealth's rate check works
	// on bare servers too.
	keepMisses atomic.Uint64

	mu        sync.Mutex
	ln        net.Listener
	conns     map[*connState]struct{}
	closed    bool
	acceptErr error // accept-loop failure while the server was still open
	wg        sync.WaitGroup
}

// NewServer wraps the broker with no deadlines (the zero ServerOptions).
func NewServer(b *broker.Broker) *Server {
	return NewServerWith(b, ServerOptions{})
}

// NewServerWith wraps the broker with explicit hardening options.
func NewServerWith(b *broker.Broker, opts ServerOptions) *Server {
	opts = opts.withDefaults()
	s := &Server{b: b, opts: opts, tel: newWireTel(opts.Metrics), conns: make(map[*connState]struct{})}
	if opts.Metrics != nil {
		opts.Metrics.GaugeFunc("pubsub_wire_max_conn_lag_events",
			"Largest per-connection lag behind the broker head, in events. Counts every publication since the connection's last delivered frame (resume depth), not missed matches.",
			func() float64 {
				var maxLag uint64
				for _, cl := range s.ConnLags() {
					if cl.LagEvents > maxLag {
						maxLag = cl.LagEvents
					}
				}
				return float64(maxLag)
			})
	}
	return s
}

// Serve accepts and handles connections until the listener is closed. It
// always returns a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			if !s.closed {
				// The listener died under us: the server looks alive but
				// accepts nothing. Latch the error for the health check.
				s.acceptErr = err
			}
			s.mu.Unlock()
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		if s.tel != nil {
			conn = &countingConn{Conn: conn, in: s.tel.bytesIn, out: s.tel.bytesOut}
			s.tel.connsTotal.Inc()
			s.tel.activeConns.Add(1)
		}
		cs := newConnState(conn, s.opts)
		cs.tel = s.tel
		// A fresh connection starts at zero lag against the current head,
		// exactly like a fresh subscription.
		cs.lastSeq.Store(s.b.Head())
		s.conns[cs] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(cs)
		}()
	}
}

// Close stops the listener and tears down every connection immediately,
// discarding any events still buffered in pumps. Safe to call more than
// once. Use Shutdown to drain first.
func (s *Server) Close() {
	ln, conns := s.markClosed()
	if ln != nil {
		_ = ln.Close()
	}
	for _, cs := range conns {
		_ = cs.conn.Close()
	}
	s.wg.Wait()
}

// Shutdown gracefully drains the server: it stops accepting, cancels
// every subscription so their event pumps flush all buffered events to
// the peers, then closes the connections. If ctx expires first the
// remaining connections are torn down hard and ctx.Err() is returned.
// Safe to call more than once and concurrently with Close.
func (s *Server) Shutdown(ctx context.Context) error {
	ln, conns := s.markClosed()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		var dwg sync.WaitGroup
		for _, cs := range conns {
			dwg.Add(1)
			go func(cs *connState) {
				defer dwg.Done()
				cs.drain()
			}(cs)
		}
		dwg.Wait()
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, cs := range conns {
			_ = cs.conn.Close()
		}
		s.wg.Wait()
		return ctx.Err()
	}
}

// markClosed flips the closed flag and returns the listener and live
// connections to tear down (nil/empty on repeat calls).
func (s *Server) markClosed() (net.Listener, []*connState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil
	}
	s.closed = true
	conns := make([]*connState, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	return s.ln, conns
}

// connState tracks one connection's subscriptions, serialises writes and
// owns the goroutines (event pumps, pinger) attached to the connection.
type connState struct {
	id      int64
	conn    net.Conn
	opts    ServerOptions
	tel     *wireTel
	lastSeq atomic.Uint64 // highest Seq written to the peer (see noteSent)
	writeMu sync.Mutex
	subsMu  sync.Mutex
	subs    map[int]*broker.Subscription
	done    chan struct{}

	pumpMu   sync.Mutex
	stopping bool
	draining chan struct{} // closed by drain; stops the pinger while the conn is still open
	pumps    sync.WaitGroup
}

// startPump registers one goroutine attached to the connection. It
// returns false once the connection is draining, so a drain's
// pumps.Wait never races a new Add.
func (cs *connState) startPump() bool {
	cs.pumpMu.Lock()
	defer cs.pumpMu.Unlock()
	if cs.stopping {
		return false
	}
	cs.pumps.Add(1)
	return true
}

func newConnState(conn net.Conn, opts ServerOptions) *connState {
	return &connState{
		id:       connIDs.Add(1),
		conn:     conn,
		opts:     opts,
		subs:     make(map[int]*broker.Subscription),
		done:     make(chan struct{}),
		draining: make(chan struct{}),
	}
}

// noteSent advances the connection's delivered high-water mark. Event
// pumps for different subscriptions and a concurrent replay all write
// frames, so the advance is a CAS-max: a replay streaming old offsets
// never regresses the mark.
func (cs *connState) noteSent(seq uint64) {
	for {
		cur := cs.lastSeq.Load()
		if seq <= cur || cs.lastSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

func (cs *connState) addSub(sub *broker.Subscription) {
	cs.subsMu.Lock()
	defer cs.subsMu.Unlock()
	cs.subs[sub.ID()] = sub
}

func (cs *connState) takeSub(id int) *broker.Subscription {
	cs.subsMu.Lock()
	defer cs.subsMu.Unlock()
	sub := cs.subs[id]
	delete(cs.subs, id)
	return sub
}

func (cs *connState) drainSubs() []*broker.Subscription {
	cs.subsMu.Lock()
	defer cs.subsMu.Unlock()
	out := make([]*broker.Subscription, 0, len(cs.subs))
	for id, sub := range cs.subs {
		out = append(out, sub)
		delete(cs.subs, id)
	}
	return out
}

// write sends one frame under the write deadline. A failed or timed-out
// write poisons the stream, so the connection is closed (evicted); the
// read loop observes the close and tears the connection down.
func (cs *connState) write(m *Message) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	if cs.opts.WriteTimeout > 0 {
		_ = cs.conn.SetWriteDeadline(time.Now().Add(cs.opts.WriteTimeout))
	}
	var t0 time.Time
	if cs.tel != nil {
		t0 = time.Now()
	}
	//pubsub:allow locksafe -- frame write under writeMu is bounded by WriteTimeout; it is the serialization point
	err := WriteMessage(cs.conn, m)
	if cs.tel != nil {
		d := time.Since(t0)
		cs.tel.writeLatency.ObserveDuration(d)
		if err == nil {
			cs.tel.framesOut.Inc()
			if m.Type == TypeEvent {
				cs.tel.stageWrite.ObserveExemplar(d.Seconds(), m.TraceID)
			}
		}
	}
	if err != nil {
		_ = cs.conn.Close()
	}
	return err
}

// drain cancels the connection's subscriptions — closing their channels,
// which lets each event pump flush the buffered backlog to the peer and
// exit — waits for the pumps, then closes the connection.
func (cs *connState) drain() {
	cs.pumpMu.Lock()
	if !cs.stopping {
		cs.stopping = true
		// The pinger must exit while the connection is still open — it is
		// one of the pumps we are about to wait for.
		close(cs.draining)
	}
	cs.pumpMu.Unlock()
	for _, sub := range cs.drainSubs() {
		sub.Cancel()
	}
	cs.pumps.Wait()
	_ = cs.conn.Close()
}

func (s *Server) handle(cs *connState) {
	if cs.opts.PingInterval > 0 && cs.startPump() {
		go func() {
			defer cs.pumps.Done()
			t := time.NewTicker(cs.opts.PingInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if cs.write(&Message{Type: TypePing}) != nil {
						return
					}
				case <-cs.draining:
					return
				case <-cs.done:
					return
				}
			}
		}()
	}
	defer func() {
		close(cs.done)
		for _, sub := range cs.drainSubs() {
			sub.Cancel()
		}
		_ = cs.conn.Close()
		cs.pumps.Wait()
		s.mu.Lock()
		delete(s.conns, cs)
		s.mu.Unlock()
		if s.tel != nil {
			s.tel.activeConns.Add(-1)
		}
	}()

	for {
		if cs.opts.IdleTimeout > 0 {
			_ = cs.conn.SetReadDeadline(time.Now().Add(cs.opts.IdleTimeout))
		}
		m, err := ReadMessage(cs.conn)
		if err != nil {
			// Disconnect: clean EOF, idle timeout or otherwise. A deadline
			// expiry means the peer missed every keepalive ping in the
			// idle window.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if cs.tel != nil {
					cs.tel.keepaliveMisses.Inc()
				}
				s.keepMisses.Add(1)
				cs.opts.Recorder.Record(telemetry.KindKeepaliveMiss, 0, 0, cs.id, 0, 0, 0)
			}
			return
		}
		if cs.tel != nil {
			cs.tel.framesIn.Inc()
		}
		switch m.Type {
		case TypeSubscribe:
			err = s.handleSubscribe(cs, m)
		case TypeUnsubscribe:
			err = s.handleUnsubscribe(cs, m)
		case TypePublish:
			err = s.handlePublish(cs, m)
		case TypePing:
			err = cs.write(&Message{Type: TypeOK})
		case TypePong:
			// Keepalive reply to our ping; reading it was the point.
		default:
			err = cs.write(&Message{Type: TypeError, Error: fmt.Sprintf("unknown message type %q", m.Type)})
		}
		if err != nil {
			return
		}
	}
}

// handleSubscribe registers the subscription, streams any requested log
// replay, and starts the live event pump. The returned error is a
// connection-level failure; protocol errors are reported to the peer
// instead.
func (s *Server) handleSubscribe(cs *connState, m *Message) error {
	rects := make([]geometry.Rect, 0, len(m.Rects))
	for _, w := range m.Rects {
		r, err := WireToRect(w)
		if err != nil {
			return cs.write(&Message{Type: TypeError, Error: err.Error()})
		}
		rects = append(rects, r)
	}
	if m.FromOffset > 0 && s.b.Log() == nil {
		return cs.write(&Message{Type: TypeError, Error: "server has no durable log: from_offset needs -data-dir"})
	}
	if len(rects) == 0 && m.FromOffset > 0 {
		// Pure replay: no live subscription. (Without from_offset an
		// empty subscribe still gets the broker's "needs at least one
		// rectangle" error below, exactly like a legacy server.)
		return s.handleReplayOnly(cs, m.FromOffset)
	}
	buffer := m.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	sub, err := s.b.SubscribeBuffered(buffer, rects...)
	if err != nil {
		return cs.write(&Message{Type: TypeError, Error: err.Error()})
	}
	cs.addSub(sub)
	if !cs.startPump() {
		// The connection began draining between our subscribe and here;
		// undo and let the read loop exit.
		if undo := cs.takeSub(sub.ID()); undo != nil {
			undo.Cancel()
		}
		return ErrServerClosed
	}

	// Start the pump immediately, before any replay. While the handler
	// streams history the pump stays in backlog mode: it drains the
	// subscription's bounded channel into a local slice instead of
	// writing frames, so live events published during a long replay are
	// never lost to buffer overflow — the backlog grows with the
	// publish rate times the replay duration instead of silently
	// dropping at a fixed depth. Once the replay finishes, ready
	// carries the replay's end offset; the pump flushes the backlog
	// from that offset (everything below it was just streamed) and goes
	// live. On a failed replay, abort tells it to exit without flushing
	// so backlog frames never interleave with the error reply.
	ready := make(chan uint64, 1)
	abort := make(chan struct{})
	go s.pumpSub(cs, sub, ready, abort)

	// The subscription is already registered, so the log's NextOffset
	// here splits history exactly: every offset below the reader's End
	// is streamed by the replay, every offset at or above it was
	// appended after registration and therefore matched the
	// subscription's snapshot — the pump delivers it.
	skipBelow := uint64(0)
	if m.FromOffset > 0 {
		r, err := s.b.Log().ReadFrom(m.FromOffset)
		if err != nil {
			close(abort)
			if undo := cs.takeSub(sub.ID()); undo != nil {
				undo.Cancel()
			}
			return cs.write(&Message{Type: TypeError, Error: err.Error()})
		}
		skipBelow = r.End()
		if _, err := s.streamReplay(cs, r, rects, sub.ID()); err != nil {
			close(abort)
			if undo := cs.takeSub(sub.ID()); undo != nil {
				undo.Cancel()
			}
			return err
		}
	}
	ready <- skipBelow
	return cs.write(&Message{Type: TypeOK, SubID: sub.ID()})
}

// pumpSub pumps one subscription's events to the connection until the
// subscription or the connection dies. It starts in backlog mode,
// buffering events locally while the handler streams a replay; ready
// (the replay's end offset) switches it live, abort makes it exit
// without writing a frame. When the subscription is cancelled (drain
// path) it still waits for the handler's verdict, then flushes —
// buffered events survive a graceful shutdown, and nothing it writes
// can interleave with the handler's replay frames.
func (s *Server) pumpSub(cs *connState, sub *broker.Subscription, ready <-chan uint64, abort <-chan struct{}) {
	defer cs.pumps.Done()
	writeEvent := func(ev broker.Event) bool {
		msg := &Message{
			Type:    TypeEvent,
			Point:   ev.Point,
			Payload: ev.Payload,
			Seq:     ev.Seq,
			TraceID: ev.TraceID,
			SubID:   sub.ID(),
		}
		if err := cs.write(msg); err != nil {
			sub.Cancel()
			return false
		}
		cs.noteSent(ev.Seq)
		return true
	}

	// Backlog mode: accumulate until the handler signals.
	var backlog []broker.Event
	var skipBelow uint64
	closed := false
accumulate:
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				closed = true
				// Wait for the handler so the flush below never races
				// its replay writes.
				select {
				case skipBelow = <-ready:
					break accumulate
				case <-abort:
					return
				case <-cs.done:
					return
				}
			}
			backlog = append(backlog, ev)
		case skipBelow = <-ready:
			break accumulate
		case <-abort:
			return
		case <-cs.done:
			return
		}
	}
	for _, ev := range backlog {
		if ev.Seq < skipBelow {
			// Already streamed by the replay.
			continue
		}
		if !writeEvent(ev) {
			return
		}
	}
	backlog = nil
	if closed {
		return
	}

	// Live mode.
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			if ev.Seq < skipBelow {
				continue
			}
			if !writeEvent(ev) {
				return
			}
		case <-cs.done:
			return
		}
	}
}

// streamReplay writes every log record in the reader's range that
// matches one of the rects (every record when rects is empty) as an
// event frame, returning how many were streamed. A read error
// mid-replay is reported to the peer; a write error is
// connection-fatal.
func (s *Server) streamReplay(cs *connState, r *wal.Reader, rects []geometry.Rect, subID int) (int, error) {
	count := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, cs.write(&Message{Type: TypeError, Error: fmt.Sprintf("replay: %v", err)})
		}
		if len(rects) > 0 {
			matched := false
			for _, rect := range rects {
				if rect.Contains(rec.Point) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
		}
		msg := &Message{
			Type:    TypeEvent,
			Point:   rec.Point,
			Payload: rec.Payload,
			Seq:     rec.Offset,
			TraceID: rec.TraceID,
			SubID:   subID,
		}
		if err := cs.write(msg); err != nil {
			return count, err
		}
		cs.noteSent(rec.Offset)
		count++
	}
}

// handleReplayOnly streams [from, NextOffset) unfiltered, then replies
// OK with Delivered set to the number of records streamed. The reply
// follows the events on the stream, so a client that reads its reply
// has already received every replayed frame.
func (s *Server) handleReplayOnly(cs *connState, from uint64) error {
	r, err := s.b.Log().ReadFrom(from)
	if err != nil {
		return cs.write(&Message{Type: TypeError, Error: err.Error()})
	}
	count, err := s.streamReplay(cs, r, nil, 0)
	if err != nil {
		return err
	}
	return cs.write(&Message{Type: TypeOK, Delivered: count})
}

// handleUnsubscribe cancels one of this connection's subscriptions.
func (s *Server) handleUnsubscribe(cs *connState, m *Message) error {
	sub := cs.takeSub(m.SubID)
	if sub == nil {
		return cs.write(&Message{Type: TypeError, Error: fmt.Sprintf("no subscription %d on this connection", m.SubID)})
	}
	sub.Cancel()
	return cs.write(&Message{Type: TypeOK, SubID: m.SubID})
}

func (s *Server) handlePublish(cs *connState, m *Message) error {
	if len(m.Point) == 0 {
		return cs.write(&Message{Type: TypeError, Error: "publish needs a point"})
	}
	// Bound dimensionality here, not just in the durable log: a 1 MiB
	// frame can carry ~130k dimensions, far past what wal.Append — and
	// any sane event space — accepts. Rejecting at ingest turns it into
	// a protocol error on every server, durable or not. (MaxFrame
	// already keeps the payload under the log's MaxBody.)
	if len(m.Point) > wal.MaxPointDims {
		return cs.write(&Message{Type: TypeError, TraceID: m.TraceID,
			Error: fmt.Sprintf("publish point has %d dimensions (max %d)", len(m.Point), wal.MaxPointDims)})
	}
	// Wire publications are always traced: keep the client's id, or
	// assign one at ingest for old clients that did not send the field.
	traceID := m.TraceID
	if traceID == 0 {
		traceID = telemetry.NewTraceID()
	}
	cs.opts.Recorder.Record(telemetry.KindIngest, traceID, 0,
		cs.id, int64(len(m.Point)), int64(len(m.Payload)), 0)
	n, err := s.b.PublishTraced(geometry.Point(m.Point), m.Payload, traceID)
	if err != nil {
		return cs.write(&Message{Type: TypeError, Error: err.Error(), TraceID: traceID})
	}
	return cs.write(&Message{Type: TypeOK, Delivered: n, TraceID: traceID})
}

// ConnLag is one connection's delivery lag behind the broker head.
// Like a subscription's lag it is a resume depth: every publication
// since the connection's last written event frame counts, whether or
// not it matched one of the connection's subscriptions.
type ConnLag struct {
	ID        int64  `json:"id"`
	Subs      int    `json:"subs"`
	LastSeq   uint64 `json:"last_seq"`
	LagEvents uint64 `json:"lag_events"`
}

// ConnLags snapshots per-connection delivery lag, sorted by connection
// id. Atomic reads per connection; the server lock is held only to copy
// the connection set.
func (s *Server) ConnLags() []ConnLag {
	head := s.b.Head()
	s.mu.Lock()
	conns := make([]*connState, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	s.mu.Unlock()
	out := make([]ConnLag, 0, len(conns))
	for _, cs := range conns {
		last := cs.lastSeq.Load()
		cl := ConnLag{ID: cs.id, LastSeq: last}
		cs.subsMu.Lock()
		cl.Subs = len(cs.subs)
		cs.subsMu.Unlock()
		if head > last {
			cl.LagEvents = head - last
		}
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisterHealth registers the "wire" component: unhealthy when the
// server is closed or its accept loop died under an open server,
// degraded when peers missed keepalives since the previous probe. The
// miss check diffs the cumulative counter between probes, so one
// historical eviction does not degrade the server forever.
func (s *Server) RegisterHealth(hr *health.Registry) {
	var lastMisses atomic.Uint64
	hr.Register("wire", func() (health.State, string) {
		s.mu.Lock()
		closed := s.closed
		acceptErr := s.acceptErr
		conns := len(s.conns)
		s.mu.Unlock()
		if closed {
			return health.Unhealthy, "server closed"
		}
		if acceptErr != nil {
			return health.Unhealthy, fmt.Sprintf("accept loop died: %v", acceptErr)
		}
		misses := s.keepMisses.Load()
		delta := misses - lastMisses.Swap(misses)
		if delta > 0 {
			return health.Degraded, fmt.Sprintf("%d keepalive miss(es) since last probe, %d connection(s)", delta, conns)
		}
		return health.Healthy, fmt.Sprintf("%d connection(s), %d keepalive misses total", conns, misses)
	})
}

// ErrServerClosed is returned by helpers when the server has shut down.
var ErrServerClosed = errors.New("wire: server closed")
