package wire

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/wal"
)

// TestPublishRejectsOversizedPoint: a point with more dimensions than
// the durable log can encode is a protocol error at ingest — on every
// server, durable or not — instead of something that reaches (and
// poisons) a WAL. The connection survives the rejection.
func TestPublishRejectsOversizedPoint(t *testing.T) {
	for name, start := range map[string]func(*testing.T) (*Server, string){
		"plain":   startServer,
		"durable": startDurableServer,
	} {
		t.Run(name, func(t *testing.T) {
			_, addr := start(t)
			cli, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			big := make(geometry.Point, wal.MaxPointDims+1)
			if _, err := cli.Publish(big, []byte("x")); err == nil {
				t.Fatalf("publish with %d dimensions succeeded", len(big))
			} else if !strings.Contains(err.Error(), "dimensions") {
				t.Fatalf("publish with %d dimensions: %v, want a dimension-bound protocol error", len(big), err)
			}

			// The connection is still usable, and a well-formed publish
			// round trips.
			if _, err := cli.Publish(geometry.Point{1}, []byte("ok")); err != nil {
				t.Fatalf("publish after rejection: %v", err)
			}
		})
	}
}
