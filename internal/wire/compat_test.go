package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/geometry"
)

// legacyMessage mirrors the frame body as it existed before the
// trace_id field: decoding with it simulates an old peer, encoding with
// it produces the frames an old peer sends.
type legacyMessage struct {
	Type      Type      `json:"type"`
	Rects     []Rect    `json:"rects,omitempty"`
	Buffer    int       `json:"buffer,omitempty"`
	Point     []float64 `json:"point,omitempty"`
	Payload   []byte    `json:"payload,omitempty"`
	Seq       uint64    `json:"seq,omitempty"`
	SubID     int       `json:"sub_id,omitempty"`
	Delivered int       `json:"delivered,omitempty"`
	Error     string    `json:"error,omitempty"`
}

func writeLegacy(t *testing.T, w *bytes.Buffer, m *legacyMessage) {
	t.Helper()
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	w.Write(hdr[:])
	w.Write(body)
}

// A frame carrying trace_id must still decode cleanly on a peer built
// before the field existed, with every other field intact.
func TestTraceIDForwardCompat(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMessage(&buf, &Message{
		Type:    TypePublish,
		Point:   []float64{1, 2},
		Payload: []byte("tick"),
		TraceID: 0xdeadbeefcafe,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Old decoder: length prefix, then strict JSON into the legacy shape.
	var hdr [4]byte
	if _, err := buf.Read(hdr[:]); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	if got := binary.BigEndian.Uint32(hdr[:]); int(got) != len(body) {
		t.Fatalf("frame length %d, body %d", got, len(body))
	}
	var old legacyMessage
	if err := json.Unmarshal(body, &old); err != nil {
		t.Fatalf("old decoder rejected a trace_id frame: %v", err)
	}
	if old.Type != TypePublish || string(old.Payload) != "tick" || old.Point[1] != 2 {
		t.Fatalf("old decoder mangled the frame: %+v", old)
	}
}

// A frame from an old peer (no trace_id key) must decode on the new
// side with a zero TraceID, and a zero TraceID must stay off the wire
// so old-style frames and new untraced frames are byte-identical.
func TestTraceIDBackwardCompat(t *testing.T) {
	var buf bytes.Buffer
	writeLegacy(t, &buf, &legacyMessage{Type: TypePublish, Point: []float64{3}, Seq: 7})
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceID != 0 {
		t.Fatalf("TraceID = %#x from a legacy frame, want 0", m.TraceID)
	}
	if m.Type != TypePublish || m.Point[0] != 3 || m.Seq != 7 {
		t.Fatalf("legacy frame mangled: %+v", m)
	}

	buf.Reset()
	if err := WriteMessage(&buf, &Message{Type: TypePublish, Point: []float64{3}, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("trace_id")) {
		t.Fatalf("zero trace id leaked onto the wire: %s", buf.Bytes()[4:])
	}
	var legacy bytes.Buffer
	writeLegacy(t, &legacy, &legacyMessage{Type: TypePublish, Point: []float64{3}, Seq: 7})
	if !bytes.Equal(buf.Bytes(), legacy.Bytes()) {
		t.Fatalf("untraced frame differs from legacy encoding:\n new %s\n old %s",
			buf.Bytes()[4:], legacy.Bytes()[4:])
	}
}

// An old client speaking to a new server: its trace-id-free publish is
// accepted, the server assigns a fresh id (echoed on the OK reply in a
// key the old client ignores), and event frames that do carry trace_id
// decode fine with the legacy shape.
func TestLegacyClientAgainstNewServer(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	send := func(m *legacyMessage) {
		t.Helper()
		var buf bytes.Buffer
		writeLegacy(t, &buf, m)
		if _, err := conn.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	// The old-side decoder keeps raw JSON too, so the test can show the
	// reply both parses as legacy and carries the new key.
	recv := func() (*legacyMessage, []byte) {
		t.Helper()
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatal(err)
		}
		var m legacyMessage
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("legacy decode of server frame %s: %v", body, err)
		}
		return &m, body
	}

	send(&legacyMessage{Type: TypeSubscribe, Rects: []Rect{RectToWire(geometry.NewRect(0, 10))}})
	reply, _ := recv()
	if reply.Type != TypeOK {
		t.Fatalf("subscribe reply = %+v", reply)
	}

	send(&legacyMessage{Type: TypePublish, Point: []float64{5}, Payload: []byte("old")})

	var sawEvent, sawOK bool
	var okBody []byte
	for i := 0; i < 2; i++ {
		m, body := recv()
		switch m.Type {
		case TypeOK:
			sawOK = true
			okBody = body
			if m.Delivered != 1 {
				t.Fatalf("publish OK delivered = %d, want 1", m.Delivered)
			}
		case TypeEvent:
			sawEvent = true
			if string(m.Payload) != "old" {
				t.Fatalf("event payload = %q", m.Payload)
			}
		default:
			t.Fatalf("unexpected frame %+v", m)
		}
	}
	if !sawOK || !sawEvent {
		t.Fatalf("sawOK=%v sawEvent=%v", sawOK, sawEvent)
	}

	// The server assigned a trace id to the untraced publish and echoed
	// it on the OK reply — visible to a new peer, ignored by the old one.
	var okNew Message
	if err := json.Unmarshal(okBody, &okNew); err != nil {
		t.Fatal(err)
	}
	if okNew.TraceID == 0 {
		t.Fatalf("server did not assign a trace id to a legacy publish: %s", okBody)
	}
}

// A subscribe frame carrying from_offset must still decode cleanly on a
// peer built before the field existed, with the rectangles intact.
func TestFromOffsetForwardCompat(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMessage(&buf, &Message{
		Type:       TypeSubscribe,
		Rects:      []Rect{RectToWire(geometry.NewRect(0, 10))},
		FromOffset: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := buf.Read(hdr[:]); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	if got := binary.BigEndian.Uint32(hdr[:]); int(got) != len(body) {
		t.Fatalf("frame length %d, body %d", got, len(body))
	}
	var old legacyMessage
	if err := json.Unmarshal(body, &old); err != nil {
		t.Fatalf("old decoder rejected a from_offset frame: %v", err)
	}
	if old.Type != TypeSubscribe || len(old.Rects) != 1 {
		t.Fatalf("old decoder mangled the frame: %+v", old)
	}
}

// A subscribe from an old peer (no from_offset key) must decode on the
// new side with a zero FromOffset, and a zero FromOffset must stay off
// the wire, so an offset-unaware subscribe is byte-identical to a
// legacy one.
func TestFromOffsetBackwardCompat(t *testing.T) {
	rects := []Rect{RectToWire(geometry.NewRect(0, 10, -5, 5))}
	var buf bytes.Buffer
	writeLegacy(t, &buf, &legacyMessage{Type: TypeSubscribe, Rects: rects, Buffer: 32})
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.FromOffset != 0 {
		t.Fatalf("FromOffset = %d from a legacy frame, want 0", m.FromOffset)
	}
	if m.Type != TypeSubscribe || len(m.Rects) != 1 || m.Buffer != 32 {
		t.Fatalf("legacy frame mangled: %+v", m)
	}

	buf.Reset()
	if err := WriteMessage(&buf, &Message{Type: TypeSubscribe, Rects: rects, Buffer: 32}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("from_offset")) {
		t.Fatalf("zero from_offset leaked onto the wire: %s", buf.Bytes()[4:])
	}
	var legacy bytes.Buffer
	writeLegacy(t, &legacy, &legacyMessage{Type: TypeSubscribe, Rects: rects, Buffer: 32})
	if !bytes.Equal(buf.Bytes(), legacy.Bytes()) {
		t.Fatalf("offset-free subscribe differs from legacy encoding:\n new %s\n old %s",
			buf.Bytes()[4:], legacy.Bytes()[4:])
	}
}

// A legacy client against a durability-enabled server: its offset-free
// subscribe gets plain live fanout (no surprise replay frames), and the
// whole session works exactly as against a pre-durability server.
func TestLegacyClientAgainstDurableServer(t *testing.T) {
	_, addr := startDurableServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	send := func(m *legacyMessage) {
		t.Helper()
		var buf bytes.Buffer
		writeLegacy(t, &buf, m)
		if _, err := conn.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *legacyMessage {
		t.Helper()
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatal(err)
		}
		var m legacyMessage
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("legacy decode of server frame %s: %v", body, err)
		}
		return &m
	}

	// Publish some history first — a legacy subscriber must NOT receive
	// it: without from_offset the subscription is live-only.
	send(&legacyMessage{Type: TypePublish, Point: []float64{5}, Payload: []byte("history")})
	if reply := recv(); reply.Type != TypeOK {
		t.Fatalf("publish reply = %+v", reply)
	}

	send(&legacyMessage{Type: TypeSubscribe, Rects: []Rect{RectToWire(geometry.NewRect(0, 10))}})
	if reply := recv(); reply.Type != TypeOK {
		t.Fatalf("subscribe reply = %+v", reply)
	}

	send(&legacyMessage{Type: TypePublish, Point: []float64{5}, Payload: []byte("live")})
	var payloads []string
	for i := 0; i < 2; i++ {
		m := recv()
		if m.Type == TypeEvent {
			payloads = append(payloads, string(m.Payload))
		}
	}
	if len(payloads) != 1 || payloads[0] != "live" {
		t.Fatalf("legacy subscriber saw %v, want only the live event", payloads)
	}
}
