package wire

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/health"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

func TestConnLagTracking(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := broker.New(broker.Options{})
	s := NewServerWith(b, ServerOptions{Metrics: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		b.Close()
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}

	lags := s.ConnLags()
	if len(lags) != 1 || lags[0].LagEvents != 0 || lags[0].Subs != 1 {
		t.Fatalf("fresh connection should have zero lag: %+v", lags)
	}

	// A matching publish advances the head and, once the pump writes the
	// frame, the connection's high-water mark follows it back to zero lag.
	if _, err := cli.Publish(geometry.Point{5}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cli.Events():
	case <-time.After(2 * time.Second):
		t.Fatal("no event within deadline")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		lags = s.ConnLags()
		if len(lags) == 1 && lags[0].LagEvents == 0 && lags[0].LastSeq == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conn never caught up to head: %+v", lags)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A non-matching publish advances the head but writes no frame: the
	// connection's lag is the resume depth, exactly like a subscription's.
	if _, err := cli.Publish(geometry.Point{500}, nil); err != nil {
		t.Fatal(err)
	}
	lags = s.ConnLags()
	if len(lags) != 1 || lags[0].LagEvents != 1 || lags[0].LastSeq != 1 {
		t.Fatalf("non-matching publish should leave lag 1: %+v", lags)
	}
	if got := gaugeValue(t, reg, "pubsub_wire_max_conn_lag_events"); got != 1 {
		t.Fatalf("max conn lag gauge = %g, want 1", got)
	}
}

func TestServerHealthKeepaliveMissRate(t *testing.T) {
	hr := health.NewRegistry()
	b := broker.New(broker.Options{})
	s := NewServerWith(b, ServerOptions{IdleTimeout: 60 * time.Millisecond, PingInterval: -1})
	s.RegisterHealth(hr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer b.Close()

	if rep := hr.Evaluate(); rep.State != health.Healthy {
		t.Fatalf("fresh server should be healthy: %+v", rep.Results)
	}

	// A silent peer expires on the idle timeout and counts as a miss; the
	// next probe sees the delta and degrades.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.keepMisses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("keepalive miss never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep := hr.Evaluate(); rep.State != health.Degraded {
		t.Fatalf("missed keepalive should degrade: %+v", rep.Results)
	}
	// The rate check diffs between probes: with no new misses the next
	// probe is healthy again.
	if rep := hr.Evaluate(); rep.State != health.Healthy {
		t.Fatalf("stale miss should not degrade forever: %+v", rep.Results)
	}

	s.Close()
	if rep := hr.Evaluate(); rep.State != health.Unhealthy {
		t.Fatalf("closed server should be unhealthy: %+v", rep.Results)
	}
}

func TestServerHealthAcceptLoopDeath(t *testing.T) {
	hr := health.NewRegistry()
	b := broker.New(broker.Options{})
	defer b.Close()
	s := NewServer(b)
	s.RegisterHealth(hr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = s.Serve(ln)
	}()
	// Kill the listener out from under the server without closing it:
	// the accept loop dies while the server still looks open.
	time.Sleep(10 * time.Millisecond)
	_ = ln.Close()
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve never returned after listener close")
	}
	rep := hr.Evaluate()
	if rep.State != health.Unhealthy {
		t.Fatalf("dead accept loop should be unhealthy: %+v", rep.Results)
	}
	s.Close()
}

// TestClientFirstDropFlag drives a client over an in-memory pipe past
// its event buffer: the drop that opens the loss window must carry
// first_drop=1 in its flight record, subsequent drops 0.
func TestClientFirstDropFlag(t *testing.T) {
	rec := telemetry.NewRecorder(4096)
	server, clientConn := net.Pipe()
	cli := NewClientWith(clientConn, ClientOptions{Recorder: rec})
	defer cli.Close()
	defer server.Close()

	// The client's event buffer holds 1024; write 1027 frames without
	// draining so the last three drop. net.Pipe is synchronous, so each
	// write returns only after the read loop consumed the frame.
	for i := 1; i <= 1027; i++ {
		msg := &Message{Type: TypeEvent, Point: []float64{1}, Seq: uint64(i), SubID: 1}
		if err := WriteMessage(server, msg); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// Ping/pong barrier: the client answers from the same read loop, so
	// the pong proves every prior frame has been enqueued or dropped.
	if err := WriteMessage(server, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(server); err != nil || m.Type != TypePong {
		t.Fatalf("barrier pong = %v/%v", m, err)
	}
	if d := cli.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
	if seq, ok := cli.FirstDropped(); !ok || seq != 1025 {
		t.Fatalf("first dropped = %d/%v, want 1025/true", seq, ok)
	}
	var first, later int
	for _, r := range rec.SnapshotFilter(0, telemetry.KindClientRecv, 0) {
		if r.Args[2] != 1 {
			continue // delivered, not dropped
		}
		if r.Args[3] == 1 {
			first++
			if r.Seq != 1025 {
				t.Fatalf("first_drop record at Seq %d, want 1025", r.Seq)
			}
		} else {
			later++
		}
	}
	if first != 1 || later != 2 {
		t.Fatalf("drop records first=%d later=%d, want 1/2", first, later)
	}
}

// TestReconnectResumeVisibility restarts a durable server under a
// resuming client and checks the redial leaves a client_resume flight
// record and an accurate LastSeq high-water mark.
func TestReconnectResumeVisibility(t *testing.T) {
	rec := telemetry.NewRecorder(4096)
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	boot := func(ln net.Listener) (*Server, *broker.Broker, *wal.Log) {
		log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		b := broker.New(broker.Options{Log: log})
		s := NewServer(b)
		go func() { _ = s.Serve(ln) }()
		return s, b, log
	}
	s1, b1, log1 := boot(ln)

	rc, err := DialReconnecting(addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		Metrics:        reg,
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.SubscribeFrom(1, geometry.NewRect(0, 1000)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := b1.Publish(geometry.Point{float64(i)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-rc.Events():
		case <-time.After(5 * time.Second):
			t.Fatalf("saw %d of 5 events before restart", i)
		}
	}
	if got := rc.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}

	s1.Close()
	b1.Close()
	log1.Close()
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2, b2, log2 := boot(ln2)
	defer func() {
		s2.Close()
		b2.Close()
		log2.Close()
	}()
	for i := 6; i <= 8; i++ {
		if _, err := b2.Publish(geometry.Point{float64(i)}, []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-rc.Events():
		case <-time.After(10 * time.Second):
			t.Fatalf("saw %d of 3 events after restart", i)
		}
	}
	if got := rc.LastSeq(); got != 8 {
		t.Fatalf("LastSeq after resume = %d, want 8", got)
	}
	if got := gaugeValue(t, reg, "pubsub_wire_client_last_seq"); got != 8 {
		t.Fatalf("last_seq gauge = %g, want 8", got)
	}

	resumes := rec.SnapshotFilter(0, telemetry.KindClientResume, 0)
	if len(resumes) == 0 {
		t.Fatal("no client_resume flight record after redial")
	}
	r := resumes[len(resumes)-1]
	if r.Args[0] != 6 || r.Args[2] != 1 {
		t.Fatalf("client_resume record = %+v, want from=6 subs=1", r)
	}
}
