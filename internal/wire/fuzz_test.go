package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary bytes to the frame decoder: it must
// never panic, and any message it accepts must re-encode and re-decode
// to the same type.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteMessage(&seed, &Message{Type: TypePublish, Point: []float64{1, 2}, Payload: []byte("x")})
	f.Add(seed.Bytes())
	_ = seed
	var seed2 bytes.Buffer
	lo := 1.0
	_ = WriteMessage(&seed2, &Message{Type: TypeSubscribe, Rects: []Rect{{{Lo: &lo, Hi: nil}}}})
	f.Add(seed2.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		m2, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type != m.Type || len(m2.Point) != len(m.Point) || len(m2.Rects) != len(m.Rects) {
			t.Fatalf("round trip changed message: %+v vs %+v", m, m2)
		}
	})
}

// FuzzWireRect checks that any wire rectangle the validator accepts
// round-trips through geometry form.
func FuzzWireRect(f *testing.F) {
	f.Add(1.0, 5.0, true, true)
	f.Add(0.0, 0.0, false, true)
	f.Add(-3.5, 100.25, true, false)
	f.Fuzz(func(t *testing.T, lo, hi float64, hasLo, hasHi bool) {
		w := Rect{Interval{}}
		if hasLo {
			w[0].Lo = &lo
		}
		if hasHi {
			w[0].Hi = &hi
		}
		r, err := WireToRect(w)
		if err != nil {
			return
		}
		back := RectToWire(r)
		r2, err := WireToRect(back)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !r2.Equal(r) {
			t.Fatalf("round trip changed rect: %v vs %v", r, r2)
		}
	})
}
