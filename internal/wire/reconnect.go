package wire

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/telemetry"
)

// ReconnectOptions tune a ReconnectingClient. The zero value is usable.
type ReconnectOptions struct {
	// InitialBackoff is the first retry delay. Zero selects 100ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential retry delay. Zero selects 5s.
	MaxBackoff time.Duration
	// Multiplier scales the delay after each failed redial. Zero
	// selects 2.
	Multiplier float64
	// Jitter randomises each delay within ±Jitter×delay, so a fleet of
	// clients restarted by one server outage does not redial in
	// synchronized waves. Zero selects 0.2; negative disables jitter.
	Jitter float64
	// Metrics, when non-nil, receives the client's reconnect counters
	// (redial attempts and successful reconnects). Nil disables them.
	Metrics *telemetry.Registry
	// Recorder receives a flight-recorder record per redial attempt.
	// Nil selects the process-wide telemetry.Default() recorder.
	Recorder *telemetry.Recorder
}

func (o ReconnectOptions) withDefaults() ReconnectOptions {
	if o.InitialBackoff == 0 {
		o.InitialBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Multiplier == 0 {
		o.Multiplier = 2
	}
	if o.Multiplier < 1 {
		o.Multiplier = 1
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Jitter > 1 {
		o.Jitter = 1
	}
	if o.Recorder == nil {
		o.Recorder = telemetry.Default()
	}
	return o
}

// jittered spreads d uniformly across [(1-j)d, (1+j)d].
func (o ReconnectOptions) jittered(d time.Duration) time.Duration {
	if o.Jitter <= 0 {
		return d
	}
	f := 1 + o.Jitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}

// ReconnectingClient wraps Client with automatic redial: when the
// connection drops it reconnects with exponential backoff and replays
// every live subscription. Events from all connection generations are
// merged into one channel. Delivery is at-most-once per connection
// generation — events published while disconnected are lost, like any
// pub-sub subscriber that was offline.
type ReconnectingClient struct {
	addr string
	opts ReconnectOptions

	mu     sync.Mutex
	cur    *Client
	subs   map[int]*rsub // local handle -> live subscription state
	nextID int
	closed bool

	events  chan broker.Event
	done    chan struct{}
	wg      sync.WaitGroup
	dropped atomic.Uint64 // merged-buffer drops + drops of dead generations
	lastSeq atomic.Uint64 // highest Seq forwarded to the merged channel

	attempts   *telemetry.Counter // redials tried (nil-safe when metrics are off)
	reconnects *telemetry.Counter // redials that replayed successfully
}

// DialReconnecting creates a reconnecting client. The initial dial is
// synchronous so misconfiguration fails fast; subsequent drops are
// handled in the background.
func DialReconnecting(addr string, opts ReconnectOptions) (*ReconnectingClient, error) {
	rc := &ReconnectingClient{
		addr:   addr,
		opts:   opts.withDefaults(),
		subs:   make(map[int]*rsub),
		events: make(chan broker.Event, 1024),
		done:   make(chan struct{}),
		attempts: opts.Metrics.Counter("pubsub_wire_reconnect_attempts_total",
			"Redial attempts after a dropped connection."),
		reconnects: opts.Metrics.Counter("pubsub_wire_reconnects_total",
			"Successful reconnects with all subscriptions replayed."),
	}
	cli, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc.cur = cli
	rc.wg.Add(1)
	go rc.run(cli)
	return rc, nil
}

// run pumps events from the current connection and redials when it dies.
func (rc *ReconnectingClient) run(cli *Client) {
	defer rc.wg.Done()
	for {
		// Pump this connection until its event channel closes.
		for ev := range cli.Events() {
			select {
			case rc.events <- ev:
				// Track the resume high-water only for events the
				// application will actually see: a dropped event must be
				// fetched again by the next reconnect's replay.
				if s := ev.Seq; s > rc.lastSeq.Load() {
					rc.lastSeq.Store(s)
				}
			case <-rc.done:
				return
			default:
				// Merged buffer full: drop, matching Client semantics.
				rc.dropped.Add(1)
			}
		}
		_ = cli.Close()
		rc.dropped.Add(cli.Dropped())

		// Reconnect with jittered exponential backoff.
		backoff := rc.opts.InitialBackoff
		for attempt := int64(1); ; attempt++ {
			select {
			case <-rc.done:
				return
			case <-time.After(rc.opts.jittered(backoff)):
			}
			rc.attempts.Inc()
			next, err := Dial(rc.addr)
			if err != nil {
				rc.opts.Recorder.Record(telemetry.KindReconnect, 0, 0,
					attempt, 0, backoff.Milliseconds(), 0)
				backoff = time.Duration(float64(backoff) * rc.opts.Multiplier)
				if backoff > rc.opts.MaxBackoff {
					backoff = rc.opts.MaxBackoff
				}
				continue
			}
			if rc.resubscribe(next) {
				rc.reconnects.Inc()
				rc.mu.Lock()
				subs := len(rc.subs)
				rc.mu.Unlock()
				rc.opts.Recorder.Record(telemetry.KindReconnect, 0, 0,
					attempt, 1, backoff.Milliseconds(), int64(subs))
				cli = next
				break
			}
			rc.opts.Recorder.Record(telemetry.KindReconnect, 0, 0,
				attempt, 0, backoff.Milliseconds(), 0)
			_ = next.Close()
		}
	}
}

// rsub is one surviving subscription: the rectangles to replay plus the
// server-assigned id on the current connection generation. resume marks
// subscriptions created by SubscribeFrom: on reconnect they ask the
// server's durable log for everything after the last event the
// application saw, instead of silently skipping the outage window.
type rsub struct {
	rects    []geometry.Rect
	serverID int
	resume   bool
	from     uint64 // original SubscribeFrom offset (floor for resumes)
}

// resubscribe replays all live subscriptions on a fresh connection and
// installs it as current. Handles cancelled via Unsubscribe are gone
// from rc.subs, so they are never replayed. It reports success.
func (rc *ReconnectingClient) resubscribe(cli *Client) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return false
	}
	for _, rs := range rc.subs {
		from := uint64(0)
		if rs.resume {
			// Resume one past the newest event the application has seen;
			// rs.from floors the very first reconnect of a subscription
			// that never received anything.
			from = rc.lastSeq.Load() + 1
			if rs.from > from {
				from = rs.from
			}
		}
		//pubsub:allow locksafe -- replay must complete under rc.mu so no new Subscribe interleaves with it
		sid, err := cli.SubscribeFrom(from, rs.rects...)
		if err != nil {
			return false
		}
		rs.serverID = sid
	}
	rc.cur = cli
	return true
}

// Subscribe registers a subscription that survives reconnects. It
// returns a local handle (stable across redials, unlike server IDs).
// Delivery is at-most-once: events published during an outage are lost.
// Use SubscribeFrom against a durability-enabled server for resume.
func (rc *ReconnectingClient) Subscribe(rects ...geometry.Rect) (int, error) {
	return rc.subscribe(0, false, rects...)
}

// SubscribeFrom registers a durable subscription: the server streams
// its publication log from the given offset (0 means "new events only")
// before going live, and every reconnect resumes from one past the last
// event delivered on Events() — a restart or partition no longer loses
// events the log retained. The resume point is the client's single
// high-water mark across all subscriptions, so a client holding several
// resuming subscriptions should expect the replay to skip events an
// unrelated faster subscription already advanced past; use one resuming
// subscription per client for exactly-once-per-retention semantics.
func (rc *ReconnectingClient) SubscribeFrom(from uint64, rects ...geometry.Rect) (int, error) {
	return rc.subscribe(from, true, rects...)
}

func (rc *ReconnectingClient) subscribe(from uint64, resume bool, rects ...geometry.Rect) (int, error) {
	if len(rects) == 0 {
		return 0, fmt.Errorf("wire: subscription needs at least one rectangle")
	}
	owned := make([]geometry.Rect, len(rects))
	for i, r := range rects {
		owned[i] = r.Clone()
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return 0, fmt.Errorf("wire: client closed")
	}
	//pubsub:allow locksafe -- the round trip stays under rc.mu to keep the replay set consistent with the server
	sid, err := rc.cur.SubscribeFrom(from, owned...)
	if err != nil {
		return 0, err
	}
	id := rc.nextID
	rc.nextID++
	rc.subs[id] = &rsub{rects: owned, serverID: sid, resume: resume, from: from}
	return id, nil
}

// Unsubscribe cancels a subscription by its local handle. The handle is
// removed from the replay set immediately — a cancelled subscription is
// never replayed by a later reconnect — and the cancel is forwarded to
// the server best-effort: if the connection happens to be down, the
// server-side subscription dies with it anyway.
func (rc *ReconnectingClient) Unsubscribe(handle int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return fmt.Errorf("wire: client closed")
	}
	rs, ok := rc.subs[handle]
	if !ok {
		return fmt.Errorf("wire: no subscription with handle %d", handle)
	}
	delete(rc.subs, handle)
	//pubsub:allow locksafe -- best-effort round trip under rc.mu keeps the replay set consistent
	_ = rc.cur.Unsubscribe(rs.serverID) // best-effort on a possibly dead conn
	return nil
}

// Publish forwards to the current connection. It fails while
// disconnected (no offline queueing).
func (rc *ReconnectingClient) Publish(p geometry.Point, payload []byte) (int, error) {
	rc.mu.Lock()
	cli := rc.cur
	closed := rc.closed
	rc.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("wire: client closed")
	}
	return cli.Publish(p, payload)
}

// Events returns the merged event stream across reconnects. It closes
// only on Close.
func (rc *ReconnectingClient) Events() <-chan broker.Event { return rc.events }

// Dropped reports events lost client-side: merged-buffer overflow plus
// per-connection buffer overflow, accumulated across generations. The
// count may briefly double-count the dying generation mid-reconnect.
func (rc *ReconnectingClient) Dropped() uint64 {
	rc.mu.Lock()
	cur := rc.cur
	rc.mu.Unlock()
	d := rc.dropped.Load()
	if cur != nil {
		d += cur.Dropped()
	}
	return d
}

// Close stops reconnection and tears down the current connection.
func (rc *ReconnectingClient) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	cli := rc.cur
	rc.mu.Unlock()

	close(rc.done)
	err := cli.Close()
	rc.wg.Wait()
	close(rc.events)
	return err
}
