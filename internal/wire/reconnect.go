package wire

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/telemetry"
)

// ReconnectOptions tune a ReconnectingClient. The zero value is usable.
type ReconnectOptions struct {
	// InitialBackoff is the first retry delay. Zero selects 100ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential retry delay. Zero selects 5s.
	MaxBackoff time.Duration
	// Multiplier scales the delay after each failed redial. Zero
	// selects 2.
	Multiplier float64
	// Jitter randomises each delay within ±Jitter×delay, so a fleet of
	// clients restarted by one server outage does not redial in
	// synchronized waves. Zero selects 0.2; negative disables jitter.
	Jitter float64
	// Metrics, when non-nil, receives the client's reconnect counters
	// (redial attempts and successful reconnects). Nil disables them.
	Metrics *telemetry.Registry
	// Recorder receives a flight-recorder record per redial attempt.
	// Nil selects the process-wide telemetry.Default() recorder.
	Recorder *telemetry.Recorder
}

func (o ReconnectOptions) withDefaults() ReconnectOptions {
	if o.InitialBackoff == 0 {
		o.InitialBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Multiplier == 0 {
		o.Multiplier = 2
	}
	if o.Multiplier < 1 {
		o.Multiplier = 1
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Jitter > 1 {
		o.Jitter = 1
	}
	if o.Recorder == nil {
		o.Recorder = telemetry.Default()
	}
	return o
}

// jittered spreads d uniformly across [(1-j)d, (1+j)d].
func (o ReconnectOptions) jittered(d time.Duration) time.Duration {
	if o.Jitter <= 0 {
		return d
	}
	f := 1 + o.Jitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}

// ReconnectingClient wraps Client with automatic redial: when the
// connection drops it reconnects with exponential backoff and replays
// every live subscription. Events from all connection generations are
// merged into one channel. Delivery is at-most-once per connection
// generation — events published while disconnected are lost, like any
// pub-sub subscriber that was offline.
type ReconnectingClient struct {
	addr string
	opts ReconnectOptions

	mu      sync.Mutex
	cur     *Client
	curCtl  chan bool       // current generation's pump control (see pump)
	curDone <-chan struct{} // closes when the current generation's pump exits
	subs    map[int]*rsub   // local handle -> live subscription state
	nextID  int
	closed  bool

	events  chan broker.Event
	done    chan struct{}
	wg      sync.WaitGroup
	dropped atomic.Uint64 // merged-buffer drops + drops of dead generations
	lastSeq atomic.Uint64 // highest Seq forwarded to the merged channel

	attempts   *telemetry.Counter // redials tried (nil-safe when metrics are off)
	reconnects *telemetry.Counter // redials that replayed successfully
}

// DialReconnecting creates a reconnecting client. The initial dial is
// synchronous so misconfiguration fails fast; subsequent drops are
// handled in the background.
func DialReconnecting(addr string, opts ReconnectOptions) (*ReconnectingClient, error) {
	rc := &ReconnectingClient{
		addr:   addr,
		opts:   opts.withDefaults(),
		subs:   make(map[int]*rsub),
		events: make(chan broker.Event, 1024),
		done:   make(chan struct{}),
		attempts: opts.Metrics.Counter("pubsub_wire_reconnect_attempts_total",
			"Redial attempts after a dropped connection."),
		reconnects: opts.Metrics.Counter("pubsub_wire_reconnects_total",
			"Successful reconnects with all subscriptions replayed."),
	}
	// Resume-depth visibility: where the next reconnect would resume
	// from, and how much this client has dropped. Scrape-time reads of
	// the client's own state, nothing on the delivery path.
	opts.Metrics.GaugeFunc("pubsub_wire_client_last_seq",
		"Highest Seq delivered to the application: the next resume replays from one past it.",
		func() float64 { return float64(rc.lastSeq.Load()) })
	opts.Metrics.GaugeFunc("pubsub_wire_client_dropped_events",
		"Events lost client-side across connection generations (congestion signal; resumed replays may have refetched them).",
		func() float64 { return float64(rc.Dropped()) })
	opts.Metrics.GaugeFunc("pubsub_wire_client_first_dropped_seq",
		"Seq of the first drop in the current connection generation's loss window, 0 when loss-free.",
		func() float64 {
			if seq, ok := rc.FirstDropped(); ok {
				return float64(seq)
			}
			return 0
		})
	cli, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc.cur = cli
	rc.curCtl = make(chan bool)
	rc.curDone = rc.pump(cli, rc.curCtl)
	rc.wg.Add(1)
	go rc.run(cli, rc.curDone)
	return rc, nil
}

// run owns the redial loop: it waits for the current generation's pump
// to finish (the connection died), then dials and resubscribes with
// jittered exponential backoff. Each generation's pump starts before
// its resubscribe, so a resume replay is captured while the subscribe
// round trips are still in flight.
func (rc *ReconnectingClient) run(cli *Client, pumpDone <-chan struct{}) {
	defer rc.wg.Done()
	for {
		select {
		case <-pumpDone:
		case <-rc.done:
			return
		}
		_ = cli.Close()
		rc.dropped.Add(cli.Dropped())

		// Reconnect with jittered exponential backoff.
		backoff := rc.opts.InitialBackoff
	redial:
		for attempt := int64(1); ; attempt++ {
			select {
			case <-rc.done:
				return
			case <-time.After(rc.opts.jittered(backoff)):
			}
			rc.attempts.Inc()
			next, err := Dial(rc.addr)
			if err == nil {
				// The new generation's pump must be running before
				// resubscribe: a resume replay streams during the
				// SubscribeFrom round trip, and the pump captures it out
				// of the Client's bounded event buffer. resubscribe
				// switches the pump into backlog mode around the round
				// trips and retires the connection if the buffer still
				// overflowed, so a replay longer than the buffer makes
				// progress on every attempt instead of silently losing
				// its tail.
				ctl := make(chan bool)
				nextPump := rc.pump(next, ctl)
				if rc.resubscribe(next, ctl, nextPump) {
					rc.reconnects.Inc()
					rc.mu.Lock()
					subs := len(rc.subs)
					rc.mu.Unlock()
					rc.opts.Recorder.Record(telemetry.KindReconnect, 0, 0,
						attempt, 1, backoff.Milliseconds(), int64(subs))
					cli, pumpDone = next, nextPump
					break redial
				}
				_ = next.Close()
				<-nextPump
				rc.dropped.Add(next.Dropped())
			}
			rc.opts.Recorder.Record(telemetry.KindReconnect, 0, 0,
				attempt, 0, backoff.Milliseconds(), 0)
			backoff = time.Duration(float64(backoff) * rc.opts.Multiplier)
			if backoff > rc.opts.MaxBackoff {
				backoff = rc.opts.MaxBackoff
			}
		}
	}
}

// pump forwards one connection generation's events into the merged
// channel until that generation's event stream closes, returning a
// channel that closes when it has. Pumps run under rc.wg, so Close
// never closes the merged channel while a pump could still send on it.
//
// ctl switches the pump into (true) and out of (false) backlog mode
// around replay-bearing subscribe round trips. In backlog mode nothing
// is forwarded; events accumulate in a local slice — unbounded, so the
// pump's pace never causes loss, whatever the scheduler does. Leaving
// backlog mode flushes only the loss-free prefix: events below the
// Client's first buffer drop, if one happened. Everything at or above
// the first drop is discarded rather than forwarded, so lastSeq — the
// resume high-water — can never advance past a hole; the caller retires
// the connection and the next resume refetches the discarded window
// from the server's log. The flush itself delivers reliably, blocking
// on the merged channel until the application drains it (drop-on-full
// stays the policy for live events only). A pump that dies while backlogged (connection
// closed mid-replay or by retirement) flushes the same prefix on exit,
// so every attempt at an oversized replay still delivers at least one
// buffer-full of progress.
func (rc *ReconnectingClient) pump(cli *Client, ctl <-chan bool) <-chan struct{} {
	done := make(chan struct{})
	rc.wg.Add(1)
	go func() {
		defer rc.wg.Done()
		defer close(done)
		forward := func(ev broker.Event) {
			select {
			case rc.events <- ev:
				// Track the resume high-water only for events the
				// application will actually see: a dropped event must be
				// fetched again by the next reconnect's replay.
				if s := ev.Seq; s > rc.lastSeq.Load() {
					rc.lastSeq.Store(s)
				}
			default:
				// Merged buffer full: drop, matching Client semantics.
				rc.dropped.Add(1)
			}
		}
		var backlog []broker.Event
		backlogging := false
		flush := func() {
			floor := uint64(math.MaxUint64)
			if s, ok := cli.FirstDropped(); ok {
				floor = s
			}
			for _, ev := range backlog {
				if ev.Seq >= floor {
					continue
				}
				// Replay delivery is reliable: block until the
				// application drains the merged channel instead of
				// dropping — dropping here and forwarding a later event
				// would advance lastSeq past a hole no resume refetches.
				// Live events keep the drop-on-full policy; a flush has
				// rc.done as its escape hatch.
				select {
				case rc.events <- ev:
					if s := ev.Seq; s > rc.lastSeq.Load() {
						rc.lastSeq.Store(s)
					}
				case <-rc.done:
					return
				}
			}
			backlog = nil
			backlogging = false
		}
		for {
			select {
			case ev, open := <-cli.Events():
				if !open {
					if backlogging {
						flush()
					}
					return
				}
				if backlogging {
					backlog = append(backlog, ev)
				} else {
					forward(ev)
				}
			case enter := <-ctl:
				if enter {
					backlogging = true
					continue
				}
				// The round trips finished, so the reader has already
				// enqueued (or dropped) every replayed event: capture the
				// ones still buffered, then flush and go live.
				drained := false
				for !drained {
					select {
					case ev, open := <-cli.Events():
						if !open {
							flush()
							return
						}
						backlog = append(backlog, ev)
					default:
						drained = true
					}
				}
				flush()
			case <-rc.done:
				return
			}
		}
	}()
	return done
}

// signalPump delivers a backlog-mode transition to a generation's pump,
// giving up if that pump has already exited — its connection is dead,
// so the round trip the transition brackets fails too.
func signalPump(ctl chan<- bool, enter bool, pumpDone <-chan struct{}) {
	select {
	case ctl <- enter:
	case <-pumpDone:
	}
}

// rsub is one surviving subscription: the rectangles to replay plus the
// server-assigned id on the current connection generation. resume marks
// subscriptions created by SubscribeFrom: on reconnect they ask the
// server's durable log for everything after the last event the
// application saw, instead of silently skipping the outage window.
type rsub struct {
	rects    []geometry.Rect
	serverID int
	resume   bool
	from     uint64 // original SubscribeFrom offset (floor for resumes)
}

// resumeFrom computes the offset a resuming subscription resubscribes
// from: one past the newest event the application has seen, floored by
// rs.from for a subscription requested from a future offset it has not
// reached yet. Before anything has been delivered there is no
// high-water mark, so the original request stands — in particular
// SubscribeFrom(0), "new events only", stays a plain live subscribe;
// resuming from 1 would replay the server's entire retained log to a
// client that never asked for history. Non-resuming subscriptions are
// always 0.
func (rc *ReconnectingClient) resumeFrom(rs *rsub) uint64 {
	if !rs.resume {
		return 0
	}
	last := rc.lastSeq.Load()
	if last == 0 {
		return rs.from
	}
	from := last + 1
	if rs.from > from {
		from = rs.from
	}
	return from
}

// resubscribe replays all live subscriptions on a fresh connection and
// installs it as current. Handles cancelled via Unsubscribe are gone
// from rc.subs, so they are never replayed. It reports success.
//
// When any subscription resumes with a replay, the generation's pump is
// held in backlog mode across the round trips and the Client's buffer
// is checked for drops afterwards: a replay that overflowed it has
// holes the merged stream must not advance past, so the connection is
// not installed — the caller closes it, the backlogged pump flushes the
// loss-free prefix, and the next redial resumes just past that prefix.
func (rc *ReconnectingClient) resubscribe(cli *Client, ctl chan bool, pumpDone <-chan struct{}) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return false
	}
	replaying := false
	minFrom := uint64(0)
	for _, rs := range rc.subs {
		if f := rc.resumeFrom(rs); f > 0 {
			replaying = true
			if minFrom == 0 || f < minFrom {
				minFrom = f
			}
		}
	}
	if replaying {
		cli.ClearFirstDropped()
		//pubsub:allow locksafe -- bounded wait: the pump's select always reaches the ctl receive, and pumpDone unblocks it if the pump died
		signalPump(ctl, true, pumpDone)
	}
	for _, rs := range rc.subs {
		//pubsub:allow locksafe -- replay must complete under rc.mu so no new Subscribe interleaves with it
		sid, err := cli.SubscribeFrom(rc.resumeFrom(rs), rs.rects...)
		if err != nil {
			// Leave a backlogged pump backlogged: the caller closes the
			// connection and the pump flushes what it captured on exit.
			return false
		}
		rs.serverID = sid
	}
	if replaying {
		if _, overflowed := cli.FirstDropped(); overflowed {
			return false
		}
		//pubsub:allow locksafe -- bounded wait: the pump's select always reaches the ctl receive, and pumpDone unblocks it if the pump died
		signalPump(ctl, false, pumpDone)
		// The resume replay landed intact: record where it picked up so
		// an operator can see the outage window a redial recovered.
		rc.opts.Recorder.Record(telemetry.KindClientResume, 0, rc.lastSeq.Load(),
			int64(minFrom), int64(rc.lastSeq.Load()), int64(len(rc.subs)), 0)
	}
	rc.cur = cli
	rc.curCtl = ctl
	rc.curDone = pumpDone
	return true
}

// Subscribe registers a subscription that survives reconnects. It
// returns a local handle (stable across redials, unlike server IDs).
// Delivery is at-most-once: events published during an outage are lost.
// Use SubscribeFrom against a durability-enabled server for resume.
func (rc *ReconnectingClient) Subscribe(rects ...geometry.Rect) (int, error) {
	return rc.subscribe(0, false, rects...)
}

// SubscribeFrom registers a durable subscription: the server streams
// its publication log from the given offset (0 means "new events only")
// before going live, and every reconnect resumes from one past the last
// event delivered on Events() — a restart or partition no longer loses
// events the log retained. A replay longer than the Client's internal
// event buffer is safe too: the replay is captured off the connection
// before anything goes to Events(), and if the buffer still overflows,
// only the loss-free prefix is delivered and the connection is retired
// so the next redial resumes just past it — the outage window arrives
// in full across a few reconnect rounds instead of with silent holes.
// With a zero from, the resume guarantee
// starts at the first delivered event: until one arrives there is no
// high-water mark, so a reconnect in that window subscribes live again
// ("new events only" still) instead of replaying the retained log. The resume point is the client's single
// high-water mark across all subscriptions, so a client holding several
// resuming subscriptions should expect the replay to skip events an
// unrelated faster subscription already advanced past; use one resuming
// subscription per client for exactly-once-per-retention semantics.
func (rc *ReconnectingClient) SubscribeFrom(from uint64, rects ...geometry.Rect) (int, error) {
	return rc.subscribe(from, true, rects...)
}

func (rc *ReconnectingClient) subscribe(from uint64, resume bool, rects ...geometry.Rect) (int, error) {
	if len(rects) == 0 {
		return 0, fmt.Errorf("wire: subscription needs at least one rectangle")
	}
	owned := make([]geometry.Rect, len(rects))
	for i, r := range rects {
		owned[i] = r.Clone()
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return 0, fmt.Errorf("wire: client closed")
	}
	// A nonzero from streams a replay during the round trip below:
	// backlog the current generation's pump around it, exactly as
	// resubscribe does, so a replay longer than the Client's event
	// buffer is not silently truncated.
	if from > 0 {
		rc.cur.ClearFirstDropped()
		//pubsub:allow locksafe -- bounded wait: the pump's select always reaches the ctl receive, and curDone unblocks it if the pump died
		signalPump(rc.curCtl, true, rc.curDone)
	}
	//pubsub:allow locksafe -- the round trip stays under rc.mu to keep the replay set consistent with the server
	sid, err := rc.cur.SubscribeFrom(from, owned...)
	if from > 0 {
		if _, overflowed := rc.cur.FirstDropped(); overflowed && err == nil {
			// The replay overflowed the Client's buffer: retire the
			// connection while the pump is still backlogged. Its exit
			// flush delivers the loss-free prefix, and the redial loop
			// resumes this subscription just past it — the registration
			// below keeps it in the replay set.
			_ = rc.cur.Close()
		} else {
			//pubsub:allow locksafe -- bounded wait: the pump's select always reaches the ctl receive, and curDone unblocks it if the pump died
			signalPump(rc.curCtl, false, rc.curDone)
		}
	}
	if err != nil {
		return 0, err
	}
	id := rc.nextID
	rc.nextID++
	rc.subs[id] = &rsub{rects: owned, serverID: sid, resume: resume, from: from}
	return id, nil
}

// Unsubscribe cancels a subscription by its local handle. The handle is
// removed from the replay set immediately — a cancelled subscription is
// never replayed by a later reconnect — and the cancel is forwarded to
// the server best-effort: if the connection happens to be down, the
// server-side subscription dies with it anyway.
func (rc *ReconnectingClient) Unsubscribe(handle int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return fmt.Errorf("wire: client closed")
	}
	rs, ok := rc.subs[handle]
	if !ok {
		return fmt.Errorf("wire: no subscription with handle %d", handle)
	}
	delete(rc.subs, handle)
	//pubsub:allow locksafe -- best-effort round trip under rc.mu keeps the replay set consistent
	_ = rc.cur.Unsubscribe(rs.serverID) // best-effort on a possibly dead conn
	return nil
}

// Publish forwards to the current connection. It fails while
// disconnected (no offline queueing).
func (rc *ReconnectingClient) Publish(p geometry.Point, payload []byte) (int, error) {
	rc.mu.Lock()
	cli := rc.cur
	closed := rc.closed
	rc.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("wire: client closed")
	}
	return cli.Publish(p, payload)
}

// Events returns the merged event stream across reconnects. It closes
// only on Close.
func (rc *ReconnectingClient) Events() <-chan broker.Event { return rc.events }

// Dropped reports events lost client-side: merged-buffer overflow plus
// per-connection buffer overflow, accumulated across generations. The
// count may briefly double-count the dying generation mid-reconnect,
// and includes replay overflow that a later resume refetched — it is a
// congestion signal, not a count of events the application missed.
func (rc *ReconnectingClient) Dropped() uint64 {
	rc.mu.Lock()
	cur := rc.cur
	rc.mu.Unlock()
	d := rc.dropped.Load()
	if cur != nil {
		d += cur.Dropped()
	}
	return d
}

// LastSeq reports the highest Seq delivered to the application across
// all connection generations — the resume high-water mark: a reconnect
// replays from one past it.
func (rc *ReconnectingClient) LastSeq() uint64 { return rc.lastSeq.Load() }

// FirstDropped delegates to the current connection generation: the Seq
// of the first event its buffer dropped since the last clear, and
// whether one was. Past generations' drops are folded into Dropped.
func (rc *ReconnectingClient) FirstDropped() (uint64, bool) {
	rc.mu.Lock()
	cur := rc.cur
	rc.mu.Unlock()
	if cur == nil {
		return 0, false
	}
	return cur.FirstDropped()
}

// ClearFirstDropped resets the current generation's first-drop mark.
func (rc *ReconnectingClient) ClearFirstDropped() {
	rc.mu.Lock()
	cur := rc.cur
	rc.mu.Unlock()
	if cur != nil {
		cur.ClearFirstDropped()
	}
}

// Close stops reconnection and tears down the current connection.
func (rc *ReconnectingClient) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	cli := rc.cur
	rc.mu.Unlock()

	close(rc.done)
	err := cli.Close()
	rc.wg.Wait()
	close(rc.events)
	return err
}
