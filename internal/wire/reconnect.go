package wire

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
)

// ReconnectOptions tune a ReconnectingClient. The zero value is usable.
type ReconnectOptions struct {
	// InitialBackoff is the first retry delay. Zero selects 100ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential retry delay. Zero selects 5s.
	MaxBackoff time.Duration
}

func (o ReconnectOptions) withDefaults() ReconnectOptions {
	if o.InitialBackoff == 0 {
		o.InitialBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 5 * time.Second
	}
	return o
}

// ReconnectingClient wraps Client with automatic redial: when the
// connection drops it reconnects with exponential backoff and replays
// every live subscription. Events from all connection generations are
// merged into one channel. Delivery is at-most-once per connection
// generation — events published while disconnected are lost, like any
// pub-sub subscriber that was offline.
type ReconnectingClient struct {
	addr string
	opts ReconnectOptions

	mu     sync.Mutex
	cur    *Client
	subs   map[int][]geometry.Rect // local handle -> rectangles
	nextID int
	closed bool

	events chan broker.Event
	done   chan struct{}
	wg     sync.WaitGroup
}

// DialReconnecting creates a reconnecting client. The initial dial is
// synchronous so misconfiguration fails fast; subsequent drops are
// handled in the background.
func DialReconnecting(addr string, opts ReconnectOptions) (*ReconnectingClient, error) {
	rc := &ReconnectingClient{
		addr:   addr,
		opts:   opts.withDefaults(),
		subs:   make(map[int][]geometry.Rect),
		events: make(chan broker.Event, 1024),
		done:   make(chan struct{}),
	}
	cli, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc.cur = cli
	rc.wg.Add(1)
	go rc.run(cli)
	return rc, nil
}

// run pumps events from the current connection and redials when it dies.
func (rc *ReconnectingClient) run(cli *Client) {
	defer rc.wg.Done()
	for {
		// Pump this connection until its event channel closes.
		for ev := range cli.Events() {
			select {
			case rc.events <- ev:
			case <-rc.done:
				return
			default:
				// Merged buffer full: drop, matching Client semantics.
			}
		}
		_ = cli.Close()

		// Reconnect with backoff.
		backoff := rc.opts.InitialBackoff
		for {
			select {
			case <-rc.done:
				return
			case <-time.After(backoff):
			}
			next, err := Dial(rc.addr)
			if err != nil {
				backoff *= 2
				if backoff > rc.opts.MaxBackoff {
					backoff = rc.opts.MaxBackoff
				}
				continue
			}
			if rc.resubscribe(next) {
				cli = next
				break
			}
			_ = next.Close()
		}
	}
}

// resubscribe replays all live subscriptions on a fresh connection and
// installs it as current. It reports success.
func (rc *ReconnectingClient) resubscribe(cli *Client) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return false
	}
	for _, rects := range rc.subs {
		if _, err := cli.Subscribe(rects...); err != nil {
			return false
		}
	}
	rc.cur = cli
	return true
}

// Subscribe registers a subscription that survives reconnects. It
// returns a local handle (stable across redials, unlike server IDs).
func (rc *ReconnectingClient) Subscribe(rects ...geometry.Rect) (int, error) {
	if len(rects) == 0 {
		return 0, fmt.Errorf("wire: subscription needs at least one rectangle")
	}
	owned := make([]geometry.Rect, len(rects))
	for i, r := range rects {
		owned[i] = r.Clone()
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return 0, fmt.Errorf("wire: client closed")
	}
	if _, err := rc.cur.Subscribe(owned...); err != nil {
		return 0, err
	}
	id := rc.nextID
	rc.nextID++
	rc.subs[id] = owned
	return id, nil
}

// Publish forwards to the current connection. It fails while
// disconnected (no offline queueing).
func (rc *ReconnectingClient) Publish(p geometry.Point, payload []byte) (int, error) {
	rc.mu.Lock()
	cli := rc.cur
	closed := rc.closed
	rc.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("wire: client closed")
	}
	return cli.Publish(p, payload)
}

// Events returns the merged event stream across reconnects. It closes
// only on Close.
func (rc *ReconnectingClient) Events() <-chan broker.Event { return rc.events }

// Close stops reconnection and tears down the current connection.
func (rc *ReconnectingClient) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	cli := rc.cur
	rc.mu.Unlock()

	close(rc.done)
	err := cli.Close()
	rc.wg.Wait()
	close(rc.events)
	return err
}
