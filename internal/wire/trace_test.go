package wire

import (
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geometry"
	"repro/internal/telemetry"
)

// One wire-crossing publication must yield a correlated trace across
// both processes' recorders: client-publish on the sending side;
// ingest, match, decision, deliver and the publish summary on the
// server; client-recv on the receiving side — all under the trace id
// PublishTraced returned.
func TestWireTraceRoundTrip(t *testing.T) {
	serverRec := telemetry.NewRecorder(1024)
	b := broker.New(broker.Options{Recorder: serverRec})
	defer b.Close()
	s := NewServerWith(b, ServerOptions{Recorder: serverRec})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()

	clientRec := telemetry.NewRecorder(1024)
	sub, err := DialWith(ln.Addr().String(), ClientOptions{Recorder: clientRec})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := DialWith(ln.Addr().String(), ClientOptions{Recorder: clientRec})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if _, err := sub.Subscribe(geometry.NewRect(0, 10, 0, 10)); err != nil {
		t.Fatal(err)
	}
	n, trace, err := pub.PublishTraced(geometry.Point{5, 5}, []byte("tick"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered = %d, want 1", n)
	}
	if trace == 0 {
		t.Fatal("PublishTraced returned a zero trace id")
	}

	// The event crossing back carries the same trace id.
	select {
	case ev := <-sub.Events():
		if ev.TraceID != trace {
			t.Fatalf("event trace = %x, want %x", ev.TraceID, trace)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event within deadline")
	}

	// Server-side chain, correlated under the client's id.
	wantServer := []telemetry.RecordKind{
		telemetry.KindIngest,
		telemetry.KindMatch,
		telemetry.KindDecision,
		telemetry.KindDeliver,
		telemetry.KindPublish,
	}
	got := map[telemetry.RecordKind]int{}
	for _, r := range serverRec.SnapshotFilter(trace, telemetry.KindNone, 0) {
		got[r.Kind]++
	}
	for _, k := range wantServer {
		if got[k] != 1 {
			t.Errorf("server records for trace: %s = %d, want 1 (all: %v)", k, got[k], got)
		}
	}

	// Client-side bookends. The receive record lands asynchronously in
	// the subscriber's read loop, so poll briefly.
	if recs := clientRec.SnapshotFilter(trace, telemetry.KindClientPublish, 0); len(recs) != 1 {
		t.Errorf("client publish records = %d, want 1", len(recs))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if recs := clientRec.SnapshotFilter(trace, telemetry.KindClientRecv, 0); len(recs) == 1 {
			if recs[0].Args[1] != int64(len("tick")) {
				t.Errorf("client recv payload_bytes = %d, want %d", recs[0].Args[1], len("tick"))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no client-recv record within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
