package wire

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/faultnet"
	"repro/internal/geometry"
)

// chaosHarness is a broker server behind a fault-injecting network plus
// a reconnecting client with live subscriptions.
type chaosHarness struct {
	fn   *faultnet.Network
	b    *broker.Broker
	srv  *Server
	rc   *ReconnectingClient
	addr string
}

func startChaos(t *testing.T, fopts faultnet.Options, sopts ServerOptions) *chaosHarness {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fn := faultnet.New(fopts)
	h := &chaosHarness{
		fn:   fn,
		b:    broker.New(broker.Options{}),
		addr: inner.Addr().String(),
	}
	h.srv = NewServerWith(h.b, sopts)
	go func() { _ = h.srv.Serve(fn.Listen(inner)) }()

	h.rc, err = DialReconnecting(h.addr, ReconnectOptions{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     200 * time.Millisecond,
		Jitter:         0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// publishDelivered publishes through the reconnecting client until the
// publish succeeds, returning the delivery count.
func (h *chaosHarness) publishDelivered(t *testing.T, p geometry.Point, payload []byte) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := h.rc.Publish(p, payload)
		if err == nil {
			return n
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// publishUntilReceived publishes uniquely-tagged events at p until one
// round-trips back on the merged event stream. Retrying end to end makes
// the check robust to the transient window where a dying connection
// generation's subscriptions still absorb a delivery.
func (h *chaosHarness) publishUntilReceived(t *testing.T, p geometry.Point, prefix string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for seq := 0; ; seq++ {
		payload := fmt.Sprintf("%s-%d", prefix, seq)
		n, err := h.rc.Publish(p, []byte(payload))
		if err == nil && n >= 1 {
			wait := time.After(700 * time.Millisecond)
		recv:
			for {
				select {
				case ev := <-h.rc.Events():
					if string(ev.Payload) == payload {
						return
					}
					// stale retries of earlier sequence numbers drain here
				case <-wait:
					break recv
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q event ever received (last err %v)", prefix, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosReconnectSurvivesRepeatedResets is the acceptance scenario:
// under injected latency, chunked writes and repeated mid-stream resets
// the reconnecting client must replay every live subscription (and never
// a cancelled one) and keep receiving post-reconnect events, and the
// whole stack must shut down without leaking goroutines.
func TestChaosReconnectSurvivesRepeatedResets(t *testing.T) {
	base := runtime.NumGoroutine()
	h := startChaos(t,
		faultnet.Options{Seed: 42, Latency: 200 * time.Microsecond, MaxWriteChunk: 7},
		ServerOptions{WriteTimeout: 2 * time.Second, IdleTimeout: 5 * time.Second},
	)

	if _, err := h.rc.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.rc.Subscribe(geometry.NewRect(20, 30)); err != nil {
		t.Fatal(err)
	}
	cancelled, err := h.rc.Subscribe(geometry.NewRect(40, 50))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.rc.Unsubscribe(cancelled); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 4; round++ {
		if killed := h.fn.ResetAll(); killed == 0 {
			t.Fatalf("round %d: no connections to reset", round)
		}
		// The client must redial and replay exactly the two live
		// subscriptions — the cancelled handle stays gone.
		waitFor(t, fmt.Sprintf("round %d resubscribe", round), 10*time.Second, func() bool {
			return h.b.Stats().Subscriptions == 2
		})

		h.publishUntilReceived(t, geometry.Point{5}, fmt.Sprintf("round-%d", round))

		// The cancelled subscription's rectangle matches nobody.
		if n := h.publishDelivered(t, geometry.Point{45}, nil); n != 0 {
			t.Fatalf("round %d: cancelled subscription still live (n=%d)", round, n)
		}
	}

	// Bounded drops: the merged client buffer was never saturated, so
	// nothing was lost client-side on top of the at-most-once gaps
	// around each reset.
	if got := h.rc.Dropped(); got != 0 {
		t.Errorf("client dropped %d events", got)
	}

	if err := h.rc.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under faults: %v", err)
	}
	h.b.Close()
	checkGoroutines(t, base)
}

// TestChaosPartitionEvictionAndRecovery partitions the network long
// enough for the server's idle timeout to evict the half-open peer,
// heals it, and requires full recovery (replayed subscriptions, flowing
// events).
func TestChaosPartitionEvictionAndRecovery(t *testing.T) {
	base := runtime.NumGoroutine()
	h := startChaos(t,
		faultnet.Options{Seed: 7},
		ServerOptions{WriteTimeout: time.Second, IdleTimeout: 100 * time.Millisecond},
	)
	if _, err := h.rc.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}

	h.fn.Partition()
	// The server must evict the unreachable peer via its idle timeout.
	waitFor(t, "partitioned peer eviction", 5*time.Second, func() bool {
		return h.b.Stats().Subscriptions == 0
	})
	h.fn.Heal()

	// After healing, the client redials and replays the subscription.
	waitFor(t, "post-partition resubscribe", 10*time.Second, func() bool {
		return h.b.Stats().Subscriptions == 1
	})
	h.publishUntilReceived(t, geometry.Point{5}, "healed")

	if err := h.rc.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	h.b.Close()
	checkGoroutines(t, base)
}

// TestChaosThrottledFloodHasBoundedDrops pushes a burst through a
// bandwidth-capped, chunk-mangled network and checks the accounting
// invariant: everything published is either delivered to the client or
// counted as dropped somewhere — no events silently vanish.
func TestChaosThrottledFloodHasBoundedDrops(t *testing.T) {
	h := startChaos(t,
		faultnet.Options{Seed: 11, MaxWriteChunk: 9, BandwidthBPS: 1 << 20},
		ServerOptions{WriteTimeout: 5 * time.Second},
	)
	defer func() {
		h.rc.Close()
		h.srv.Close()
		h.b.Close()
	}()

	if _, err := h.rc.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	const burst = 300
	for i := 0; i < burst; i++ {
		if n := h.publishDelivered(t, geometry.Point{5}, []byte{byte(i)}); n != 1 {
			t.Fatalf("publish %d delivered to %d", i, n)
		}
	}
	received := 0
	timeout := time.After(15 * time.Second)
	for received < burst {
		select {
		case <-h.rc.Events():
			received++
		case <-timeout:
			st := h.b.Stats()
			total := received + int(st.Dropped) + int(h.rc.Dropped())
			if total < burst {
				t.Fatalf("unaccounted loss: received %d + broker drops %d + client drops %d < %d",
					received, st.Dropped, h.rc.Dropped(), burst)
			}
			return // all loss accounted for by drop counters
		}
	}
	if st := h.b.Stats(); st.Delivered != burst {
		t.Errorf("broker delivered %d, want %d", st.Delivered, burst)
	}
}
