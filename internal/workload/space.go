package workload

import (
	"fmt"

	"repro/internal/geometry"
)

// Space describes a finite event space: named dimensions and the domain
// rectangle that all subscriptions are clamped to.
type Space struct {
	Names  []string
	Domain geometry.Rect
}

// Dims reports the dimensionality.
func (s Space) Dims() int { return len(s.Names) }

// Validate checks internal consistency.
func (s Space) Validate() error {
	if len(s.Names) == 0 {
		return fmt.Errorf("workload: space has no dimensions")
	}
	if len(s.Names) != s.Domain.Dims() {
		return fmt.Errorf("workload: %d names but %d domain dimensions", len(s.Names), s.Domain.Dims())
	}
	if s.Domain.Empty() {
		return fmt.Errorf("workload: empty domain %v", s.Domain)
	}
	return nil
}

// Stock-space constants. The paper's event space is
// {bst, name, quote, volume}. The categorical bst attribute (buy, sell,
// transaction) is linearised onto (0,3] — B=(0,1], S=(1,2], T=(2,3] —
// following the paper's observation that "even attributes such as name
// ... can be indexed and therefore linearized". The remaining attributes
// live on (0,20], wide enough for the published subscription centers
// (name: 3/10/17 +/- 4; quote/volume: around 9).
const (
	// DimBST etc. index the stock space's dimensions.
	DimBST = iota
	DimName
	DimQuote
	DimVolume
)

// BST attribute values on the linearised axis.
const (
	BSTBuy         = 0.5 // center of (0,1]
	BSTSell        = 1.5 // center of (1,2]
	BSTTransaction = 2.5 // center of (2,3]
)

// StockSpace returns the paper's four-dimensional stock event space.
func StockSpace() Space {
	return Space{
		Names:  []string{"bst", "name", "quote", "volume"},
		Domain: geometry.NewRect(0, 3, 0, 20, 0, 20, 0, 20),
	}
}
