package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geometry"
	"repro/internal/topology"
)

func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	return topology.MustGenerate(topology.DefaultConfig(), rand.New(rand.NewSource(2003)))
}

func TestStockSpace(t *testing.T) {
	s := StockSpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Dims() != 4 {
		t.Fatalf("dims = %d, want 4", s.Dims())
	}
	if s.Names[DimQuote] != "quote" || s.Names[DimVolume] != "volume" {
		t.Errorf("dimension names wrong: %v", s.Names)
	}
	if !s.Domain.Contains(geometry.Point{BSTBuy, 10, 9, 9}) {
		t.Error("domain does not contain a typical event")
	}
}

func TestSpaceValidate(t *testing.T) {
	bad := []Space{
		{},
		{Names: []string{"a"}, Domain: geometry.NewRect(0, 1, 0, 1)},
		{Names: []string{"a"}, Domain: geometry.NewRect(1, 1)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("space %d accepted", i)
		}
	}
}

func TestIntervalParamsTable(t *testing.T) {
	// The Section 5 parameter table, verbatim.
	price, volume := PriceParams(), VolumeParams()
	if price.Q0 != 0.15 || volume.Q0 != 0.35 {
		t.Errorf("q0: price %v volume %v, want 0.15 / 0.35", price.Q0, volume.Q0)
	}
	if price.Q1 != 0.1 || price.Q2 != 0.1 || volume.Q1 != 0.1 || volume.Q2 != 0.1 {
		t.Error("q1/q2 must be 0.1")
	}
	for _, p := range []IntervalParams{price, volume} {
		if p.Mu1 != 9 || p.Sigma1 != 1 || p.Mu2 != 9 || p.Sigma2 != 1 || p.Mu3 != 9 || p.Sigma3 != 2 {
			t.Errorf("mu/sigma wrong: %+v", p)
		}
		if p.ParetoScale != 4 || p.ParetoAlpha != 1 {
			t.Errorf("Pareto params wrong: %+v", p)
		}
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestIntervalParamsValidate(t *testing.T) {
	bad := PriceParams()
	bad.Q0 = 0.9
	bad.Q1 = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("probability sum > 1 accepted")
	}
	bad = PriceParams()
	bad.ParetoScale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Pareto scale accepted")
	}
	bad = PriceParams()
	bad.Sigma3 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sigma accepted")
	}
}

func TestSampleIntervalShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	domain := geometry.Interval{Lo: 0, Hi: 20}
	p := PriceParams()
	sawFull, sawHalfUp, sawHalfDown, sawBounded := false, false, false, false
	for i := 0; i < 5000; i++ {
		iv := p.SampleInterval(rng, domain)
		if iv.Empty() {
			continue // clamped away; the generator resamples these
		}
		switch {
		case iv == domain:
			sawFull = true
		case iv.Hi == domain.Hi && iv.Lo > domain.Lo:
			sawHalfUp = true
		case iv.Lo == domain.Lo && iv.Hi < domain.Hi:
			sawHalfDown = true
		default:
			sawBounded = true
		}
		if iv.Lo < domain.Lo || iv.Hi > domain.Hi {
			t.Fatalf("interval %v escapes domain", iv)
		}
	}
	if !sawFull || !sawHalfUp || !sawHalfDown || !sawBounded {
		t.Errorf("interval shapes: full=%v up=%v down=%v bounded=%v — all four should occur",
			sawFull, sawHalfUp, sawHalfDown, sawBounded)
	}
}

func TestSampleIntervalWildcardRate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	domain := geometry.Interval{Lo: 0, Hi: 20}
	v := VolumeParams() // q0 = 0.35
	full := 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		if v.SampleInterval(rng, domain) == domain {
			full++
		}
	}
	frac := float64(full) / samples
	// Wildcards plus the occasional clamped-to-full long interval: the
	// rate must be at least q0 and not wildly above it.
	if frac < 0.34 || frac > 0.60 {
		t.Errorf("full-domain rate %v implausible for q0=0.35", frac)
	}
}

func TestGenerateSubscriptions(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultSubscriptionConfig()
	subs, err := GenerateSubscriptions(g, StockSpace(), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != cfg.Count {
		t.Fatalf("got %d subscriptions, want %d", len(subs), cfg.Count)
	}
	space := StockSpace()
	blockCounts := map[int]int{}
	nodeSet := map[int]bool{}
	for i, s := range subs {
		if s.ID != i {
			t.Fatalf("subscription %d has ID %d", i, s.ID)
		}
		if s.Rect.Empty() {
			t.Fatalf("subscription %d is empty: %v", i, s.Rect)
		}
		if !space.Domain.ContainsRect(s.Rect) {
			t.Fatalf("subscription %d escapes the domain: %v", i, s.Rect)
		}
		node := g.Node(s.Node)
		if node.Role != topology.RoleStub {
			t.Fatalf("subscription %d placed on a transit node", i)
		}
		if node.Block != s.Block {
			t.Fatalf("subscription %d block mismatch: %d vs %d", i, node.Block, s.Block)
		}
		// bst must be exactly one category.
		if l := s.Rect[DimBST].Length(); l != 1 {
			t.Fatalf("subscription %d bst interval %v not one category", i, s.Rect[DimBST])
		}
		blockCounts[s.Block]++
		nodeSet[s.Node] = true
	}
	// 40/30/30 split.
	if got := blockCounts[0]; got < 380 || got > 420 {
		t.Errorf("block 0 has %d subscriptions, want ~400", got)
	}
	for b := 1; b <= 2; b++ {
		if got := blockCounts[b]; got < 280 || got > 320 {
			t.Errorf("block %d has %d subscriptions, want ~300", b, got)
		}
	}
	// Zipf placement concentrates subscribers: far fewer distinct nodes
	// than subscriptions, but more than a handful.
	if len(nodeSet) < 20 || len(nodeSet) >= len(subs) {
		t.Errorf("subscriptions on %d distinct nodes; want Zipf concentration", len(nodeSet))
	}
}

func TestGenerateSubscriptionsNameCentersFollowBlocks(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultSubscriptionConfig()
	subs, err := GenerateSubscriptions(g, StockSpace(), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := map[int]float64{}
	n := map[int]int{}
	for _, s := range subs {
		sum[s.Block] += s.Rect[DimName].Center()
		n[s.Block]++
	}
	for b, want := range cfg.NameBlockMeans {
		got := sum[b] / float64(n[b])
		// Clamping pulls edge blocks inward; allow a wide tolerance.
		if math.Abs(got-want) > 2.5 {
			t.Errorf("block %d mean name center %v, want ~%v", b, got, want)
		}
	}
}

func TestGenerateSubscriptionsValidation(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(11))
	space := StockSpace()

	cfg := DefaultSubscriptionConfig()
	cfg.Count = 0
	if _, err := GenerateSubscriptions(g, space, cfg, rng); err == nil {
		t.Error("zero count accepted")
	}

	cfg = DefaultSubscriptionConfig()
	cfg.BlockShares = []float64{0.5, 0.5}
	if _, err := GenerateSubscriptions(g, space, cfg, rng); err == nil {
		t.Error("wrong share count accepted")
	}

	cfg = DefaultSubscriptionConfig()
	cfg.BlockShares = []float64{0.5, 0.3, 0.3}
	if _, err := GenerateSubscriptions(g, space, cfg, rng); err == nil {
		t.Error("shares not summing to 1 accepted")
	}

	cfg = DefaultSubscriptionConfig()
	cfg.BSTProbs = [3]float64{1, 1, 1}
	if _, err := GenerateSubscriptions(g, space, cfg, rng); err == nil {
		t.Error("bst probs not summing to 1 accepted")
	}

	bad := Space{Names: []string{"x"}, Domain: geometry.NewRect(0, 1)}
	if _, err := GenerateSubscriptions(g, bad, DefaultSubscriptionConfig(), rng); err == nil {
		t.Error("non-4d space accepted")
	}
}

func TestPublicationModels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, modes := range []int{1, 4, 9} {
		m, err := StockPublications(modes)
		if err != nil {
			t.Fatalf("modes=%d: %v", modes, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("modes=%d: %v", modes, err)
		}
		pts := m.SampleN(rng, 1000)
		if len(pts) != 1000 {
			t.Fatalf("SampleN returned %d", len(pts))
		}
		for _, p := range pts {
			if p.Dims() != 4 {
				t.Fatalf("modes=%d: publication %v not 4-dim", modes, p)
			}
		}
	}
	if _, err := StockPublications(2); err == nil {
		t.Error("modes=2 accepted")
	}
}

func TestPublicationModesAreMultimodal(t *testing.T) {
	// The 4-mode model's quote dimension mixes N(4,2) and N(16,2): both
	// halves must receive substantial mass, unlike the 1-mode N(9,2).
	rng := rand.New(rand.NewSource(13))
	m4 := MustStockPublications(4)
	low, high := 0, 0
	for i := 0; i < 10000; i++ {
		q := m4.Sample(rng)[DimQuote]
		if q < 10 {
			low++
		} else {
			high++
		}
	}
	if low < 4000 || high < 4000 {
		t.Errorf("4-mode quote split %d/%d, want roughly even bimodal", low, high)
	}
}

func TestCellProb(t *testing.T) {
	m := PublicationModel{Dims: []Dist1D{Normal{Mu: 0, Sigma: 1}, Normal{Mu: 0, Sigma: 1}}}
	// Central cell: P(-1<X<=1)^2 ~ 0.6827^2.
	cell := geometry.NewRect(-1, 1, -1, 1)
	want := 0.6827 * 0.6827
	if got := m.CellProb(cell); math.Abs(got-want) > 1e-3 {
		t.Errorf("CellProb = %v, want ~%v", got, want)
	}
	if got := m.CellProb(geometry.NewRect(-1, 1)); got != 0 {
		t.Errorf("dim-mismatch CellProb = %v, want 0", got)
	}
	if got := m.CellProb(geometry.NewRect(5, 5, -1, 1)); got != 0 {
		t.Errorf("empty cell CellProb = %v, want 0", got)
	}
}

func TestCellProbMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := MustStockPublications(9)
	cell := geometry.NewRect(0, 2, 8, 14, 2, 6, 3, 15)
	want := m.CellProb(cell)
	hits := 0
	const samples = 200000
	for i := 0; i < samples; i++ {
		if cell.Contains(m.Sample(rng)) {
			hits++
		}
	}
	got := float64(hits) / samples
	if math.Abs(got-want) > 0.005 {
		t.Errorf("empirical cell prob %v, analytic %v", got, want)
	}
}

func TestGenerateTape(t *testing.T) {
	cfg := DefaultTapeConfig()
	cfg.Trades = 20000
	trades, err := GenerateTape(cfg, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	if len(trades) != cfg.Trades {
		t.Fatalf("got %d trades", len(trades))
	}
	sum := 0.0
	for _, tr := range trades {
		if tr.Price <= 0 || tr.OpenPrice <= 0 || tr.Amount < cfg.AmountScale {
			t.Fatalf("implausible trade %+v", tr)
		}
		sum += tr.NormalizedPrice()
	}
	if meanPrice := sum / float64(len(trades)); math.Abs(meanPrice-1) > 0.01 {
		t.Errorf("mean normalized price %v, want ~1", meanPrice)
	}
}

func TestGenerateTapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	bad := []TapeConfig{
		{},
		{Stocks: 10, Trades: 0, PriceSigma: 0.1, AmountScale: 1, AmountAlpha: 1},
		{Stocks: 10, Trades: 10, PriceSigma: 0, AmountScale: 1, AmountAlpha: 1},
		{Stocks: 10, Trades: 10, PriceSigma: 0.1, AmountScale: 0, AmountAlpha: 1},
	}
	for i, cfg := range bad {
		if _, err := GenerateTape(cfg, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTradeCountsZipfShape(t *testing.T) {
	cfg := DefaultTapeConfig()
	trades, err := GenerateTape(cfg, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	counts := TradeCounts(trades, cfg.Stocks)
	if len(counts) == 0 {
		t.Fatal("no counts")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("counts not sorted at %d", i)
		}
	}
	// Zipf: the most popular stock has far more trades than the median.
	if counts[0] < 5*counts[len(counts)/2] {
		t.Errorf("top count %d vs median %d: not Zipf-like", counts[0], counts[len(counts)/2])
	}
}

func TestTopStocks(t *testing.T) {
	trades := []Trade{
		{Stock: 2}, {Stock: 2}, {Stock: 2},
		{Stock: 0}, {Stock: 0},
		{Stock: 1},
	}
	got := TopStocks(trades, 3, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("TopStocks = %v, want [2 0]", got)
	}
	if got := TopStocks(trades, 3, 10); len(got) != 3 {
		t.Errorf("k beyond stocks: %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultSubscriptionConfig()
	a, err := GenerateSubscriptions(g, StockSpace(), cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSubscriptions(g, StockSpace(), cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Node != b[i].Node || !a[i].Rect.Equal(b[i].Rect) {
			t.Fatalf("subscription %d differs across identical seeds", i)
		}
	}
}

func TestPublisherModels(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	if _, err := UniformPublishers(nil); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := ZipfPublishers(nil, 1, rng); err == nil {
		t.Error("empty zipf node set accepted")
	}
	nodes := []int{5, 9, 13, 17}
	uni, err := UniformPublishers(nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 40000; i++ {
		counts[uni.Pick(rng)]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / 40000
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("node %d frequency %v, want ~0.25", n, frac)
		}
	}
	zipf, err := ZipfPublishers(nodes, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts = map[int]int{}
	for i := 0; i < 40000; i++ {
		counts[zipf.Pick(rng)]++
	}
	// Zipf: most popular node dominates the least popular.
	max, min := 0, 1<<30
	for _, n := range nodes {
		if counts[n] > max {
			max = counts[n]
		}
		if counts[n] < min {
			min = counts[n]
		}
	}
	if max < 3*min {
		t.Errorf("zipf spread max=%d min=%d not skewed", max, min)
	}
	got := zipf.Nodes()
	got[0] = -1
	if zipf.nodes[0] == -1 {
		t.Error("Nodes() aliased internal slice")
	}
}
