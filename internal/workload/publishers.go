package workload

import (
	"fmt"
	"math/rand"
)

// PublisherModel selects the publishing node of each event. The paper
// only states that publishers form a subset V_P of the nodes; this model
// supports both uniform selection and Zipf-weighted popularity (a few
// sources emit most events — the analogue of its finding that stock
// popularity is Zipf-like).
type PublisherModel struct {
	nodes   []int
	weights []float64
}

// UniformPublishers selects uniformly among the given nodes.
func UniformPublishers(nodes []int) (*PublisherModel, error) {
	return newPublisherModel(nodes, nil)
}

// ZipfPublishers assigns Zipf(theta) popularity to the nodes in random
// rank order.
func ZipfPublishers(nodes []int, theta float64, rng *rand.Rand) (*PublisherModel, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workload: no publisher nodes")
	}
	return newPublisherModel(nodes, ShuffledZipf(rng, len(nodes), theta))
}

func newPublisherModel(nodes []int, weights []float64) (*PublisherModel, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workload: no publisher nodes")
	}
	if weights != nil && len(weights) != len(nodes) {
		return nil, fmt.Errorf("workload: %d weights for %d nodes", len(weights), len(nodes))
	}
	m := &PublisherModel{nodes: append([]int(nil), nodes...)}
	if weights != nil {
		m.weights = append([]float64(nil), weights...)
	}
	return m, nil
}

// Pick draws one publisher node.
func (m *PublisherModel) Pick(rng *rand.Rand) int {
	if m.weights == nil {
		return m.nodes[rng.Intn(len(m.nodes))]
	}
	return m.nodes[SampleIndex(rng, m.weights)]
}

// Nodes returns the candidate publisher nodes.
func (m *PublisherModel) Nodes() []int {
	return append([]int(nil), m.nodes...)
}
