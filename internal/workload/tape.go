package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Trade is one synthetic stock trade. It stands in for a record of the
// NYSE tape the paper analysed (September 24, 1999): the paper used that
// data only to justify its simulation distributions, so the generator's
// ground truth is exactly the model the paper fitted — normal normalized
// prices, Zipf-like per-stock trade counts and Pareto trade amounts.
type Trade struct {
	// Stock is the stock's index; lower indices are (in expectation) more
	// heavily traded before rank shuffling.
	Stock int
	// Price is the trade price.
	Price float64
	// OpenPrice is the stock's opening price, used to normalise.
	OpenPrice float64
	// Amount is the dollar amount of the trade.
	Amount float64
}

// NormalizedPrice returns Price/OpenPrice, the quantity plotted in
// Figure 4(a).
func (t Trade) NormalizedPrice() float64 { return t.Price / t.OpenPrice }

// TapeConfig parameterises the synthetic trade tape.
type TapeConfig struct {
	// Stocks is the number of distinct stocks.
	Stocks int
	// Trades is the number of trades generated.
	Trades int
	// PopularityTheta is the Zipf exponent of per-stock trade counts.
	PopularityTheta float64
	// PriceSigma is the standard deviation of the normalized price
	// (prices move a few percent intraday: Figure 4(a) is a tight bell
	// around 1.0).
	PriceSigma float64
	// AmountScale and AmountAlpha parameterise the Pareto trade-amount
	// distribution.
	AmountScale float64
	AmountAlpha float64
}

// DefaultTapeConfig returns a tape shaped like the paper's data study.
func DefaultTapeConfig() TapeConfig {
	return TapeConfig{
		Stocks:          500,
		Trades:          50000,
		PopularityTheta: 1.0,
		PriceSigma:      0.03,
		AmountScale:     1000,
		AmountAlpha:     1.2,
	}
}

// Validate checks the configuration.
func (c TapeConfig) Validate() error {
	switch {
	case c.Stocks <= 0:
		return fmt.Errorf("workload: tape needs stocks > 0, got %d", c.Stocks)
	case c.Trades <= 0:
		return fmt.Errorf("workload: tape needs trades > 0, got %d", c.Trades)
	case c.PriceSigma <= 0:
		return fmt.Errorf("workload: tape needs price sigma > 0, got %v", c.PriceSigma)
	case c.AmountScale <= 0 || c.AmountAlpha <= 0:
		return fmt.Errorf("workload: invalid amount Pareto(%v, %v)", c.AmountScale, c.AmountAlpha)
	}
	return nil
}

// GenerateTape produces a synthetic day of trading.
func GenerateTape(cfg TapeConfig, rng *rand.Rand) ([]Trade, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	popularity := ZipfWeights(cfg.Stocks, cfg.PopularityTheta)
	// Opening prices: lognormal-ish spread across stocks.
	open := make([]float64, cfg.Stocks)
	for i := range open {
		open[i] = 20 * math.Exp(rng.NormFloat64()*0.8)
	}
	amount := Pareto{C: cfg.AmountScale, Alpha: cfg.AmountAlpha}
	price := Normal{Mu: 1, Sigma: cfg.PriceSigma}

	trades := make([]Trade, cfg.Trades)
	for i := range trades {
		s := SampleIndex(rng, popularity)
		norm := price.Sample(rng)
		if norm <= 0 {
			norm = 0.01
		}
		trades[i] = Trade{
			Stock:     s,
			Price:     open[s] * norm,
			OpenPrice: open[s],
			Amount:    amount.Sample(rng),
		}
	}
	return trades, nil
}

// TradeCounts returns per-stock trade counts sorted in decreasing order —
// the series of Figure 4(b), trade frequency against popularity index.
func TradeCounts(trades []Trade, stocks int) []int {
	counts := make([]int, stocks)
	for _, t := range trades {
		if t.Stock >= 0 && t.Stock < stocks {
			counts[t.Stock]++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	// Trim trailing zero-trade stocks.
	for len(counts) > 0 && counts[len(counts)-1] == 0 {
		counts = counts[:len(counts)-1]
	}
	return counts
}

// TopStocks returns the indices of the k most-traded stocks, most traded
// first — the subjects of Figure 5.
func TopStocks(trades []Trade, stocks, k int) []int {
	counts := make([]int, stocks)
	for _, t := range trades {
		if t.Stock >= 0 && t.Stock < stocks {
			counts[t.Stock]++
		}
	}
	idx := make([]int, stocks)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
