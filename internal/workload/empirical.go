package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geometry"
)

// Empirical is a one-dimensional distribution estimated from a sample:
// a piecewise-linear CDF over an equal-width histogram. It lets the
// clustering stage run on observed publication traffic when no analytic
// model is available (the paper assumes the density p(.) is known; in
// deployment it must be estimated).
type Empirical struct {
	lo, hi float64
	// cum[i] is the cumulative probability at the right edge of bin i.
	cum []float64
}

var _ Dist1D = (*Empirical)(nil)

// NewEmpirical estimates a distribution from the sample using the given
// number of histogram bins. The support is the sample range; values
// outside it get CDF 0 or 1.
func NewEmpirical(sample []float64, bins int) (*Empirical, error) {
	if len(sample) < 2 {
		return nil, fmt.Errorf("workload: empirical estimation needs >= 2 samples, got %d", len(sample))
	}
	if bins < 1 {
		return nil, fmt.Errorf("workload: bins must be >= 1, got %d", bins)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range sample {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("workload: non-finite sample value %v", x)
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1e-9 // degenerate constant sample: a sliver of support
	}
	counts := make([]float64, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range sample {
		i := int((x - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	e := &Empirical{lo: lo, hi: hi, cum: make([]float64, bins)}
	total := float64(len(sample))
	acc := 0.0
	for i, c := range counts {
		acc += c / total
		e.cum[i] = acc
	}
	e.cum[bins-1] = 1 // guard against rounding
	return e, nil
}

// Support returns the estimated support [lo, hi].
func (e *Empirical) Support() (lo, hi float64) { return e.lo, e.hi }

// CDF evaluates the piecewise-linear CDF.
func (e *Empirical) CDF(x float64) float64 {
	if x <= e.lo {
		return 0
	}
	if x >= e.hi {
		return 1
	}
	bins := len(e.cum)
	width := (e.hi - e.lo) / float64(bins)
	pos := (x - e.lo) / width
	i := int(pos)
	if i >= bins {
		i = bins - 1
	}
	frac := pos - float64(i)
	prev := 0.0
	if i > 0 {
		prev = e.cum[i-1]
	}
	return prev + frac*(e.cum[i]-prev)
}

// Sample draws by inverse-transform over the piecewise-linear CDF.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.cum) {
		i = len(e.cum) - 1
	}
	prev := 0.0
	if i > 0 {
		prev = e.cum[i-1]
	}
	width := (e.hi - e.lo) / float64(len(e.cum))
	binLo := e.lo + float64(i)*width
	mass := e.cum[i] - prev
	if mass <= 0 {
		return binLo
	}
	return binLo + width*(u-prev)/mass
}

// EstimateModel builds a publication model from an observed event
// sample, estimating each dimension independently with the given
// histogram resolution. The result plugs directly into the clustering
// stage. All events must share dimensionality.
func EstimateModel(events []geometry.Point, bins int) (PublicationModel, error) {
	if len(events) == 0 {
		return PublicationModel{}, fmt.Errorf("workload: no events to estimate from")
	}
	dims := events[0].Dims()
	if dims == 0 {
		return PublicationModel{}, fmt.Errorf("workload: zero-dimensional events")
	}
	column := make([]float64, len(events))
	model := PublicationModel{Dims: make([]Dist1D, dims)}
	for d := 0; d < dims; d++ {
		for i, ev := range events {
			if ev.Dims() != dims {
				return PublicationModel{}, fmt.Errorf("workload: event %d has %d dims, want %d", i, ev.Dims(), dims)
			}
			column[i] = ev[d]
		}
		e, err := NewEmpirical(column, bins)
		if err != nil {
			return PublicationModel{}, fmt.Errorf("workload: dimension %d: %w", d, err)
		}
		model.Dims[d] = e
	}
	return model, nil
}
