package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/geometry"
)

// PublicationModel generates publication events as points whose
// coordinates are drawn independently per dimension — the paper's
// "mixture of multivariate normal distributions" construction, where each
// dimension is an independent (mixture of) normal(s). The joint density is
// therefore a product, which lets grid-cell probabilities be computed
// analytically for the clustering stage.
type PublicationModel struct {
	Dims []Dist1D
}

// Validate checks the model is usable.
func (m PublicationModel) Validate() error {
	if len(m.Dims) == 0 {
		return fmt.Errorf("workload: publication model has no dimensions")
	}
	for i, d := range m.Dims {
		if d == nil {
			return fmt.Errorf("workload: publication model dimension %d is nil", i)
		}
	}
	return nil
}

// Sample draws one publication event.
func (m PublicationModel) Sample(rng *rand.Rand) geometry.Point {
	p := make(geometry.Point, len(m.Dims))
	for i, d := range m.Dims {
		p[i] = d.Sample(rng)
	}
	return p
}

// SampleN draws n publication events.
func (m PublicationModel) SampleN(rng *rand.Rand, n int) []geometry.Point {
	out := make([]geometry.Point, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// CellProb returns the probability that a publication falls inside the
// rectangle: the product over dimensions of CDF(hi) - CDF(lo). This is
// the publication density p(.) the clustering framework integrates over
// grid cells.
func (m PublicationModel) CellProb(cell geometry.Rect) float64 {
	if len(cell) != len(m.Dims) {
		return 0
	}
	prob := 1.0
	for i, d := range m.Dims {
		p := d.CDF(cell[i].Hi) - d.CDF(cell[i].Lo)
		if p <= 0 {
			return 0
		}
		prob *= p
	}
	return prob
}

// StockPublications returns the paper's publication model for the given
// number of modes (hot spots). Supported mode counts are 1, 4 and 9:
//
//   - 1 mode: N(1,1), N(10,6), N(9,2), N(9,6) per dimension;
//   - 4 modes (2x2): dims 1 and 4 unchanged; dim 2 is an equal mixture of
//     N(12,3) and N(6,2); dim 3 an equal mixture of N(4,2) and N(16,2);
//   - 9 modes (3x3): dims 1 and 4 unchanged; dim 2 mixes N(4,3), N(11,3),
//     N(18,3) with weights 0.3/0.4/0.3; dim 3 mixes N(4,3), N(9,3),
//     N(16,3) with weights 0.3/0.4/0.3.
//
// (The paper's 9-mode paragraph says "third" and "fourth" where its 4-mode
// construction — 3x3 = 9 hot spots in two dimensions — requires the second
// and third; we follow the construction.)
func StockPublications(modes int) (PublicationModel, error) {
	bst := Normal{Mu: 1, Sigma: 1}
	volume := Normal{Mu: 9, Sigma: 6}
	switch modes {
	case 1:
		return PublicationModel{Dims: []Dist1D{
			bst,
			Normal{Mu: 10, Sigma: 6},
			Normal{Mu: 9, Sigma: 2},
			volume,
		}}, nil
	case 4:
		name, err := NewMixture(
			[]Dist1D{Normal{Mu: 12, Sigma: 3}, Normal{Mu: 6, Sigma: 2}},
			[]float64{0.5, 0.5},
		)
		if err != nil {
			return PublicationModel{}, err
		}
		quote, err := NewMixture(
			[]Dist1D{Normal{Mu: 4, Sigma: 2}, Normal{Mu: 16, Sigma: 2}},
			[]float64{0.5, 0.5},
		)
		if err != nil {
			return PublicationModel{}, err
		}
		return PublicationModel{Dims: []Dist1D{bst, name, quote, volume}}, nil
	case 9:
		name, err := NewMixture(
			[]Dist1D{Normal{Mu: 4, Sigma: 3}, Normal{Mu: 11, Sigma: 3}, Normal{Mu: 18, Sigma: 3}},
			[]float64{0.3, 0.4, 0.3},
		)
		if err != nil {
			return PublicationModel{}, err
		}
		quote, err := NewMixture(
			[]Dist1D{Normal{Mu: 4, Sigma: 3}, Normal{Mu: 9, Sigma: 3}, Normal{Mu: 16, Sigma: 3}},
			[]float64{0.3, 0.4, 0.3},
		)
		if err != nil {
			return PublicationModel{}, err
		}
		return PublicationModel{Dims: []Dist1D{bst, name, quote, volume}}, nil
	default:
		return PublicationModel{}, fmt.Errorf("workload: unsupported mode count %d (want 1, 4 or 9)", modes)
	}
}

// MustStockPublications is StockPublications, panicking on error.
func MustStockPublications(modes int) PublicationModel {
	m, err := StockPublications(modes)
	if err != nil {
		panic(err)
	}
	return m
}
