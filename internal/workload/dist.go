// Package workload generates the paper's simulation inputs: the
// stock-market event space, subscription populations (Section 5's
// parametric interval model), publication streams (mixtures of one, four
// or nine multivariate normal modes), subscriber placement over a
// transit-stub topology, and a synthetic NYSE-like trade tape standing in
// for the proprietary 1999-09-24 exchange data analysed in Figures 4-5.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist1D is a one-dimensional probability distribution that can both be
// sampled and integrated. The CDF is required because the clustering stage
// computes grid-cell publication probabilities analytically.
type Dist1D interface {
	Sample(rng *rand.Rand) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
}

// Normal is the N(Mu, Sigma) distribution. Sigma must be positive.
type Normal struct {
	Mu    float64
	Sigma float64
}

var _ Dist1D = Normal{}

// Sample draws one variate.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// CDF returns the normal CDF via the error function.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Mixture is a finite mixture of component distributions.
type Mixture struct {
	Components []Dist1D
	// Weights are the mixing probabilities; they must be non-negative and
	// sum to 1 (NewMixture normalises).
	Weights []float64
}

var _ Dist1D = Mixture{}

// NewMixture builds a mixture, normalising the weights. It returns an
// error when the inputs are inconsistent or the total weight is zero.
func NewMixture(components []Dist1D, weights []float64) (Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return Mixture{}, fmt.Errorf("workload: mixture needs equal, non-zero components (%d) and weights (%d)",
			len(components), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return Mixture{}, fmt.Errorf("workload: negative mixture weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return Mixture{}, fmt.Errorf("workload: mixture weights sum to %v", total)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return Mixture{Components: components, Weights: norm}, nil
}

// Sample draws a component by weight, then a variate from it.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// CDF is the weighted sum of component CDFs.
func (m Mixture) CDF(x float64) float64 {
	total := 0.0
	for i, c := range m.Components {
		total += m.Weights[i] * c.CDF(x)
	}
	return total
}

// Pareto is the Pareto(C, Alpha) distribution with scale C > 0 and shape
// Alpha > 0: P(X > x) = (C/x)^Alpha for x >= C. The paper draws
// subscription interval lengths from Pareto(4, 1).
type Pareto struct {
	C     float64
	Alpha float64
}

var _ Dist1D = Pareto{}

// Sample draws via inverse transform: C * U^(-1/Alpha).
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 { // avoid +Inf
		u = rng.Float64()
	}
	return p.C * math.Pow(u, -1/p.Alpha)
}

// CDF returns 1 - (C/x)^Alpha for x >= C, 0 below the scale.
func (p Pareto) CDF(x float64) float64 {
	if x < p.C {
		return 0
	}
	return 1 - math.Pow(p.C/x, p.Alpha)
}

// ZipfWeights returns k weights with w_i proportional to 1/(i+1)^theta,
// normalised to sum to 1. This is the paper's "Zipf-like distribution"
// (Knuth vol. 3) used for stub popularity, per-stub subscriber popularity
// and stock popularity. theta = 1 is classic Zipf.
func ZipfWeights(k int, theta float64) []float64 {
	if k <= 0 {
		return nil
	}
	w := make([]float64, k)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), theta)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// SampleIndex draws an index from a categorical distribution given by
// weights (which must sum to ~1, as produced by ZipfWeights).
func SampleIndex(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// ShuffledZipf assigns Zipf weights to k items in random rank order, so
// that popularity is Zipf-distributed but not correlated with index
// order. It returns the per-item weights.
func ShuffledZipf(rng *rand.Rand, k int, theta float64) []float64 {
	w := ZipfWeights(k, theta)
	rng.Shuffle(k, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}
