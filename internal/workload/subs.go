package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/topology"
)

// IntervalParams is one row of the paper's Section 5 parameter table for
// generating a subscription interval on a numeric attribute:
//
//   - with probability Q0 the interval is the wildcard "*" (whole domain);
//   - with probability Q1 it is [n, +inf) with n ~ N(Mu1, Sigma1);
//   - with probability Q2 it is (-inf, n] with n ~ N(Mu2, Sigma2);
//   - otherwise it is [n1, n2] with center ~ N(Mu3, Sigma3) and length
//     following a Pareto(ParetoC, ParetoAlpha) distribution.
type IntervalParams struct {
	Q0, Q1, Q2  float64
	Mu1, Sigma1 float64
	Mu2, Sigma2 float64
	Mu3, Sigma3 float64
	ParetoScale float64
	ParetoAlpha float64
}

// PriceParams returns the paper's parameter-table row for the quote
// (price) attribute: q0=0.15, q1=q2=0.1, mu/sigma (9,1),(9,1),(9,2),
// Pareto(4, 1).
func PriceParams() IntervalParams {
	return IntervalParams{
		Q0: 0.15, Q1: 0.1, Q2: 0.1,
		Mu1: 9, Sigma1: 1,
		Mu2: 9, Sigma2: 1,
		Mu3: 9, Sigma3: 2,
		ParetoScale: 4, ParetoAlpha: 1,
	}
}

// VolumeParams returns the paper's parameter-table row for the volume
// attribute: identical to price except q0=0.35.
func VolumeParams() IntervalParams {
	p := PriceParams()
	p.Q0 = 0.35
	return p
}

// Validate checks the probabilities and Pareto parameters.
func (p IntervalParams) Validate() error {
	if p.Q0 < 0 || p.Q1 < 0 || p.Q2 < 0 || p.Q0+p.Q1+p.Q2 > 1 {
		return fmt.Errorf("workload: interval params probabilities invalid: q0=%v q1=%v q2=%v", p.Q0, p.Q1, p.Q2)
	}
	if p.ParetoScale <= 0 || p.ParetoAlpha <= 0 {
		return fmt.Errorf("workload: invalid Pareto(%v, %v)", p.ParetoScale, p.ParetoAlpha)
	}
	if p.Sigma1 <= 0 || p.Sigma2 <= 0 || p.Sigma3 <= 0 {
		return fmt.Errorf("workload: non-positive sigma in interval params")
	}
	return nil
}

// SampleInterval draws one subscription interval per the parametric
// distribution, clamped to the domain interval.
func (p IntervalParams) SampleInterval(rng *rand.Rand, domain geometry.Interval) geometry.Interval {
	u := rng.Float64()
	switch {
	case u < p.Q0:
		return domain
	case u < p.Q0+p.Q1:
		n := Normal{Mu: p.Mu1, Sigma: p.Sigma1}.Sample(rng)
		return geometry.AtLeast(n).Clamp(domain)
	case u < p.Q0+p.Q1+p.Q2:
		n := Normal{Mu: p.Mu2, Sigma: p.Sigma2}.Sample(rng)
		return geometry.AtMost(n).Clamp(domain)
	default:
		center := Normal{Mu: p.Mu3, Sigma: p.Sigma3}.Sample(rng)
		length := Pareto{C: p.ParetoScale, Alpha: p.ParetoAlpha}.Sample(rng)
		iv := geometry.NewInterval(center-length/2, center+length/2)
		return iv.Clamp(domain)
	}
}

// SubscriptionConfig parameterises the Section 5 subscription generator.
type SubscriptionConfig struct {
	// Count is the number of subscriptions (paper: 1000).
	Count int
	// BlockShares is the fraction of subscriptions per transit block
	// (paper: 40%, 30%, 30%). It must match the topology's block count.
	BlockShares []float64
	// NameBlockMeans centers the name-interval of a block-b subscriber at
	// N(NameBlockMeans[b], NameSigma) (paper: 3, 10, 17 with sigma 4).
	NameBlockMeans []float64
	NameSigma      float64
	// NameLengthMax bounds the Zipf-like name-interval length; lengths
	// 1..NameLengthMax are drawn with probability proportional to
	// 1/length^NameLengthTheta. The paper states only "a Zipf-like
	// distribution"; 8 and 1.0 are our documented choices.
	NameLengthMax   int
	NameLengthTheta float64
	// BSTProbs are the probabilities of the bst attribute taking value
	// B, S and T (paper: 0.4, 0.4, 0.2).
	BSTProbs [3]float64
	// Price and Volume are the parameter-table rows for the quote and
	// volume dimensions.
	Price  IntervalParams
	Volume IntervalParams
	// StubTheta and NodeTheta are the Zipf exponents for distributing
	// subscriptions across a block's stubs and across a stub's nodes.
	StubTheta float64
	NodeTheta float64
}

// DefaultSubscriptionConfig returns the paper's published configuration.
func DefaultSubscriptionConfig() SubscriptionConfig {
	return SubscriptionConfig{
		Count:           1000,
		BlockShares:     []float64{0.4, 0.3, 0.3},
		NameBlockMeans:  []float64{3, 10, 17},
		NameSigma:       4,
		NameLengthMax:   8,
		NameLengthTheta: 1.0,
		BSTProbs:        [3]float64{0.4, 0.4, 0.2},
		Price:           PriceParams(),
		Volume:          VolumeParams(),
		StubTheta:       1.0,
		NodeTheta:       1.0,
	}
}

// Validate checks the configuration against a topology.
func (c SubscriptionConfig) Validate(g *topology.Graph) error {
	if c.Count <= 0 {
		return fmt.Errorf("workload: subscription count must be positive, got %d", c.Count)
	}
	blocks := g.Stats().Blocks
	if len(c.BlockShares) != blocks {
		return fmt.Errorf("workload: %d block shares for %d blocks", len(c.BlockShares), blocks)
	}
	if len(c.NameBlockMeans) != blocks {
		return fmt.Errorf("workload: %d name means for %d blocks", len(c.NameBlockMeans), blocks)
	}
	total := 0.0
	for _, s := range c.BlockShares {
		if s < 0 {
			return fmt.Errorf("workload: negative block share %v", s)
		}
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("workload: block shares sum to %v, want 1", total)
	}
	p := c.BSTProbs[0] + c.BSTProbs[1] + c.BSTProbs[2]
	if math.Abs(p-1) > 1e-9 {
		return fmt.Errorf("workload: bst probabilities sum to %v, want 1", p)
	}
	if c.NameSigma <= 0 || c.NameLengthMax < 1 {
		return fmt.Errorf("workload: invalid name interval parameters")
	}
	if err := c.Price.Validate(); err != nil {
		return err
	}
	return c.Volume.Validate()
}

// PlacedSubscription is one generated subscription: its rectangle in the
// stock space and the topology node of the subscriber that owns it.
type PlacedSubscription struct {
	// ID is the subscription's index, used as the subscriber identifier
	// throughout the simulation.
	ID   int
	Rect geometry.Rect
	// Node is the topology node where the subscriber resides.
	Node int
	// Block is the transit block of that node.
	Block int
}

// GenerateSubscriptions produces cfg.Count subscriptions placed on the
// graph per the paper's scheme: block shares 40/30/30, Zipf-like
// popularity across each block's stubs, and Zipf-like popularity across
// each stub's nodes. The subscription rectangles follow the Section 5
// generative model over the given space.
func GenerateSubscriptions(g *topology.Graph, space Space, cfg SubscriptionConfig, rng *rand.Rand) ([]PlacedSubscription, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if space.Dims() != 4 {
		return nil, fmt.Errorf("workload: subscription generator needs the 4-dim stock space, got %d dims", space.Dims())
	}
	if err := cfg.Validate(g); err != nil {
		return nil, err
	}

	// Group stub nodes: block -> stub -> nodes.
	type stubNodes struct {
		id    int
		nodes []int
	}
	blockStubs := map[int][]*stubNodes{}
	stubIndex := map[int]*stubNodes{}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(i)
		if n.Role != topology.RoleStub {
			continue
		}
		sn, ok := stubIndex[n.Stub]
		if !ok {
			sn = &stubNodes{id: n.Stub}
			stubIndex[n.Stub] = sn
			blockStubs[n.Block] = append(blockStubs[n.Block], sn)
		}
		sn.nodes = append(sn.nodes, i)
	}
	for b := range cfg.BlockShares {
		if len(blockStubs[b]) == 0 {
			return nil, fmt.Errorf("workload: block %d has no stub nodes", b)
		}
	}

	// Zipf popularity over stubs within each block, and over nodes within
	// each stub. Random rank assignment decorrelates popularity from
	// generation order.
	// Iterate blocks and stubs in deterministic order so identical seeds
	// yield identical populations (map iteration order is randomised).
	stubWeights := map[int][]float64{}
	nodeWeights := map[int][]float64{}
	for b := range cfg.BlockShares {
		stubs := blockStubs[b]
		stubWeights[b] = ShuffledZipf(rng, len(stubs), cfg.StubTheta)
		for _, sn := range stubs {
			nodeWeights[sn.id] = ShuffledZipf(rng, len(sn.nodes), cfg.NodeTheta)
		}
	}

	// Per-block subscription counts from the shares, rounding the last
	// block to absorb the remainder.
	counts := make([]int, len(cfg.BlockShares))
	assigned := 0
	for b := range counts {
		if b == len(counts)-1 {
			counts[b] = cfg.Count - assigned
			continue
		}
		counts[b] = int(math.Round(cfg.BlockShares[b] * float64(cfg.Count)))
		assigned += counts[b]
	}

	nameLengthWeights := ZipfWeights(cfg.NameLengthMax, cfg.NameLengthTheta)
	domain := space.Domain
	subs := make([]PlacedSubscription, 0, cfg.Count)
	for b, cnt := range counts {
		stubs := blockStubs[b]
		for i := 0; i < cnt; i++ {
			sn := stubs[SampleIndex(rng, stubWeights[b])]
			node := sn.nodes[SampleIndex(rng, nodeWeights[sn.id])]

			rect := make(geometry.Rect, 4)
			// bst: a single category.
			switch SampleIndex(rng, cfg.BSTProbs[:]) {
			case 0:
				rect[DimBST] = geometry.NewInterval(0, 1)
			case 1:
				rect[DimBST] = geometry.NewInterval(1, 2)
			default:
				rect[DimBST] = geometry.NewInterval(2, 3)
			}
			// name: normal center around the block's mean, Zipf-like length.
			center := Normal{Mu: cfg.NameBlockMeans[b], Sigma: cfg.NameSigma}.Sample(rng)
			length := float64(SampleIndex(rng, nameLengthWeights) + 1)
			rect[DimName] = geometry.NewInterval(center-length/2, center+length/2).Clamp(domain[DimName])
			// quote and volume: the parametric table.
			rect[DimQuote] = cfg.Price.SampleInterval(rng, domain[DimQuote])
			rect[DimVolume] = cfg.Volume.SampleInterval(rng, domain[DimVolume])

			// A clamp can empty an interval whose sample fell entirely
			// outside the domain; resample such degenerate rectangles.
			if rect.Empty() {
				i--
				continue
			}
			subs = append(subs, PlacedSubscription{
				ID:    len(subs),
				Rect:  rect,
				Node:  node,
				Block: b,
			})
		}
	}
	return subs, nil
}
