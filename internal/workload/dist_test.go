package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := Normal{Mu: 9, Sigma: 2}
	const samples = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		x := n.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean-9) > 0.05 {
		t.Errorf("sample mean = %v, want ~9", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("sample stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		x    float64
		want float64
	}{
		{x: 0, want: 0.5},
		{x: 1.959963985, want: 0.975},
		{x: -1.959963985, want: 0.025},
		{x: 10, want: 1},
		{x: -10, want: 0},
	}
	for _, tt := range tests {
		if got := n.CDF(tt.x); math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	shifted := Normal{Mu: 5, Sigma: 3}
	if got := shifted.CDF(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("shifted CDF at mean = %v, want 0.5", got)
	}
}

func TestMixtureValidation(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		name       string
		components []Dist1D
		weights    []float64
		wantErr    bool
	}{
		{name: "ok", components: []Dist1D{n, n}, weights: []float64{1, 3}},
		{name: "empty", wantErr: true},
		{name: "length mismatch", components: []Dist1D{n}, weights: []float64{1, 2}, wantErr: true},
		{name: "negative weight", components: []Dist1D{n, n}, weights: []float64{1, -1}, wantErr: true},
		{name: "zero total", components: []Dist1D{n, n}, weights: []float64{0, 0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewMixture(tt.components, tt.weights)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil {
				sum := 0.0
				for _, w := range m.Weights {
					sum += w
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Errorf("normalised weights sum to %v", sum)
				}
			}
		})
	}
}

func TestMixtureCDFAndSampling(t *testing.T) {
	m, err := NewMixture(
		[]Dist1D{Normal{Mu: -5, Sigma: 1}, Normal{Mu: 5, Sigma: 1}},
		[]float64{0.3, 0.7},
	)
	if err != nil {
		t.Fatal(err)
	}
	// CDF midway between the modes equals the left weight.
	if got := m.CDF(0); math.Abs(got-0.3) > 1e-6 {
		t.Errorf("CDF(0) = %v, want 0.3", got)
	}
	// Empirical mass below 0 should match.
	rng := rand.New(rand.NewSource(2))
	below := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if m.Sample(rng) < 0 {
			below++
		}
	}
	frac := float64(below) / samples
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("empirical mass below 0 = %v, want ~0.3", frac)
	}
}

func TestParetoSampleAndCDF(t *testing.T) {
	p := Pareto{C: 4, Alpha: 2}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if x := p.Sample(rng); x < 4 {
			t.Fatalf("Pareto sample %v below scale", x)
		}
	}
	if got := p.CDF(3); got != 0 {
		t.Errorf("CDF below scale = %v", got)
	}
	if got := p.CDF(4); got != 0 {
		t.Errorf("CDF at scale = %v, want 0", got)
	}
	if got := p.CDF(8); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDF(8) = %v, want 0.75", got)
	}
	// Empirical tail check: P(X > 8) = (4/8)^2 = 0.25.
	above := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if p.Sample(rng) > 8 {
			above++
		}
	}
	if frac := float64(above) / samples; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("empirical tail = %v, want ~0.25", frac)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	// Unnormalised: 1, 1/2, 1/3, 1/4; total 25/12.
	if math.Abs(w[0]/w[1]-2) > 1e-12 {
		t.Errorf("w0/w1 = %v, want 2", w[0]/w[1])
	}
	if math.Abs(w[0]/w[3]-4) > 1e-12 {
		t.Errorf("w0/w3 = %v, want 4", w[0]/w[3])
	}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
	if got := ZipfWeights(0, 1); got != nil {
		t.Errorf("ZipfWeights(0) = %v, want nil", got)
	}
}

func TestZipfWeightsMonotone(t *testing.T) {
	f := func(k uint8, thetaRaw uint8) bool {
		n := int(k%50) + 1
		theta := float64(thetaRaw%30)/10 + 0.1
		w := ZipfWeights(n, theta)
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleIndexDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := []float64{0.5, 0.3, 0.2}
	counts := make([]int, 3)
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[SampleIndex(rng, w)]++
	}
	for i, want := range w {
		got := float64(counts[i]) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestSampleIndexEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if got := SampleIndex(rng, []float64{1}); got != 0 {
		t.Errorf("single weight index = %d", got)
	}
}

func TestShuffledZipfPreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := ShuffledZipf(rng, 10, 1)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shuffled weights sum to %v", sum)
	}
}
