package core

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/topology"
	"repro/internal/workload"
)

func buildEngine(t *testing.T, threshold float64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(2003))
	g := topology.MustGenerate(topology.DefaultConfig(), rng)
	space := workload.StockSpace()
	cfg := workload.DefaultSubscriptionConfig()
	cfg.Count = 400
	subs, err := workload.GenerateSubscriptions(g, space, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, subs, workload.MustStockPublications(9), Config{
		Space:     space,
		Matcher:   match.Options{Algorithm: match.AlgSTree},
		Cluster:   cluster.Config{Groups: 11, Algorithm: cluster.AlgForgyKMeans},
		Threshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := topology.MustGenerate(topology.DefaultConfig(), rng)
	space := workload.StockSpace()
	subCfg := workload.DefaultSubscriptionConfig()
	subCfg.Count = 50
	subs, err := workload.GenerateSubscriptions(g, space, subCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := workload.MustStockPublications(1)
	good := Config{
		Space:   space,
		Cluster: cluster.Config{Groups: 3, Algorithm: cluster.AlgForgyKMeans},
	}

	if _, err := New(nil, subs, model, good); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, nil, model, good); err == nil {
		t.Error("no subscriptions accepted")
	}
	if _, err := New(g, subs, workload.PublicationModel{}, good); err == nil {
		t.Error("invalid model accepted")
	}
	bad := good
	bad.Threshold = 2
	if _, err := New(g, subs, model, bad); err == nil {
		t.Error("bad threshold accepted")
	}
	bad = good
	bad.Cluster.Groups = 0
	if _, err := New(g, subs, model, bad); err == nil {
		t.Error("bad cluster config accepted")
	}
	// Non-dense IDs rejected.
	broken := append([]workload.PlacedSubscription(nil), subs...)
	broken[0].ID = 999
	if _, err := New(g, broken, model, good); err == nil {
		t.Error("non-dense IDs accepted")
	}
}

func TestEngineMatchAgainstBruteForce(t *testing.T) {
	e := buildEngine(t, 0.15)
	rng := rand.New(rand.NewSource(5))
	model := workload.MustStockPublications(9)
	for i := 0; i < 200; i++ {
		ev := model.Sample(rng)
		got := e.Match(ev)
		want := 0
		for _, s := range e.Subscriptions() {
			if s.Rect.Contains(ev) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Match(%v) returned %d ids, brute force %d", ev, len(got), want)
		}
	}
}

func TestEngineRun(t *testing.T) {
	e := buildEngine(t, 0.10)
	rng := rand.New(rand.NewSource(6))
	tot, err := e.Run(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Messages != 2000 {
		t.Fatalf("Messages = %d", tot.Messages)
	}
	if tot.Unicasts+tot.Multicasts+tot.Suppressed != tot.Messages {
		t.Fatalf("decision counts inconsistent: %+v", tot)
	}
	if tot.Cost <= 0 || tot.UnicastCost <= 0 {
		t.Fatalf("degenerate costs: %+v", tot)
	}
	if tot.IdealCost > tot.Cost+1e-9 {
		t.Fatalf("ideal cost above actual: %+v", tot)
	}
}

func TestEngineRunDeterministic(t *testing.T) {
	e := buildEngine(t, 0.10)
	a, err := e.Run(rand.New(rand.NewSource(7)), 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(rand.New(rand.NewSource(7)), 500)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := buildEngine(t, 0.15)
	if e.Graph() == nil || e.Clustering() == nil || e.Matcher() == nil ||
		e.CostModel() == nil || e.Planner() == nil {
		t.Fatal("nil accessor")
	}
	if e.Planner().Threshold() != 0.15 {
		t.Errorf("threshold = %v", e.Planner().Threshold())
	}
	if len(e.Subscriptions()) != 400 {
		t.Errorf("subscriptions = %d", len(e.Subscriptions()))
	}
	if _, err := e.Deliver(0, geometry.Point{1, 1, 1, 1}); err != nil {
		t.Errorf("Deliver: %v", err)
	}
}

func TestEngineRunWithZipfPublishers(t *testing.T) {
	e := buildEngine(t, 0.10)
	rng := rand.New(rand.NewSource(44))
	stubs := e.Graph().NodesByRole(topology.RoleStub)
	pm, err := workload.ZipfPublishers(stubs, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	tot, err := e.RunWith(rng, 800, pm)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Messages != 800 {
		t.Errorf("messages = %d", tot.Messages)
	}
	if _, err := e.RunWith(rng, 10, nil); err == nil {
		t.Error("nil publisher model accepted")
	}
}
