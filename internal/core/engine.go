// Package core assembles the paper's full pipeline into one engine: a
// network topology, a placed subscription population, the grid-based
// subscription clustering (preprocessing), the S-tree matcher (matching
// problem) and the threshold-based online planner (distribution method
// problem). It is the integration point the public pubsub package and the
// experiment harnesses build on.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/dispatch"
	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/multicast"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config parameterises engine assembly.
type Config struct {
	// Space is the event space; subscriptions must live in its domain.
	Space workload.Space
	// Matcher selects and tunes the matching index.
	Matcher match.Options
	// Cluster configures the preprocessing stage (groups, T, C,
	// algorithm).
	Cluster cluster.Config
	// Threshold is the distribution-method threshold t.
	Threshold float64
	// Mode selects the multicast mechanism (dense mode by default).
	Mode multicast.Mode
}

// Engine is an assembled content-based pub-sub simulation: it can match
// events, decide distribution methods, and account delivery costs.
// Build one with New; it is safe for concurrent use.
type Engine struct {
	graph      *topology.Graph
	subs       []workload.PlacedSubscription
	model      workload.PublicationModel
	clustering *cluster.Clustering
	matcher    match.Matcher
	cost       *multicast.CostModel
	planner    *dispatch.Planner
}

// New assembles an engine from a topology, a placed subscription
// population and a publication model.
func New(g *topology.Graph, subs []workload.PlacedSubscription, model workload.PublicationModel, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("core: no subscriptions")
	}
	if err := cfg.Space.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	interests := make([]cluster.Interest, len(subs))
	msubs := make([]match.Subscription, len(subs))
	nodes := make([]int, len(subs))
	for i, s := range subs {
		if s.ID != i {
			return nil, fmt.Errorf("core: subscription %d has ID %d; IDs must be dense", i, s.ID)
		}
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}

	clustering, err := cluster.Build(interests, model, cfg.Space.Domain, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	matcher, err := match.New(msubs, cfg.Matcher)
	if err != nil {
		return nil, fmt.Errorf("core: matcher: %w", err)
	}
	cost := multicast.NewCostModel(g)
	planner, err := dispatch.NewPlanner(clustering, matcher, cost, nodes, dispatch.Config{
		Threshold: cfg.Threshold,
		Mode:      cfg.Mode,
	})
	if err != nil {
		return nil, fmt.Errorf("core: planner: %w", err)
	}
	return &Engine{
		graph:      g,
		subs:       subs,
		model:      model,
		clustering: clustering,
		matcher:    matcher,
		cost:       cost,
		planner:    planner,
	}, nil
}

// Graph returns the engine's topology.
func (e *Engine) Graph() *topology.Graph { return e.graph }

// Clustering returns the preprocessing result.
func (e *Engine) Clustering() *cluster.Clustering { return e.clustering }

// Matcher returns the matching index.
func (e *Engine) Matcher() match.Matcher { return e.matcher }

// CostModel returns the shared delivery cost model.
func (e *Engine) CostModel() *multicast.CostModel { return e.cost }

// Planner returns the online distribution-method planner.
func (e *Engine) Planner() *dispatch.Planner { return e.planner }

// Subscriptions returns the placed subscription population.
func (e *Engine) Subscriptions() []workload.PlacedSubscription { return e.subs }

// Match returns the interested subscriber IDs for an event (deduplicated).
func (e *Engine) Match(event geometry.Point) []int {
	return match.MatchUnique(e.matcher, event)
}

// Deliver runs the distribution-method scheme for one publication.
func (e *Engine) Deliver(publisher int, event geometry.Point) (dispatch.Decision, error) {
	return e.planner.Deliver(publisher, event)
}

// Run delivers n publications drawn from the engine's publication model,
// published from uniformly random stub nodes, and returns the aggregate
// totals. It is the core loop of the Figure 6 experiment.
func (e *Engine) Run(rng *rand.Rand, n int) (dispatch.Totals, error) {
	stubs := e.graph.NodesByRole(topology.RoleStub)
	if len(stubs) == 0 {
		return dispatch.Totals{}, fmt.Errorf("core: topology has no stub nodes to publish from")
	}
	pm, err := workload.UniformPublishers(stubs)
	if err != nil {
		return dispatch.Totals{}, err
	}
	return e.RunWith(rng, n, pm)
}

// RunWith is Run with an explicit publisher model, so experiments can
// study publisher placement and popularity (e.g. Zipf-weighted sources).
func (e *Engine) RunWith(rng *rand.Rand, n int, publishers *workload.PublisherModel) (dispatch.Totals, error) {
	var tot dispatch.Totals
	if publishers == nil {
		return tot, fmt.Errorf("core: nil publisher model")
	}
	for i := 0; i < n; i++ {
		d, err := e.planner.Deliver(publishers.Pick(rng), e.model.Sample(rng))
		if err != nil {
			return tot, err
		}
		tot.Add(d)
	}
	return tot, nil
}
