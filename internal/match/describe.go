package match

// Shape describes the structure of a built matcher for introspection:
// what algorithm backs it, how many rectangles it indexes, and — for
// tree matchers — the tree and flattened-array dimensions a query
// traverses. Zero-valued tree fields mean the matcher has no tree
// (brute force, predicate counting).
type Shape struct {
	Algorithm string `json:"algorithm"`
	Entries   int    `json:"entries"`
	Nodes     int    `json:"nodes,omitempty"`
	Leaves    int    `json:"leaves,omitempty"`
	Height    int    `json:"height,omitempty"`
	MaxBranch int    `json:"max_branch,omitempty"`
	// FlatNodes/FlatEntries size the structure-of-arrays form packed
	// queries actually walk; zero for matchers without a flat form.
	FlatNodes   int `json:"flat_nodes,omitempty"`
	FlatEntries int `json:"flat_entries,omitempty"`
}

// Describe reports the shape of any matcher built by New. Unknown
// Matcher implementations report only their entry count with algorithm
// "unknown"; a nil matcher reports the zero Shape.
func Describe(m Matcher) Shape {
	switch t := m.(type) {
	case nil:
		return Shape{}
	case *streeMatcher:
		st := t.tree().Stats()
		fn, fe := t.tree().FlatSize()
		return Shape{
			Algorithm: AlgSTree.String(), Entries: t.Len(),
			Nodes: st.Nodes, Leaves: st.Leaves, Height: st.Height, MaxBranch: st.MaxBranch,
			FlatNodes: fn, FlatEntries: fe,
		}
	case *rtreeMatcher:
		st := t.tree().Stats()
		fn, fe := t.tree().FlatSize()
		return Shape{
			Algorithm: AlgHilbertRTree.String(), Entries: t.Len(),
			Nodes: st.Nodes, Leaves: st.Leaves, Height: st.Height, MaxBranch: st.MaxBranch,
			FlatNodes: fn, FlatEntries: fe,
		}
	case *dynamicMatcher:
		st := t.tree().Stats()
		return Shape{
			Algorithm: AlgDynamicRTree.String(), Entries: t.Len(),
			Nodes: st.Nodes, Leaves: st.Leaves, Height: st.Height, MaxBranch: st.MaxBranch,
		}
	case BruteForce:
		return Shape{Algorithm: AlgBruteForce.String(), Entries: t.Len()}
	case *predMatcher:
		return Shape{Algorithm: AlgPredCount.String(), Entries: t.Len()}
	default:
		return Shape{Algorithm: "unknown", Entries: m.Len()}
	}
}
