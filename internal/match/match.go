// Package match defines the matching-problem abstraction: given a
// publication event (a point in the event space), find every subscription
// rectangle that contains it. It provides a common Matcher interface over
// the paper's S-tree, the Hilbert R-tree baseline, and a brute-force
// scanner that serves as both the correctness oracle and the naive
// baseline in benchmarks.
package match

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/predindex"
	"repro/internal/rtree"
	"repro/internal/stree"
)

// Subscription couples a subscription rectangle with the identifier of the
// subscriber that owns it. Several subscriptions may share a SubscriberID
// (the paper's r_i rectangles per subscriber v_i).
type Subscription struct {
	Rect geometry.Rect
	// SubscriberID identifies the subscriber; it is what queries return.
	SubscriberID int
}

// Matcher answers the paper's matching problem: which subscribers are
// interested in an event?
type Matcher interface {
	// Match returns the SubscriberIDs of all subscriptions containing p.
	// A subscriber with several matching rectangles is reported once per
	// matching rectangle; use MatchSet for deduplicated results.
	Match(p geometry.Point) []int
	// MatchFunc streams SubscriberIDs to fn; return false to stop early.
	MatchFunc(p geometry.Point, fn func(subscriberID int) bool)
	// MatchAppend appends the SubscriberIDs of all subscriptions
	// containing p to dst and returns it. Implementations perform no
	// allocation beyond growing dst, so callers that reuse dst across
	// events match with zero steady-state allocation.
	MatchAppend(p geometry.Point, dst []int) []int
	// Count returns the number of matching subscriptions without
	// allocating.
	Count(p geometry.Point) int
	// Len reports the number of indexed subscriptions.
	Len() int
}

// QueryStats reports index traversal effort for one match: how many
// tree nodes were entered, how many of them were leaves, how many leaf
// records were compared against the event point, and how many matched.
// Non-tree matchers report the counters that make sense for them (the
// brute-force scanner tests every entry and visits no nodes).
type QueryStats struct {
	NodesVisited  int
	LeavesVisited int
	EntriesTested int
	Matched       int
}

// Add accumulates other into s, for aggregating per-index stats when a
// broker matches against several indexes (base plus overlay).
func (s *QueryStats) Add(other QueryStats) {
	s.NodesVisited += other.NodesVisited
	s.LeavesVisited += other.LeavesVisited
	s.EntriesTested += other.EntriesTested
	s.Matched += other.Matched
}

// StatsMatcher is implemented by matchers whose traversal is
// instrumented. MatchFuncStats behaves exactly like MatchFunc and
// additionally returns the per-query effort counters; it must not
// allocate beyond what MatchFunc does, so instrumented hot paths stay
// cheap. Callers discover support with a type assertion.
type StatsMatcher interface {
	Matcher
	MatchFuncStats(p geometry.Point, fn func(subscriberID int) bool) QueryStats
	// MatchAppendStats is MatchAppend with per-query effort counters,
	// under the same no-extra-allocation contract.
	MatchAppendStats(p geometry.Point, dst []int) ([]int, QueryStats)
}

// Every tree-backed matcher and the brute-force oracle are
// instrumented; only the predicate-counting matcher is not (its
// per-dimension merge has no node-visit notion).
var (
	_ StatsMatcher = BruteForce(nil)
	_ StatsMatcher = (*streeMatcher)(nil)
	_ StatsMatcher = (*rtreeMatcher)(nil)
	_ StatsMatcher = (*dynamicMatcher)(nil)
)

// MatchSet returns the deduplicated set of subscriber IDs interested in p.
// This is the list s used by the distribution-method scheme.
func MatchSet(m Matcher, p geometry.Point) map[int]struct{} {
	set := make(map[int]struct{})
	m.MatchFunc(p, func(id int) bool {
		set[id] = struct{}{}
		return true
	})
	return set
}

// MatchUnique returns the deduplicated subscriber IDs interested in p as a
// slice, in unspecified order.
func MatchUnique(m Matcher, p geometry.Point) []int {
	set := MatchSet(m, p)
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	return ids
}

// Algorithm selects a matcher implementation.
type Algorithm int

const (
	// AlgSTree is the paper's S-tree matcher.
	AlgSTree Algorithm = iota
	// AlgHilbertRTree is the Hilbert-packed R-tree baseline.
	AlgHilbertRTree
	// AlgBruteForce scans every subscription.
	AlgBruteForce
	// AlgPredCount is a predicate-counting matcher in the style of the
	// prior art the paper cites (Aguilera et al. [3], Fabret et al.
	// [6]): per-dimension interval trees plus per-subscription
	// satisfaction counters.
	AlgPredCount
	// AlgDynamicRTree is a Guttman-style dynamic R-tree built by
	// inserting the subscriptions one at a time — the online
	// counterpart to the statically packed trees, included to measure
	// the packing advantage.
	AlgDynamicRTree
)

// String returns the algorithm's display name.
func (a Algorithm) String() string {
	switch a {
	case AlgSTree:
		return "s-tree"
	case AlgHilbertRTree:
		return "hilbert-rtree"
	case AlgBruteForce:
		return "brute-force"
	case AlgPredCount:
		return "pred-count"
	case AlgDynamicRTree:
		return "dynamic-rtree"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options configure matcher construction. Zero values select the
// defaults used throughout the paper (M=40, p=0.3).
type Options struct {
	Algorithm    Algorithm
	BranchFactor int
	Skew         float64 // S-tree only
}

// New builds a Matcher of the requested algorithm over the subscriptions.
func New(subs []Subscription, opts Options) (Matcher, error) {
	switch opts.Algorithm {
	case AlgSTree:
		entries := make([]stree.Entry, len(subs))
		for i, s := range subs {
			entries[i] = stree.Entry{Rect: s.Rect, ID: s.SubscriberID}
		}
		t, err := stree.Build(entries, stree.Options{BranchFactor: opts.BranchFactor, Skew: opts.Skew})
		if err != nil {
			return nil, fmt.Errorf("match: building s-tree: %w", err)
		}
		return (*streeMatcher)(t), nil
	case AlgHilbertRTree:
		entries := make([]rtree.Entry, len(subs))
		for i, s := range subs {
			entries[i] = rtree.Entry{Rect: s.Rect, ID: s.SubscriberID}
		}
		t, err := rtree.Build(entries, rtree.Options{BranchFactor: opts.BranchFactor})
		if err != nil {
			return nil, fmt.Errorf("match: building hilbert r-tree: %w", err)
		}
		return (*rtreeMatcher)(t), nil
	case AlgBruteForce:
		bf := make(BruteForce, len(subs))
		copy(bf, subs)
		return bf, nil
	case AlgPredCount:
		psubs := make([]predindex.Subscription, len(subs))
		for i, s := range subs {
			psubs[i] = predindex.Subscription{Rect: s.Rect, SubscriberID: s.SubscriberID}
		}
		ix, err := predindex.Build(psubs)
		if err != nil {
			return nil, fmt.Errorf("match: building predicate index: %w", err)
		}
		return (*predMatcher)(ix), nil
	case AlgDynamicRTree:
		d, err := rtree.NewDynamic(opts.BranchFactor)
		if err != nil {
			return nil, fmt.Errorf("match: building dynamic r-tree: %w", err)
		}
		for _, s := range subs {
			if err := d.Insert(rtree.Entry{Rect: s.Rect, ID: s.SubscriberID}); err != nil {
				return nil, fmt.Errorf("match: building dynamic r-tree: %w", err)
			}
		}
		return (*dynamicMatcher)(d), nil
	default:
		return nil, fmt.Errorf("match: unknown algorithm %d", opts.Algorithm)
	}
}

// MustNew is New, panicking on error.
func MustNew(subs []Subscription, opts Options) Matcher {
	m, err := New(subs, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// BruteForce matches by scanning every subscription. It is the O(k)
// baseline and the oracle against which tree matchers are validated.
type BruteForce []Subscription

var _ Matcher = BruteForce(nil)

// Match implements Matcher.
func (b BruteForce) Match(p geometry.Point) []int {
	var ids []int
	b.MatchFunc(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// MatchFunc implements Matcher.
func (b BruteForce) MatchFunc(p geometry.Point, fn func(int) bool) {
	for _, s := range b {
		if s.Rect.Contains(p) {
			if !fn(s.SubscriberID) {
				return
			}
		}
	}
}

// MatchAppend implements Matcher.
func (b BruteForce) MatchAppend(p geometry.Point, dst []int) []int {
	for _, s := range b {
		if s.Rect.Contains(p) {
			dst = append(dst, s.SubscriberID)
		}
	}
	return dst
}

// MatchAppendStats implements StatsMatcher.
func (b BruteForce) MatchAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	stats := QueryStats{EntriesTested: len(b)}
	for _, s := range b {
		if s.Rect.Contains(p) {
			stats.Matched++
			dst = append(dst, s.SubscriberID)
		}
	}
	return dst, stats
}

// Count implements Matcher.
func (b BruteForce) Count(p geometry.Point) int {
	n := 0
	for _, s := range b {
		if s.Rect.Contains(p) {
			n++
		}
	}
	return n
}

// Len implements Matcher.
func (b BruteForce) Len() int { return len(b) }

// MatchFuncStats implements StatsMatcher. The scan tests every entry
// and touches no tree nodes.
func (b BruteForce) MatchFuncStats(p geometry.Point, fn func(int) bool) QueryStats {
	stats := QueryStats{EntriesTested: len(b)}
	b.MatchFunc(p, func(id int) bool {
		stats.Matched++
		return fn(id)
	})
	return stats
}

type streeMatcher stree.Tree

var _ Matcher = (*streeMatcher)(nil)

func (m *streeMatcher) tree() *stree.Tree { return (*stree.Tree)(m) }

func (m *streeMatcher) Match(p geometry.Point) []int { return m.tree().PointQuery(p) }

func (m *streeMatcher) MatchFunc(p geometry.Point, fn func(int) bool) {
	m.tree().PointQueryFunc(p, fn)
}

func (m *streeMatcher) MatchAppend(p geometry.Point, dst []int) []int {
	return m.tree().PointQueryAppend(p, dst)
}

// MatchAppendStats implements StatsMatcher.
func (m *streeMatcher) MatchAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	dst, s := m.tree().PointQueryAppendStats(p, dst)
	return dst, QueryStats{NodesVisited: s.NodesVisited, LeavesVisited: s.LeavesVisited, EntriesTested: s.EntriesTested, Matched: s.ResultsMatched}
}

func (m *streeMatcher) Count(p geometry.Point) int { return m.tree().CountQuery(p) }

func (m *streeMatcher) Len() int { return m.tree().Len() }

// MatchFuncStats implements StatsMatcher.
func (m *streeMatcher) MatchFuncStats(p geometry.Point, fn func(int) bool) QueryStats {
	s := m.tree().PointQueryFuncStats(p, fn)
	return QueryStats{NodesVisited: s.NodesVisited, LeavesVisited: s.LeavesVisited, EntriesTested: s.EntriesTested, Matched: s.ResultsMatched}
}

type predMatcher predindex.Index

var _ Matcher = (*predMatcher)(nil)

func (m *predMatcher) index() *predindex.Index { return (*predindex.Index)(m) }

func (m *predMatcher) Match(p geometry.Point) []int { return m.index().Match(p) }

func (m *predMatcher) MatchFunc(p geometry.Point, fn func(int) bool) {
	m.index().MatchFunc(p, fn)
}

func (m *predMatcher) MatchAppend(p geometry.Point, dst []int) []int {
	return m.index().MatchAppend(p, dst)
}

func (m *predMatcher) Count(p geometry.Point) int { return m.index().Count(p) }

func (m *predMatcher) Len() int { return m.index().Len() }

type dynamicMatcher rtree.Dynamic

var _ Matcher = (*dynamicMatcher)(nil)

func (m *dynamicMatcher) tree() *rtree.Dynamic { return (*rtree.Dynamic)(m) }

func (m *dynamicMatcher) Match(p geometry.Point) []int { return m.tree().PointQuery(p) }

func (m *dynamicMatcher) MatchFunc(p geometry.Point, fn func(int) bool) {
	m.tree().PointQueryFunc(p, fn)
}

func (m *dynamicMatcher) MatchAppend(p geometry.Point, dst []int) []int {
	return m.tree().PointQueryAppend(p, dst)
}

// MatchAppendStats implements StatsMatcher.
func (m *dynamicMatcher) MatchAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	dst, s := m.tree().PointQueryAppendStats(p, dst)
	return dst, QueryStats{NodesVisited: s.NodesVisited, LeavesVisited: s.LeavesVisited, EntriesTested: s.EntriesTested, Matched: s.ResultsMatched}
}

func (m *dynamicMatcher) Count(p geometry.Point) int { return m.tree().CountQuery(p) }

func (m *dynamicMatcher) Len() int { return m.tree().Len() }

// MatchFuncStats implements StatsMatcher.
func (m *dynamicMatcher) MatchFuncStats(p geometry.Point, fn func(int) bool) QueryStats {
	s := m.tree().PointQueryFuncStats(p, fn)
	return QueryStats{NodesVisited: s.NodesVisited, LeavesVisited: s.LeavesVisited, EntriesTested: s.EntriesTested, Matched: s.ResultsMatched}
}

type rtreeMatcher rtree.Tree

var _ Matcher = (*rtreeMatcher)(nil)

func (m *rtreeMatcher) tree() *rtree.Tree { return (*rtree.Tree)(m) }

func (m *rtreeMatcher) Match(p geometry.Point) []int { return m.tree().PointQuery(p) }

func (m *rtreeMatcher) MatchFunc(p geometry.Point, fn func(int) bool) {
	m.tree().PointQueryFunc(p, fn)
}

func (m *rtreeMatcher) MatchAppend(p geometry.Point, dst []int) []int {
	return m.tree().PointQueryAppend(p, dst)
}

// MatchAppendStats implements StatsMatcher.
func (m *rtreeMatcher) MatchAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	dst, s := m.tree().PointQueryAppendStats(p, dst)
	return dst, QueryStats{NodesVisited: s.NodesVisited, LeavesVisited: s.LeavesVisited, EntriesTested: s.EntriesTested, Matched: s.ResultsMatched}
}

func (m *rtreeMatcher) Count(p geometry.Point) int { return m.tree().CountQuery(p) }

func (m *rtreeMatcher) Len() int { return m.tree().Len() }

// MatchFuncStats implements StatsMatcher.
func (m *rtreeMatcher) MatchFuncStats(p geometry.Point, fn func(int) bool) QueryStats {
	s := m.tree().PointQueryFuncStats(p, fn)
	return QueryStats{NodesVisited: s.NodesVisited, LeavesVisited: s.LeavesVisited, EntriesTested: s.EntriesTested, Matched: s.ResultsMatched}
}
