package match

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geometry"
)

func randomSubs(rng *rand.Rand, n, dims int) []Subscription {
	subs := make([]Subscription, n)
	for i := range subs {
		r := make(geometry.Rect, dims)
		for d := range r {
			lo := rng.Float64() * 90
			r[d] = geometry.Interval{Lo: lo, Hi: lo + 0.5 + rng.Float64()*10}
		}
		// Several subscriptions per subscriber: IDs repeat.
		subs[i] = Subscription{Rect: r, SubscriberID: i / 3}
	}
	return subs
}

func randomPoint(rng *rand.Rand, dims int) geometry.Point {
	p := make(geometry.Point, dims)
	for d := range p {
		p[d] = rng.Float64() * 100
	}
	return p
}

func sorted(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	a, b = sorted(a), sorted(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAlgorithmString(t *testing.T) {
	tests := []struct {
		alg  Algorithm
		want string
	}{
		{AlgSTree, "s-tree"},
		{AlgHilbertRTree, "hilbert-rtree"},
		{AlgBruteForce, "brute-force"},
		{AlgPredCount, "pred-count"},
		{AlgDynamicRTree, "dynamic-rtree"},
		{Algorithm(99), "algorithm(99)"},
	}
	for _, tt := range tests {
		if got := tt.alg.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.alg, got, tt.want)
		}
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := New(nil, Options{Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNewPropagatesBuildErrors(t *testing.T) {
	subs := []Subscription{{Rect: geometry.NewRect(5, 5), SubscriberID: 0}} // empty rect
	for _, alg := range []Algorithm{AlgSTree, AlgHilbertRTree, AlgPredCount, AlgDynamicRTree} {
		if _, err := New(subs, Options{Algorithm: alg}); err == nil {
			t.Errorf("%v: empty rectangle accepted", alg)
		}
	}
}

func TestAllMatchersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	subs := randomSubs(rng, 900, 4)
	oracle := MustNew(subs, Options{Algorithm: AlgBruteForce})
	for _, alg := range []Algorithm{AlgSTree, AlgHilbertRTree, AlgPredCount, AlgDynamicRTree} {
		t.Run(alg.String(), func(t *testing.T) {
			m := MustNew(subs, Options{Algorithm: alg, BranchFactor: 16})
			if m.Len() != len(subs) {
				t.Fatalf("Len = %d, want %d", m.Len(), len(subs))
			}
			for i := 0; i < 300; i++ {
				p := randomPoint(rng, 4)
				if !equalIDs(m.Match(p), oracle.Match(p)) {
					t.Fatalf("Match(%v) disagrees with oracle", p)
				}
				if m.Count(p) != oracle.Count(p) {
					t.Fatalf("Count(%v) disagrees with oracle", p)
				}
			}
		})
	}
}

func TestMatchSetDeduplicates(t *testing.T) {
	subs := []Subscription{
		{Rect: geometry.NewRect(0, 10, 0, 10), SubscriberID: 7},
		{Rect: geometry.NewRect(2, 8, 2, 8), SubscriberID: 7},
		{Rect: geometry.NewRect(0, 10, 0, 10), SubscriberID: 9},
	}
	for _, alg := range []Algorithm{AlgBruteForce, AlgSTree, AlgHilbertRTree, AlgPredCount, AlgDynamicRTree} {
		m := MustNew(subs, Options{Algorithm: alg})
		p := geometry.Point{5, 5}
		if got := len(m.Match(p)); got != 3 {
			t.Errorf("%v: Match returned %d hits, want 3 (per rectangle)", alg, got)
		}
		set := MatchSet(m, p)
		if len(set) != 2 {
			t.Errorf("%v: MatchSet = %v, want {7, 9}", alg, set)
		}
		uniq := MatchUnique(m, p)
		if !equalIDs(uniq, []int{7, 9}) {
			t.Errorf("%v: MatchUnique = %v, want [7 9]", alg, uniq)
		}
	}
}

func TestBruteForceEarlyStop(t *testing.T) {
	subs := make([]Subscription, 20)
	for i := range subs {
		subs[i] = Subscription{Rect: geometry.NewRect(0, 1), SubscriberID: i}
	}
	m := MustNew(subs, Options{Algorithm: AlgBruteForce})
	calls := 0
	m.MatchFunc(geometry.Point{0.5}, func(int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop delivered %d, want 1", calls)
	}
}

func TestBruteForceCopiesInput(t *testing.T) {
	subs := randomSubs(rand.New(rand.NewSource(1)), 10, 2)
	m := MustNew(subs, Options{Algorithm: AlgBruteForce})
	subs[0].SubscriberID = 999999
	p := subs[0].Rect.Center()
	for _, id := range m.Match(p) {
		if id == 999999 {
			t.Fatal("BruteForce aliases the caller's slice")
		}
	}
}

func TestEmptyMatchers(t *testing.T) {
	for _, alg := range []Algorithm{AlgBruteForce, AlgSTree, AlgHilbertRTree, AlgPredCount, AlgDynamicRTree} {
		m := MustNew(nil, Options{Algorithm: alg})
		if m.Len() != 0 {
			t.Errorf("%v: Len = %d", alg, m.Len())
		}
		if got := m.Match(geometry.Point{1, 2}); len(got) != 0 {
			t.Errorf("%v: Match on empty = %v", alg, got)
		}
	}
}

func TestMatchFuncStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	subs := randomSubs(rng, 600, 3)
	for _, alg := range []Algorithm{AlgSTree, AlgHilbertRTree, AlgBruteForce, AlgDynamicRTree} {
		t.Run(alg.String(), func(t *testing.T) {
			m := MustNew(subs, Options{Algorithm: alg, BranchFactor: 16})
			sm, ok := m.(StatsMatcher)
			if !ok {
				t.Fatalf("%v does not implement StatsMatcher", alg)
			}
			for i := 0; i < 100; i++ {
				p := randomPoint(rng, 3)
				var streamed []int
				stats := sm.MatchFuncStats(p, func(id int) bool {
					streamed = append(streamed, id)
					return true
				})
				if !equalIDs(streamed, m.Match(p)) {
					t.Fatalf("MatchFuncStats streams different IDs at %v", p)
				}
				if stats.Matched != len(streamed) {
					t.Fatalf("Matched = %d, streamed %d", stats.Matched, len(streamed))
				}
				if stats.EntriesTested < stats.Matched {
					t.Fatalf("EntriesTested %d < Matched %d", stats.EntriesTested, stats.Matched)
				}
				if alg != AlgBruteForce && stats.Matched > 0 && stats.NodesVisited == 0 {
					t.Fatalf("tree matcher reported no node visits with %d matches", stats.Matched)
				}
			}
		})
	}
}

func TestQueryStatsAdd(t *testing.T) {
	a := QueryStats{NodesVisited: 1, LeavesVisited: 2, EntriesTested: 3, Matched: 4}
	a.Add(QueryStats{NodesVisited: 10, LeavesVisited: 20, EntriesTested: 30, Matched: 40})
	want := QueryStats{NodesVisited: 11, LeavesVisited: 22, EntriesTested: 33, Matched: 44}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestMatchAppendAgreesWithMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	subs := randomSubs(rng, 700, 3)
	algs := []Algorithm{AlgBruteForce, AlgSTree, AlgHilbertRTree, AlgPredCount, AlgDynamicRTree}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			m := MustNew(subs, Options{Algorithm: alg, BranchFactor: 16})
			var dst []int
			for i := 0; i < 200; i++ {
				p := randomPoint(rng, 3)
				dst = dst[:0]
				dst = m.MatchAppend(p, dst)
				if !equalIDs(dst, m.Match(p)) {
					t.Fatalf("MatchAppend(%v) = %v, want %v", p, dst, m.Match(p))
				}
				if len(dst) != m.Count(p) {
					t.Fatalf("Count(%v) = %d, want %d", p, m.Count(p), len(dst))
				}
				if sm, ok := m.(StatsMatcher); ok {
					got, stats := sm.MatchAppendStats(p, nil)
					if !equalIDs(got, dst) {
						t.Fatalf("MatchAppendStats(%v) = %v, want %v", p, got, dst)
					}
					if stats.Matched != len(dst) {
						t.Fatalf("MatchAppendStats(%v).Matched = %d, want %d", p, stats.Matched, len(dst))
					}
				}
			}
		})
	}
}

// TestMatchAppendPreservesPrefix guards the append contract: existing dst
// contents survive.
func TestMatchAppendPreservesPrefix(t *testing.T) {
	subs := []Subscription{{Rect: geometry.NewRect(0, 10), SubscriberID: 5}}
	m := MustNew(subs, Options{Algorithm: AlgSTree})
	dst := []int{99}
	dst = m.MatchAppend(geometry.Point{4}, dst)
	if len(dst) != 2 || dst[0] != 99 || dst[1] != 5 {
		t.Fatalf("MatchAppend clobbered prefix: %v", dst)
	}
}
