package match

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// adversarialWorkloads produce subscription populations that stress
// matcher edge cases: heavy duplication, deep nesting, boundary-aligned
// tilings, wildcard mixes, and extreme aspect ratios.
var adversarialWorkloads = []struct {
	name string
	gen  func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point)
}{
	{
		name: "identical",
		gen: func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point) {
			subs := make([]Subscription, 300)
			for i := range subs {
				subs[i] = Subscription{Rect: geometry.NewRect(10, 20, 10, 20), SubscriberID: i}
			}
			return subs, func(r *rand.Rand) geometry.Point {
				return geometry.Point{r.Float64() * 30, r.Float64() * 30}
			}
		},
	},
	{
		name: "nested",
		gen: func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point) {
			var subs []Subscription
			for i := 0; i < 250; i++ {
				d := float64(i) * 0.1
				subs = append(subs, Subscription{
					Rect:         geometry.NewRect(d, 100-d, d, 100-d),
					SubscriberID: i,
				})
			}
			return subs, func(r *rand.Rand) geometry.Point {
				return geometry.Point{r.Float64() * 110, r.Float64() * 110}
			}
		},
	},
	{
		name: "tiling",
		gen: func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point) {
			var subs []Subscription
			id := 0
			for x := 0; x < 16; x++ {
				for y := 0; y < 16; y++ {
					subs = append(subs, Subscription{
						Rect:         geometry.NewRect(float64(x), float64(x+1), float64(y), float64(y+1)),
						SubscriberID: id,
					})
					id++
				}
			}
			return subs, func(r *rand.Rand) geometry.Point {
				// Half the queries land exactly on tile boundaries.
				if r.Intn(2) == 0 {
					return geometry.Point{float64(r.Intn(17)), float64(r.Intn(17))}
				}
				return geometry.Point{r.Float64() * 16, r.Float64() * 16}
			}
		},
	},
	{
		name: "wildcard-mix",
		gen: func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point) {
			subs := make([]Subscription, 400)
			for i := range subs {
				r := make(geometry.Rect, 3)
				for d := range r {
					switch rng.Intn(3) {
					case 0:
						r[d] = geometry.FullInterval()
					case 1:
						r[d] = geometry.AtLeast(rng.Float64() * 50)
					default:
						lo := rng.Float64() * 80
						r[d] = geometry.Interval{Lo: lo, Hi: lo + 5 + rng.Float64()*20}
					}
				}
				subs[i] = Subscription{Rect: r, SubscriberID: i}
			}
			return subs, func(r *rand.Rand) geometry.Point {
				return geometry.Point{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
			}
		},
	},
	{
		name: "slivers",
		gen: func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point) {
			subs := make([]Subscription, 300)
			for i := range subs {
				if i%2 == 0 {
					lo := rng.Float64() * 100
					subs[i] = Subscription{
						Rect:         geometry.NewRect(lo, lo+0.001, 0, 1000),
						SubscriberID: i,
					}
				} else {
					lo := rng.Float64() * 1000
					subs[i] = Subscription{
						Rect:         geometry.NewRect(0, 100, lo, lo+0.001),
						SubscriberID: i,
					}
				}
			}
			return subs, func(r *rand.Rand) geometry.Point {
				return geometry.Point{r.Float64() * 100, r.Float64() * 1000}
			}
		},
	},
	{
		name: "single",
		gen: func(rng *rand.Rand) ([]Subscription, func(*rand.Rand) geometry.Point) {
			subs := []Subscription{{Rect: geometry.NewRect(1, 2), SubscriberID: 42}}
			return subs, func(r *rand.Rand) geometry.Point {
				return geometry.Point{r.Float64() * 3}
			}
		},
	},
}

// TestAdversarialCrossValidation runs every matcher over every
// adversarial workload and demands bit-identical results with the brute
// force oracle.
func TestAdversarialCrossValidation(t *testing.T) {
	algorithms := []Algorithm{AlgSTree, AlgHilbertRTree, AlgPredCount, AlgDynamicRTree}
	for _, w := range adversarialWorkloads {
		for _, alg := range algorithms {
			t.Run(fmt.Sprintf("%s/%s", w.name, alg), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				subs, nextPoint := w.gen(rng)
				oracle := MustNew(subs, Options{Algorithm: AlgBruteForce})
				m := MustNew(subs, Options{Algorithm: alg, BranchFactor: 8})
				for q := 0; q < 400; q++ {
					p := nextPoint(rng)
					if !equalIDs(m.Match(p), oracle.Match(p)) {
						t.Fatalf("query %v disagrees with oracle", p)
					}
				}
			})
		}
	}
}

// TestAdversarialSmallBranchFactors stresses packing at minimum fanouts.
func TestAdversarialSmallBranchFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	subs, nextPoint := adversarialWorkloads[1].gen(rng) // nested
	oracle := MustNew(subs, Options{Algorithm: AlgBruteForce})
	for _, m := range []int{4, 5, 7} {
		for _, alg := range []Algorithm{AlgSTree, AlgHilbertRTree, AlgDynamicRTree} {
			idx := MustNew(subs, Options{Algorithm: alg, BranchFactor: m})
			for q := 0; q < 200; q++ {
				p := nextPoint(rng)
				if idx.Count(p) != oracle.Count(p) {
					t.Fatalf("%v M=%d: mismatch at %v", alg, m, p)
				}
			}
		}
	}
}
