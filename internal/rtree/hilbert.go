package rtree

// Hilbert-curve machinery for bottom-up tree packing. The curve order is
// fixed at bitsPerDim bits per dimension; rectangle centers are quantised
// onto the resulting 2^bitsPerDim grid inside the data set's bounding
// frame before their Hilbert indices are compared.
//
// The coordinate-to-index conversion is Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which
// works for any dimensionality.

const bitsPerDim = 16

// axesToTranspose converts grid coordinates (each bitsPerDim bits wide)
// into the "transposed" Hilbert representation in place. Interleaving the
// bits of the result, most significant first, yields the scalar Hilbert
// index.
func axesToTranspose(x []uint32) {
	n := len(x)
	if n == 0 {
		return
	}
	const m = uint32(1) << (bitsPerDim - 1)

	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}

	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// hilbertKey interleaves the transposed coordinates into a byte string
// whose lexicographic order equals Hilbert-index order. The key is
// ceil(bitsPerDim*len(x)/8) bytes long.
func hilbertKey(x []uint32) []byte {
	n := len(x)
	totalBits := bitsPerDim * n
	key := make([]byte, (totalBits+7)/8)
	bit := 0
	for b := bitsPerDim - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			if x[i]&(1<<uint(b)) != 0 {
				key[bit/8] |= 1 << uint(7-bit%8)
			}
			bit++
		}
	}
	return key
}
