package rtree

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geometry"
	"repro/internal/invariant"
)

// Dynamic is an insert/delete-capable R-tree (Guttman-style, quadratic
// split), the online counterpart to the statically packed trees: where
// Build and the S-tree assume the subscription population is known up
// front, Dynamic supports incremental registration and cancellation at
// the cost of a less tightly packed tree. It is not safe for concurrent
// mutation; wrap with a lock for shared use.
type Dynamic struct {
	root   *dnode
	m      int // max entries per node
	minFil int // min entries per node after split
	size   int
	dims   int
}

type dnode struct {
	mbr      geometry.Rect
	children []*dnode
	entries  []Entry
	leaf     bool
}

// NewDynamic creates an empty dynamic R-tree with node capacity m
// (0 selects DefaultBranchFactor).
func NewDynamic(m int) (*Dynamic, error) {
	if m == 0 {
		m = DefaultBranchFactor
	}
	if m < 4 {
		return nil, fmt.Errorf("rtree: dynamic tree needs branch factor >= 4, got %d", m)
	}
	return &Dynamic{m: m, minFil: m * 2 / 5}, nil
}

// MustNewDynamic is NewDynamic, panicking on error.
func MustNewDynamic(m int) *Dynamic {
	t, err := NewDynamic(m)
	if err != nil {
		panic(err)
	}
	return t
}

// Len reports the number of stored entries.
func (t *Dynamic) Len() int { return t.size }

// Stats computes structural statistics of the in-place tree, in the
// same shape the packed trees report.
func (t *Dynamic) Stats() TreeStats {
	var s TreeStats
	if t == nil || t.root == nil {
		return s
	}
	var walk func(n *dnode, depth int)
	walk = func(n *dnode, depth int) {
		s.Nodes++
		if depth > s.Height {
			s.Height = depth
		}
		if n.leaf {
			s.Leaves++
			return
		}
		if len(n.children) > s.MaxBranch {
			s.MaxBranch = len(n.children)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 1)
	return s
}

// Insert adds an entry. Rectangles must be non-empty and share
// dimensionality with previous insertions.
func (t *Dynamic) Insert(e Entry) error {
	if e.Rect.Empty() {
		return fmt.Errorf("rtree: inserting empty rectangle for id %d", e.ID)
	}
	if t.root == nil {
		t.dims = e.Rect.Dims()
		t.root = &dnode{leaf: true, mbr: e.Rect.Clone(), entries: []Entry{e}}
		t.size = 1
		return nil
	}
	if e.Rect.Dims() != t.dims {
		return fmt.Errorf("rtree: dimensionality %d != tree's %d", e.Rect.Dims(), t.dims)
	}
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree.
		old := t.root
		t.root = &dnode{
			children: []*dnode{old, split},
			mbr:      old.mbr.Union(split.mbr),
		}
	}
	t.size++
	if invariant.Enabled {
		err := t.checkInvariants()
		invariant.Assertf(err == nil, "rtree.Insert broke the tree: %v", err)
	}
	return nil
}

// insert descends to a leaf, returning a new sibling if the child split.
func (t *Dynamic) insert(n *dnode, e Entry) *dnode {
	n.mbr.ExpandInPlace(e.Rect)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.m {
			return t.splitLeaf(n)
		}
		return nil
	}
	child := chooseChild(n.children, e.Rect)
	if split := t.insert(child, e); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.m {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseChild picks the child whose MBR needs the least volume
// enlargement (ties: smaller volume).
func chooseChild(children []*dnode, r geometry.Rect) *dnode {
	best := children[0]
	bestEnl, bestVol := enlargement(best.mbr, r), boundedVolume(best.mbr)
	for _, c := range children[1:] {
		enl := enlargement(c.mbr, r)
		vol := boundedVolume(c.mbr)
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = c, enl, vol
		}
	}
	return best
}

// boundedVolume measures a rectangle with each side length capped, so
// unbounded subscription rectangles (e.g. "volume >= 1000") still yield
// finite, comparable volumes instead of Inf - Inf = NaN in enlargement
// arithmetic.
func boundedVolume(r geometry.Rect) float64 {
	const sideCap = 1e30
	v := 1.0
	for _, iv := range r {
		l := iv.Length()
		if l > sideCap {
			l = sideCap
		}
		v *= l
	}
	return v
}

func enlargement(mbr, r geometry.Rect) float64 {
	return boundedVolume(mbr.Union(r)) - boundedVolume(mbr)
}

// splitLeaf splits an overflowing leaf with the quadratic method,
// mutating n into one half and returning the other.
func (t *Dynamic) splitLeaf(n *dnode) *dnode {
	gA, gB := quadraticSplit(len(n.entries), t.minFil, func(i int) geometry.Rect { return n.entries[i].Rect })
	a := make([]Entry, 0, len(gA))
	b := make([]Entry, 0, len(gB))
	for _, i := range gA {
		a = append(a, n.entries[i])
	}
	for _, i := range gB {
		b = append(b, n.entries[i])
	}
	sib := &dnode{leaf: true, entries: b}
	n.entries = a
	n.mbr = entriesMBR(n.entries)
	sib.mbr = entriesMBR(sib.entries)
	return sib
}

func (t *Dynamic) splitInternal(n *dnode) *dnode {
	gA, gB := quadraticSplit(len(n.children), t.minFil, func(i int) geometry.Rect { return n.children[i].mbr })
	a := make([]*dnode, 0, len(gA))
	b := make([]*dnode, 0, len(gB))
	for _, i := range gA {
		a = append(a, n.children[i])
	}
	for _, i := range gB {
		b = append(b, n.children[i])
	}
	sib := &dnode{children: b}
	n.children = a
	n.mbr = childrenMBR(n.children)
	sib.mbr = childrenMBR(sib.children)
	return sib
}

func entriesMBR(es []Entry) geometry.Rect {
	var mbr geometry.Rect
	for _, e := range es {
		mbr = mbr.Union(e.Rect)
	}
	return mbr
}

func childrenMBR(cs []*dnode) geometry.Rect {
	var mbr geometry.Rect
	for _, c := range cs {
		mbr = mbr.Union(c.mbr)
	}
	return mbr
}

// quadraticSplit partitions indices 0..n-1 into two groups by Guttman's
// quadratic method: seed with the pair wasting the most volume together,
// then repeatedly place the unassigned item with the strongest group
// preference into the group whose MBR it enlarges least, force-assigning
// the tail when a group needs every remaining item to reach minFill.
func quadraticSplit(n, minFill int, rect func(int) geometry.Rect) (a, b []int) {
	// PickSeeds: the pair with the greatest dead volume.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := boundedVolume(rect(i).Union(rect(j))) - boundedVolume(rect(i)) - boundedVolume(rect(j))
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	assigned := make([]bool, n)
	assigned[seedA], assigned[seedB] = true, true
	a, b = []int{seedA}, []int{seedB}
	mbrA := rect(seedA).Clone()
	mbrB := rect(seedB).Clone()
	remaining := n - 2

	for remaining > 0 {
		// Force-assign when a group must take everything left to reach
		// the minimum fill.
		if len(a)+remaining <= minFill {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					a = append(a, i)
					mbrA.ExpandInPlace(rect(i))
					assigned[i] = true
				}
			}
			return a, b
		}
		if len(b)+remaining <= minFill {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					b = append(b, i)
					mbrB.ExpandInPlace(rect(i))
					assigned[i] = true
				}
			}
			return a, b
		}
		// PickNext: the item with the largest |enlargement difference|.
		pick, pickA, pickB := -1, 0.0, 0.0
		bestDiff := -1.0
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			enlA := enlargement(mbrA, rect(i))
			enlB := enlargement(mbrB, rect(i))
			if diff := math.Abs(enlA - enlB); diff > bestDiff {
				bestDiff, pick, pickA, pickB = diff, i, enlA, enlB
			}
		}
		if pick < 0 {
			// Defensive: degenerate measurements; take the first
			// unassigned item.
			for i := 0; i < n; i++ {
				if !assigned[i] {
					pick = i
					pickA = enlargement(mbrA, rect(i))
					pickB = enlargement(mbrB, rect(i))
					break
				}
			}
		}
		if pickA < pickB || (pickA == pickB && len(a) <= len(b)) {
			a = append(a, pick)
			mbrA.ExpandInPlace(rect(pick))
		} else {
			b = append(b, pick)
			mbrB.ExpandInPlace(rect(pick))
		}
		assigned[pick] = true
		remaining--
	}
	return a, b
}

// Delete removes one entry with the given id whose rectangle equals r.
// It reports whether an entry was removed. Emptied nodes are pruned and
// ancestor MBRs recomputed; unlike textbook R-trees no reinsertion is
// performed, trading a looser tree for simplicity (quality is recovered
// on the next rebuild in workloads that use one).
func (t *Dynamic) Delete(id int, r geometry.Rect) bool {
	if t.root == nil {
		return false
	}
	removed := t.remove(t.root, id, r)
	if !removed {
		return false
	}
	t.size--
	// Shrink the root: an internal root with one child is replaced by
	// that child; an empty tree drops the root.
	for t.root != nil {
		if t.root.leaf {
			if len(t.root.entries) == 0 {
				t.root = nil
			}
			break
		}
		if len(t.root.children) == 1 {
			t.root = t.root.children[0]
			continue
		}
		break
	}
	if invariant.Enabled {
		err := t.checkInvariants()
		invariant.Assertf(err == nil, "rtree.Delete broke the tree: %v", err)
	}
	return true
}

func (t *Dynamic) remove(n *dnode, id int, r geometry.Rect) bool {
	if !n.mbr.ContainsRect(r) {
		return false
	}
	if n.leaf {
		for i, e := range n.entries {
			if e.ID == id && e.Rect.Equal(r) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.mbr = entriesMBR(n.entries)
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.mbr.ContainsRect(r) {
			continue
		}
		if t.remove(c, id, r) {
			if (c.leaf && len(c.entries) == 0) || (!c.leaf && len(c.children) == 0) {
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.mbr = childrenMBR(n.children)
			return true
		}
	}
	return false
}

// PointQuery returns the IDs of all rectangles containing p.
func (t *Dynamic) PointQuery(p geometry.Point) []int {
	var ids []int
	t.PointQueryFunc(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// PointQueryFunc streams matching IDs; return false to stop early.
func (t *Dynamic) PointQueryFunc(p geometry.Point, fn func(id int) bool) {
	var stats QueryStats
	t.search(p, fn, &stats)
}

// PointQueryStats is PointQuery with traversal statistics.
func (t *Dynamic) PointQueryStats(p geometry.Point) ([]int, QueryStats) {
	var ids []int
	stats := t.PointQueryFuncStats(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids, stats
}

// PointQueryFuncStats is PointQueryFunc with traversal statistics: it
// streams matching IDs to fn and returns the per-query effort counters.
func (t *Dynamic) PointQueryFuncStats(p geometry.Point, fn func(id int) bool) QueryStats {
	var stats QueryStats
	t.search(p, func(id int) bool {
		stats.ResultsMatched++
		return fn(id)
	}, &stats)
	return stats
}

// dstackPool recycles traversal stacks so steady-state queries over the
// dynamic tree allocate nothing.
var dstackPool = sync.Pool{
	New: func() any {
		s := make([]*dnode, 0, 64)
		return &s
	},
}

func (t *Dynamic) search(p geometry.Point, fn func(id int) bool, stats *QueryStats) {
	if t.root == nil || !t.root.mbr.Contains(p) {
		return
	}
	sp := dstackPool.Get().(*[]*dnode)
	defer dstackPool.Put(sp)
	stack := (*sp)[:0]
	defer func() { *sp = stack }()
	stack = append(stack, t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.NodesVisited++
		if n.leaf {
			stats.LeavesVisited++
			for _, e := range n.entries {
				stats.EntriesTested++
				if e.Rect.Contains(p) {
					if !fn(e.ID) {
						return
					}
				}
			}
			continue
		}
		for _, c := range n.children {
			if c.mbr.Contains(p) {
				stack = append(stack, c)
			}
		}
	}
}

// PointQueryAppend appends the IDs of all rectangles containing p to dst
// and returns it. It performs no allocation beyond growing dst.
func (t *Dynamic) PointQueryAppend(p geometry.Point, dst []int) []int {
	var stats QueryStats
	dst, _ = t.appendWalk(p, dst, &stats)
	return dst
}

// PointQueryAppendStats is PointQueryAppend with traversal statistics.
func (t *Dynamic) PointQueryAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	var stats QueryStats
	dst, matched := t.appendWalk(p, dst, &stats)
	stats.ResultsMatched = matched
	return dst, stats
}

// appendWalk is the closure-free traversal backing the append and count
// queries; it returns dst and the number of matches.
func (t *Dynamic) appendWalk(p geometry.Point, dst []int, stats *QueryStats) ([]int, int) {
	if t.root == nil || !t.root.mbr.Contains(p) {
		return dst, 0
	}
	matched := 0
	sp := dstackPool.Get().(*[]*dnode)
	stack := (*sp)[:0]
	stack = append(stack, t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.NodesVisited++
		if n.leaf {
			stats.LeavesVisited++
			for _, e := range n.entries {
				stats.EntriesTested++
				if e.Rect.Contains(p) {
					matched++
					dst = append(dst, e.ID)
				}
			}
			continue
		}
		for _, c := range n.children {
			if c.mbr.Contains(p) {
				stack = append(stack, c)
			}
		}
	}
	*sp = stack
	dstackPool.Put(sp)
	return dst, matched
}

// CountQuery returns the number of rectangles containing p. It does not
// allocate.
func (t *Dynamic) CountQuery(p geometry.Point) int {
	var stats QueryStats
	return t.countWalk(p, &stats)
}

func (t *Dynamic) countWalk(p geometry.Point, stats *QueryStats) int {
	if t.root == nil || !t.root.mbr.Contains(p) {
		return 0
	}
	matched := 0
	sp := dstackPool.Get().(*[]*dnode)
	stack := (*sp)[:0]
	stack = append(stack, t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.NodesVisited++
		if n.leaf {
			stats.LeavesVisited++
			for _, e := range n.entries {
				stats.EntriesTested++
				if e.Rect.Contains(p) {
					matched++
				}
			}
			continue
		}
		for _, c := range n.children {
			if c.mbr.Contains(p) {
				stack = append(stack, c)
			}
		}
	}
	*sp = stack
	dstackPool.Put(sp)
	return matched
}

// checkInvariants verifies structure; used by tests.
func (t *Dynamic) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root with size %d", t.size)
		}
		return nil
	}
	count := 0
	var walk func(n *dnode) error
	walk = func(n *dnode) error {
		if n.leaf {
			count += len(n.entries)
			if len(n.entries) > t.m {
				return fmt.Errorf("rtree: leaf overflow %d > %d", len(n.entries), t.m)
			}
			if !n.mbr.Equal(entriesMBR(n.entries)) {
				return fmt.Errorf("rtree: leaf MBR stale")
			}
			return nil
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: empty internal node")
		}
		if len(n.children) > t.m {
			return fmt.Errorf("rtree: node overflow %d > %d", len(n.children), t.m)
		}
		if !n.mbr.Equal(childrenMBR(n.children)) {
			return fmt.Errorf("rtree: internal MBR stale: %v vs %v", n.mbr, childrenMBR(n.children))
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: holds %d entries, size says %d", count, t.size)
	}
	return nil
}
