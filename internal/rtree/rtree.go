// Package rtree implements a Hilbert-packed R-tree (Kamel & Faloutsos,
// VLDB 1994), the matching baseline named by the paper. In contrast to the
// S-tree's top-down binarization, packing here is bottom-up: rectangle
// centers are sorted along a d-dimensional Hilbert space-filling curve and
// grouped into full leaves of M entries, then leaf MBRs are grouped M at a
// time into internal nodes, and so on to the root. The resulting tree is
// perfectly height balanced.
package rtree

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/flat"
	"repro/internal/geometry"
	"repro/internal/invariant"
)

// Entry is one indexed rectangle with its caller-assigned identifier.
type Entry struct {
	Rect geometry.Rect
	ID   int
}

// DefaultBranchFactor mirrors the S-tree's typical fanout so that the two
// indexes are compared at equal page capacity.
const DefaultBranchFactor = 40

// Options configure packing.
type Options struct {
	// BranchFactor is the node capacity M. Zero selects
	// DefaultBranchFactor.
	BranchFactor int
}

func (o Options) withDefaults() Options {
	if o.BranchFactor == 0 {
		o.BranchFactor = DefaultBranchFactor
	}
	return o
}

type node struct {
	mbr      geometry.Rect
	children []*node
	entries  []Entry
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Tree is an immutable Hilbert-packed R-tree. The zero value is an empty
// tree matching nothing.
type Tree struct {
	root *node
	size int
	dims int
	// flat is the contiguous array compilation of the pointer tree; all
	// queries run against it (the pointer tree is kept for structural
	// statistics and invariant checks).
	flat *flat.Tree
}

// flatNode adapts *node to flat.Node for flattening after Build.
type flatNode struct{ n *node }

func (a flatNode) MBR() geometry.Rect { return a.n.mbr }
func (a flatNode) NumChildren() int   { return len(a.n.children) }
func (a flatNode) Child(i int) flat.Node {
	return flatNode{a.n.children[i]}
}
func (a flatNode) NumEntries() int { return len(a.n.entries) }
func (a flatNode) Entry(i int) (geometry.Rect, int) {
	e := a.n.entries[i]
	return e.Rect, e.ID
}

// Build packs the entries into a Hilbert R-tree. The input slice is not
// retained or reordered. All rectangles must share dimensionality and be
// non-empty.
func Build(entries []Entry, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	if opts.BranchFactor < 2 {
		return nil, fmt.Errorf("rtree: branch factor must be >= 2, got %d", opts.BranchFactor)
	}
	t := &Tree{size: len(entries)}
	if len(entries) == 0 {
		return t, nil
	}
	t.dims = entries[0].Rect.Dims()
	for _, e := range entries {
		if e.Rect.Dims() != t.dims {
			return nil, fmt.Errorf("rtree: mixed dimensionality: %d vs %d", e.Rect.Dims(), t.dims)
		}
		if e.Rect.Empty() {
			return nil, fmt.Errorf("rtree: entry %d has an empty rectangle", e.ID)
		}
	}

	ordered := hilbertSort(entries)
	level := packLeaves(ordered, opts.BranchFactor)
	for len(level) > 1 {
		level = packInternal(level, opts.BranchFactor)
	}
	t.root = level[0]
	t.flat = flat.Build(flatNode{t.root}, t.dims)
	if invariant.Enabled {
		err := t.checkInvariants(opts.BranchFactor)
		invariant.Assertf(err == nil, "rtree.Build produced an invalid tree: %v", err)
	}
	return t, nil
}

// MustBuild is Build, panicking on error.
func MustBuild(entries []Entry, opts Options) *Tree {
	t, err := Build(entries, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// hilbertSort returns the entries ordered by the Hilbert index of their
// centers, quantised onto a 2^bitsPerDim grid over the data bounding box.
func hilbertSort(entries []Entry) []Entry {
	dims := entries[0].Rect.Dims()
	frame := make(geometry.Rect, dims)
	centers := make([]geometry.Point, len(entries))
	for i, e := range entries {
		centers[i] = e.Rect.Center()
	}
	for d := 0; d < dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range centers {
			lo = math.Min(lo, c[d])
			hi = math.Max(hi, c[d])
		}
		if hi <= lo {
			hi = lo + 1
		}
		frame[d] = geometry.NewInterval(lo, hi)
	}

	type keyed struct {
		key []byte
		e   Entry
	}
	keyedEntries := make([]keyed, len(entries))
	coords := make([]uint32, dims)
	maxCoord := float64(uint32(1)<<bitsPerDim - 1)
	for i, e := range entries {
		for d := 0; d < dims; d++ {
			f := (centers[i][d] - frame[d].Lo) / (frame[d].Hi - frame[d].Lo)
			coords[d] = uint32(math.Round(f * maxCoord))
		}
		work := append([]uint32(nil), coords...)
		axesToTranspose(work)
		keyedEntries[i] = keyed{key: hilbertKey(work), e: e}
	}
	sort.SliceStable(keyedEntries, func(i, j int) bool {
		return bytes.Compare(keyedEntries[i].key, keyedEntries[j].key) < 0
	})
	out := make([]Entry, len(entries))
	for i, k := range keyedEntries {
		out[i] = k.e
	}
	return out
}

func packLeaves(ordered []Entry, m int) []*node {
	var leaves []*node
	for start := 0; start < len(ordered); start += m {
		end := start + m
		if end > len(ordered) {
			end = len(ordered)
		}
		chunk := ordered[start:end]
		rects := make([]geometry.Rect, len(chunk))
		for i, e := range chunk {
			rects[i] = e.Rect
		}
		leaves = append(leaves, &node{
			mbr:     geometry.BoundingBox(rects...),
			entries: append([]Entry(nil), chunk...),
		})
	}
	return leaves
}

func packInternal(level []*node, m int) []*node {
	var parents []*node
	for start := 0; start < len(level); start += m {
		end := start + m
		if end > len(level) {
			end = len(level)
		}
		chunk := level[start:end]
		var mbr geometry.Rect
		for _, c := range chunk {
			mbr = mbr.Union(c.mbr)
		}
		parents = append(parents, &node{
			mbr:      mbr,
			children: append([]*node(nil), chunk...),
		})
	}
	return parents
}

// Len reports the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Dims reports the dimensionality of the indexed rectangles, 0 when empty.
func (t *Tree) Dims() int { return t.dims }

// Bounds returns the MBR of all entries, or nil when empty.
func (t *Tree) Bounds() geometry.Rect {
	if t.root == nil {
		return nil
	}
	return t.root.mbr.Clone()
}

// QueryStats reports traversal effort for one query.
type QueryStats struct {
	NodesVisited   int
	LeavesVisited  int
	EntriesTested  int
	ResultsMatched int
}

// PointQuery returns the IDs of every rectangle containing p.
func (t *Tree) PointQuery(p geometry.Point) []int {
	ids, _ := t.PointQueryStats(p)
	return ids
}

// PointQueryFunc streams matching IDs to fn; return false to stop early.
func (t *Tree) PointQueryFunc(p geometry.Point, fn func(id int) bool) {
	if t.root == nil {
		return
	}
	var st flat.Stats
	sp := flat.GetStack()
	*sp = t.flat.PointFunc(p, *sp, &st, fn)
	flat.PutStack(sp)
}

// PointQueryAppend appends the IDs of every rectangle containing p to dst
// and returns it. It performs no allocation beyond growing dst.
//
//pubsub:hotpath
func (t *Tree) PointQueryAppend(p geometry.Point, dst []int) []int {
	if t.root == nil {
		return dst
	}
	var st flat.Stats
	sp := flat.GetStack()
	dst, *sp = t.flat.PointAppend(p, dst, *sp, &st)
	flat.PutStack(sp)
	return dst
}

// PointQueryAppendStats is PointQueryAppend with traversal statistics.
func (t *Tree) PointQueryAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	var stats QueryStats
	if t.root == nil {
		return dst, stats
	}
	var st flat.Stats
	sp := flat.GetStack()
	dst, *sp = t.flat.PointAppend(p, dst, *sp, &st)
	flat.PutStack(sp)
	return dst, queryStats(st)
}

// CountQuery returns the number of rectangles containing p. It does not
// allocate.
func (t *Tree) CountQuery(p geometry.Point) int {
	if t.root == nil {
		return 0
	}
	var st flat.Stats
	sp := flat.GetStack()
	count, stack := t.flat.PointCount(p, *sp, &st)
	*sp = stack
	flat.PutStack(sp)
	return count
}

func queryStats(st flat.Stats) QueryStats {
	return QueryStats{
		NodesVisited:   st.NodesVisited,
		LeavesVisited:  st.LeavesVisited,
		EntriesTested:  st.EntriesTested,
		ResultsMatched: st.Matched,
	}
}

// PointQueryStats is PointQuery with traversal statistics.
func (t *Tree) PointQueryStats(p geometry.Point) ([]int, QueryStats) {
	var ids []int
	stats := t.PointQueryFuncStats(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids, stats
}

// PointQueryFuncStats is PointQueryFunc with traversal statistics: it
// streams matching IDs to fn and returns the per-query effort counters.
func (t *Tree) PointQueryFuncStats(p geometry.Point, fn func(id int) bool) QueryStats {
	if t.root == nil {
		return QueryStats{}
	}
	var st flat.Stats
	sp := flat.GetStack()
	*sp = t.flat.PointFunc(p, *sp, &st, fn)
	flat.PutStack(sp)
	return queryStats(st)
}

// TreeStats describes the packed tree's shape.
type TreeStats struct {
	Nodes     int
	Leaves    int
	Height    int
	MaxBranch int
}

// FlatSize reports the node and entry counts of the flattened
// structure-of-arrays form queries actually traverse (0, 0 before the
// tree is built).
func (t *Tree) FlatSize() (nodes, entries int) {
	if t == nil || t.flat == nil {
		return 0, 0
	}
	return t.flat.NumNodes(), t.flat.NumEntries()
}

// Stats computes structural statistics.
func (t *Tree) Stats() TreeStats {
	var s TreeStats
	if t.root == nil {
		return s
	}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s.Nodes++
		if depth > s.Height {
			s.Height = depth
		}
		if n.isLeaf() {
			s.Leaves++
			return
		}
		if len(n.children) > s.MaxBranch {
			s.MaxBranch = len(n.children)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 1)
	return s
}
