//go:build invariants

package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// With -tags=invariants every packed Build and every Dynamic
// Insert/Delete deep-checks the tree, so these tests drive the
// mutation space: any structural violation panics.

func randomRect(rng *rand.Rand, dims int) geometry.Rect {
	r := make(geometry.Rect, dims)
	for d := range r {
		lo := rng.Float64()*200 - 100
		r[d] = geometry.NewInterval(lo, lo+0.1+rng.Float64()*20)
	}
	return r
}

func TestInvariantsRandomizedPackedBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 39, 40, 41, 80, 500, 1600} {
		for _, m := range []int{2, 3, 8, 40} {
			entries := make([]Entry, n)
			dims := 1 + rng.Intn(4)
			for i := range entries {
				entries[i] = Entry{Rect: randomRect(rng, dims), ID: i}
			}
			tr := MustBuild(entries, Options{BranchFactor: m})
			if tr.Len() != n {
				t.Fatalf("n=%d m=%d: Len() = %d", n, m, tr.Len())
			}
		}
	}
}

func TestInvariantsRandomizedDynamicChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range []int{4, 6, 8} {
		d := MustNewDynamic(m)
		type live struct {
			id int
			r  geometry.Rect
		}
		var pop []live
		nextID := 0
		for op := 0; op < 2000; op++ {
			if len(pop) == 0 || rng.Float64() < 0.6 {
				r := randomRect(rng, 2)
				if err := d.Insert(Entry{Rect: r, ID: nextID}); err != nil {
					t.Fatalf("m=%d op %d: Insert: %v", m, op, err)
				}
				pop = append(pop, live{id: nextID, r: r})
				nextID++
			} else {
				i := rng.Intn(len(pop))
				if !d.Delete(pop[i].id, pop[i].r) {
					t.Fatalf("m=%d op %d: Delete(%d) found nothing", m, op, pop[i].id)
				}
				pop[i] = pop[len(pop)-1]
				pop = pop[:len(pop)-1]
			}
			if d.Len() != len(pop) {
				t.Fatalf("m=%d op %d: Len() = %d, want %d", m, op, d.Len(), len(pop))
			}
		}
	}
}
