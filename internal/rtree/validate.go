package rtree

import (
	"fmt"

	"repro/internal/geometry"
)

// checkInvariants verifies the packed tree's structure: exact MBRs,
// branch-factor bounds, uniform leaf depth and the Hilbert-packing
// property that at most one leaf is non-full. It is used by tests and,
// under -tags=invariants, by Build itself.
func (t *Tree) checkInvariants(m int) error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root with size %d", t.size)
		}
		return nil
	}
	count, nonFull, leafDepth := 0, 0, -1
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n.isLeaf() {
			if len(n.entries) == 0 {
				return fmt.Errorf("rtree: empty leaf")
			}
			if len(n.entries) > m {
				return fmt.Errorf("rtree: leaf overflow %d > M=%d", len(n.entries), m)
			}
			if len(n.entries) < m {
				nonFull++
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			count += len(n.entries)
			rects := make([]geometry.Rect, len(n.entries))
			for i, e := range n.entries {
				rects[i] = e.Rect
			}
			if !n.mbr.Equal(geometry.BoundingBox(rects...)) {
				return fmt.Errorf("rtree: leaf MBR %v != bounding box of entries", n.mbr)
			}
			return nil
		}
		if len(n.children) == 0 || len(n.children) > m {
			return fmt.Errorf("rtree: internal node with %d children, M=%d", len(n.children), m)
		}
		var mbr geometry.Rect
		for _, c := range n.children {
			if !n.mbr.ContainsRect(c.mbr) {
				return fmt.Errorf("rtree: child MBR %v escapes parent %v", c.mbr, n.mbr)
			}
			mbr = mbr.Union(c.mbr)
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		if !n.mbr.Equal(mbr) {
			return fmt.Errorf("rtree: node MBR %v != union of children %v", n.mbr, mbr)
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: tree holds %d entries, size says %d", count, t.size)
	}
	if nonFull > 1 {
		return fmt.Errorf("rtree: %d non-full leaves; Hilbert packing allows at most one", nonFull)
	}
	// The flattened compilation must cover exactly the same entries; its
	// node-for-node equivalence with the pointer tree is checked inside
	// flat.Build when invariants are enabled.
	if t.flat == nil || t.flat.NumEntries() != t.size {
		return fmt.Errorf("rtree: flat layout missing or holds wrong entry count")
	}
	return nil
}
