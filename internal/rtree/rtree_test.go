package rtree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

func randomEntries(rng *rand.Rand, n, dims int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		r := make(geometry.Rect, dims)
		for d := range r {
			lo := rng.Float64() * 90
			r[d] = geometry.Interval{Lo: lo, Hi: lo + 0.5 + rng.Float64()*10}
		}
		entries[i] = Entry{Rect: r, ID: i}
	}
	return entries
}

func randomPoint(rng *rand.Rand, dims int) geometry.Point {
	p := make(geometry.Point, dims)
	for d := range p {
		p[d] = rng.Float64() * 100
	}
	return p
}

func bruteMatch(entries []Entry, p geometry.Point) []int {
	var ids []int
	for _, e := range entries {
		if e.Rect.Contains(p) {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

func equalIDs(a, b []int) bool {
	a, b = append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHilbertCurveAdjacency(t *testing.T) {
	// Successive cells along a 2-D Hilbert curve are grid neighbours:
	// walk an 8x8 grid in key order and verify each step moves by
	// exactly one in exactly one dimension. This pins down curve
	// correctness, not just ordering consistency.
	type cell struct {
		key  []byte
		x, y uint32
	}
	var cells []cell
	const side = 8
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			// Use coordinates scaled into the top bits so quantisation in
			// hilbertKey ordering is exercised at full precision.
			w := []uint32{x << (bitsPerDim - 3), y << (bitsPerDim - 3)}
			axesToTranspose(w)
			cells = append(cells, cell{key: hilbertKey(w), x: x, y: y})
		}
	}
	sort.Slice(cells, func(i, j int) bool { return bytes.Compare(cells[i].key, cells[j].key) < 0 })
	for i := 1; i < len(cells); i++ {
		dx := int(cells[i].x) - int(cells[i-1].x)
		dy := int(cells[i].y) - int(cells[i-1].y)
		manhattan := abs(dx) + abs(dy)
		if manhattan != 1 {
			t.Fatalf("step %d: (%d,%d) -> (%d,%d) is not a unit grid move",
				i, cells[i-1].x, cells[i-1].y, cells[i].x, cells[i].y)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestHilbertKeysDistinct(t *testing.T) {
	// Distinct grid coordinates must produce distinct keys (the curve is
	// a bijection).
	seen := map[string]bool{}
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			for z := uint32(0); z < 4; z++ {
				w := []uint32{x, y, z}
				axesToTranspose(w)
				k := string(hilbertKey(w))
				if seen[k] {
					t.Fatalf("duplicate key for (%d,%d,%d)", x, y, z)
				}
				seen[k] = true
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(randomEntries(rng, 5, 2), Options{BranchFactor: 1}); err == nil {
		t.Error("branch factor 1 accepted")
	}
	mixed := []Entry{
		{Rect: geometry.NewRect(0, 1), ID: 0},
		{Rect: geometry.NewRect(0, 1, 0, 1), ID: 1},
	}
	if _, err := Build(mixed, Options{}); err == nil {
		t.Error("mixed dimensionality accepted")
	}
	if _, err := Build([]Entry{{Rect: geometry.NewRect(3, 3), ID: 0}}, Options{}); err == nil {
		t.Error("empty rectangle accepted")
	}
	if _, err := Build(nil, Options{}); err != nil {
		t.Errorf("empty input rejected: %v", err)
	}
}

func TestEmptyAndZeroTree(t *testing.T) {
	var zero Tree
	if got := zero.PointQuery(geometry.Point{1}); got != nil {
		t.Errorf("zero tree query = %v", got)
	}
	tr := MustBuild(nil, Options{})
	if tr.Len() != 0 || tr.Bounds() != nil || tr.CountQuery(geometry.Point{1}) != 0 {
		t.Error("empty tree misbehaves")
	}
}

func TestPointQueryMatchesBruteForce(t *testing.T) {
	tests := []struct {
		name string
		n    int
		dims int
		m    int
	}{
		{name: "2d", n: 500, dims: 2, m: 8},
		{name: "4d paper fanout", n: 1000, dims: 4, m: 40},
		{name: "1d", n: 300, dims: 1, m: 4},
		{name: "5d", n: 400, dims: 5, m: 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			entries := randomEntries(rng, tt.n, tt.dims)
			tr := MustBuild(entries, Options{BranchFactor: tt.m})
			for i := 0; i < 200; i++ {
				p := randomPoint(rng, tt.dims)
				got, want := tr.PointQuery(p), bruteMatch(entries, p)
				if !equalIDs(got, want) {
					t.Fatalf("PointQuery(%v) = %v, want %v", p, got, want)
				}
			}
		})
	}
}

func TestTreeIsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 4096, 2)
	tr := MustBuild(entries, Options{BranchFactor: 8})
	s := tr.Stats()
	// 4096/8 = 512 leaves, 512/8=64, 64/8=8, 8/8=1: height 4+... leaf
	// level + 3 internal levels = height 4.
	if s.Height != 4 {
		t.Errorf("Height = %d, want 4", s.Height)
	}
	if s.MaxBranch > 8 {
		t.Errorf("MaxBranch = %d exceeds M", s.MaxBranch)
	}
	if s.Leaves != 512 {
		t.Errorf("Leaves = %d, want 512", s.Leaves)
	}
	// Every leaf must sit at the same depth: verify via a full walk.
	depths := map[int]bool{}
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n.isLeaf() {
			depths[d] = true
			return
		}
		for _, c := range n.children {
			walk(c, d+1)
		}
	}
	walk(tr.root, 1)
	if len(depths) != 1 {
		t.Errorf("leaves at multiple depths: %v", depths)
	}
}

func TestEarlyStop(t *testing.T) {
	entries := make([]Entry, 50)
	for i := range entries {
		entries[i] = Entry{Rect: geometry.NewRect(0, 1, 0, 1), ID: i}
	}
	tr := MustBuild(entries, Options{BranchFactor: 4})
	calls := 0
	tr.PointQueryFunc(geometry.Point{0.5, 0.5}, func(int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("delivered %d, want 5", calls)
	}
}

func TestQueryStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomEntries(rng, 1000, 2)
	tr := MustBuild(entries, Options{BranchFactor: 10})
	p := randomPoint(rng, 2)
	ids, qs := tr.PointQueryStats(p)
	if qs.ResultsMatched != len(ids) || qs.EntriesTested < len(ids) {
		t.Errorf("inconsistent stats %+v for %d results", qs, len(ids))
	}
	if qs.EntriesTested >= len(entries) {
		t.Errorf("no pruning: tested %d of %d", qs.EntriesTested, len(entries))
	}
}

func TestPropMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		dims := 1 + rng.Intn(4)
		m := 2 + rng.Intn(20)
		entries := randomEntries(rng, n, dims)
		tr := MustBuild(entries, Options{BranchFactor: m})
		p := randomPoint(rng, dims)
		return equalIDs(tr.PointQuery(p), bruteMatch(entries, p))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries := randomEntries(rng, 100, 2)
	orig := make([]Entry, len(entries))
	copy(orig, entries)
	MustBuild(entries, Options{BranchFactor: 4})
	for i := range entries {
		if entries[i].ID != orig[i].ID {
			t.Fatalf("Build reordered caller's slice at %d", i)
		}
	}
}

func BenchmarkBuild1000x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustBuild(entries, Options{})
	}
}

func BenchmarkPointQuery1000x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 1000, 4)
	tr := MustBuild(entries, Options{})
	p := randomPoint(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountQuery(p)
	}
}
