package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(2); err == nil {
		t.Error("branch factor 2 accepted")
	}
	d, err := NewDynamic(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.m != DefaultBranchFactor {
		t.Errorf("default m = %d", d.m)
	}
}

func TestDynamicInsertValidation(t *testing.T) {
	d := MustNewDynamic(4)
	if err := d.Insert(Entry{Rect: geometry.NewRect(5, 5), ID: 0}); err == nil {
		t.Error("empty rect accepted")
	}
	if err := d.Insert(Entry{Rect: geometry.NewRect(0, 1, 0, 1), ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(Entry{Rect: geometry.NewRect(0, 1), ID: 1}); err == nil {
		t.Error("mixed dims accepted")
	}
}

func TestDynamicEmpty(t *testing.T) {
	d := MustNewDynamic(4)
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
	if got := d.PointQuery(geometry.Point{1}); got != nil {
		t.Errorf("query on empty = %v", got)
	}
	if d.Delete(0, geometry.NewRect(0, 1)) {
		t.Error("delete on empty succeeded")
	}
	if err := d.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDynamicInsertQueryMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := MustNewDynamic(6)
	entries := randomEntries(rng, 800, 3)
	for _, e := range entries {
		if err := d.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 800 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 0; i < 300; i++ {
		p := randomPoint(rng, 3)
		got, want := d.PointQuery(p), bruteMatch(entries, p)
		if !equalIDs(got, want) {
			t.Fatalf("PointQuery(%v): %d ids, want %d", p, len(got), len(want))
		}
		if d.CountQuery(p) != len(want) {
			t.Fatalf("CountQuery mismatch at %v", p)
		}
	}
}

func TestDynamicDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := MustNewDynamic(5)
	entries := randomEntries(rng, 400, 2)
	for _, e := range entries {
		if err := d.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third entry.
	live := make([]Entry, 0, len(entries))
	for i, e := range entries {
		if i%3 == 0 {
			if !d.Delete(e.ID, e.Rect) {
				t.Fatalf("Delete(%d) failed", e.ID)
			}
			continue
		}
		live = append(live, e)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(live))
	}
	// Deleting again fails.
	if d.Delete(entries[0].ID, entries[0].Rect) {
		t.Error("double delete succeeded")
	}
	// Wrong rectangle fails.
	if d.Delete(live[0].ID, geometry.NewRect(-100, -99, -100, -99)) {
		t.Error("delete with wrong rect succeeded")
	}
	for i := 0; i < 200; i++ {
		p := randomPoint(rng, 2)
		if !equalIDs(d.PointQuery(p), bruteMatch(live, p)) {
			t.Fatalf("post-delete mismatch at %v", p)
		}
	}
}

func TestDynamicDeleteToEmpty(t *testing.T) {
	d := MustNewDynamic(4)
	entries := randomEntries(rand.New(rand.NewSource(3)), 50, 2)
	for _, e := range entries {
		if err := d.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		if !d.Delete(e.ID, e.Rect) {
			t.Fatalf("delete %d failed", e.ID)
		}
	}
	if d.Len() != 0 || d.root != nil {
		t.Errorf("tree not empty: len=%d root=%v", d.Len(), d.root)
	}
	// Reusable after emptying.
	if err := d.Insert(entries[0]); err != nil {
		t.Fatal(err)
	}
	if d.CountQuery(entries[0].Rect.Center()) != 1 {
		t.Error("reinsert after emptying lost the entry")
	}
}

func TestDynamicChurnOracle(t *testing.T) {
	// Random interleaved inserts/deletes/queries against a brute-force
	// oracle, checking invariants as the tree reshapes.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := MustNewDynamic(4 + rng.Intn(12))
		live := map[int]Entry{}
		nextID := 0
		for step := 0; step < 400; step++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.6:
				e := randomEntries(rng, 1, 2)[0]
				e.ID = nextID
				nextID++
				if err := d.Insert(e); err != nil {
					return false
				}
				live[e.ID] = e
			default:
				// Delete a random live entry.
				for id, e := range live {
					if !d.Delete(id, e.Rect) {
						return false
					}
					delete(live, id)
					break
				}
			}
		}
		if err := d.checkInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		entries := make([]Entry, 0, len(live))
		for _, e := range live {
			entries = append(entries, e)
		}
		for q := 0; q < 30; q++ {
			p := randomPoint(rng, 2)
			if !equalIDs(d.PointQuery(p), bruteMatch(entries, p)) {
				return false
			}
		}
		return d.Len() == len(live)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDynamicEarlyStop(t *testing.T) {
	d := MustNewDynamic(4)
	for i := 0; i < 30; i++ {
		if err := d.Insert(Entry{Rect: geometry.NewRect(0, 1), ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	d.PointQueryFunc(geometry.Point{0.5}, func(int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("delivered %d", calls)
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 4096, 4)
	b.ResetTimer()
	d := MustNewDynamic(0)
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		e.ID = i
		if err := d.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := MustNewDynamic(0)
	for _, e := range randomEntries(rng, 10000, 4) {
		if err := d.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
	p := randomPoint(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CountQuery(p)
	}
}
