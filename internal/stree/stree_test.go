package stree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

// randomEntries generates n bounded rectangles in [0,100)^dims.
func randomEntries(rng *rand.Rand, n, dims int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		r := make(geometry.Rect, dims)
		for d := range r {
			lo := rng.Float64() * 90
			r[d] = geometry.Interval{Lo: lo, Hi: lo + 0.5 + rng.Float64()*10}
		}
		entries[i] = Entry{Rect: r, ID: i}
	}
	return entries
}

func randomPoint(rng *rand.Rand, dims int) geometry.Point {
	p := make(geometry.Point, dims)
	for d := range p {
		p[d] = rng.Float64() * 100
	}
	return p
}

// bruteMatch is the correctness oracle.
func bruteMatch(entries []Entry, p geometry.Point) []int {
	var ids []int
	for _, e := range entries {
		if e.Rect.Contains(p) {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildValidation(t *testing.T) {
	tests := []struct {
		name    string
		entries []Entry
		opts    Options
		wantErr bool
	}{
		{name: "defaults ok", entries: randomEntries(rand.New(rand.NewSource(1)), 10, 2)},
		{name: "bad skew high", opts: Options{Skew: 0.7}, entries: randomEntries(rand.New(rand.NewSource(1)), 10, 2), wantErr: true},
		{name: "bad skew negative", opts: Options{Skew: -0.1}, entries: randomEntries(rand.New(rand.NewSource(1)), 10, 2), wantErr: true},
		{name: "skew exactly half ok", opts: Options{Skew: 0.5}, entries: randomEntries(rand.New(rand.NewSource(1)), 10, 2)},
		{name: "branch factor 1", opts: Options{BranchFactor: 1}, entries: randomEntries(rand.New(rand.NewSource(1)), 10, 2), wantErr: true},
		{name: "empty set ok", entries: nil},
		{
			name: "mixed dims rejected",
			entries: []Entry{
				{Rect: geometry.NewRect(0, 1), ID: 0},
				{Rect: geometry.NewRect(0, 1, 0, 1), ID: 1},
			},
			wantErr: true,
		},
		{
			name:    "empty rect rejected",
			entries: []Entry{{Rect: geometry.NewRect(5, 5), ID: 0}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Build(tt.entries, tt.opts)
			if (err != nil) != tt.wantErr {
				t.Errorf("Build error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustBuild(nil, Options{})
	if got := tr.PointQuery(geometry.Point{1, 2}); got != nil {
		t.Errorf("empty tree PointQuery = %v, want nil", got)
	}
	if got := tr.CountQuery(geometry.Point{1, 2}); got != 0 {
		t.Errorf("empty tree CountQuery = %d, want 0", got)
	}
	if tr.Len() != 0 || tr.Bounds() != nil {
		t.Errorf("empty tree Len=%d Bounds=%v", tr.Len(), tr.Bounds())
	}
	var zero Tree
	if got := zero.PointQuery(geometry.Point{1}); got != nil {
		t.Errorf("zero-value tree PointQuery = %v, want nil", got)
	}
}

func TestSingleLeafTree(t *testing.T) {
	entries := randomEntries(rand.New(rand.NewSource(7)), 5, 2)
	tr := MustBuild(entries, Options{BranchFactor: 8})
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Height != 1 || s.Leaves != 1 {
		t.Errorf("tiny tree stats = %+v, want single leaf", s)
	}
	for i := 0; i < 50; i++ {
		p := randomPoint(rand.New(rand.NewSource(int64(i))), 2)
		if !equalIDs(tr.PointQuery(p), bruteMatch(entries, p)) {
			t.Fatalf("mismatch vs brute force at %v", p)
		}
	}
}

func TestPointQueryMatchesBruteForce(t *testing.T) {
	tests := []struct {
		name string
		n    int
		dims int
		opts Options
	}{
		{name: "2d default", n: 500, dims: 2},
		{name: "4d paper params", n: 1000, dims: 4, opts: Options{BranchFactor: 40, Skew: 0.3}},
		{name: "small branch", n: 300, dims: 3, opts: Options{BranchFactor: 4, Skew: 0.25}},
		{name: "max skew", n: 200, dims: 2, opts: Options{BranchFactor: 8, Skew: 0.5}},
		{name: "min-ish skew", n: 200, dims: 2, opts: Options{BranchFactor: 8, Skew: 0.05}},
		{name: "one dim", n: 400, dims: 1, opts: Options{BranchFactor: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			entries := randomEntries(rng, tt.n, tt.dims)
			tr := MustBuild(entries, tt.opts)
			if err := tr.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != tt.n {
				t.Fatalf("Len = %d, want %d", tr.Len(), tt.n)
			}
			for i := 0; i < 200; i++ {
				p := randomPoint(rng, tt.dims)
				got, want := tr.PointQuery(p), bruteMatch(entries, p)
				if !equalIDs(got, want) {
					t.Fatalf("PointQuery(%v) = %v, want %v", p, got, want)
				}
				if c := tr.CountQuery(p); c != len(want) {
					t.Fatalf("CountQuery(%v) = %d, want %d", p, c, len(want))
				}
			}
		})
	}
}

func TestPointQueryOnEntryCenters(t *testing.T) {
	// Every entry must be findable by querying its own center: exercises
	// boundary handling through the whole tree.
	rng := rand.New(rand.NewSource(9))
	entries := randomEntries(rng, 600, 3)
	tr := MustBuild(entries, Options{BranchFactor: 10})
	for _, e := range entries {
		c := e.Rect.Center()
		found := false
		for _, id := range tr.PointQuery(c) {
			if id == e.ID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("entry %d not found at its own center %v", e.ID, c)
		}
	}
}

func TestRegionQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := randomEntries(rng, 500, 2)
	tr := MustBuild(entries, Options{BranchFactor: 8})
	for i := 0; i < 100; i++ {
		q := randomEntries(rng, 1, 2)[0].Rect
		var want []int
		for _, e := range entries {
			if e.Rect.Intersects(q) {
				want = append(want, e.ID)
			}
		}
		if got := tr.RegionQuery(q); !equalIDs(got, want) {
			t.Fatalf("RegionQuery(%v): got %d ids, want %d", q, len(got), len(want))
		}
	}
}

func TestPointQueryFuncEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := make([]Entry, 100)
	for i := range entries {
		entries[i] = Entry{Rect: geometry.NewRect(0, 10, 0, 10), ID: i} // all identical
	}
	_ = rng
	tr := MustBuild(entries, Options{BranchFactor: 4})
	calls := 0
	tr.PointQueryFunc(geometry.Point{5, 5}, func(id int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop delivered %d results, want 3", calls)
	}
}

func TestUnboundedRectangles(t *testing.T) {
	// Paper-style predicates: volume >= 1000 has no upper bound.
	entries := []Entry{
		{Rect: geometry.Rect{geometry.AtLeast(999), {Lo: 0, Hi: 100}}, ID: 0},
		{Rect: geometry.Rect{geometry.AtMost(500), {Lo: 0, Hi: 100}}, ID: 1},
		{Rect: geometry.Rect{geometry.FullInterval(), {Lo: 50, Hi: 60}}, ID: 2},
		{Rect: geometry.Rect{{Lo: 0, Hi: 2000}, geometry.FullInterval()}, ID: 3},
	}
	// Pad with bounded noise so the tree has structure.
	rng := rand.New(rand.NewSource(5))
	for i := 4; i < 200; i++ {
		lo1, lo2 := rng.Float64()*1500, rng.Float64()*90
		entries = append(entries, Entry{
			Rect: geometry.NewRect(lo1, lo1+50, lo2, lo2+5),
			ID:   i,
		})
	}
	tr := MustBuild(entries, Options{BranchFactor: 6})
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		p := geometry.Point{rng.Float64() * 2500, rng.Float64() * 120}
		if !equalIDs(tr.PointQuery(p), bruteMatch(entries, p)) {
			t.Fatalf("mismatch vs brute force at %v", p)
		}
	}
}

func TestDuplicateRectangles(t *testing.T) {
	// Many subscribers sharing one subscription rectangle must all match.
	entries := make([]Entry, 0, 64)
	for i := 0; i < 64; i++ {
		entries = append(entries, Entry{Rect: geometry.NewRect(1, 2, 1, 2), ID: i})
	}
	tr := MustBuild(entries, Options{BranchFactor: 4})
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.PointQuery(geometry.Point{1.5, 1.5})
	if len(got) != 64 {
		t.Fatalf("got %d matches, want 64", len(got))
	}
}

func TestTreeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	entries := randomEntries(rng, 2000, 2)
	tr := MustBuild(entries, Options{BranchFactor: 10, Skew: 0.3})
	s := tr.Stats()
	if s.MaxBranch > 10 {
		t.Errorf("MaxBranch = %d exceeds M=10", s.MaxBranch)
	}
	if s.Leaves == 0 || s.Nodes <= s.Leaves {
		t.Errorf("implausible stats %+v", s)
	}
	if s.MeanLeafLen <= 0 || s.MeanLeafLen > 10 {
		t.Errorf("MeanLeafLen = %v out of (0, 10]", s.MeanLeafLen)
	}
	if s.Height < 2 {
		t.Errorf("Height = %d, want >= 2 for 2000 entries with M=10", s.Height)
	}
}

func TestQueryStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries := randomEntries(rng, 1000, 2)
	tr := MustBuild(entries, Options{BranchFactor: 10})
	p := randomPoint(rng, 2)
	ids, qs := tr.PointQueryStats(p)
	if qs.ResultsMatched != len(ids) {
		t.Errorf("ResultsMatched = %d, want %d", qs.ResultsMatched, len(ids))
	}
	if qs.NodesVisited == 0 {
		t.Error("NodesVisited = 0, want > 0")
	}
	if qs.LeavesVisited > qs.NodesVisited {
		t.Errorf("LeavesVisited %d > NodesVisited %d", qs.LeavesVisited, qs.NodesVisited)
	}
	if qs.EntriesTested < len(ids) {
		t.Errorf("EntriesTested %d < matches %d", qs.EntriesTested, len(ids))
	}
	// Pruning must beat brute force on this workload.
	if qs.EntriesTested >= len(entries) {
		t.Errorf("EntriesTested %d shows no pruning over %d entries", qs.EntriesTested, len(entries))
	}
}

func TestSkewBoundsRespected(t *testing.T) {
	// With a high skew factor the tree must be nearly balanced: height
	// is O(log_{1/(1-p)} n). For p=0.5 every split halves, so height
	// <= ceil(log2(n/M)) + 1.
	rng := rand.New(rand.NewSource(17))
	entries := randomEntries(rng, 1024, 2)
	tr := MustBuild(entries, Options{BranchFactor: 8, Skew: 0.5})
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// 1024/8 = 128 leaves minimum; binary height before compression
	// ~ log2(128)=7; compression only shrinks height.
	if s.Height > 8 {
		t.Errorf("height %d too large for balanced tree", s.Height)
	}
}

func TestPropInvariantsAcrossShapes(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(19))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		dims := 1 + rng.Intn(4)
		m := 2 + rng.Intn(20)
		skew := 0.05 + rng.Float64()*0.45
		entries := randomEntries(rng, n, dims)
		tr := MustBuild(entries, Options{BranchFactor: m, Skew: skew})
		if err := tr.checkInvariants(); err != nil {
			t.Logf("seed %d (n=%d dims=%d M=%d p=%.2f): %v", seed, n, dims, m, skew, err)
			return false
		}
		p := randomPoint(rng, dims)
		return equalIDs(tr.PointQuery(p), bruteMatch(entries, p))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	entries := randomEntries(rng, 100, 2)
	orig := make([]Entry, len(entries))
	copy(orig, entries)
	MustBuild(entries, Options{BranchFactor: 4})
	for i := range entries {
		if entries[i].ID != orig[i].ID || !entries[i].Rect.Equal(orig[i].Rect) {
			t.Fatalf("Build reordered or mutated caller's slice at %d", i)
		}
	}
}

func BenchmarkBuild1000x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustBuild(entries, Options{})
	}
}

func BenchmarkPointQuery1000x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 1000, 4)
	tr := MustBuild(entries, Options{})
	p := randomPoint(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountQuery(p)
	}
}

func TestRegionQueryFuncEarlyStop(t *testing.T) {
	entries := make([]Entry, 50)
	for i := range entries {
		entries[i] = Entry{Rect: geometry.NewRect(0, 10, 0, 10), ID: i}
	}
	tr := MustBuild(entries, Options{BranchFactor: 4})
	calls := 0
	tr.RegionQueryFunc(geometry.NewRect(5, 6, 5, 6), func(int) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Errorf("early stop delivered %d, want 7", calls)
	}
	// Empty tree: no calls, no panic.
	var zero Tree
	zero.RegionQueryFunc(geometry.NewRect(0, 1), func(int) bool { t.Fatal("callback on empty"); return false })
}

func TestRegionQueryBoundarySemantics(t *testing.T) {
	// Half-open semantics apply to region intersection too: a query
	// rectangle abutting an entry must not match it.
	entries := []Entry{{Rect: geometry.NewRect(0, 5, 0, 5), ID: 1}}
	tr := MustBuild(entries, Options{})
	if got := tr.RegionQuery(geometry.NewRect(5, 9, 0, 5)); len(got) != 0 {
		t.Errorf("abutting region matched: %v", got)
	}
	if got := tr.RegionQuery(geometry.NewRect(4.999, 9, 0, 5)); len(got) != 1 {
		t.Errorf("overlapping region missed: %v", got)
	}
}
