//go:build invariants

package stree

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

// With -tags=invariants every Build deep-checks the finished tree and
// every bestSplit asserts its skew bounds, so these tests just have to
// drive construction across a wide parameter grid: any structural
// violation panics.

func TestInvariantsRandomizedBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 39, 40, 41, 250, 1000} {
		for _, m := range []int{2, 3, 8, 40} {
			for _, skew := range []float64{0.1, 0.3, 0.5} {
				entries := randomEntries(rng, n, 1+rng.Intn(4))
				tr := MustBuild(entries, Options{BranchFactor: m, Skew: skew})
				if tr.Len() != n {
					t.Fatalf("n=%d m=%d skew=%g: Len() = %d", n, m, skew, tr.Len())
				}
			}
		}
	}
}

func TestInvariantsUnboundedRects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := make([]Entry, 200)
	for i := range entries {
		r := make(geometry.Rect, 3)
		for d := range r {
			switch rng.Intn(4) {
			case 0:
				r[d] = geometry.FullInterval()
			case 1:
				r[d] = geometry.AtLeast(rng.Float64() * 50)
			case 2:
				r[d] = geometry.AtMost(rng.Float64() * 50)
			default:
				lo := rng.Float64() * 50
				r[d] = geometry.NewInterval(lo, lo+1+rng.Float64()*10)
			}
		}
		entries[i] = Entry{Rect: r, ID: i}
	}
	tr := MustBuild(entries, Options{})
	// Spot-check matching against brute force under the checked build.
	for q := 0; q < 50; q++ {
		p := geometry.Point{rng.Float64() * 60, rng.Float64() * 60, rng.Float64() * 60}
		want := 0
		for _, e := range entries {
			if e.Rect.Contains(p) {
				want++
			}
		}
		if got := tr.CountQuery(p); got != want {
			t.Fatalf("query %v: got %d matches, want %d", p, got, want)
		}
	}
}
