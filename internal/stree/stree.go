// Package stree implements the S-tree spatial index of Aggarwal, Wolf, Yu
// and Epelman ("Using unbalanced trees for indexing multidimensional
// objects", Knowledge and Information Systems 1:309-336, 1999), as used by
// the paper for the content-based matching problem.
//
// An S-tree stores axis-aligned rectangles (subscriptions). Its node
// structure is identical to an R-tree's — leaf records hold
// (rectangle, subscription-id) pairs and internal records hold
// (minimum-bounding-rectangle, child-pointer) pairs — but unlike an R-tree
// it is not necessarily height balanced. Construction is a two stage
// static packing:
//
//  1. Binarization: a binary tree is built top-down. Each node's entries
//     are ordered by their centers along the node MBR's longest dimension
//     and swept for the two-way split minimising the sum of the children's
//     bounding-box volumes, subject to the skew constraint that each child
//     holds at least p·N_A of the node's N_A objects.
//  2. Compression: the binary tree is collapsed into an M-ary tree by
//     repeatedly merging a parent with a branch-factor-2 child (the one
//     with the highest leaf number), top-down in BFS order, until every
//     node other than leaf and penultimate nodes has branch factor M.
//
// A publication event is matched with a point query: descend from the
// root, pruning every subtree whose MBR does not contain the point.
// Because subscriptions are exactly their own bounding boxes, the result
// is exact, not approximate.
package stree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/flat"
	"repro/internal/geometry"
	"repro/internal/invariant"
)

// Entry is one indexed subscription: its rectangle and caller-assigned
// identifier.
type Entry struct {
	Rect geometry.Rect
	ID   int
}

// DefaultBranchFactor is the paper's typical fanout M ("M is typically
// chosen to be about 40").
const DefaultBranchFactor = 40

// DefaultSkew is the paper's typical skew factor p ("Typically p is chosen
// to be about 0.3").
const DefaultSkew = 0.3

// Options configure S-tree construction.
type Options struct {
	// BranchFactor is the maximum fanout M of internal nodes. It also
	// bounds the number of entries per leaf. Zero selects
	// DefaultBranchFactor.
	BranchFactor int
	// Skew is the skew factor p in (0, 1/2]. Every binarization split
	// leaves at least Skew·N_A objects on each side. Zero selects
	// DefaultSkew.
	Skew float64
}

func (o Options) withDefaults() Options {
	if o.BranchFactor == 0 {
		o.BranchFactor = DefaultBranchFactor
	}
	if o.Skew == 0 {
		o.Skew = DefaultSkew
	}
	return o
}

func (o Options) validate() error {
	if o.BranchFactor < 2 {
		return fmt.Errorf("stree: branch factor M must be >= 2, got %d", o.BranchFactor)
	}
	if o.Skew <= 0 || o.Skew > 0.5 {
		return fmt.Errorf("stree: skew factor p must lie in (0, 1/2], got %g", o.Skew)
	}
	return nil
}

// node is a tree node. Exactly one of children/entries is non-empty;
// leaves hold entries.
type node struct {
	mbr      geometry.Rect
	children []*node
	entries  []Entry
	// leafObjects is the paper's "leaf number" N_A: the number of data
	// objects stored in the leaf descendants of this node.
	leafObjects int
	dead        bool // set when compression merges this node away
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// penultimate reports whether every child is a leaf.
func (n *node) penultimate() bool {
	if n.isLeaf() {
		return false
	}
	for _, c := range n.children {
		if !c.isLeaf() {
			return false
		}
	}
	return true
}

// Tree is an immutable S-tree over a set of subscription entries.
// Build it with Build; the zero value is an empty tree that matches
// nothing.
type Tree struct {
	root *node
	opts Options
	size int
	dims int
	// flat is the contiguous array compilation of the pointer tree; all
	// queries run against it (the pointer tree is kept for structural
	// statistics and invariant checks).
	flat *flat.Tree
}

// flatNode adapts *node to flat.Node for flattening after Build.
type flatNode struct{ n *node }

func (a flatNode) MBR() geometry.Rect { return a.n.mbr }
func (a flatNode) NumChildren() int   { return len(a.n.children) }
func (a flatNode) Child(i int) flat.Node {
	return flatNode{a.n.children[i]}
}
func (a flatNode) NumEntries() int { return len(a.n.entries) }
func (a flatNode) Entry(i int) (geometry.Rect, int) {
	e := a.n.entries[i]
	return e.Rect, e.ID
}

// Build constructs an S-tree over the entries. The entries slice is not
// retained; rectangles are referenced, not copied. All rectangles must
// share the same dimensionality. Building an empty set yields a tree whose
// queries return nothing.
func Build(entries []Entry, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &Tree{opts: opts, size: len(entries)}
	if len(entries) == 0 {
		return t, nil
	}
	t.dims = entries[0].Rect.Dims()
	for _, e := range entries {
		if e.Rect.Dims() != t.dims {
			return nil, fmt.Errorf("stree: mixed dimensionality: %d vs %d", e.Rect.Dims(), t.dims)
		}
		if e.Rect.Empty() {
			return nil, fmt.Errorf("stree: entry %d has an empty rectangle", e.ID)
		}
	}
	b := &builder{opts: opts, frame: finiteFrame(entries)}
	own := make([]Entry, len(entries))
	copy(own, entries)
	root := b.binarize(own)
	compress(root, opts.BranchFactor)
	t.root = root
	t.flat = flat.Build(flatNode{root}, t.dims)
	if invariant.Enabled {
		err := t.checkInvariants()
		invariant.Assertf(err == nil, "stree.Build produced an invalid tree: %v", err)
	}
	return t, nil
}

// MustBuild is Build, panicking on error. Intended for tests and for
// callers that pass validated options.
func MustBuild(entries []Entry, opts Options) *Tree {
	t, err := Build(entries, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// finiteFrame computes a finite rectangle that covers every finite bound
// among the entries, used to measure volumes in the presence of unbounded
// subscription rectangles (e.g. "volume >= 1000" has no upper bound). A
// dimension with no finite bounds at all measures as unit length.
func finiteFrame(entries []Entry) geometry.Rect {
	dims := entries[0].Rect.Dims()
	frame := make(geometry.Rect, dims)
	for d := range frame {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range entries {
			if v := e.Rect[d].Lo; !math.IsInf(v, 0) && v < lo {
				lo = v
			}
			if v := e.Rect[d].Hi; !math.IsInf(v, 0) && v > hi {
				hi = v
			}
			// A finite Hi can also lower-bound the frame, and vice versa.
			if v := e.Rect[d].Hi; !math.IsInf(v, 0) && v < lo {
				lo = v
			}
			if v := e.Rect[d].Lo; !math.IsInf(v, 0) && v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) || hi <= lo {
			frame[d] = geometry.NewInterval(0, 1)
			continue
		}
		// Pad so clamped unbounded sides still dominate bounded ones.
		pad := (hi - lo) * 0.1
		frame[d] = geometry.NewInterval(lo-pad, hi+pad)
	}
	return frame
}

type builder struct {
	opts  Options
	frame geometry.Rect
}

// measure returns the packing volume of r: the volume of r clamped to the
// finite frame. This equals r.Volume() for bounded inputs and stays finite
// (and comparable) for unbounded ones.
func (b *builder) measure(r geometry.Rect) float64 {
	return r.Intersect(b.frame).Volume()
}

func (b *builder) measurePerimeter(r geometry.Rect) float64 {
	return r.Intersect(b.frame).Perimeter()
}

// binarize implements the paper's Section 3.1 recursive sweep partition.
func (b *builder) binarize(entries []Entry) *node {
	mbr := geometry.BoundingBox(rectsOf(entries)...)
	n := &node{mbr: mbr, leafObjects: len(entries)}
	if len(entries) <= b.opts.BranchFactor {
		n.entries = entries
		return n
	}

	dim := mbr.LongestDim()
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect[dim].Center() < entries[j].Rect[dim].Center()
	})

	q := b.bestSplit(entries)
	left := entries[:q]
	right := entries[q:]
	n.children = []*node{b.binarize(left), b.binarize(right)}
	return n
}

// bestSplit sweeps candidate split positions q with
// ceil(p·N) <= q <= floor((1-p)·N), in increments of M, and returns the q
// minimising V(I_B1)+V(I_B2); ties are broken by minimum total perimeter.
func (b *builder) bestSplit(entries []Entry) int {
	n := len(entries)
	p := b.opts.Skew
	m := b.opts.BranchFactor

	qmin := int(math.Ceil(p * float64(n)))
	qmax := int(math.Floor((1 - p) * float64(n)))
	if qmin < 1 {
		qmin = 1
	}
	if qmax > n-1 {
		qmax = n - 1
	}
	if qmax < qmin {
		qmin, qmax = n/2, n/2
	}

	// Prefix and suffix MBRs let each candidate split be evaluated in
	// O(1) after O(n) preparation, exactly the incremental computation
	// the paper notes "can be computed incrementally as the sweep
	// progresses".
	prefix := make([]geometry.Rect, n+1)
	suffix := make([]geometry.Rect, n+1)
	acc := geometry.Rect(nil)
	for i := 0; i < n; i++ {
		acc = acc.Union(entries[i].Rect)
		prefix[i+1] = acc
	}
	acc = nil
	for i := n - 1; i >= 0; i-- {
		acc = acc.Union(entries[i].Rect)
		suffix[i] = acc
	}

	bestQ := qmin
	bestVol := math.Inf(1)
	bestPerim := math.Inf(1)
	for q := qmin; q <= qmax; q += m {
		vol := b.measure(prefix[q]) + b.measure(suffix[q])
		perim := b.measurePerimeter(prefix[q]) + b.measurePerimeter(suffix[q])
		if vol < bestVol || (vol == bestVol && perim < bestPerim) {
			bestQ, bestVol, bestPerim = q, vol, perim
		}
	}
	invariant.Assertf(bestQ >= qmin && bestQ <= qmax && bestQ < n,
		"stree: split point %d outside skew bounds [%d, %d], n=%d", bestQ, qmin, qmax, n)
	return bestQ
}

func rectsOf(entries []Entry) []geometry.Rect {
	rs := make([]geometry.Rect, len(entries))
	for i, e := range entries {
		rs[i] = e.Rect
	}
	return rs
}

// compress implements the paper's Section 3.2 in two phases:
// first the bottom-up formation of penultimate nodes, then the top-down
// BFS collapse of branch-factor-2 children.
func compress(root *node, m int) {
	if root.isLeaf() {
		return
	}
	formPenultimate(root, m, nil)
	collapseTopDown(root, m)
}

// formPenultimate finds every node A whose leaf-node count is <= M while
// its parent's exceeds M, and flattens A so its children are exactly its
// leaf descendants. Such A become the penultimate nodes of the final tree.
func formPenultimate(n *node, m int, parent *node) {
	if n.isLeaf() {
		return
	}
	if leafNodeCount(n) <= m && (parent == nil || leafNodeCount(parent) > m) {
		n.children = collectLeaves(n)
		return
	}
	for _, c := range n.children {
		formPenultimate(c, m, n)
	}
}

func leafNodeCount(n *node) int {
	if n.isLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.children {
		total += leafNodeCount(c)
	}
	return total
}

func collectLeaves(n *node) []*node {
	if n.isLeaf() {
		return []*node{n}
	}
	var leaves []*node
	for _, c := range n.children {
		leaves = append(leaves, collectLeaves(c)...)
	}
	return leaves
}

// collapseTopDown processes non-leaf nodes in BFS order. Each node keeps
// absorbing its eligible child — the non-leaf, branch-factor-2 child with
// the highest leaf number — until its branch factor reaches M or no
// eligible child remains. Absorbing a child replaces it, in the parent's
// child list, with the child's own children, raising the branch factor by
// exactly one per step so M is never exceeded.
func collapseTopDown(root *node, m int) {
	queue := bfsInternal(root)
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		if a.dead || a.isLeaf() {
			continue
		}
		for len(a.children) < m {
			b := eligibleChild(a)
			if b == nil {
				break
			}
			b.dead = true
			a.children = replaceChild(a.children, b, b.children)
		}
	}
}

// eligibleChild returns the non-leaf child of a with branch factor 2 that
// has the highest leaf number, or nil if none exists. As the paper notes,
// such a child can never be a leaf node.
func eligibleChild(a *node) *node {
	var best *node
	for _, c := range a.children {
		if c.isLeaf() || len(c.children) != 2 {
			continue
		}
		if best == nil || c.leafObjects > best.leafObjects {
			best = c
		}
	}
	return best
}

func replaceChild(children []*node, old *node, repl []*node) []*node {
	out := make([]*node, 0, len(children)-1+len(repl))
	for _, c := range children {
		if c == old {
			out = append(out, repl...)
			continue
		}
		out = append(out, c)
	}
	return out
}

func bfsInternal(root *node) []*node {
	var order []*node
	frontier := []*node{root}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		if n.isLeaf() {
			continue
		}
		order = append(order, n)
		frontier = append(frontier, n.children...)
	}
	return order
}

// Len reports the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Dims reports the dimensionality of the indexed rectangles, 0 when empty.
func (t *Tree) Dims() int { return t.dims }

// Bounds returns the minimum bounding rectangle of all indexed entries,
// or nil for an empty tree.
func (t *Tree) Bounds() geometry.Rect {
	if t.root == nil {
		return nil
	}
	return t.root.mbr.Clone()
}

// PointQuery returns the IDs of every subscription rectangle containing p,
// in unspecified order. This is the paper's matching operation.
func (t *Tree) PointQuery(p geometry.Point) []int {
	var ids []int
	t.PointQueryFunc(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// PointQueryFunc streams the IDs of matching subscriptions to fn. Return
// false from fn to stop the query early.
func (t *Tree) PointQueryFunc(p geometry.Point, fn func(id int) bool) {
	if t.root == nil {
		return
	}
	var st flat.Stats
	sp := flat.GetStack()
	*sp = t.flat.PointFunc(p, *sp, &st, fn)
	flat.PutStack(sp)
}

// PointQueryAppend appends the IDs of every subscription rectangle
// containing p to dst and returns it. It performs no allocation beyond
// growing dst.
//
//pubsub:hotpath
func (t *Tree) PointQueryAppend(p geometry.Point, dst []int) []int {
	if t.root == nil {
		return dst
	}
	var st flat.Stats
	sp := flat.GetStack()
	dst, *sp = t.flat.PointAppend(p, dst, *sp, &st)
	flat.PutStack(sp)
	return dst
}

// PointQueryAppendStats is PointQueryAppend with traversal statistics.
func (t *Tree) PointQueryAppendStats(p geometry.Point, dst []int) ([]int, QueryStats) {
	var stats QueryStats
	if t.root == nil {
		return dst, stats
	}
	var st flat.Stats
	sp := flat.GetStack()
	dst, *sp = t.flat.PointAppend(p, dst, *sp, &st)
	flat.PutStack(sp)
	return dst, queryStats(st)
}

// CountQuery returns the number of subscriptions matching p without
// materialising the ID list. It does not allocate.
func (t *Tree) CountQuery(p geometry.Point) int {
	if t.root == nil {
		return 0
	}
	var st flat.Stats
	sp := flat.GetStack()
	count, stack := t.flat.PointCount(p, *sp, &st)
	*sp = stack
	flat.PutStack(sp)
	return count
}

func queryStats(st flat.Stats) QueryStats {
	return QueryStats{
		NodesVisited:   st.NodesVisited,
		LeavesVisited:  st.LeavesVisited,
		EntriesTested:  st.EntriesTested,
		ResultsMatched: st.Matched,
	}
}

// QueryStats reports traversal effort for a single query, for evaluating
// packing quality (the paper: "the choice of tree packing influences the
// number of node pages which need to be examined").
type QueryStats struct {
	NodesVisited   int // tree nodes whose MBR was tested and entered
	LeavesVisited  int // leaves among them
	EntriesTested  int // leaf records compared against the point
	ResultsMatched int
}

// PointQueryStats is PointQuery with traversal statistics.
func (t *Tree) PointQueryStats(p geometry.Point) ([]int, QueryStats) {
	var ids []int
	stats := t.PointQueryFuncStats(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids, stats
}

// PointQueryFuncStats is PointQueryFunc with traversal statistics: it
// streams matching IDs to fn and returns the per-query effort counters.
// This is the allocation-free form used by instrumented brokers.
func (t *Tree) PointQueryFuncStats(p geometry.Point, fn func(id int) bool) QueryStats {
	if t.root == nil {
		return QueryStats{}
	}
	var st flat.Stats
	sp := flat.GetStack()
	*sp = t.flat.PointFunc(p, *sp, &st, fn)
	flat.PutStack(sp)
	return queryStats(st)
}

// RegionQuery returns the IDs of every subscription rectangle intersecting
// the query rectangle r.
func (t *Tree) RegionQuery(r geometry.Rect) []int {
	var ids []int
	t.RegionQueryFunc(r, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// RegionQueryFunc streams the IDs of subscriptions intersecting r to fn;
// return false from fn to stop early. Region queries answer
// administrative questions such as "which subscriptions overlap this
// part of the event space".
func (t *Tree) RegionQueryFunc(r geometry.Rect, fn func(id int) bool) {
	if t.root == nil {
		return
	}
	var st flat.Stats
	sp := flat.GetStack()
	*sp = t.flat.RegionFunc(r, *sp, &st, fn)
	flat.PutStack(sp)
}

// TreeStats describes the structure of a built tree.
type TreeStats struct {
	Nodes       int // total nodes
	Leaves      int // leaf nodes
	Height      int // levels; a single-leaf tree has height 1
	MaxBranch   int // maximum fanout observed
	MeanBranch  float64
	MeanLeafLen float64 // mean entries per leaf
}

// Stats computes structural statistics of the tree.
func (t *Tree) Stats() TreeStats {
	var s TreeStats
	if t.root == nil {
		return s
	}
	internal := 0
	childSum := 0
	entrySum := 0
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s.Nodes++
		if depth > s.Height {
			s.Height = depth
		}
		if n.isLeaf() {
			s.Leaves++
			entrySum += len(n.entries)
			return
		}
		internal++
		childSum += len(n.children)
		if len(n.children) > s.MaxBranch {
			s.MaxBranch = len(n.children)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 1)
	if internal > 0 {
		s.MeanBranch = float64(childSum) / float64(internal)
	}
	if s.Leaves > 0 {
		s.MeanLeafLen = float64(entrySum) / float64(s.Leaves)
	}
	return s
}

// FlatSize reports the node and entry counts of the flattened
// structure-of-arrays form queries actually traverse (0, 0 before the
// tree is built).
func (t *Tree) FlatSize() (nodes, entries int) {
	if t == nil || t.flat == nil {
		return 0, 0
	}
	return t.flat.NumNodes(), t.flat.NumEntries()
}

// checkInvariants verifies structural invariants; it is used by tests.
// It returns an error describing the first violation found.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	m := t.opts.BranchFactor
	seen := 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if n.dead {
			return fmt.Errorf("stree: dead node reachable")
		}
		if n.isLeaf() {
			if len(n.entries) == 0 {
				return fmt.Errorf("stree: empty leaf")
			}
			if len(n.entries) > m {
				return fmt.Errorf("stree: leaf holds %d > M=%d entries", len(n.entries), m)
			}
			seen += len(n.entries)
			mbr := geometry.BoundingBox(rectsOf(n.entries)...)
			if !n.mbr.Equal(mbr) {
				return fmt.Errorf("stree: leaf MBR %v != computed %v", n.mbr, mbr)
			}
			return nil
		}
		if len(n.children) > m {
			return fmt.Errorf("stree: node has branch factor %d > M=%d", len(n.children), m)
		}
		if len(n.children) < 2 && !isRoot {
			return fmt.Errorf("stree: non-root internal node with branch factor %d", len(n.children))
		}
		// Compression fixpoint: a node below branch factor M must have
		// no remaining eligible (non-leaf, branch-factor-2) child.
		if len(n.children) < m && eligibleChild(n) != nil {
			return fmt.Errorf("stree: node with branch factor %d < M=%d still has an eligible child", len(n.children), m)
		}
		var mbr geometry.Rect
		for _, c := range n.children {
			if !n.mbr.ContainsRect(c.mbr) {
				return fmt.Errorf("stree: child MBR %v escapes parent %v", c.mbr, n.mbr)
			}
			mbr = mbr.Union(c.mbr)
			if err := walk(c, false); err != nil {
				return err
			}
		}
		if !n.mbr.Equal(mbr) {
			return fmt.Errorf("stree: node MBR %v != union of children %v", n.mbr, mbr)
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if seen != t.size {
		return fmt.Errorf("stree: tree holds %d entries, expected %d", seen, t.size)
	}
	// The flattened compilation must cover exactly the same entries; its
	// node-for-node equivalence with the pointer tree is checked inside
	// flat.Build when invariants are enabled.
	if t.flat == nil || t.flat.NumEntries() != t.size {
		return fmt.Errorf("stree: flat layout missing or holds wrong entry count")
	}
	return nil
}
