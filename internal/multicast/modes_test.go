package multicast

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestModeString(t *testing.T) {
	if ModeDense.String() != "dense" || ModeSparse.String() != "sparse" || ModeALM.String() != "alm" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestSparseCostHandComputed(t *testing.T) {
	// Path graph 0-1-2-3, unit costs. RP=1, members {2,3}, src=0.
	// Cost = dist(0,1) + tree(1, {2,3}) = 1 + 2 = 3.
	g := topology.NewGraph(make([]topology.Node, 4))
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	m := NewCostModel(g)
	got, err := m.SparseCost(0, 1, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("SparseCost = %v, want 3", got)
	}
	// src == rp: no tunnel cost.
	got, err = m.SparseCost(1, 1, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("SparseCost(src=rp) = %v, want 2", got)
	}
}

func TestBestRendezvous(t *testing.T) {
	// Star: center 0 with leaves 1..4 at unit cost. The center is the
	// best RP for any member set.
	g := topology.NewGraph(make([]topology.Node, 5))
	for i := 1; i < 5; i++ {
		if err := g.AddEdge(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	m := NewCostModel(g)
	rp, err := m.BestRendezvous([]int{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp != 0 {
		t.Errorf("BestRendezvous = %d, want 0", rp)
	}
	// Candidate restriction is honoured.
	rp, err = m.BestRendezvous([]int{1, 2, 3}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rp != 2 {
		t.Errorf("restricted BestRendezvous = %d, want 2", rp)
	}
	if _, err := m.BestRendezvous(nil, nil); err == nil {
		t.Error("empty member set accepted")
	}
}

func TestALMCostHandComputed(t *testing.T) {
	// Path 0-1-2, unit costs. Members {1, 2}, src 0.
	// Overlay MST: 0-1 (1) + 1-2 (1) = 2 (relaying through member 1),
	// cheaper than two direct unicasts 0-1 (1) + 0-2 (2) = 3.
	g := topology.NewGraph(make([]topology.Node, 3))
	for i := 0; i < 2; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	m := NewCostModel(g)
	got, err := m.ALMCost(0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("ALMCost = %v, want 2", got)
	}
	uni, err := m.UnicastCost(0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if uni != 3 {
		t.Errorf("UnicastCost = %v, want 3", uni)
	}
}

func TestALMCostEdgeCases(t *testing.T) {
	g := topology.NewGraph(make([]topology.Node, 3))
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	m := NewCostModel(g)
	// No members: zero.
	if got, err := m.ALMCost(0, nil); err != nil || got != 0 {
		t.Errorf("ALMCost(none) = %v, %v", got, err)
	}
	// Members equal to src: zero.
	if got, err := m.ALMCost(0, []int{0, 0}); err != nil || got != 0 {
		t.Errorf("ALMCost(self) = %v, %v", got, err)
	}
	// Unreachable member (node 2 isolated) is skipped.
	if got, err := m.ALMCost(0, []int{1, 2}); err != nil || got != 2 {
		t.Errorf("ALMCost(unreachable) = %v, %v", got, err)
	}
}

func TestModeOrderingOnRealTopology(t *testing.T) {
	// Sanity relations that do hold on any graph: ALM is at most the
	// deduplicated unicast cost (the unicast star is a feasible overlay
	// tree), dense multicast is at most unicast, and sparse stays within
	// a small factor of unicast (it pays one RP detour).
	g := topology.MustGenerate(topology.DefaultConfig(), rand.New(rand.NewSource(4)))
	m := NewCostModel(g)
	transit := g.NodesByRole(topology.RoleTransit)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		src := rng.Intn(g.NumNodes())
		k := 2 + rng.Intn(30)
		members := make([]int, k)
		for i := range members {
			members[i] = rng.Intn(g.NumNodes())
		}
		dense, err := m.MulticastCost(src, members)
		if err != nil {
			t.Fatal(err)
		}
		alm, err := m.ALMCost(src, members)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := m.UnicastCost(src, members)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := m.BestRendezvous(members, transit)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := m.SparseCost(src, rp, members)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-9
		if dense > uni+eps {
			t.Fatalf("dense %v above unicast %v", dense, uni)
		}
		if alm <= 0 {
			t.Fatalf("ALM cost %v not positive", alm)
		}
		// ALM never exceeds unicast: direct unicasts from src to every
		// member form one feasible overlay tree (a star), and the MST
		// can only be cheaper. (Duplicates make unicast pay twice, so
		// compare against deduplicated unicast.)
		dedup := map[int]struct{}{}
		var uniq []int
		for _, v := range members {
			if _, ok := dedup[v]; !ok {
				dedup[v] = struct{}{}
				uniq = append(uniq, v)
			}
		}
		uniDedup, err := m.UnicastCost(src, uniq)
		if err != nil {
			t.Fatal(err)
		}
		if alm > uniDedup+eps {
			t.Fatalf("ALM %v above deduplicated unicast %v", alm, uniDedup)
		}
		if sparse <= 0 || sparse > 3*uni+eps {
			t.Fatalf("sparse %v implausible (unicast %v)", sparse, uni)
		}
	}
}
