package multicast

import (
	"fmt"
	"math"
)

// Mode selects a multicast delivery mechanism. The paper's evaluation
// assumes dense mode; sparse mode and application-level multicast are
// the alternatives it discusses (Section 5.2 and the Almeroth [4] /
// ALMI [14] references), provided here for the abl-mode ablation.
type Mode int

const (
	// ModeDense is dense-mode network multicast: routers forward along
	// the shortest-path tree rooted at the publisher.
	ModeDense Mode = iota
	// ModeSparse is sparse-mode network multicast: the publisher
	// unicasts to the group's rendezvous point, which forwards down a
	// shared shortest-path tree rooted at itself.
	ModeSparse
	// ModeALM is application-level multicast: member end-hosts relay to
	// each other along an overlay spanning tree (ALMI-style); each
	// overlay hop is a unicast over the underlying shortest path.
	ModeALM
)

// String returns the mode's display name.
func (m Mode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeSparse:
		return "sparse"
	case ModeALM:
		return "alm"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SparseCost returns the cost of a sparse-mode delivery: the publisher's
// shortest path to the rendezvous point rp plus the shared tree rooted
// at rp spanning the members.
func (m *CostModel) SparseCost(src, rp int, members []int) (float64, error) {
	fromSrc, err := m.Paths(src)
	if err != nil {
		return 0, err
	}
	fromRP, err := m.Paths(rp)
	if err != nil {
		return 0, err
	}
	toRP := fromSrc.Dist[rp]
	if src == rp {
		toRP = 0
	}
	return toRP + fromRP.TreeCost(members, nil), nil
}

// BestRendezvous returns the candidate node minimising the total
// shortest-path distance to the members — the rendezvous-point placement
// a sparse-mode deployment would pick per group. With no candidates
// given, all nodes are considered (expensive on large graphs; pass the
// transit nodes in practice).
func (m *CostModel) BestRendezvous(members []int, candidates []int) (int, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("multicast: no members to choose a rendezvous point for")
	}
	if len(candidates) == 0 {
		candidates = make([]int, m.g.NumNodes())
		for i := range candidates {
			candidates[i] = i
		}
	}
	best, bestCost := -1, math.Inf(1)
	for _, c := range candidates {
		sp, err := m.Paths(c)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for _, v := range members {
			total += sp.Dist[v]
		}
		if total < bestCost {
			best, bestCost = c, total
		}
	}
	return best, nil
}

// ALMCost returns the cost of an application-level multicast from src to
// the members: a minimum spanning tree over {src} ∪ members in the
// metric closure (overlay-hop weight = shortest-path distance), with
// each overlay edge paid at its underlying path cost. Unreachable
// members are skipped.
func (m *CostModel) ALMCost(src int, members []int) (float64, error) {
	// Deduplicate hosts; the tree spans each host once.
	hostSet := map[int]struct{}{src: {}}
	for _, v := range members {
		hostSet[v] = struct{}{}
	}
	hosts := make([]int, 0, len(hostSet))
	hosts = append(hosts, src)
	for v := range hostSet {
		if v != src {
			hosts = append(hosts, v)
		}
	}
	if len(hosts) == 1 {
		return 0, nil
	}

	// Prim's algorithm over the metric closure, growing from src.
	// dist[i] is the cheapest overlay edge connecting hosts[i] to the
	// tree.
	inTree := make([]bool, len(hosts))
	best := make([]float64, len(hosts))
	for i := range best {
		best[i] = math.Inf(1)
	}
	inTree[0] = true
	sp0, err := m.Paths(hosts[0])
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(hosts); i++ {
		best[i] = sp0.Dist[hosts[i]]
	}
	total := 0.0
	for added := 1; added < len(hosts); added++ {
		pick := -1
		for i := range hosts {
			if !inTree[i] && (pick < 0 || best[i] < best[pick]) {
				pick = i
			}
		}
		if pick < 0 || math.IsInf(best[pick], 1) {
			break // remaining hosts unreachable
		}
		inTree[pick] = true
		total += best[pick]
		spPick, err := m.Paths(hosts[pick])
		if err != nil {
			return 0, err
		}
		for i := range hosts {
			if !inTree[i] && spPick.Dist[hosts[i]] < best[i] {
				best[i] = spPick.Dist[hosts[i]]
			}
		}
	}
	return total, nil
}
