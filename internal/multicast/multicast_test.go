package multicast

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topology"
)

func starOfPaths(t *testing.T) *topology.Graph {
	t.Helper()
	// 0 - 1 - 2 and 1 - 3: shares edge (0,1) for receivers {2,3}.
	g := topology.NewGraph(make([]topology.Node, 4))
	for _, e := range []struct{ u, v int }{{0, 1}, {1, 2}, {1, 3}} {
		if err := g.AddEdge(e.u, e.v, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestCostModelBasics(t *testing.T) {
	m := NewCostModel(starOfPaths(t))
	uni, err := m.UnicastCost(0, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if uni != 4 {
		t.Errorf("UnicastCost = %v, want 4", uni)
	}
	mc, err := m.MulticastCost(0, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if mc != 3 {
		t.Errorf("MulticastCost = %v, want 3", mc)
	}
	ideal, err := m.IdealCost(0, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if ideal != 2 {
		t.Errorf("IdealCost = %v, want 2", ideal)
	}
}

func TestCostModelSourceValidation(t *testing.T) {
	m := NewCostModel(starOfPaths(t))
	if _, err := m.Paths(-1); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := m.Paths(4); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := m.UnicastCost(99, nil); err == nil {
		t.Error("UnicastCost with bad source accepted")
	}
	if _, err := m.MulticastCost(99, nil); err == nil {
		t.Error("MulticastCost with bad source accepted")
	}
}

func TestCostModelCaching(t *testing.T) {
	m := NewCostModel(starOfPaths(t))
	a, err := m.Paths(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Paths(1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Paths not cached")
	}
}

func TestCostModelConcurrentUse(t *testing.T) {
	g := topology.MustGenerate(topology.DefaultConfig(), rand.New(rand.NewSource(1)))
	m := NewCostModel(g)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				src := rng.Intn(g.NumNodes())
				recv := []int{rng.Intn(g.NumNodes()), rng.Intn(g.NumNodes())}
				if _, err := m.MulticastCost(src, recv); err != nil {
					errs <- err
					return
				}
				if _, err := m.UnicastCost(src, recv); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMulticastNeverBeatsIdealNorLosesToUnicast(t *testing.T) {
	g := topology.MustGenerate(topology.DefaultConfig(), rand.New(rand.NewSource(2)))
	m := NewCostModel(g)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		src := rng.Intn(g.NumNodes())
		k := 1 + rng.Intn(30)
		recv := make([]int, k)
		for j := range recv {
			recv[j] = rng.Intn(g.NumNodes())
		}
		uni, err := m.UnicastCost(src, recv)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := m.MulticastCost(src, recv)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-9
		if mc > uni+eps {
			t.Fatalf("multicast %v > unicast %v for same receivers", mc, uni)
		}
	}
}

func TestImprovement(t *testing.T) {
	tests := []struct {
		name                   string
		unicast, actual, ideal float64
		want                   float64
	}{
		{name: "no improvement", unicast: 100, actual: 100, ideal: 50, want: 0},
		{name: "full improvement", unicast: 100, actual: 50, ideal: 50, want: 100},
		{name: "half", unicast: 100, actual: 75, ideal: 50, want: 50},
		{name: "worse than unicast is negative", unicast: 100, actual: 120, ideal: 50, want: -40},
		{name: "degenerate denominator", unicast: 50, actual: 50, ideal: 50, want: 0},
		{name: "ideal above unicast clamps", unicast: 50, actual: 50, ideal: 60, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Improvement(tt.unicast, tt.actual, tt.ideal); got != tt.want {
				t.Errorf("Improvement = %v, want %v", got, tt.want)
			}
		})
	}
}
