// Package multicast implements the paper's communication cost model over
// a network topology. Delivery cost is "computed by summing up edge costs
// on the links on which communication took place" (Section 5.2):
//
//   - unicast: one message per receiver over its shortest path, so the
//     cost is the sum of shortest-path distances;
//   - dense-mode multicast: routers forward along the shortest-path tree
//     rooted at the publisher, so the cost is the edge-cost sum of the
//     union of the receivers' shortest paths;
//   - ideal: a multicast tree spanning exactly the interested receivers —
//     the paper's 100% improvement bound.
//
// Shortest-path computations are cached per publisher node, and the model
// is safe for concurrent use.
package multicast

import (
	"fmt"
	"sync"

	"repro/internal/topology"
)

// CostModel computes delivery costs on a fixed topology. Create one with
// NewCostModel; it caches Dijkstra results per source node.
type CostModel struct {
	g *topology.Graph

	mu    sync.Mutex
	cache map[int]*topology.ShortestPaths
}

// NewCostModel wraps the graph in a cost model.
func NewCostModel(g *topology.Graph) *CostModel {
	return &CostModel{g: g, cache: make(map[int]*topology.ShortestPaths)}
}

// Graph returns the underlying topology.
func (m *CostModel) Graph() *topology.Graph { return m.g }

// Paths returns the cached single-source shortest paths from src.
func (m *CostModel) Paths(src int) (*topology.ShortestPaths, error) {
	if src < 0 || src >= m.g.NumNodes() {
		return nil, fmt.Errorf("multicast: source node %d out of range [0, %d)", src, m.g.NumNodes())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, ok := m.cache[src]
	if !ok {
		sp = m.g.Dijkstra(src)
		m.cache[src] = sp
	}
	return sp, nil
}

// UnicastCost returns the cost of unicasting from src to every receiver
// node.
func (m *CostModel) UnicastCost(src int, receivers []int) (float64, error) {
	sp, err := m.Paths(src)
	if err != nil {
		return 0, err
	}
	return sp.UnicastCost(receivers), nil
}

// MulticastCost returns the cost of one dense-mode multicast from src to
// the given group member nodes.
func (m *CostModel) MulticastCost(src int, members []int) (float64, error) {
	sp, err := m.Paths(src)
	if err != nil {
		return 0, err
	}
	return sp.TreeCost(members, nil), nil
}

// IdealCost returns the cost of the per-message ideal delivery: a
// multicast tree spanning exactly the interested nodes. This is the
// denominator of the paper's improvement percentage.
func (m *CostModel) IdealCost(src int, interested []int) (float64, error) {
	return m.MulticastCost(src, interested)
}

// Improvement converts an actual cost into the paper's normalised
// improvement percentage for one or more aggregated messages:
// 0% is all-unicast delivery, 100% is per-message ideal multicast.
// It returns 0 when unicast and ideal coincide (nothing to improve).
func Improvement(unicast, actual, ideal float64) float64 {
	den := unicast - ideal
	if den <= 0 {
		return 0
	}
	return 100 * (unicast - actual) / den
}
