package predindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

func TestIntervalTreeStabbing(t *testing.T) {
	entries := []treeEntry{
		{Lo: 0, Hi: 10, Sub: 0},
		{Lo: 5, Hi: 15, Sub: 1},
		{Lo: 12, Hi: 20, Sub: 2},
		{Lo: -5, Hi: 3, Sub: 3},
	}
	tree := buildIntervalTree(entries)
	if tree.Len() != 4 {
		t.Fatalf("Len = %d", tree.Len())
	}
	tests := []struct {
		x    float64
		want []int32
	}{
		{x: 1, want: []int32{0, 3}},
		{x: 7, want: []int32{0, 1}},
		{x: 10, want: []int32{0, 1}},
		{x: 12, want: []int32{1, 2}}, // (12,20] excludes 12? Lo=12 < 12 false -> only {1}... see below
		{x: 18, want: []int32{2}},
		{x: -5, want: nil}, // open lower bound of (-5,3]
		{x: 3, want: []int32{0, 3}},
		{x: 100, want: nil},
	}
	// Fix the x=12 expectation: (12, 20] does not contain 12; (5, 15]
	// does.
	tests[3].want = []int32{1}
	for _, tt := range tests {
		var got []int32
		tree.stab(tt.x, func(s int32) { got = append(got, s) })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(tt.want) {
			t.Errorf("stab(%v) = %v, want %v", tt.x, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("stab(%v) = %v, want %v", tt.x, got, tt.want)
				break
			}
		}
	}
}

func TestIntervalTreePropVsBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		entries := make([]treeEntry, n)
		for i := range entries {
			lo := rng.Float64()*40 - 20
			entries[i] = treeEntry{Lo: lo, Hi: lo + rng.Float64()*15, Sub: int32(i)}
		}
		tree := buildIntervalTree(entries)
		for q := 0; q < 50; q++ {
			x := rng.Float64()*60 - 30
			want := map[int32]bool{}
			for _, e := range entries {
				if e.Lo < x && x <= e.Hi {
					want[e.Sub] = true
				}
			}
			got := map[int32]bool{}
			tree.stab(x, func(s int32) { got[s] = true })
			if len(got) != len(want) {
				return false
			}
			for s := range want {
				if !got[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntervalTreeUnboundedEntries(t *testing.T) {
	entries := []treeEntry{
		{Lo: inf(-1), Hi: 5, Sub: 0},
		{Lo: 3, Hi: inf(1), Sub: 1},
		{Lo: inf(-1), Hi: inf(1), Sub: 2},
	}
	tree := buildIntervalTree(entries)
	cases := []struct {
		x    float64
		want int
	}{
		{x: 0, want: 2},   // {0, 2}
		{x: 4, want: 3},   // all
		{x: 100, want: 2}, // {1, 2}
	}
	for _, c := range cases {
		n := 0
		tree.stab(c.x, func(int32) { n++ })
		if n != c.want {
			t.Errorf("stab(%v) hit %d, want %d", c.x, n, c.want)
		}
	}
}

func randomSubs(rng *rand.Rand, n, dims int, wildcardProb float64) []Subscription {
	subs := make([]Subscription, n)
	for i := range subs {
		r := make(geometry.Rect, dims)
		for d := range r {
			if rng.Float64() < wildcardProb {
				r[d] = geometry.FullInterval()
				continue
			}
			lo := rng.Float64() * 90
			r[d] = geometry.Interval{Lo: lo, Hi: lo + 0.5 + rng.Float64()*10}
		}
		subs[i] = Subscription{Rect: r, SubscriberID: i}
	}
	return subs
}

func bruteMatch(subs []Subscription, p geometry.Point) []int {
	var ids []int
	for _, s := range subs {
		if s.Rect.Contains(p) {
			ids = append(ids, s.SubscriberID)
		}
	}
	return ids
}

func equalIDs(a, b []int) bool {
	a, b = append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Subscription{{Rect: geometry.Rect{}}}); err == nil {
		t.Error("zero-dim accepted")
	}
	mixed := []Subscription{
		{Rect: geometry.NewRect(0, 1)},
		{Rect: geometry.NewRect(0, 1, 0, 1)},
	}
	if _, err := Build(mixed); err == nil {
		t.Error("mixed dims accepted")
	}
	if _, err := Build([]Subscription{{Rect: geometry.NewRect(5, 5)}}); err == nil {
		t.Error("empty rect accepted")
	}
	ix, err := Build(nil)
	if err != nil || ix.Len() != 0 {
		t.Errorf("empty build: %v, len %d", err, ix.Len())
	}
	if got := ix.Match(geometry.Point{1}); got != nil {
		t.Errorf("empty index matched %v", got)
	}
}

func TestMatchAgainstBruteForce(t *testing.T) {
	tests := []struct {
		name     string
		n, dims  int
		wildcard float64
	}{
		{name: "no wildcards", n: 500, dims: 4, wildcard: 0},
		{name: "paper-like wildcards", n: 800, dims: 4, wildcard: 0.25},
		{name: "mostly wildcards", n: 300, dims: 3, wildcard: 0.8},
		{name: "one dim", n: 400, dims: 1, wildcard: 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			subs := randomSubs(rng, tt.n, tt.dims, tt.wildcard)
			ix := MustBuild(subs)
			for q := 0; q < 300; q++ {
				p := make(geometry.Point, tt.dims)
				for d := range p {
					p[d] = rng.Float64() * 100
				}
				got, want := ix.Match(p), bruteMatch(subs, p)
				if !equalIDs(got, want) {
					t.Fatalf("Match(%v): got %d ids, want %d", p, len(got), len(want))
				}
				if c := ix.Count(p); c != len(want) {
					t.Fatalf("Count(%v) = %d, want %d", p, c, len(want))
				}
			}
		})
	}
}

func TestAllWildcardSubscriptionAlwaysMatches(t *testing.T) {
	subs := []Subscription{
		{Rect: geometry.FullRect(2), SubscriberID: 7},
		{Rect: geometry.NewRect(0, 1, 0, 1), SubscriberID: 8},
	}
	ix := MustBuild(subs)
	got := ix.Match(geometry.Point{500, -500})
	if !equalIDs(got, []int{7}) {
		t.Errorf("Match far away = %v, want [7]", got)
	}
	got = ix.Match(geometry.Point{0.5, 0.5})
	if !equalIDs(got, []int{7, 8}) {
		t.Errorf("Match inside = %v, want [7 8]", got)
	}
}

func TestEarlyStop(t *testing.T) {
	subs := make([]Subscription, 30)
	for i := range subs {
		subs[i] = Subscription{Rect: geometry.NewRect(0, 10), SubscriberID: i}
	}
	ix := MustBuild(subs)
	calls := 0
	ix.MatchFunc(geometry.Point{5}, func(int) bool {
		calls++
		return calls < 4
	})
	if calls != 4 {
		t.Errorf("delivered %d, want 4", calls)
	}
}

func TestWrongDimensionality(t *testing.T) {
	ix := MustBuild(randomSubs(rand.New(rand.NewSource(1)), 10, 3, 0))
	if got := ix.Match(geometry.Point{1, 2}); got != nil {
		t.Errorf("wrong-dim point matched %v", got)
	}
}

func TestScratchReuseIsClean(t *testing.T) {
	// Back-to-back queries must not leak counters between each other.
	rng := rand.New(rand.NewSource(3))
	subs := randomSubs(rng, 200, 2, 0.1)
	ix := MustBuild(subs)
	p1 := geometry.Point{50, 50}
	want := ix.Count(p1)
	for i := 0; i < 100; i++ {
		p := geometry.Point{rng.Float64() * 100, rng.Float64() * 100}
		ix.Count(p)
	}
	if got := ix.Count(p1); got != want {
		t.Errorf("Count changed across queries: %d then %d", want, got)
	}
}

func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	subs := randomSubs(rng, 500, 3, 0.2)
	ix := MustBuild(subs)
	type result struct {
		p    geometry.Point
		want []int
	}
	cases := make([]result, 50)
	for i := range cases {
		p := geometry.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		cases[i] = result{p: p, want: bruteMatch(subs, p)}
	}
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ok := true
			for rep := 0; rep < 50; rep++ {
				for _, c := range cases {
					if !equalIDs(ix.Match(c.p), c.want) {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent query returned wrong results")
		}
	}
}

func inf(sign int) float64 { return math.Inf(sign) }
