package predindex

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geometry"
)

// Subscription couples a predicate rectangle with its subscriber id,
// mirroring match.Subscription (duplicated here to avoid an import
// cycle; the match package adapts between the two).
type Subscription struct {
	Rect         geometry.Rect
	SubscriberID int
}

// Index is the predicate-counting matcher. Build one with Build; it is
// immutable and safe for concurrent use.
type Index struct {
	dims int
	size int

	// trees[d] indexes the non-wildcard predicates of dimension d.
	trees []*intervalTree
	// required[i] is the number of non-wildcard predicates of
	// subscription i; a publication matches i when it satisfies all of
	// them.
	required []uint16
	// subscriberID[i] is the caller's id for subscription i.
	subscriberID []int
	// alwaysMatch lists subscriptions whose predicates are all
	// wildcards.
	alwaysMatch []int32

	scratch sync.Pool // *counterSet
}

// counterSet is per-query scratch: satisfaction counters plus the list
// of touched subscriptions for O(touched) reset.
type counterSet struct {
	counts  []uint16
	touched []int32
}

func (cs *counterSet) bump(sub int32) {
	if cs.counts[sub] == 0 {
		cs.touched = append(cs.touched, sub)
	}
	cs.counts[sub]++
}

func (cs *counterSet) reset() {
	for _, i := range cs.touched {
		cs.counts[i] = 0
	}
	cs.touched = cs.touched[:0]
}

// isWildcard reports whether the interval constrains nothing.
func isWildcard(iv geometry.Interval) bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// Build constructs the index. All rectangles must share dimensionality
// and be non-empty.
func Build(subs []Subscription) (*Index, error) {
	ix := &Index{size: len(subs)}
	if len(subs) == 0 {
		return ix, nil
	}
	ix.dims = subs[0].Rect.Dims()
	if ix.dims == 0 {
		return nil, fmt.Errorf("predindex: zero-dimensional subscription")
	}
	perDim := make([][]treeEntry, ix.dims)
	ix.required = make([]uint16, len(subs))
	ix.subscriberID = make([]int, len(subs))
	for i, s := range subs {
		if s.Rect.Dims() != ix.dims {
			return nil, fmt.Errorf("predindex: mixed dimensionality: %d vs %d", s.Rect.Dims(), ix.dims)
		}
		if s.Rect.Empty() {
			return nil, fmt.Errorf("predindex: subscription %d has an empty rectangle", i)
		}
		ix.subscriberID[i] = s.SubscriberID
		for d, iv := range s.Rect {
			if isWildcard(iv) {
				continue
			}
			perDim[d] = append(perDim[d], treeEntry{Lo: iv.Lo, Hi: iv.Hi, Sub: int32(i)})
			ix.required[i]++
		}
		if ix.required[i] == 0 {
			ix.alwaysMatch = append(ix.alwaysMatch, int32(i))
		}
	}
	ix.trees = make([]*intervalTree, ix.dims)
	for d := range perDim {
		ix.trees[d] = buildIntervalTree(perDim[d])
	}
	ix.scratch.New = func() interface{} {
		return &counterSet{counts: make([]uint16, len(subs))}
	}
	return ix, nil
}

// MustBuild is Build, panicking on error.
func MustBuild(subs []Subscription) *Index {
	ix, err := Build(subs)
	if err != nil {
		panic(err)
	}
	return ix
}

// Len reports the number of indexed subscriptions.
func (ix *Index) Len() int { return ix.size }

// Dims reports the indexed dimensionality (0 when empty).
func (ix *Index) Dims() int { return ix.dims }

// MatchFunc streams the subscriber IDs of all subscriptions containing p
// to fn; return false from fn to stop early. A point of the wrong
// dimensionality matches nothing.
func (ix *Index) MatchFunc(p geometry.Point, fn func(subscriberID int) bool) {
	if ix.size == 0 || len(p) != ix.dims {
		return
	}
	cs := ix.scratch.Get().(*counterSet)
	defer func() {
		cs.reset()
		ix.scratch.Put(cs)
	}()

	ix.stabAll(p, cs)
	for _, i := range ix.alwaysMatch {
		if !fn(ix.subscriberID[i]) {
			return
		}
	}
	for _, i := range cs.touched {
		if cs.counts[i] == ix.required[i] {
			if !fn(ix.subscriberID[i]) {
				return
			}
		}
	}
}

// stabAll runs the per-dimension stabbing queries, accumulating
// satisfaction counts into cs.
func (ix *Index) stabAll(p geometry.Point, cs *counterSet) {
	for d, tree := range ix.trees {
		tree.stabCount(p[d], cs)
	}
}

// MatchAppend appends the subscriber IDs of all subscriptions containing
// p to dst and returns it. It performs no allocation beyond growing dst.
func (ix *Index) MatchAppend(p geometry.Point, dst []int) []int {
	if ix.size == 0 || len(p) != ix.dims {
		return dst
	}
	cs := ix.scratch.Get().(*counterSet)
	ix.stabAll(p, cs)
	for _, i := range ix.alwaysMatch {
		dst = append(dst, ix.subscriberID[i])
	}
	for _, i := range cs.touched {
		if cs.counts[i] == ix.required[i] {
			dst = append(dst, ix.subscriberID[i])
		}
	}
	cs.reset()
	ix.scratch.Put(cs)
	return dst
}

// Match returns the subscriber IDs of all subscriptions containing p.
func (ix *Index) Match(p geometry.Point) []int {
	var ids []int
	ix.MatchFunc(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// Count returns the number of subscriptions containing p. It does not
// allocate.
func (ix *Index) Count(p geometry.Point) int {
	if ix.size == 0 || len(p) != ix.dims {
		return 0
	}
	cs := ix.scratch.Get().(*counterSet)
	ix.stabAll(p, cs)
	n := len(ix.alwaysMatch)
	for _, i := range cs.touched {
		if cs.counts[i] == ix.required[i] {
			n++
		}
	}
	cs.reset()
	ix.scratch.Put(cs)
	return n
}
