// Package predindex implements a predicate-counting matcher in the
// style of the matching algorithms the paper cites as prior art
// (Aguilera et al., PODC 1999 [3]; Fabret et al. [6]): subscriptions are
// decomposed into per-attribute predicates, each attribute's non-trivial
// predicates are indexed in a static interval tree, and a publication is
// matched by counting, per subscription, how many of its predicates the
// event satisfies — a subscription matches when the count reaches its
// number of non-wildcard predicates.
package predindex

import "sort"

// treeEntry is one indexed predicate: a half-open interval (Lo, Hi]
// owned by subscription Sub.
type treeEntry struct {
	Lo, Hi float64
	Sub    int32
}

// intervalTree is a static centered interval tree answering stabbing
// queries under the half-open containment test Lo < x <= Hi.
type intervalTree struct {
	root *itNode
	size int
}

type itNode struct {
	center      float64
	left, right *itNode
	// byLo holds the entries spanning center, sorted by Lo ascending;
	// byHi holds the same entries sorted by Hi descending.
	byLo []treeEntry
	byHi []treeEntry
}

// buildIntervalTree constructs the tree over the entries. Entries with
// empty intervals must be filtered out by the caller.
func buildIntervalTree(entries []treeEntry) *intervalTree {
	t := &intervalTree{size: len(entries)}
	if len(entries) > 0 {
		t.root = buildNode(entries)
	}
	return t
}

func buildNode(entries []treeEntry) *itNode {
	if len(entries) == 0 {
		return nil
	}
	// Median of all endpoints keeps the tree balanced.
	endpoints := make([]float64, 0, 2*len(entries))
	for _, e := range entries {
		endpoints = append(endpoints, e.Lo, e.Hi)
	}
	sort.Float64s(endpoints)
	center := endpoints[len(endpoints)/2]

	var lefts, rights, spans []treeEntry
	for _, e := range entries {
		switch {
		case e.Hi < center:
			lefts = append(lefts, e)
		case e.Lo >= center:
			rights = append(rights, e)
		default: // Lo < center <= Hi: spans the center
			spans = append(spans, e)
		}
	}
	// Degenerate split (all endpoints equal): keep everything here.
	if len(spans) == 0 && (len(lefts) == len(entries) || len(rights) == len(entries)) {
		spans = entries
		lefts, rights = nil, nil
	}

	n := &itNode{center: center}
	n.byLo = append([]treeEntry(nil), spans...)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].Lo < n.byLo[j].Lo })
	n.byHi = append([]treeEntry(nil), spans...)
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].Hi > n.byHi[j].Hi })
	n.left = buildNode(lefts)
	n.right = buildNode(rights)
	return n
}

// stab calls fn for every entry whose interval contains x (Lo < x <= Hi).
// It is the streaming form used by tests; the match hot path uses
// stabCount below.
func (t *intervalTree) stab(x float64, fn func(sub int32)) {
	for n := t.root; n != nil; {
		switch {
		case x < n.center:
			for _, e := range n.byLo {
				if e.Lo >= x {
					break
				}
				if x <= e.Hi {
					fn(e.Sub)
				}
			}
			n = n.left
		case x > n.center:
			for _, e := range n.byHi {
				if e.Hi < x {
					break
				}
				if e.Lo < x {
					fn(e.Sub)
				}
			}
			n = n.right
		default: // x == center
			for _, e := range n.byLo {
				if e.Lo < x && x <= e.Hi {
					fn(e.Sub)
				}
			}
			return
		}
	}
}

// stabCount bumps the satisfaction counter of every subscription owning
// an entry whose interval contains x (Lo < x <= Hi). The sorted scans
// prune by one bound; the other bound is verified explicitly so that
// degenerate nodes (which may hold non-spanning entries) stay correct.
// Incrementing the counter set directly, rather than streaming through a
// callback, keeps the match hot path free of closures.
func (t *intervalTree) stabCount(x float64, cs *counterSet) {
	for n := t.root; n != nil; {
		switch {
		case x < n.center:
			for _, e := range n.byLo {
				if e.Lo >= x {
					break
				}
				if x <= e.Hi {
					cs.bump(e.Sub)
				}
			}
			n = n.left
		case x > n.center:
			for _, e := range n.byHi {
				if e.Hi < x {
					break
				}
				if e.Lo < x {
					cs.bump(e.Sub)
				}
			}
			n = n.right
		default: // x == center
			for _, e := range n.byLo {
				if e.Lo < x && x <= e.Hi {
					cs.bump(e.Sub)
				}
			}
			return
		}
	}
}

// Len reports the number of indexed predicates.
func (t *intervalTree) Len() int { return t.size }
