// Package stats provides the small statistical toolkit the evaluation
// needs: histograms for rendering distribution figures, moment summaries,
// simple linear regression, and the distribution fits used by the paper's
// data study (normal fits for normalized prices, Zipf-like fits for
// popularity and amount series).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-range equal-width histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Below and Above count samples outside [Lo, Hi).
	Below, Above int
	// N counts all observed samples, including out-of-range ones.
	N int
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	switch {
	case x < h.Lo:
		h.Below++
	case x >= h.Hi:
		h.Above++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // floating point edge
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records all samples.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenters returns the center coordinate of each bin.
func (h *Histogram) BinCenters() []float64 {
	w := h.BinWidth()
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Lo + (float64(i)+0.5)*w
	}
	return out
}

// Density returns the normalised density estimate per bin (integrates to
// the in-range fraction of the sample).
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(h.N) * w)
	}
	return out
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Lo + (float64(best)+0.5)*h.BinWidth()
}

// Summary holds sample moments.
type Summary struct {
	N              int
	Mean           float64
	Std            float64
	Skewness       float64
	ExcessKurtosis float64
	Min, Max       float64
}

// Summarize computes the sample moments of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	m4 /= n
	s.Std = math.Sqrt(m2)
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
		s.ExcessKurtosis = m4/(m2*m2) - 3
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation of the sorted sample. It copies the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Linear holds an ordinary-least-squares line fit y = Slope*x + Intercept
// with its coefficient of determination.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits y = a*x + b by least squares. It requires at least two
// points with non-constant x.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Linear{}, fmt.Errorf("stats: need matched samples of length >= 2, got %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, fmt.Errorf("stats: constant x, cannot fit a line")
	}
	l := Linear{}
	l.Slope = (n*sxy - sx*sy) / den
	l.Intercept = (sy - l.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		l.R2 = 1
		return l, nil
	}
	ssRes := 0.0
	for i := range xs {
		r := ys[i] - (l.Slope*xs[i] + l.Intercept)
		ssRes += r * r
	}
	l.R2 = 1 - ssRes/ssTot
	return l, nil
}

// ZipfFit is the result of fitting a Zipf-like law count ~ rank^(-Theta).
type ZipfFit struct {
	// Theta is the fitted exponent (positive for decaying series).
	Theta float64
	// R2 is the goodness of the log-log linear fit.
	R2 float64
}

// FitZipf fits a Zipf-like law to a series of counts sorted in decreasing
// order (counts[i] is the frequency of the rank-(i+1) item). Zero counts
// are skipped. This is the analysis behind Figure 4(b): a straight line on
// the log-log popularity plot.
func FitZipf(counts []int) (ZipfFit, error) {
	var xs, ys []float64
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(c)))
	}
	l, err := FitLinear(xs, ys)
	if err != nil {
		return ZipfFit{}, fmt.Errorf("stats: fitting zipf: %w", err)
	}
	return ZipfFit{Theta: -l.Slope, R2: l.R2}, nil
}

// NormalFit is a fitted normal distribution together with a histogram
// goodness measure.
type NormalFit struct {
	Mu    float64
	Sigma float64
	// R2 compares the sample histogram against the fitted density.
	R2 float64
}

// FitNormal fits N(mu, sigma) by moments and scores the fit with R2 of a
// 40-bin histogram against the fitted density — the check behind
// Figure 4(a)'s "can be approximated reasonably closely by a normal
// distribution".
func FitNormal(xs []float64) (NormalFit, error) {
	if len(xs) < 10 {
		return NormalFit{}, fmt.Errorf("stats: need >= 10 samples to fit, got %d", len(xs))
	}
	s := Summarize(xs)
	if s.Std == 0 {
		return NormalFit{}, fmt.Errorf("stats: constant sample, cannot fit a normal")
	}
	fit := NormalFit{Mu: s.Mean, Sigma: s.Std}
	h, err := NewHistogram(s.Mean-4*s.Std, s.Mean+4*s.Std, 40)
	if err != nil {
		return NormalFit{}, err
	}
	h.AddAll(xs)
	dens := h.Density()
	centers := h.BinCenters()
	pred := make([]float64, len(centers))
	for i, c := range centers {
		z := (c - fit.Mu) / fit.Sigma
		pred[i] = math.Exp(-z*z/2) / (fit.Sigma * math.Sqrt(2*math.Pi))
	}
	var ssRes, ssTot, mean float64
	for _, d := range dens {
		mean += d
	}
	mean /= float64(len(dens))
	for i := range dens {
		ssRes += (dens[i] - pred[i]) * (dens[i] - pred[i])
		ssTot += (dens[i] - mean) * (dens[i] - mean)
	}
	if ssTot == 0 {
		fit.R2 = 0
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// ParetoFit is a fitted Pareto tail.
type ParetoFit struct {
	Scale float64
	Alpha float64
	R2    float64
}

// FitPareto fits a Pareto distribution by maximum likelihood above the
// sample minimum and scores the complementary-CDF log-log linearity —
// the analysis behind Figure 4(c)/Figure 5's trade-amount tails.
func FitPareto(xs []float64) (ParetoFit, error) {
	if len(xs) < 10 {
		return ParetoFit{}, fmt.Errorf("stats: need >= 10 samples to fit, got %d", len(xs))
	}
	scale := math.Inf(1)
	for _, x := range xs {
		if x <= 0 {
			return ParetoFit{}, fmt.Errorf("stats: pareto fit needs positive samples, got %v", x)
		}
		scale = math.Min(scale, x)
	}
	// MLE: alpha = n / sum(log(x/scale)).
	sumLog := 0.0
	for _, x := range xs {
		sumLog += math.Log(x / scale)
	}
	if sumLog == 0 {
		return ParetoFit{}, fmt.Errorf("stats: constant sample, cannot fit a pareto")
	}
	fit := ParetoFit{Scale: scale, Alpha: float64(len(xs)) / sumLog}

	// CCDF log-log linearity.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var lx, ly []float64
	n := len(sorted)
	step := n / 200
	if step < 1 {
		step = 1
	}
	for i := 0; i < n-1; i += step {
		ccdf := float64(n-i) / float64(n)
		lx = append(lx, math.Log(sorted[i]))
		ly = append(ly, math.Log(ccdf))
	}
	if l, err := FitLinear(lx, ly); err == nil {
		fit.R2 = l.R2
	}
	return fit, nil
}
