package stats

import (
	"math"
	"math/rand"
	"testing"
)

func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

func TestKSTestValidation(t *testing.T) {
	if _, err := KSTest(nil, stdNormalCDF); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KSTest([]float64{1}, nil); err == nil {
		t.Error("nil CDF accepted")
	}
	bad := func(float64) float64 { return 2 }
	if _, err := KSTest([]float64{1}, bad); err == nil {
		t.Error("invalid CDF accepted")
	}
}

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	res, err := KSTest(sample, stdNormalCDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2000 {
		t.Errorf("N = %d", res.N)
	}
	if res.PValue < 0.01 {
		t.Errorf("true-distribution sample rejected: D=%v p=%v", res.D, res.PValue)
	}
	if res.D > 0.05 {
		t.Errorf("D = %v unexpectedly large", res.D)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Shifted sample vs standard normal: strongly rejected.
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = rng.NormFloat64() + 0.5
	}
	res, err := KSTest(sample, stdNormalCDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("shifted sample not rejected: D=%v p=%v", res.D, res.PValue)
	}
}

func TestKSDistanceHandComputed(t *testing.T) {
	// Sample {0.5} vs U(0,1): ECDF jumps from 0 to 1 at 0.5; D = 0.5.
	uniform := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	res, err := KSTest([]float64{0.5}, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.D-0.5) > 1e-12 {
		t.Errorf("D = %v, want 0.5", res.D)
	}
}

func TestKSPValueMonotone(t *testing.T) {
	// Larger D must give a smaller p-value at fixed n.
	prev := 1.1
	for _, d := range []float64{0.01, 0.03, 0.06, 0.1, 0.2} {
		p := ksPValue(d, 500)
		if p > prev {
			t.Fatalf("p-value not monotone at D=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
	if got := ksPValue(0, 100); got != 1 {
		t.Errorf("p(0) = %v", got)
	}
}

func TestKSInputNotMutated(t *testing.T) {
	sample := []float64{3, 1, 2}
	if _, err := KSTest(sample, stdNormalCDF); err != nil {
		t.Fatal(err)
	}
	if sample[0] != 3 {
		t.Error("KSTest sorted the caller's slice")
	}
}
