package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(2, 1, 10); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 0.5, 5, 9.999, -1, 10, 11})
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	if h.Below != 1 || h.Above != 2 {
		t.Errorf("Below/Above = %d/%d, want 1/2", h.Below, h.Above)
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("bins = %v", h.Counts)
	}
}

func TestHistogramDensityIntegrates(t *testing.T) {
	h, err := NewHistogram(-3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		h.Add(rng.NormFloat64())
	}
	total := 0.0
	for _, d := range h.Density() {
		total += d * h.BinWidth()
	}
	inRange := float64(h.N-h.Below-h.Above) / float64(h.N)
	if math.Abs(total-inRange) > 1e-9 {
		t.Errorf("density integrates to %v, want %v", total, inRange)
	}
}

func TestHistogramModeAndCenters(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{4.5, 4.6, 4.7, 1.0})
	if got := h.Mode(); got != 5 {
		t.Errorf("Mode = %v, want 5 (center of bin (4,6))", got)
	}
	centers := h.BinCenters()
	if centers[0] != 1 || centers[4] != 9 {
		t.Errorf("centers = %v", centers)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Std != 2 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("Min/Max/N = %v/%v/%d", s.Min, s.Max, s.N)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestSummarizeNormalSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := Summarize(xs)
	if math.Abs(s.Skewness) > 0.05 {
		t.Errorf("normal sample skewness %v, want ~0", s.Skewness)
	}
	if math.Abs(s.ExcessKurtosis) > 0.1 {
		t.Errorf("normal sample excess kurtosis %v, want ~0", s.ExcessKurtosis)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 1, want: 5},
		{q: 0.5, want: 3},
		{q: 0.25, want: 2},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Input must not be reordered.
	xs2 := []float64{3, 1, 2}
	Quantile(xs2, 0.5)
	if xs2[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", l.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x accepted")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	l, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope != 0 || l.R2 != 1 {
		t.Errorf("constant-y fit = %+v", l)
	}
}

func TestFitZipfRecoversExponent(t *testing.T) {
	// Counts from an exact Zipf law with theta = 1.2.
	counts := make([]int, 200)
	for i := range counts {
		counts[i] = int(1e6 / math.Pow(float64(i+1), 1.2))
	}
	fit, err := FitZipf(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Theta-1.2) > 0.02 {
		t.Errorf("Theta = %v, want ~1.2", fit.Theta)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestFitZipfSkipsZeros(t *testing.T) {
	counts := []int{100, 50, 0, 25, 0, 0}
	if _, err := FitZipf(counts); err != nil {
		t.Errorf("zeros broke the fit: %v", err)
	}
	if _, err := FitZipf([]int{0, 0}); err == nil {
		t.Error("all-zero series accepted")
	}
}

func TestFitNormalRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 7 + 2.5*rng.NormFloat64()
	}
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-7) > 0.05 || math.Abs(fit.Sigma-2.5) > 0.05 {
		t.Errorf("fit = %+v, want mu 7 sigma 2.5", fit)
	}
	if fit.R2 < 0.98 {
		t.Errorf("normal data R2 = %v, want close to 1", fit.R2)
	}
}

func TestFitNormalRejectsBadInput(t *testing.T) {
	if _, err := FitNormal([]float64{1, 2}); err == nil {
		t.Error("tiny sample accepted")
	}
	constant := make([]float64, 20)
	if _, err := FitNormal(constant); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestFitNormalDetectsNonNormal(t *testing.T) {
	// A heavy-tailed Pareto sample should fit a normal poorly.
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 20000)
	for i := range xs {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		xs[i] = math.Pow(u, -1/1.1)
	}
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 > 0.9 {
		t.Errorf("Pareto sample fit a normal with R2 = %v; expected a poor fit", fit.R2)
	}
}

func TestFitParetoRecoversAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 50000)
	for i := range xs {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		xs[i] = 4 * math.Pow(u, -1/1.5)
	}
	fit, err := FitPareto(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Scale-4) > 0.01 {
		t.Errorf("Scale = %v, want ~4", fit.Scale)
	}
	if math.Abs(fit.Alpha-1.5) > 0.05 {
		t.Errorf("Alpha = %v, want ~1.5", fit.Alpha)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestFitParetoRejectsBadInput(t *testing.T) {
	if _, err := FitPareto([]float64{1, 2}); err == nil {
		t.Error("tiny sample accepted")
	}
	neg := make([]float64, 20)
	for i := range neg {
		neg[i] = float64(i) - 5
	}
	if _, err := FitPareto(neg); err == nil {
		t.Error("non-positive samples accepted")
	}
	constant := make([]float64, 20)
	for i := range constant {
		constant[i] = 3
	}
	if _, err := FitPareto(constant); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestPropHistogramConservesSamples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(-5, 5, 1+rng.Intn(50))
		if err != nil {
			return false
		}
		n := rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 3)
		}
		inBins := 0
		for _, c := range h.Counts {
			inBins += c
		}
		return inBins+h.Below+h.Above == h.N && h.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
