package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult is the outcome of a one-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the
	// empirical CDF and the reference CDF.
	D float64
	// PValue is the asymptotic p-value of D (Kolmogorov distribution;
	// accurate for n >= ~35).
	PValue float64
	// N is the sample size.
	N int
}

// KSTest runs a one-sample Kolmogorov-Smirnov test of the sample against
// the reference CDF. A small p-value rejects the hypothesis that the
// sample was drawn from the reference distribution. It complements the
// R² fits used in the Figure 4/5 analysis with a calibrated test.
func KSTest(sample []float64, cdf func(float64) float64) (KSResult, error) {
	if len(sample) == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs a non-empty sample")
	}
	if cdf == nil {
		return KSResult{}, fmt.Errorf("stats: KS test needs a reference CDF")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	d := 0.0
	for i, x := range xs {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return KSResult{}, fmt.Errorf("stats: reference CDF returned %v at %v", f, x)
		}
		// Distance above and below the step.
		dPlus := (float64(i)+1)/n - f
		dMinus := f - float64(i)/n
		d = math.Max(d, math.Max(dPlus, dMinus))
	}
	res := KSResult{D: d, N: len(xs)}
	res.PValue = ksPValue(d, len(xs))
	return res, nil
}

// ksPValue computes the asymptotic Kolmogorov p-value
// P(D_n > d) ≈ 2 Σ_{k>=1} (-1)^{k-1} exp(-2 k² λ²), λ = d(√n + 0.12 + 0.11/√n).
func ksPValue(d float64, n int) float64 {
	sqrtN := math.Sqrt(float64(n))
	lambda := d * (sqrtN + 0.12 + 0.11/sqrtN)
	if lambda < 1e-10 {
		return 1
	}
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
