package broker

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/geometry"
	"repro/internal/telemetry"
)

func TestBrokerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := New(Options{Metrics: reg, DefaultBuffer: 1})
	defer b.Close()

	s, err := b.Subscribe(geometry.NewRect(0, 10, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(geometry.Point{5, 5}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Second publish overflows the 1-slot buffer: a drop-newest drop.
	if _, err := b.Publish(geometry.Point{5, 5}, []byte("y")); err != nil {
		t.Fatal(err)
	}
	// A miss still counts as a publication and records traversal effort.
	if _, err := b.Publish(geometry.Point{50, 50}, nil); err != nil {
		t.Fatal(err)
	}

	if got := reg.CounterValue("pubsub_broker_published_total"); got != 3 {
		t.Errorf("published = %g, want 3", got)
	}
	if got := reg.CounterValue("pubsub_broker_delivered_total"); got != 1 {
		t.Errorf("delivered = %g, want 1", got)
	}
	if got := reg.CounterValue("pubsub_broker_dropped_total"); got != 1 {
		t.Errorf("dropped = %g, want 1", got)
	}
	if h := reg.Histogram1("pubsub_broker_publish_seconds"); h.Count != 3 {
		t.Errorf("publish latency count = %d, want 3", h.Count)
	}
	if h := reg.Histogram1("pubsub_broker_match_seconds"); h.Count != 3 {
		t.Errorf("match latency count = %d, want 3", h.Count)
	}
	if h := reg.Histogram1("pubsub_broker_fanout_size"); h.Count != 3 || h.Sum != 2 {
		t.Errorf("fanout count=%d sum=%g, want 3 and 2", h.Count, h.Sum)
	}
	// The overlay scan tests each rectangle per query: 1 rect × 3 queries.
	if h := reg.Histogram1("pubsub_index_entries_tested"); h.Count != 3 || h.Sum != 3 {
		t.Errorf("entries tested count=%d sum=%g, want 3 and 3", h.Count, h.Sum)
	}

	// Gauges reflect live state at scrape time.
	var gauges = map[string]float64{}
	for _, f := range reg.Gather() {
		if f.Kind == telemetry.KindGauge {
			gauges[f.Name] = f.Samples[0].Value
		}
	}
	if gauges["pubsub_broker_subscriptions"] != 1 {
		t.Errorf("subscriptions gauge = %g, want 1", gauges["pubsub_broker_subscriptions"])
	}
	if gauges["pubsub_broker_queue_depth"] != 1 {
		t.Errorf("queue depth gauge = %g, want 1", gauges["pubsub_broker_queue_depth"])
	}
	_ = s
}

func TestBrokerMetricsNodesVisitedAfterRebuild(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := New(Options{Metrics: reg, MinOverlay: 4})
	defer b.Close()
	for i := 0; i < 64; i++ {
		lo := float64(i)
		if _, err := b.Subscribe(geometry.NewRect(lo, lo+1, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuilds are asynchronous; wait for the background fold so the
	// packed index (not the overlay) answers the query below.
	deadline := time.Now().Add(5 * time.Second)
	for reg.CounterValue("pubsub_broker_index_rebuilds_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("expected at least one index rebuild")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := b.Publish(geometry.Point{10.5, 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	// The packed S-tree now answers queries, so node visits are recorded.
	if h := reg.Histogram1("pubsub_index_nodes_visited"); h.Count != 1 || h.Sum == 0 {
		t.Errorf("nodes visited count=%d sum=%g, want 1 and > 0", h.Count, h.Sum)
	}
	if h := reg.Histogram1("pubsub_broker_rebuild_seconds"); h.Count == 0 {
		t.Error("rebuild duration not recorded")
	}
}

func TestBrokerTracerEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.NewTracer(slog.New(slog.NewJSONHandler(&buf, nil)), 1)
	b := New(Options{Tracer: tr})
	defer b.Close()
	if _, err := b.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Traces() != 1 {
		t.Fatalf("traces = %d, want 1", tr.Traces())
	}
	out := buf.String()
	for _, want := range []string{`"msg":"publish"`, `"fanout":1`, `"stages"`, `"match"`, `"deliver"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s in: %s", want, out)
		}
	}
}

// A broker without a registry must not pay for telemetry: a Publish
// with no matches allocates nothing at all on the snapshot path, and an
// instrumented one may not allocate more than the bare one.
func TestPublishDisabledTelemetryAllocations(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Subscribe(geometry.NewRect(0, 1)); err != nil {
		t.Fatal(err)
	}
	p := geometry.Point{50}
	base := testing.AllocsPerRun(500, func() {
		if _, err := b.Publish(p, nil); err != nil {
			t.Fatal(err)
		}
	})
	if !raceEnabled && base != 0 {
		t.Errorf("bare no-match publish allocates %g/op, want 0", base)
	}

	b2 := New(Options{Metrics: telemetry.NewRegistry()})
	defer b2.Close()
	if _, err := b2.Subscribe(geometry.NewRect(0, 1)); err != nil {
		t.Fatal(err)
	}
	instrumented := testing.AllocsPerRun(500, func() {
		if _, err := b2.Publish(p, nil); err != nil {
			t.Fatal(err)
		}
	})
	// Metrics recording itself is allocation-free; the instrumented
	// publish may not allocate more than the bare one.
	if instrumented > base {
		t.Errorf("instrumented publish allocates %g/op, bare %g/op", instrumented, base)
	}
}
