package broker

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/telemetry"
)

// FanoutMode selects how Publish visits the subscription shards.
type FanoutMode int

const (
	// FanoutAuto (the default) fans out sequentially until the broker
	// is large enough — multiple shards, multiple CPUs, and at least
	// autoParallelMinRects live rectangles — for the parallel worker
	// set to pay for its hand-off cost.
	FanoutAuto FanoutMode = iota
	// FanoutSequential always visits shards one after another on the
	// publisher goroutine.
	FanoutSequential
	// FanoutParallel always uses the per-shard worker set when the
	// broker has more than one shard, even on a single CPU (useful for
	// exercising the parallel path deterministically in tests).
	FanoutParallel
)

// autoParallelMinRects is the live-rectangle population below which
// FanoutAuto stays sequential: with small shards the per-publish
// worker hand-off costs more than the matching it parallelises.
const autoParallelMinRects = 8192

// String returns the mode's display name.
func (m FanoutMode) String() string {
	switch m {
	case FanoutAuto:
		return "auto"
	case FanoutSequential:
		return "sequential"
	case FanoutParallel:
		return "parallel"
	default:
		return fmt.Sprintf("fanout(%d)", int(m))
	}
}

// ParseFanoutMode converts a mode display name (as produced by String)
// back to the mode. It is the inverse used by CLI flags.
func ParseFanoutMode(s string) (FanoutMode, error) {
	for _, m := range []FanoutMode{FanoutAuto, FanoutSequential, FanoutParallel} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("broker: unknown fanout mode %q (want auto, sequential or parallel)", s)
}

// fanJob is one publication in flight across the shard worker set. It
// is pooled (b.jobs); the done channel is allocated once per pooled
// job and reused. All counters are merged by the publisher after the
// last shard completes.
//
// Lifecycle: the publisher resets the job, offers it to each shard
// worker with a non-blocking send (running the shard inline itself if
// the worker is busy), runs shard 0, then blocks on done. The worker's
// final touches of the job are the completed.Add and the done send, so
// once the publisher receives done no goroutine holds the job and it
// can be pooled safely.
type fanJob struct {
	b            *Broker
	ev           Event
	prep         eventPrep
	detail       bool
	instrumented bool
	r0           int64

	targets      atomic.Int64 // matched live targets across shards
	delivered    atomic.Int64 // successful channel sends across shards
	group        atomic.Int64 // candidate-group size across shards
	closedShards atomic.Int64 // shards whose snapshot was nil (broker closing)
	completed    atomic.Int64 // shards finished; last one signals done

	// merged match.QueryStats (only written when instrumented)
	nodes   atomic.Int64
	leaves  atomic.Int64
	entries atomic.Int64
	matched atomic.Int64

	done chan struct{}
}

// reset prepares a pooled job for one publication.
func (j *fanJob) reset(b *Broker, p geometry.Point, payload []byte, ev Event, detail, instrumented bool, r0 int64) {
	j.b = b
	j.ev = ev
	j.detail = detail
	j.instrumented = instrumented
	j.r0 = r0
	j.prep.reset(p, payload)
	j.targets.Store(0)
	j.delivered.Store(0)
	j.group.Store(0)
	j.closedShards.Store(0)
	j.completed.Store(0)
	j.nodes.Store(0)
	j.leaves.Store(0)
	j.entries.Store(0)
	j.matched.Store(0)
}

// putJob drops the job's references to caller-owned memory (the
// publish point and payload must not be retained past the publish)
// and returns it to the pool.
func (b *Broker) putJob(j *fanJob) {
	j.prep.reset(nil, nil)
	b.jobs.Put(j)
}

// matchSnapshot matches p against one shard snapshot, appending the
// matched subscriptions to sc.targets. A subscription's rectangles
// never straddle shards, so the per-shard dedup below is complete
// dedup and the cross-shard merge is pure concatenation. Returns the
// shard's candidate-group size.
//
//pubsub:hotpath
func matchSnapshot(snap *snapshot, p geometry.Point, sc *pubScratch, instrumented bool, qs *match.QueryStats) int {
	start := len(sc.targets)
	sc.ids = sc.ids[:0]
	if snap.base != nil {
		if sm, ok := snap.base.(match.StatsMatcher); ok && instrumented {
			var bs match.QueryStats
			sc.ids, bs = sm.MatchAppendStats(p, sc.ids)
			qs.Add(bs)
		} else {
			sc.ids = snap.base.MatchAppend(p, sc.ids)
		}
	}
	for _, slot := range sc.ids {
		sc.targets = append(sc.targets, snap.slots[slot])
	}
	for i := range snap.overlay {
		e := &snap.overlay[i]
		if e.rect.Contains(p) {
			sc.targets = append(sc.targets, e.sub)
			if instrumented {
				qs.Matched++
			}
		}
	}
	if instrumented {
		qs.EntriesTested += len(snap.overlay)
	}
	// Deduplicate only when some subscription in this shard holds
	// several rectangles; otherwise every target is distinct already.
	if snap.multiRect && len(sc.targets)-start > 1 {
		sc.targets = dedupTargets(sc.targets, start)
	}
	return len(snap.slots) + len(snap.overlay)
}

// dedupTargets sorts targets[start:] by subscription id and compacts
// exact duplicates in place, returning the shortened slice.
//
//pubsub:hotpath
func dedupTargets(targets []*Subscription, start int) []*Subscription {
	seg := targets[start:]
	slices.SortFunc(seg, func(x, y *Subscription) int { return x.id - y.id })
	w := 1
	for i := 1; i < len(seg); i++ {
		if seg[i] != seg[w-1] {
			seg[w] = seg[i]
			w++
		}
	}
	return targets[:start+w]
}

// runShard matches and delivers one shard's slice of the publication.
// Called by the shard's fan-out worker, or inline by the publisher
// (shard 0, a busy worker's shard, or the whole sequential path is
// elsewhere — see PublishTraced). sc is the calling goroutine's
// scratch; the shard's targets occupy a segment of sc.targets that is
// released before returning, so one scratch serves many shards.
//
//pubsub:hotpath
func (j *fanJob) runShard(sh *shard, sc *pubScratch) {
	b := j.b
	snap := sh.snap.Load()
	if snap == nil {
		j.closedShards.Add(1)
	} else {
		start := len(sc.targets)
		var qs match.QueryStats
		var group int
		if tel := b.tel; tel != nil {
			// Per-shard attribution: each worker brackets its own walk,
			// so the shard histograms see true concurrent match cost.
			m0 := b.rec.Now()
			group = matchSnapshot(snap, j.prep.src, sc, j.instrumented, &qs)
			d := b.rec.Now() - m0
			sh.matchNS.Add(d)
			sh.matchCount.Add(1)
			tel.shardMatch[sh.idx].Observe(float64(d) / 1e9)
		} else {
			group = matchSnapshot(snap, j.prep.src, sc, j.instrumented, &qs)
		}
		delivered := 0
		// Each goroutine delivers from its own Event copy; the shared
		// point/payload clones live in the mutex-guarded prep.
		ev := j.ev
		for _, s := range sc.targets[start:] {
			if b.deliver(s, &ev, &j.prep, j.detail, j.r0) {
				delivered++
			}
		}
		j.group.Add(int64(group))
		j.targets.Add(int64(len(sc.targets) - start))
		j.delivered.Add(int64(delivered))
		if j.instrumented {
			j.nodes.Add(int64(qs.NodesVisited))
			j.leaves.Add(int64(qs.LeavesVisited))
			j.entries.Add(int64(qs.EntriesTested))
			j.matched.Add(int64(qs.Matched))
		}
		sc.targets = sc.targets[:start]
	}
	if j.completed.Add(1) == int64(len(b.shards)) {
		j.done <- struct{}{}
	}
}

// fanWorker is one shard's dedicated fan-out goroutine, started by New
// when the broker runs parallel fan-out and stopped by Close. It owns
// one pooled scratch for its lifetime, so the steady-state parallel
// publish path allocates nothing.
//
//pubsub:hotpath
func (b *Broker) fanWorker(sh *shard) {
	defer b.wg.Done()
	sc := b.scratch.Get().(*pubScratch)
	defer b.scratch.Put(sc)
	for {
		select {
		case <-b.stop:
			return
		case job := <-sh.fanCh:
			job.runShard(sh, sc)
		}
	}
}

// parallelFanoutNow decides, per publication, whether to use the
// worker set. fanReady is set at New when workers were started;
// FanoutAuto additionally waits for the live rectangle population to
// be worth the hand-off.
//
//pubsub:hotpath
func (b *Broker) parallelFanoutNow() bool {
	if !b.fanReady {
		return false
	}
	if b.opts.Fanout == FanoutParallel {
		return true
	}
	return b.liveRects.Load() >= autoParallelMinRects
}

// allShardsClosed reports whether every shard's snapshot has been
// swapped out by Close.
//
//pubsub:hotpath
func (b *Broker) allShardsClosed() bool {
	for _, sh := range b.shards {
		if sh.snap.Load() != nil {
			return false
		}
	}
	return true
}

// publishParallel is PublishTraced's tail for the parallel fan-out
// path: it assigns the publication's sequence number up front (each
// shard's deliveries carry it, and shards run concurrently), offers a
// pooled job to every shard worker with a non-blocking send — a busy
// worker's shard is matched and delivered inline by the publisher, so
// concurrent publishers degrade gracefully to sequential work instead
// of queueing — runs shard 0 itself, and merges the per-shard counts
// once the last shard signals completion.
//
// Two observability deltas versus the sequential path, both inherent
// to concurrent shards: the match/deliver stage split is not measured
// (the phases interleave across goroutines, so detail records carry
// matchNS=0 and the tracer span reports a single fused "fanout"
// stage), and per-subscriber deliver/drop detail records from
// different shards interleave in recorder order.
//
//pubsub:hotpath
func (b *Broker) publishParallel(p geometry.Point, payload []byte, traceID uint64, detail, instrumented bool, span *telemetry.Span, r0 int64, t0 time.Time, walOff uint64) (int, error) {
	tel := b.tel
	rec := b.rec
	seq := walOff
	if b.log == nil {
		seq = b.seq.Add(1)
	}
	// Advance the lag head monotonically; concurrent publishers may
	// reach this line out of seq order.
	for {
		cur := b.head.Load()
		if seq <= cur || b.head.CompareAndSwap(cur, seq) {
			break
		}
	}

	// Waterfall boundary: ingest (WAL append, seq setup) ends here; the
	// fused fan-out stage (match + enqueue across shards) begins.
	var tFan time.Time
	if tel != nil {
		tFan = time.Now()
	}

	sc := b.scratch.Get().(*pubScratch)
	job := b.jobs.Get().(*fanJob)
	job.reset(b, p, payload, Event{Seq: seq, TraceID: traceID}, detail, instrumented, r0)
	for i := 1; i < len(b.shards); i++ {
		sh := b.shards[i]
		select {
		case sh.fanCh <- job:
		default:
			job.runShard(sh, sc)
		}
	}
	job.runShard(b.shards[0], sc)
	<-job.done

	targets := int(job.targets.Load())
	delivered := int(job.delivered.Load())
	group := int(job.group.Load())
	closedShards := int(job.closedShards.Load())
	var qs match.QueryStats
	if instrumented {
		qs.NodesVisited = int(job.nodes.Load())
		qs.LeavesVisited = int(job.leaves.Load())
		qs.EntriesTested = int(job.entries.Load())
		qs.Matched = int(job.matched.Load())
	}
	b.putJob(job)
	b.putScratch(sc)
	if closedShards == len(b.shards) {
		return 0, errClosed
	}
	b.delivered.Add(uint64(delivered))

	if detail {
		rec.Record(telemetry.KindMatch, traceID, seq,
			int64(qs.NodesVisited), int64(qs.EntriesTested), int64(qs.LeavesVisited), int64(targets))
		method := int64(0)
		if targets > 0 {
			method = 1
		}
		ratioPPM := int64(0)
		if group > 0 {
			ratioPPM = int64(targets) * 1_000_000 / int64(group)
		}
		rec.Record(telemetry.KindDecision, traceID, seq,
			method, int64(targets), int64(group), ratioPPM)
	}
	rEnd := rec.Now()
	rec.RecordAt(rEnd, telemetry.KindPublish, traceID, seq,
		int64(targets), int64(delivered), 0, rEnd-r0)
	if instrumented {
		now := time.Now()
		if tel != nil {
			tel.published.Inc()
			tel.delivered.Add(uint64(delivered))
			tel.fanout.Observe(float64(targets))
			tel.publishLatency.ObserveExemplar(now.Sub(t0).Seconds(), traceID)
			tel.observeQuery(qs.NodesVisited, qs.LeavesVisited, qs.EntriesTested)
			tel.parallelFanout()
			// The parallel waterfall: ingest up to the head CAS, then one
			// fused fanout stage (per-shard match histograms carry the
			// decomposition the fused stage cannot).
			tel.stageIngest.ObserveExemplar(tFan.Sub(t0).Seconds(), traceID)
			tel.stageFanout.ObserveExemplar(now.Sub(tFan).Seconds(), traceID)
		}
		b.slo.Observe(now.Sub(t0).Seconds())
		b.selprof.notePoint(p)
		span.Stage("fanout", now.Sub(t0))
		span.Uint64("seq", seq)
		span.Int("fanout", targets)
		span.Int("delivered", delivered)
		span.Int("nodes_visited", qs.NodesVisited)
		span.Int("entries_tested", qs.EntriesTested)
		span.End()
	}
	if delivered == 0 && b.allShardsClosed() {
		return 0, errClosed
	}
	return delivered, nil
}
