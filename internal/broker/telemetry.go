package broker

import (
	"repro/internal/telemetry"
)

// brokerTel bundles the broker's metric handles. A nil *brokerTel is
// the disabled state: every record method no-ops after a single nil
// check, so an uninstrumented broker pays nothing on the publish path
// (no time.Now calls, no atomics beyond its own Stats counters).
type brokerTel struct {
	publishLatency *telemetry.Histogram
	matchLatency   *telemetry.Histogram
	fanout         *telemetry.Histogram
	published      *telemetry.Counter
	delivered      *telemetry.Counter
	drops          [4]*telemetry.Counter // indexed by OverflowPolicy
	evicted        *telemetry.Counter
	rebuilds       *telemetry.Counter
	rebuildLatency *telemetry.Histogram
	nodesVisited   *telemetry.Histogram
	leavesVisited  *telemetry.Histogram
	entriesTested  *telemetry.Histogram
}

// newBrokerTel registers the broker's metric families against reg and
// wires scrape-time gauges that read b's counters. Registration is
// idempotent, so several brokers sharing one registry accumulate into
// the same families.
func newBrokerTel(b *Broker, reg *telemetry.Registry) *brokerTel {
	if reg == nil {
		return nil
	}
	t := &brokerTel{
		publishLatency: reg.Histogram("pubsub_broker_publish_seconds",
			"End-to-end Publish latency: match plus deliver.", telemetry.LatencyBuckets()),
		matchLatency: reg.Histogram("pubsub_broker_match_seconds",
			"Index match phase latency per publication.", telemetry.LatencyBuckets()),
		fanout: reg.Histogram("pubsub_broker_fanout_size",
			"Matching subscriptions per publication. Counts matches in the publisher's index snapshot, so subscriptions cancelled since the last rebuild are included until the next rebuild prunes them; delivered_total counts live deliveries only.", telemetry.CountBuckets()),
		published: reg.Counter("pubsub_broker_published_total",
			"Events published."),
		delivered: reg.Counter("pubsub_broker_delivered_total",
			"Events delivered to subscriber channels."),
		evicted: reg.Counter("pubsub_broker_evicted_total",
			"Subscriptions evicted by the cancel-slow policy."),
		rebuilds: reg.Counter("pubsub_broker_index_rebuilds_total",
			"Matching index rebuilds."),
		rebuildLatency: reg.Histogram("pubsub_broker_rebuild_seconds",
			"Matching index rebuild duration.", telemetry.LatencyBuckets()),
		nodesVisited: reg.Histogram("pubsub_index_nodes_visited",
			"Index tree nodes entered per point query.", telemetry.CountBuckets()),
		leavesVisited: reg.Histogram("pubsub_index_leaves_visited",
			"Index tree leaves scanned per point query.", telemetry.CountBuckets()),
		entriesTested: reg.Histogram("pubsub_index_entries_tested",
			"Leaf records compared against the event per point query.", telemetry.CountBuckets()),
	}
	for _, p := range []OverflowPolicy{DropNewest, DropOldest, Block, CancelSlow} {
		t.drops[p] = reg.Counter("pubsub_broker_dropped_total",
			"Events dropped on full subscriber buffers, by overflow policy.",
			telemetry.L("policy", p.String()))
	}
	reg.GaugeFunc("pubsub_broker_subscriptions",
		"Live subscriptions.", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			return float64(len(b.subs))
		})
	reg.GaugeFunc("pubsub_broker_queue_depth",
		"Events currently buffered across all subscriptions.", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			total := 0
			for _, s := range b.subs {
				total += len(s.ch)
			}
			return float64(total)
		})
	reg.GaugeFunc("pubsub_broker_queue_high_water",
		"Deepest any subscription buffer has been.", func() float64 {
			return float64(b.highWater.Load())
		})
	return t
}

// drop records one overflow loss under the given policy.
func (t *brokerTel) drop(p OverflowPolicy) {
	if t == nil {
		return
	}
	if int(p) >= 0 && int(p) < len(t.drops) {
		t.drops[p].Inc()
	}
}

// observeQuery records one point query's traversal effort.
func (t *brokerTel) observeQuery(nodes, leaves, entries int) {
	if t == nil {
		return
	}
	t.nodesVisited.Observe(float64(nodes))
	t.leavesVisited.Observe(float64(leaves))
	t.entriesTested.Observe(float64(entries))
}
