package broker

import (
	"strconv"

	"repro/internal/telemetry"
)

// brokerTel bundles the broker's metric handles. A nil *brokerTel is
// the disabled state: every record method no-ops after a single nil
// check, so an uninstrumented broker pays nothing on the publish path
// (no time.Now calls, no atomics beyond its own Stats counters).
type brokerTel struct {
	publishLatency *telemetry.Histogram
	matchLatency   *telemetry.Histogram
	fanout         *telemetry.Histogram
	published      *telemetry.Counter
	delivered      *telemetry.Counter
	drops          [4]*telemetry.Counter // indexed by OverflowPolicy
	evicted        *telemetry.Counter
	rebuilds       *telemetry.Counter
	rebuildLatency *telemetry.Histogram
	nodesVisited   *telemetry.Histogram
	leavesVisited  *telemetry.Histogram
	entriesTested  *telemetry.Histogram
	slowSubsTotal  *telemetry.Counter
	// shardRebuilds counts rebuilds per shard (label "shard");
	// parallelFanouts counts publications routed through the parallel
	// worker set rather than the sequential shard walk.
	shardRebuilds   []*telemetry.Counter
	parallelFanouts *telemetry.Counter
	// Waterfall stage samples (shared pubsub_stage_seconds family; the
	// wire layer registers the write/client_recv stages). The parallel
	// fan-out path observes stageFanout instead of stageMatch +
	// stageEnqueue, whose phases it fuses across shards.
	stageIngest  *telemetry.Histogram
	stageMatch   *telemetry.Histogram
	stageFanout  *telemetry.Histogram
	stageEnqueue *telemetry.Histogram
	// shardMatch is the per-shard match-cost histogram (label "shard"),
	// the attribution data the spatial-split rule needs.
	shardMatch []*telemetry.Histogram
}

// newBrokerTel registers the broker's metric families against reg and
// wires scrape-time gauges that read b's counters. Registration is
// idempotent, so several brokers sharing one registry accumulate into
// the same families.
func newBrokerTel(b *Broker, reg *telemetry.Registry) *brokerTel {
	if reg == nil {
		return nil
	}
	t := &brokerTel{
		publishLatency: reg.Histogram("pubsub_broker_publish_seconds",
			"End-to-end Publish latency: match plus deliver.", telemetry.LatencyBuckets()),
		matchLatency: reg.Histogram("pubsub_broker_match_seconds",
			"Index match phase latency per publication.", telemetry.LatencyBuckets()),
		fanout: reg.Histogram("pubsub_broker_fanout_size",
			"Matching subscriptions per publication. Counts matches in the publisher's index snapshot, so subscriptions cancelled since the last rebuild are included until the next rebuild prunes them; delivered_total counts live deliveries only.", telemetry.CountBuckets()),
		published: reg.Counter("pubsub_broker_published_total",
			"Events published."),
		delivered: reg.Counter("pubsub_broker_delivered_total",
			"Events delivered to subscriber channels."),
		evicted: reg.Counter("pubsub_broker_evicted_total",
			"Subscriptions evicted by the cancel-slow policy."),
		rebuilds: reg.Counter("pubsub_broker_index_rebuilds_total",
			"Matching index rebuilds."),
		rebuildLatency: reg.Histogram("pubsub_broker_rebuild_seconds",
			"Matching index rebuild duration.", telemetry.LatencyBuckets()),
		nodesVisited: reg.Histogram("pubsub_index_nodes_visited",
			"Index tree nodes entered per point query.", telemetry.CountBuckets()),
		leavesVisited: reg.Histogram("pubsub_index_leaves_visited",
			"Index tree leaves scanned per point query.", telemetry.CountBuckets()),
		entriesTested: reg.Histogram("pubsub_index_entries_tested",
			"Leaf records compared against the event per point query.", telemetry.CountBuckets()),
	}
	for _, p := range []OverflowPolicy{DropNewest, DropOldest, Block, CancelSlow} {
		t.drops[p] = reg.Counter("pubsub_broker_dropped_total",
			"Events dropped on full subscriber buffers, by overflow policy.",
			telemetry.L("policy", p.String()))
	}
	reg.GaugeFunc("pubsub_broker_subscriptions",
		"Live subscriptions.", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			return float64(len(b.subs))
		})
	reg.GaugeFunc("pubsub_broker_queue_depth",
		"Events currently buffered across all subscriptions.", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			total := 0
			for _, s := range b.subs {
				total += len(s.ch)
			}
			return float64(total)
		})
	reg.GaugeFunc("pubsub_broker_queue_high_water",
		"Deepest any subscription buffer has been.", func() float64 {
			return float64(b.highWater.Load())
		})
	t.slowSubsTotal = reg.Counter("pubsub_broker_slow_transitions_total",
		"Subscriptions crossing the slow-lag threshold (healthy-to-slow flips).")
	reg.GaugeFunc("pubsub_broker_head_seq",
		"Highest assigned sequence number: the WAL offset when durable, the in-memory Seq otherwise.",
		func() float64 { return float64(b.head.Load()) })
	reg.GaugeFunc("pubsub_broker_max_lag_events",
		"Largest per-subscription consumer lag behind the broker head, in events.",
		func() float64 { return float64(b.maxLag()) })
	reg.GaugeFunc("pubsub_broker_max_lag_age_seconds",
		"Longest time since a lagging subscription's last successful delivery.",
		func() float64 {
			head := b.head.Load()
			nowNS := b.rec.Now()
			var maxNS int64
			b.mu.RLock()
			for _, s := range b.subs {
				if lag, ageNS := lagOf(s, head, nowNS); lag > 0 && ageNS > maxNS {
					maxNS = ageNS
				}
			}
			b.mu.RUnlock()
			return float64(maxNS) / 1e9
		})
	reg.GaugeFunc("pubsub_broker_slow_subscriptions",
		"Subscriptions currently flagged past the slow-lag threshold.",
		func() float64 { return float64(b.slowSubs.Load()) })
	reg.HistogramFunc("pubsub_broker_lag_events",
		"Per-subscription consumer lag behind the broker head at scrape time, in events (live distribution, not an accumulation).",
		b.lagHistogram)
	reg.GaugeFunc("pubsub_broker_shards",
		"Subscription shards the broker runs (1 means unsharded).",
		func() float64 { return float64(len(b.shards)) })
	t.parallelFanouts = reg.Counter("pubsub_broker_parallel_fanouts_total",
		"Publications fanned out via the per-shard worker set (the rest walked shards sequentially on the publisher goroutine).")
	t.stageIngest = telemetry.StageHistogram(reg, telemetry.StageIngest)
	t.stageMatch = telemetry.StageHistogram(reg, telemetry.StageMatch)
	t.stageFanout = telemetry.StageHistogram(reg, telemetry.StageFanout)
	t.stageEnqueue = telemetry.StageHistogram(reg, telemetry.StageEnqueue)
	t.shardRebuilds = make([]*telemetry.Counter, len(b.shards))
	t.shardMatch = make([]*telemetry.Histogram, len(b.shards))
	for i, sh := range b.shards {
		shard := sh
		label := telemetry.L("shard", strconv.Itoa(i))
		t.shardRebuilds[i] = reg.Counter("pubsub_broker_shard_rebuilds_total",
			"Matching index rebuilds, by shard.", label)
		t.shardMatch[i] = reg.Histogram("pubsub_broker_shard_match_seconds",
			"Match-phase cost attributed to one shard's index walk, by shard.",
			telemetry.LatencyBuckets(), label)
		reg.GaugeFunc("pubsub_broker_shard_rectangles",
			"Live subscription rectangles, by shard.", func() float64 {
				shard.mu.Lock()
				defer shard.mu.Unlock()
				return float64(shard.rectanglesLocked())
			}, label)
	}
	reg.GaugeFunc("pubsub_broker_shard_imbalance",
		"Max/mean cumulative per-shard match cost: 1.0 is perfectly balanced, high values say one shard dominates publish latency (0 until data arrives).",
		func() float64 { return b.shardImbalance() })
	return t
}

// shardImbalance is max/mean of cumulative per-shard match cost. A
// single-shard broker (or one with no instrumented publishes yet)
// reads 0.
func (b *Broker) shardImbalance() float64 {
	var total, maxNS int64
	counted := 0
	for _, sh := range b.shards {
		ns := sh.matchNS.Load()
		total += ns
		if ns > maxNS {
			maxNS = ns
		}
		counted++
	}
	if counted == 0 || total == 0 {
		return 0
	}
	mean := float64(total) / float64(counted)
	return float64(maxNS) / mean
}

// shardRebuild counts one rebuild on the given shard.
func (t *brokerTel) shardRebuild(idx int) {
	if t == nil || idx >= len(t.shardRebuilds) {
		return
	}
	t.shardRebuilds[idx].Inc()
}

// parallelFanout counts one publication routed through the worker set.
func (t *brokerTel) parallelFanout() {
	if t == nil {
		return
	}
	t.parallelFanouts.Inc()
}

// slowTransition counts one healthy-to-slow flip.
func (t *brokerTel) slowTransition() {
	if t == nil {
		return
	}
	t.slowSubsTotal.Inc()
}

// drop records one overflow loss under the given policy.
func (t *brokerTel) drop(p OverflowPolicy) {
	if t == nil {
		return
	}
	if int(p) >= 0 && int(p) < len(t.drops) {
		t.drops[p].Inc()
	}
}

// observeQuery records one point query's traversal effort.
func (t *brokerTel) observeQuery(nodes, leaves, entries int) {
	if t == nil {
		return
	}
	t.nodesVisited.Observe(float64(nodes))
	t.leavesVisited.Observe(float64(leaves))
	t.entriesTested.Observe(float64(entries))
}
