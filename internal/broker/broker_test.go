package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geometry"
	"repro/internal/match"
)

// waitRebuilds blocks until the broker's rebuild counter reaches n or a
// deadline passes. Index rebuilds run on a background goroutine, so tests
// that depend on a folded base index must wait for the swap.
func waitRebuilds(t *testing.T, b *Broker, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().IndexRebuilds < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d index rebuilds (have %d)", n, b.Stats().IndexRebuilds)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Subscribe(); err == nil {
		t.Error("no rectangles accepted")
	}
	if _, err := b.Subscribe(geometry.NewRect(5, 5)); err == nil {
		t.Error("empty rectangle accepted")
	}
	if _, err := b.SubscribeBuffered(0, geometry.NewRect(0, 1)); err == nil {
		t.Error("zero buffer accepted")
	}
}

func TestPublishDeliversToMatching(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	low, err := b.Subscribe(geometry.NewRect(0, 10, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	high, err := b.Subscribe(geometry.NewRect(50, 60, 50, 60))
	if err != nil {
		t.Fatal(err)
	}

	n, err := b.Publish(geometry.Point{5, 5}, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered to %d, want 1", n)
	}
	select {
	case ev := <-low.Events():
		if string(ev.Payload) != "hello" || ev.Seq == 0 {
			t.Errorf("event = %+v", ev)
		}
		if len(ev.Point) != 2 || ev.Point[0] != 5 || ev.Point[1] != 5 {
			t.Errorf("point = %v", ev.Point)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
	select {
	case ev := <-high.Events():
		t.Fatalf("wrong subscriber got %+v", ev)
	default:
	}
}

func TestMultipleRectanglesDeliverOnce(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.Subscribe(
		geometry.NewRect(0, 10),
		geometry.NewRect(5, 15), // overlaps; event at 7 matches both
	)
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(geometry.Point{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d, want 1 (deduplicated)", n)
	}
	<-s.Events()
	select {
	case ev := <-s.Events():
		t.Fatalf("duplicate delivery %+v", ev)
	default:
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	s.Cancel() // idempotent
	if n, err := b.Publish(geometry.Point{5}, nil); err != nil || n != 0 {
		t.Fatalf("delivered %d after cancel (err %v)", n, err)
	}
	// Channel must be closed.
	if _, open := <-s.Events(); open {
		t.Error("channel still open after Cancel")
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.SubscribeBuffered(2, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	st := b.Stats()
	if st.Dropped != 3 || st.Delivered != 2 || st.Published != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIndexRebuildKeepsMatchingCorrect(t *testing.T) {
	b := New(Options{MinOverlay: 8, Matcher: match.Options{Algorithm: match.AlgSTree, BranchFactor: 4}})
	defer b.Close()
	rng := rand.New(rand.NewSource(1))
	type reg struct {
		sub  *Subscription
		rect geometry.Rect
	}
	var regs []reg
	for i := 0; i < 200; i++ {
		lo := rng.Float64() * 90
		r := geometry.NewRect(lo, lo+10)
		s, err := b.Subscribe(r)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg{sub: s, rect: r})
	}
	waitRebuilds(t, b, 1)
	// Cancel a third of them.
	for i := 0; i < len(regs); i += 3 {
		regs[i].sub.Cancel()
	}
	// Verify delivery counts against predicate evaluation.
	for trial := 0; trial < 100; trial++ {
		p := geometry.Point{rng.Float64() * 100}
		want := 0
		for i, r := range regs {
			if i%3 == 0 {
				continue // cancelled
			}
			if r.rect.Contains(p) {
				want++
			}
		}
		got, err := b.Publish(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Publish(%v) delivered %d, want %d", p, got, want)
		}
		// Drain so buffers don't fill.
		for i, r := range regs {
			if i%3 == 0 {
				continue
			}
			if r.rect.Contains(p) {
				<-r.sub.Events()
			}
		}
	}
}

func TestStaleRebuildOnCancels(t *testing.T) {
	b := New(Options{MinOverlay: 4})
	defer b.Close()
	var subs []*Subscription
	for i := 0; i < 50; i++ {
		s, err := b.Subscribe(geometry.NewRect(float64(i), float64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	before := b.Stats()
	for _, s := range subs[:40] {
		s.Cancel()
	}
	// The live-rectangle accounting is exact immediately, even while the
	// background rebuild is still in flight.
	after := b.Stats()
	if after.Subscriptions != 10 || after.Rectangles != 10 {
		t.Errorf("stats after cancels = %+v", after)
	}
	waitRebuilds(t, b, before.IndexRebuilds+1)
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	b := New(Options{})
	s, err := b.Subscribe(geometry.NewRect(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close()
	if _, open := <-s.Events(); open {
		t.Error("channel open after Close")
	}
	if _, err := b.Publish(geometry.Point{0.5}, nil); err == nil {
		t.Error("Publish after Close succeeded")
	}
	if _, err := b.Subscribe(geometry.NewRect(0, 1)); err == nil {
		t.Error("Subscribe after Close succeeded")
	}
	s.Cancel() // must not panic on closed broker
}

func TestSubscriptionRectsAreCopies(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	orig := geometry.NewRect(0, 10)
	s, err := b.Subscribe(orig)
	if err != nil {
		t.Fatal(err)
	}
	orig[0].Hi = 99999 // caller mutates after registering
	if n, _ := b.Publish(geometry.Point{500}, nil); n != 0 {
		t.Error("broker aliased the caller's rectangle")
	}
	got := s.Rects()
	got[0][0].Lo = -1
	if s.rects[0][0].Lo == -1 {
		t.Error("Rects() aliased internal storage")
	}
}

func TestConcurrentPubSub(t *testing.T) {
	b := New(Options{MinOverlay: 16, DefaultBuffer: 1024})
	defer b.Close()

	const (
		publishers  = 4
		subscribers = 8
		events      = 200
	)
	var wg sync.WaitGroup
	errCh := make(chan error, publishers+subscribers)

	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := float64(i * 10)
			s, err := b.Subscribe(geometry.NewRect(lo, lo+20))
			if err != nil {
				errCh <- err
				return
			}
			// Consume for a while, then cancel.
			deadline := time.After(2 * time.Second)
			count := 0
			for count < 10 {
				select {
				case _, open := <-s.Events():
					if !open {
						return
					}
					count++
				case <-deadline:
					s.Cancel()
					return
				}
			}
			s.Cancel()
		}(i)
	}
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < events; i++ {
				if _, err := b.Publish(geometry.Point{rng.Float64() * 100}, nil); err != nil {
					errCh <- fmt.Errorf("publish: %w", err)
					return
				}
			}
		}(int64(p))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Published != publishers*events {
		t.Errorf("published = %d, want %d", st.Published, publishers*events)
	}
}

func TestMixedDimensionalityFallsBack(t *testing.T) {
	// Subscriptions of different dimensionalities force the rebuild to
	// fall back to linear matching; both must keep working.
	b := New(Options{MinOverlay: 2})
	defer b.Close()
	s1, err := b.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Subscribe(geometry.NewRect(0, 10, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // force rebuilds
		s, err := b.Subscribe(geometry.NewRect(float64(i), float64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Cancel()
	}
	if n, _ := b.Publish(geometry.Point{5}, nil); n < 1 {
		t.Error("1-d event lost")
	}
	if n, _ := b.Publish(geometry.Point{5, 5}, nil); n != 1 {
		t.Error("2-d event lost")
	}
	<-s1.Events()
	<-s2.Events()
}

func TestSubscribeFunc(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	var mu sync.Mutex
	var got []uint64
	s, err := b.SubscribeFunc(func(ev Event) {
		mu.Lock()
		got = append(got, ev.Seq)
		mu.Unlock()
	}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Cancel()
	b.WaitConsumers()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("handler saw %d events, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("events out of order")
		}
	}
}

func TestSubscribeFuncValidation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.SubscribeFunc(nil, geometry.NewRect(0, 1)); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := b.SubscribeFunc(func(Event) {}); err == nil {
		t.Error("no rectangles accepted")
	}
}

func TestSubscribeFuncBrokerClose(t *testing.T) {
	b := New(Options{})
	done := make(chan struct{})
	once := sync.Once{}
	_, err := b.SubscribeFunc(func(Event) { once.Do(func() { close(done) }) }, geometry.NewRect(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(geometry.Point{0.5}, nil); err != nil {
		t.Fatal(err)
	}
	<-done
	b.Close()
	b.WaitConsumers() // must not hang
}
