package broker

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geometry"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most want, failing the test if it does not within the deadline. Used
// to catch leaked rebuilder or consumer goroutines after Close.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPublishObservesAtomicSnapshot checks the core snapshot guarantee:
// a multi-rectangle subscription is delivered to exactly once per
// matching publication — never twice (base and overlay both holding it
// mid-rebuild) and never zero times while live — and exactly zero times
// once Cancel has returned, all while background churn forces rebuilds.
func TestPublishObservesAtomicSnapshot(t *testing.T) {
	b := New(Options{MinOverlay: 4})
	defer b.Close()

	p := geometry.Point{50}
	// Both rectangles contain p: dedup must collapse them to one delivery.
	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 8},
		geometry.NewRect(40, 60), geometry.NewRect(45, 55))
	if err != nil {
		t.Fatal(err)
	}

	// Churn on a disjoint region to drive overlay growth, rebuilds and
	// stale-fraction rebuilds concurrently with the publishes below.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(7))
		var live []*Subscription
		for {
			select {
			case <-stop:
				for _, c := range live {
					c.Cancel()
				}
				return
			default:
			}
			lo := 100 + rng.Float64()*50
			c, err := b.Subscribe(geometry.NewRect(lo, lo+1))
			if err != nil {
				return
			}
			live = append(live, c)
			if len(live) > 20 {
				live[0].Cancel()
				live = live[1:]
			}
		}
	}()

	for i := 0; i < 2000; i++ {
		n, err := b.Publish(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("publish %d delivered %d times, want exactly 1 (rebuilds=%d)",
				i, n, b.Stats().IndexRebuilds)
		}
		<-s.Events()
	}

	s.Cancel()
	for i := 0; i < 100; i++ {
		n, err := b.Publish(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("delivered %d after Cancel returned, want 0", n)
		}
	}
	close(stop)
	churn.Wait()
}

// TestConcurrentPublishChurnStress hammers the broker with concurrent
// publishers, subscribe/cancel churn (including multi-rect subscriptions)
// and Stats readers, then closes it mid-flight. Run under -race it
// exercises the lock-free snapshot path against every mutation path; the
// goroutine check catches a rebuilder that outlives Close.
func TestConcurrentPublishChurnStress(t *testing.T) {
	before := runtime.NumGoroutine()
	b := New(Options{MinOverlay: 4, DefaultBuffer: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var published atomic.Uint64

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := b.Publish(geometry.Point{rng.Float64() * 100}, []byte("x"))
				if err != nil {
					if errors.Is(err, errClosed) {
						return
					}
					t.Error(err)
					return
				}
				published.Add(1)
			}
		}(int64(g))
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rects := []geometry.Rect{}
				for n := 1 + rng.Intn(3); n > 0; n-- {
					lo := rng.Float64() * 99
					rects = append(rects, geometry.NewRect(lo, lo+1))
				}
				s, err := b.SubscribeWith(SubscribeOptions{Overflow: DropNewest}, rects...)
				if err != nil {
					return // broker closed
				}
				if rng.Intn(2) == 0 {
					s.Cancel()
				}
			}
		}(int64(g))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := b.Stats()
			if st.Rectangles < 0 {
				t.Errorf("negative rectangle count: %+v", st)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	b.Close() // close while publishers and churners are still running
	close(stop)
	wg.Wait()

	if published.Load() == 0 {
		t.Error("no publications went through during the stress window")
	}
	waitGoroutines(t, before)
}

// TestCloseDuringRebuild closes the broker immediately after a subscribe
// burst large enough to have a rebuild in flight; the rebuilder must not
// resurrect state or leak after Close.
func TestCloseDuringRebuild(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		b := New(Options{MinOverlay: 4})
		for i := 0; i < 300; i++ {
			lo := float64(i % 100)
			if _, err := b.Subscribe(geometry.NewRect(lo, lo+2)); err != nil {
				t.Fatal(err)
			}
		}
		b.Close()
		if _, err := b.Publish(geometry.Point{50}, nil); !errors.Is(err, errClosed) {
			t.Fatalf("publish after close: err = %v, want errClosed", err)
		}
	}
	waitGoroutines(t, before)
}

// TestPublishZeroAllocSteadyState locks in the PR's headline property:
// with telemetry disabled, a steady-state publish (index rebuilt, scratch
// pools warm, all DropNewest buffers saturated) performs zero heap
// allocations, even with a payload attached — the clone is deferred until
// a send actually happens.
func TestPublishZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	b := New(Options{MinOverlay: 4})
	defer b.Close()
	for i := 0; i < 100; i++ {
		if _, err := b.SubscribeWith(SubscribeOptions{Buffer: 1}, geometry.NewRect(40, 60)); err != nil {
			t.Fatal(err)
		}
	}
	waitRebuilds(t, b, 1)
	p := geometry.Point{50}
	payload := []byte("tick")
	// Saturate every buffer; from here on DropNewest fast-drops without
	// materializing the event.
	if n, err := b.Publish(p, payload); err != nil || n != 100 {
		t.Fatalf("fill publish: n=%d err=%v", n, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := b.Publish(p, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Publish allocates %.1f times per op, want 0", allocs)
	}
}
