package broker

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geometry"
	"repro/internal/health"
	"repro/internal/match"
	"repro/internal/telemetry"
)

// SubLag is one subscription's consumer-lag snapshot.
type SubLag struct {
	ID       int    `json:"id"`
	Policy   string `json:"policy"`
	Buffered int    `json:"buffered"`
	Capacity int    `json:"capacity"`
	// DeliveredSeq is the highest Seq successfully enqueued on the
	// subscription's channel (the broker head at creation before the
	// first delivery).
	DeliveredSeq uint64 `json:"delivered_seq"`
	// LagEvents is how many events the subscription is behind the
	// broker head. It counts every publication since the last
	// successful delivery (or creation), whether or not it matched
	// this subscription's rectangles — the resume depth a reconnecting
	// consumer would replay, not a missed-match count.
	LagEvents uint64 `json:"lag_events"`
	// LagAgeSeconds is how long ago the last successful delivery
	// happened; zero when the subscription has zero lag.
	LagAgeSeconds float64 `json:"lag_age_seconds,omitempty"`
	Dropped       uint64  `json:"dropped"`
	Slow          bool    `json:"slow,omitempty"`
	Evicting      bool    `json:"evicting,omitempty"`
}

// LagReport is a point-in-time view of how far every subscription sits
// behind the broker head.
type LagReport struct {
	// Head is the highest assigned sequence number: the WAL offset in
	// durable mode (surviving restarts), the in-memory Seq otherwise.
	Head uint64 `json:"head"`
	// Durable reports which of those two regimes Head lives in.
	Durable bool `json:"durable"`
	// SlowSubs counts subscriptions currently flagged past the
	// SlowLagThreshold; SlowTransitions counts flips since creation.
	SlowSubs        int    `json:"slow_subs"`
	SlowTransitions uint64 `json:"slow_transitions"`
	MaxLagEvents    uint64 `json:"max_lag_events"`
	// Subs lists every live subscription in id order.
	Subs []SubLag `json:"subs"`
}

// Head returns the highest assigned sequence number: the WAL offset in
// durable mode (surviving restarts), the in-memory Seq otherwise. A
// single atomic load, cheap enough for per-connection lag probes.
func (b *Broker) Head() uint64 { return b.head.Load() }

// lagOf computes one subscription's lag pair against the given head
// and recorder-clock now. Shared by LagReport and the scrape-time
// gauges so both report identical numbers.
func lagOf(s *Subscription, head uint64, nowNS int64) (events uint64, ageNS int64) {
	seen := s.deliveredSeq.Load()
	if head <= seen {
		return 0, 0
	}
	ageNS = nowNS - s.deliveredAtNS.Load()
	if ageNS < 0 {
		ageNS = 0
	}
	return head - seen, ageNS
}

// LagReport snapshots per-subscription consumer lag. It takes the
// broker lock in read mode only; the per-subscription numbers are
// atomic reads, so the probe never blocks publishing.
func (b *Broker) LagReport() LagReport {
	head := b.head.Load()
	nowNS := b.rec.Now()
	rep := LagReport{
		Head:            head,
		Durable:         b.log != nil,
		SlowSubs:        int(b.slowSubs.Load()),
		SlowTransitions: b.slowTransitions.Load(),
	}
	b.mu.RLock()
	rep.Subs = make([]SubLag, 0, len(b.subs))
	for _, s := range b.subs {
		lag, ageNS := lagOf(s, head, nowNS)
		sl := SubLag{
			ID:           s.id,
			Policy:       s.policy.String(),
			Buffered:     len(s.ch),
			Capacity:     cap(s.ch),
			DeliveredSeq: s.deliveredSeq.Load(),
			LagEvents:    lag,
			Dropped:      s.dropCt.Load(),
			Slow:         s.slow.Load(),
			Evicting:     s.evicting.Load(),
		}
		if lag > 0 {
			sl.LagAgeSeconds = time.Duration(ageNS).Seconds()
		}
		if lag > rep.MaxLagEvents {
			rep.MaxLagEvents = lag
		}
		rep.Subs = append(rep.Subs, sl)
	}
	b.mu.RUnlock()
	sort.Slice(rep.Subs, func(i, j int) bool { return rep.Subs[i].ID < rep.Subs[j].ID })
	return rep
}

// DimSelectivity describes one dimension of the live rectangle
// population — the inputs a sharding decision needs to pick a split
// axis.
type DimSelectivity struct {
	Dim int `json:"dim"`
	// Bounded counts rectangles whose interval on this dimension has
	// both endpoints finite; a dimension most subscriptions constrain
	// is selective, one they leave at (-inf, +inf] is not.
	Bounded int `json:"bounded"`
	// BoundedFraction is Bounded over the sampled rectangle count.
	BoundedFraction float64 `json:"bounded_fraction"`
	// MeanWidthFraction is the mean width of the bounded intervals
	// relative to the span covered by their extreme endpoints (0 when
	// no interval is bounded or the span is degenerate). Small values
	// mean narrow, selective predicates.
	MeanWidthFraction float64 `json:"mean_width_fraction"`
	// TrafficInEnvelope is the fraction of profiled publish points
	// whose coordinate on this dimension fell inside the bounded
	// envelope — only the streaming profile can compute it (the
	// probe-time sample sees no traffic). 0 when unknown.
	TrafficInEnvelope float64 `json:"traffic_in_envelope,omitempty"`
}

// IndexReport is a point-in-time description of the matching state:
// the compiled snapshot's shape, the live rectangle population's
// per-dimension selectivity, and duplicate/covering counts over a
// bounded sample — the inputs the sharding and aggregation roadmap
// items consume.
type IndexReport struct {
	Strategy      string `json:"strategy"`
	Subscriptions int    `json:"subscriptions"`
	Rectangles    int    `json:"rectangles"`
	// Base/Overlay/Stale describe the compiled snapshots summed across
	// all shards: rectangles in the packed base indexes (including
	// stale ones), rectangles still in the linear overlays awaiting a
	// rebuild, and base slots whose subscription is gone.
	BaseLen    int    `json:"base_len"`
	OverlayLen int    `json:"overlay_len"`
	Stale      int    `json:"stale"`
	MultiRect  bool   `json:"multi_rect"`
	Rebuilds   uint64 `json:"rebuilds"`
	// SecondsSinceRebuild is the age of the most recent rebuild
	// install on any shard (broker creation before the first).
	SecondsSinceRebuild float64 `json:"seconds_since_rebuild"`
	// ShardCount is how many subscription shards the broker runs;
	// Fanout is the configured fan-out mode. Shards carries one
	// per-shard breakdown entry (omitted for the unsharded broker,
	// whose whole state is the top-level view).
	ShardCount int         `json:"shard_count"`
	Fanout     string      `json:"fanout,omitempty"`
	Shards     []ShardStat `json:"shards,omitempty"`
	// Shape describes the largest shard's packed base matcher tree
	// (zero before the first rebuild).
	Shape match.Shape `json:"shape"`
	// Dims holds per-dimension selectivity over the sampled live
	// rectangles; empty when there are none.
	Dims []DimSelectivity `json:"dims,omitempty"`
	// SampledRects is how many rectangles the duplicate/covering scans
	// looked at (capped by Options.IndexSampleCap).
	SampledRects int `json:"sampled_rects"`
	// SelectivitySource says where Dims came from: "streaming" (the
	// live per-dimension profile fed by Subscribe/Cancel and real
	// matches) or "sample" (the probe-time rectangle sample fallback,
	// used when the profile has no data or a rectangle exceeded its
	// dimension bound).
	SelectivitySource string `json:"selectivity_source,omitempty"`
	// ProfiledPoints is how many instrumented publish points fed the
	// streaming profile (0 under "sample").
	ProfiledPoints uint64 `json:"profiled_points,omitempty"`
	// DuplicatePairs counts sampled rectangle pairs that are exactly
	// equal; CoveringPairs counts ordered pairs where one strictly
	// covers the other. Both are aggregation candidates.
	DuplicatePairs int `json:"duplicate_pairs"`
	CoveringPairs  int `json:"covering_pairs"`
}

// introspectSampleCap is the default bound on the O(n²)
// duplicate/covering scan (and the selectivity fallback scan). 512
// rectangles is ~131k pair comparisons, well under a millisecond.
// Override with Options.IndexSampleCap / pubsubd -index-sample.
const introspectSampleCap = 512

// IndexReport snapshots the matching-index shape and the live
// rectangle population's selectivity. It holds the broker lock in read
// mode while copying out up to Options.IndexSampleCap rectangles and
// runs the quadratic scans after releasing it. Per-dimension
// selectivity prefers the streaming profile (exact over the live
// population, plus real-traffic envelope coverage) and falls back to
// the sample when the profile is empty or overflowed.
func (b *Broker) IndexReport() IndexReport {
	b.mu.RLock()
	rep := IndexReport{
		Strategy:      "rebuild",
		Subscriptions: len(b.subs),
		Rebuilds:      b.rebuilds.Load(),
		ShardCount:    len(b.shards),
		Fanout:        b.opts.Fanout.String(),
	}
	var base match.Matcher
	var lastRebuildNS int64
	if b.opts.Index == IndexDynamic {
		rep.Strategy = "dynamic"
		rep.Fanout = ""
		if b.dyn != nil {
			rep.Rectangles = b.dyn.Len()
			st := b.dyn.Stats()
			rep.Shape = match.Shape{
				Algorithm: "dynamic-rtree", Entries: b.dyn.Len(),
				Nodes: st.Nodes, Leaves: st.Leaves, Height: st.Height, MaxBranch: st.MaxBranch,
			}
		}
		lastRebuildNS = b.shards[0].lastRebuildNS.Load()
	} else {
		// Aggregate the per-shard snapshots into the whole-broker view;
		// Shape describes the largest shard's packed base. Lock order:
		// b.mu (held) before each sh.mu.
		biggest := -1
		for _, sh := range b.shards {
			sh.mu.Lock()
			rep.BaseLen += sh.baseLen
			rep.OverlayLen += len(sh.overlay)
			rep.Stale += sh.stale
			rep.Rectangles += sh.rectanglesLocked()
			if sh.multiRect {
				rep.MultiRect = true
			}
			if sh.baseLen > biggest {
				biggest = sh.baseLen
				base = sh.base
			}
			sh.mu.Unlock()
			if ns := sh.lastRebuildNS.Load(); ns > lastRebuildNS {
				lastRebuildNS = ns
			}
		}
		if len(b.shards) > 1 {
			rep.Shards = b.ShardStats()
		}
	}
	sampleCap := b.opts.IndexSampleCap
	sample := make([]geometry.Rect, 0, min(len(b.subs)*2, sampleCap))
	for _, s := range b.subs {
		if len(sample) == sampleCap {
			break
		}
		for _, r := range s.rects {
			if len(sample) == sampleCap {
				break
			}
			sample = append(sample, r)
		}
	}
	b.mu.RUnlock()

	rep.SecondsSinceRebuild = time.Duration(b.rec.Now() - lastRebuildNS).Seconds()
	if base != nil {
		rep.Shape = match.Describe(base)
	}
	rep.SampledRects = len(sample)
	if dims := b.selprof.report(); dims != nil {
		rep.Dims = dims
		rep.SelectivitySource = "streaming"
		rep.ProfiledPoints = b.selprof.ptCount.Load()
	} else {
		rep.Dims = dimSelectivity(sample)
		if rep.Dims != nil {
			rep.SelectivitySource = "sample"
		}
	}
	rep.DuplicatePairs, rep.CoveringPairs = coveringScan(sample)
	return rep
}

// dimSelectivity computes per-dimension boundedness and relative width
// over the sampled rectangles. Dimensionality follows the widest
// rectangle seen; rectangles shorter than a dimension simply do not
// constrain it.
func dimSelectivity(rects []geometry.Rect) []DimSelectivity {
	dims := 0
	for _, r := range rects {
		if len(r) > dims {
			dims = len(r)
		}
	}
	if dims == 0 {
		return nil
	}
	out := make([]DimSelectivity, dims)
	for d := 0; d < dims; d++ {
		sel := DimSelectivity{Dim: d}
		lo, hi := 0.0, 0.0
		widthSum := 0.0
		for _, r := range rects {
			if d >= len(r) {
				continue
			}
			iv := r[d]
			if math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1) {
				continue
			}
			if sel.Bounded == 0 || iv.Lo < lo {
				lo = iv.Lo
			}
			if sel.Bounded == 0 || iv.Hi > hi {
				hi = iv.Hi
			}
			sel.Bounded++
			widthSum += iv.Length()
		}
		if len(rects) > 0 {
			sel.BoundedFraction = float64(sel.Bounded) / float64(len(rects))
		}
		if sel.Bounded > 0 && hi > lo {
			sel.MeanWidthFraction = widthSum / float64(sel.Bounded) / (hi - lo)
		}
		out[d] = sel
	}
	return out
}

// coveringScan counts exactly-equal and strictly-covering rectangle
// pairs in the sample: duplicates and covered rectangles are the
// paper-adjacent aggregation candidates (a covered subscription's
// matches are a subset of its cover's).
func coveringScan(rects []geometry.Rect) (duplicates, covering int) {
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			switch {
			case a.Equal(b):
				duplicates++
			case a.ContainsRect(b) || b.ContainsRect(a):
				covering++
			}
		}
	}
	return duplicates, covering
}

// RegisterHealth registers the broker's health checks: "broker" (basic
// open/closed liveness plus slow-subscriber pressure) and "rebuilder"
// (whether rebuild-worthy churn has been left unfolded past the
// StaleWindow). Checks run only when a probe fires; nothing is added
// to the publish path.
func (b *Broker) RegisterHealth(hr *health.Registry) {
	hr.Register("broker", func() (health.State, string) {
		b.mu.RLock()
		closed := b.closed
		subs := len(b.subs)
		b.mu.RUnlock()
		if closed {
			return health.Unhealthy, "broker closed"
		}
		if slow := b.slowSubs.Load(); slow > 0 {
			return health.Degraded, fmt.Sprintf("%d slow subscription(s), max lag %d events", slow, b.maxLag())
		}
		return health.Healthy, fmt.Sprintf("%d subscription(s), head %d", subs, b.head.Load())
	})
	hr.Register("rebuilder", func() (health.State, string) {
		b.mu.RLock()
		closed := b.closed
		dynamic := b.opts.Index == IndexDynamic
		b.mu.RUnlock()
		if closed {
			return health.Unhealthy, "broker closed"
		}
		if dynamic {
			return health.Healthy, "dynamic index: no rebuilder"
		}
		// Any one shard stuck past the StaleWindow degrades the broker:
		// its slice of the subscription population is paying linear
		// overlay scans (or stale-slot filtering) on every publish.
		overlay, stale, baseLen := 0, 0, 0
		nowNS := b.rec.Now()
		var worst time.Duration
		worstShard := -1
		for _, sh := range b.shards {
			sh.mu.Lock()
			due := sh.rebuildDueLocked()
			overlay += len(sh.overlay)
			stale += sh.stale
			baseLen += sh.baseLen
			sh.mu.Unlock()
			if !due {
				continue
			}
			if age := time.Duration(nowNS - sh.lastRebuildNS.Load()); age > b.opts.StaleWindow && age > worst {
				worst = age
				worstShard = sh.idx
			}
		}
		if worstShard >= 0 {
			return health.Degraded, fmt.Sprintf(
				"index stale: shard %d unfolded for %s; totals overlay %d, stale %d/%d",
				worstShard, worst.Round(time.Millisecond), overlay, stale, baseLen)
		}
		return health.Healthy, fmt.Sprintf("%d shard(s), overlay %d, stale %d/%d",
			len(b.shards), overlay, stale, baseLen)
	})
}

// maxLag returns the largest per-subscription lag right now. Read-lock
// plus atomic loads only.
func (b *Broker) maxLag() uint64 {
	head := b.head.Load()
	var maxLag uint64
	b.mu.RLock()
	for _, s := range b.subs {
		if lag, _ := lagOf(s, head, 0); lag > maxLag {
			maxLag = lag
		}
	}
	b.mu.RUnlock()
	return maxLag
}

// lagHistogram builds a scrape-time histogram of per-subscription lag
// for the registry's HistogramFunc: the fanout-wide lag distribution
// at this instant, not an accumulation over time.
func (b *Broker) lagHistogram() telemetry.HistogramSnapshot {
	bounds := telemetry.CountBuckets()
	snap := telemetry.HistogramSnapshot{
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)+1),
	}
	head := b.head.Load()
	nowNS := b.rec.Now()
	b.mu.RLock()
	first := true
	for _, s := range b.subs {
		lag, _ := lagOf(s, head, nowNS)
		v := float64(lag)
		i := sort.SearchFloat64s(bounds, v)
		snap.Counts[i]++
		snap.Count++
		snap.Sum += v
		if first || v < snap.Min {
			snap.Min = v
		}
		if first || v > snap.Max {
			snap.Max = v
		}
		first = false
	}
	b.mu.RUnlock()
	return snap
}
