package broker

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/geometry"
	"repro/internal/wal"
)

func openLog(t *testing.T, dir string, opts wal.Options) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func rect1(lo, hi float64) geometry.Rect {
	return geometry.NewRect(lo, hi)
}

// TestDurablePublishAppendsBeforeDeliver: every published event lands
// in the log with the event's Seq as its offset, payload and point
// intact.
func TestDurablePublishAppendsBeforeDeliver(t *testing.T) {
	log := openLog(t, t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	b := New(Options{Log: log})
	defer b.Close()

	sub, err := b.Subscribe(rect1(-1, 100))
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := b.Publish(geometry.Point{float64(i)}, []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	// Delivered events carry log offsets as Seq, in order.
	for i := 0; i < n; i++ {
		ev := <-sub.Events()
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want the log offset %d", i, ev.Seq, i+1)
		}
	}
	// And the log holds exactly those records.
	r, err := log.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if rec.Offset != uint64(i+1) || string(rec.Payload) != fmt.Sprintf("p%d", i) {
			t.Fatalf("replayed record %d = %+v", i, rec)
		}
		if len(rec.Point) != 1 || rec.Point[0] != float64(i) {
			t.Fatalf("replayed point %d = %v", i, rec.Point)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("log holds extra records: %v", err)
	}
	if st := b.Stats(); st.Published != n {
		t.Fatalf("Stats.Published = %d, want %d", st.Published, n)
	}
}

// TestDurableSeqContinuesAcrossRestart: a broker opened over an
// existing log continues the offset sequence instead of restarting at
// 1, so replay offsets stay unambiguous.
func TestDurableSeqContinuesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	log := openLog(t, dir, wal.Options{Sync: wal.SyncAlways})
	b := New(Options{Log: log})
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(geometry.Point{1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	log.Close()

	log2 := openLog(t, dir, wal.Options{Sync: wal.SyncAlways})
	b2 := New(Options{Log: log2})
	defer b2.Close()
	sub, _ := b2.Subscribe(rect1(-1, 10))
	if _, err := b2.Publish(geometry.Point{1}, nil); err != nil {
		t.Fatal(err)
	}
	if ev := <-sub.Events(); ev.Seq != 6 {
		t.Fatalf("post-restart Seq = %d, want 6", ev.Seq)
	}
	if st := b2.Stats(); st.Published != 6 {
		t.Fatalf("post-restart Stats.Published = %d, want 6", st.Published)
	}
}

// TestDurableAppendFailureRefusesPublish: once the log fail-stops, the
// broker refuses publications instead of delivering undurable events.
func TestDurableAppendFailureRefusesPublish(t *testing.T) {
	dir := t.TempDir()
	log := openLog(t, dir, wal.Options{Sync: wal.SyncAlways})
	b := New(Options{Log: log})
	defer b.Close()
	sub, _ := b.Subscribe(rect1(-1, 10))

	if _, err := b.Publish(geometry.Point{1}, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	log.Close() // stands in for a failed disk: appends now error

	if _, err := b.Publish(geometry.Point{1}, []byte("lost")); err == nil {
		t.Fatal("Publish succeeded after the log stopped accepting appends")
	}
	// The subscriber saw only the durable event.
	ev := <-sub.Events()
	if string(ev.Payload) != "ok" {
		t.Fatalf("delivered %q", ev.Payload)
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("undurable event %q was delivered", ev.Payload)
	default:
	}
}

// TestNonDurableSeqUnchanged guards the default path: without a log,
// Seq comes from the in-memory counter starting at 1.
func TestNonDurableSeqUnchanged(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sub, _ := b.Subscribe(rect1(-1, 10))
	for i := 1; i <= 3; i++ {
		if _, err := b.Publish(geometry.Point{1}, nil); err != nil {
			t.Fatal(err)
		}
		if ev := <-sub.Events(); ev.Seq != uint64(i) {
			t.Fatalf("Seq = %d, want %d", ev.Seq, i)
		}
	}
}
