// Package broker provides a concurrent, in-process content-based
// publish-subscribe broker built on the library's matching index. It is
// the runtime a downstream application embeds: subscribers register
// rectangle predicates and receive matching events on a channel;
// publishers submit events as points in the event space.
//
// Index maintenance is incremental: new subscriptions enter a linear
// overlay that is periodically folded into a rebuilt S-tree, so both
// subscribe and publish stay fast under churn.
//
// Under the default rebuild strategy the publish path is lock-free and
// allocation-free in steady state: Publish matches against an immutable
// snapshot (base index + overlay) read through an atomic pointer, and
// index rebuilds run on a background goroutine that swaps a fresh
// snapshot in when done. See DESIGN.md for the snapshot semantics.
package broker

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geometry"
	"repro/internal/health"
	"repro/internal/match"
	"repro/internal/rtree"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

var errClosed = errors.New("broker: closed")

// Event is one published event as seen by a subscriber.
type Event struct {
	// Point is the event's location in the event space.
	Point geometry.Point
	// Payload is the opaque application payload.
	Payload []byte
	// Seq is the broker-assigned publication sequence number.
	Seq uint64
	// TraceID correlates this event with the publication's trace across
	// the flight recorder, span logs and remote peers. Assigned at
	// ingest (PublishTraced's argument, or broker-generated); never 0.
	TraceID uint64
}

// IndexStrategy selects how the broker maintains its matching index
// under subscription churn.
type IndexStrategy int

const (
	// IndexRebuild (the default) keeps new subscriptions in a linear
	// overlay and periodically folds them into a freshly packed index.
	// Queries stay as fast as the packed structure allows; churn pays an
	// amortised rebuild.
	IndexRebuild IndexStrategy = iota
	// IndexDynamic maintains a Guttman-style dynamic R-tree updated in
	// place on every subscribe/cancel. Churn is cheap and immediate; the
	// tree is looser than a packed one.
	IndexDynamic
)

// String returns the strategy's display name.
func (s IndexStrategy) String() string {
	switch s {
	case IndexRebuild:
		return "rebuild"
	case IndexDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// OverflowPolicy selects what Publish does when a subscription's buffer
// is full.
type OverflowPolicy int

const (
	// DropNewest (the default) discards the incoming event. The
	// subscriber keeps its backlog; new data is lost while it is slow.
	DropNewest OverflowPolicy = iota
	// DropOldest evicts the oldest buffered event to make room for the
	// incoming one. The subscriber always sees the freshest events at
	// the cost of holes in the history.
	DropOldest
	// Block makes Publish wait up to the subscription's BlockTimeout for
	// buffer space, then falls back to dropping the incoming event. It
	// trades publisher latency for fewer losses.
	Block
	// CancelSlow evicts the subscriber outright: its subscription is
	// cancelled (channel closed) the first time it overflows. Use it
	// when a stalled consumer must not be allowed to accumulate drops.
	CancelSlow
)

// String returns the policy's display name.
func (p OverflowPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	case CancelSlow:
		return "cancel-slow"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseOverflowPolicy converts a policy display name (as produced by
// String) back to the policy. It is the inverse used by CLI flags.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	for _, p := range []OverflowPolicy{DropNewest, DropOldest, Block, CancelSlow} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("broker: unknown overflow policy %q (want drop-newest, drop-oldest, block or cancel-slow)", s)
}

// Options tune the broker. The zero value is usable.
type Options struct {
	// DefaultBuffer is the per-subscription channel capacity used by
	// Subscribe. Zero selects 16.
	DefaultBuffer int
	// MinOverlay is the overlay size that always triggers an index
	// rebuild when exceeded (IndexRebuild strategy only). Zero selects
	// 64.
	MinOverlay int
	// Matcher tunes the rebuilt index (algorithm, branch factor, skew).
	Matcher match.Options
	// Index selects the maintenance strategy.
	Index IndexStrategy
	// Overflow is the default overflow policy for subscriptions that do
	// not choose their own via SubscribeWith.
	Overflow OverflowPolicy
	// BlockTimeout bounds the Block policy's wait for buffer space.
	// Zero selects 50ms.
	BlockTimeout time.Duration
	// Metrics, when non-nil, receives the broker's metric families
	// (publish/match latency, fanout, drops by policy, queue gauges,
	// index traversal effort). Nil disables metrics at zero cost on the
	// publish path.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, samples publications and logs their
	// match→deliver stage timings. Nil disables tracing.
	Tracer *telemetry.Tracer
	// Recorder receives compact flight-recorder records (one per
	// publish, plus per-stage detail for traced publications, evictions
	// and rebuilds). Nil selects the process-wide telemetry.Default()
	// recorder, so the flight recorder is always on; recording is
	// lock-free and allocation-free.
	Recorder *telemetry.Recorder
	// Log, when non-nil, makes every publication durable: it is appended
	// to the log — and, under the log's always policy, fsynced — before
	// any subscriber sees it, and the event's Seq becomes the
	// log-assigned offset, so Seq values survive restarts and can be
	// replayed with Log.ReadFrom. A failed append fails the Publish; the
	// publication is not delivered. The caller owns the log's lifetime
	// and closes it after the broker. Nil (the default) keeps the
	// original in-memory path bit-for-bit: no log, no fsync, Seq from a
	// process-local counter.
	Log *wal.Log
	// SlowLagThreshold flags a subscription as slow when an overflow
	// drop finds it at least this many events behind the broker head
	// (the WAL offset when durable, the Seq counter otherwise). A slow
	// transition bumps a counter and writes a slow_sub flight record;
	// the flag clears on the next successful delivery. Zero disables
	// detection.
	SlowLagThreshold uint64
	// StaleWindow is how long the rebuilder may leave rebuild-worthy
	// churn (an overlay or stale fraction past the trigger thresholds)
	// unfolded before the broker's health check reports Degraded. Zero
	// selects 10s.
	StaleWindow time.Duration
	// Shards partitions the subscription space (IndexRebuild strategy
	// only) into per-core slices, each with its own snapshot and
	// background rebuilder, so rebuild cost and snapshot size scale
	// with subs/Shards instead of total subscriptions. Subscriptions
	// are assigned by hash of their id. Zero selects
	// runtime.GOMAXPROCS(0); 1 disables sharding (the pre-shard
	// single-snapshot broker); IndexDynamic always runs unsharded.
	Shards int
	// Fanout selects how Publish visits the shards: sequentially on
	// the publisher goroutine, via the per-shard worker set, or (the
	// zero value) automatically — parallel only once the broker is
	// large enough for the hand-off to pay for itself.
	Fanout FanoutMode
	// SLO, when non-nil, receives every publication's end-to-end
	// publish latency (and every overflow drop as a bad event) for
	// multi-window burn-rate evaluation. Nil disables the feed at zero
	// cost on the publish path.
	SLO *health.SLO
	// IndexSampleCap caps the rectangle sample behind IndexReport's
	// fallback selectivity and covering scans. Zero selects 512.
	IndexSampleCap int
}

func (o Options) withDefaults() Options {
	if o.DefaultBuffer == 0 {
		o.DefaultBuffer = 16
	}
	if o.MinOverlay == 0 {
		o.MinOverlay = 64
	}
	if o.BlockTimeout == 0 {
		o.BlockTimeout = 50 * time.Millisecond
	}
	if o.StaleWindow == 0 {
		o.StaleWindow = 10 * time.Second
	}
	if o.Shards == 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Shards > maxShards {
		o.Shards = maxShards
	}
	if o.Index == IndexDynamic {
		// The dynamic tree is a single in-place structure under b.mu;
		// sharding applies to the snapshot strategy only.
		o.Shards = 1
	}
	if o.IndexSampleCap == 0 {
		o.IndexSampleCap = introspectSampleCap
	}
	return o
}

// Stats is a snapshot of broker counters.
type Stats struct {
	Subscriptions int    // live subscriptions
	Rectangles    int    // live subscription rectangles
	Published     uint64 // events published
	Delivered     uint64 // events delivered to subscriber channels
	Dropped       uint64 // events dropped because a subscriber was slow
	Evicted       uint64 // subscriptions cancelled by the CancelSlow policy
	IndexRebuilds uint64
	// QueueHighWater is the deepest any subscription buffer has been
	// since the broker was created.
	QueueHighWater int
	// LastDrop is when the most recent overflow drop happened (zero if
	// none yet).
	LastDrop time.Time
}

// SubStats is a snapshot of one subscription's delivery counters.
type SubStats struct {
	Buffered  int       // events currently queued
	Capacity  int       // buffer capacity
	HighWater int       // deepest the buffer has been
	Dropped   uint64    // events lost to overflow on this subscription
	LastDrop  time.Time // most recent overflow drop (zero if none)
	Evicted   bool      // true once CancelSlow has evicted the subscriber
}

// overlayEntry is one recent subscription rectangle scanned linearly by
// Publish until the background rebuild folds it into the base index.
// Holding the *Subscription directly lets the lock-free publish path skip
// the id→subscription map lookup entirely.
type overlayEntry struct {
	rect geometry.Rect
	sub  *Subscription
}

// snapshot is the immutable matching state read by Publish without a
// lock. Mutations never modify a published snapshot in place: Subscribe
// may append to the overlay's backing array (readers are bounded by their
// own slice length), while Cancel and the rebuilder install freshly
// copied slices before storing a new snapshot.
type snapshot struct {
	// base indexes the rectangles present at the last rebuild. Its
	// SubscriberIDs are slots into the slots slice, not broker
	// subscription ids, so matching needs no map. nil before the first
	// rebuild. It may contain slots whose subscription has since been
	// cancelled; deliver's per-subscription closed check filters those.
	base  match.Matcher
	slots []*Subscription
	// overlay holds rectangles registered since the last rebuild.
	overlay []overlayEntry
	// multiRect is true once any live-or-dead subscription registered
	// more than one rectangle, forcing target deduplication.
	multiRect bool
}

// pubScratch is pooled per-publish working memory: matched slot ids,
// the collected target subscriptions, and the sequential path's event
// prep (pooled because the prep's mutex would otherwise make a
// stack-allocated prep escape on every publish).
type pubScratch struct {
	ids     []int
	targets []*Subscription
	prep    eventPrep
}

// Broker routes published events to matching subscribers. Create one with
// New. All methods are safe for concurrent use.
type Broker struct {
	opts Options

	mu        sync.RWMutex
	closed    bool
	nextID    int
	subs      map[int]*Subscription
	multiRect bool           // some subscription holds several rectangles (IndexDynamic dedup)
	dyn       *rtree.Dynamic // IndexDynamic strategy: in-place tree

	// shards partition the subscription space under IndexRebuild; each
	// holds its own immutable snapshot and background rebuilder. The
	// slice is immutable after New (always at least one shard). Lock
	// order: b.mu before any shard.mu.
	shards []*shard

	// closedFlag mirrors closed for paths that must not take b.mu (the
	// per-shard rebuilders).
	closedFlag atomic.Bool
	// liveRects counts live subscription rectangles across all shards;
	// FanoutAuto reads it per publish to decide when parallel fan-out
	// pays.
	liveRects atomic.Int64
	// procs is runtime.GOMAXPROCS at creation; fanReady is true when
	// the per-shard worker set was started.
	procs    int
	fanReady bool

	// stop ends the background goroutines (per-shard rebuilders and
	// fan-out workers); wg waits for all of them in Close.
	stop chan struct{}
	wg   sync.WaitGroup

	scratch sync.Pool // *pubScratch
	jobs    sync.Pool // *fanJob (parallel fan-out)

	tel    *brokerTel
	tracer *telemetry.Tracer
	rec    *telemetry.Recorder
	log    *wal.Log    // nil unless durability is on
	slo    *health.SLO // nil unless an SLO objective is configured

	// selprof streams the per-dimension selectivity profile: rectangle
	// stats accumulate exactly on Subscribe/Cancel, point-coverage
	// counters on instrumented publishes. IndexReport prefers it over
	// the probe-time rectangle sample.
	selprof selProfile

	seq       atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	evicted   atomic.Uint64
	rebuilds  atomic.Uint64
	highWater atomic.Int64
	lastDrop  atomic.Int64 // unix nanos of most recent drop
	// head is the highest sequence number assigned to any publication —
	// the WAL offset in durable mode, the Seq counter otherwise. Lag
	// reporting reads it without touching the WAL mutex.
	head atomic.Uint64
	// slowSubs counts subscriptions currently flagged slow;
	// slowTransitions counts healthy→slow flips since creation.
	slowSubs        atomic.Int64
	slowTransitions atomic.Uint64
	consumers       sync.WaitGroup
}

// New creates an empty broker.
func New(opts Options) *Broker {
	b := &Broker{
		opts:   opts.withDefaults(),
		subs:   make(map[int]*Subscription),
		tracer: opts.Tracer,
		rec:    opts.Recorder,
		log:    opts.Log,
		slo:    opts.SLO,
		stop:   make(chan struct{}),
		procs:  runtime.GOMAXPROCS(0),
	}
	if b.rec == nil {
		b.rec = telemetry.Default()
	}
	b.selprof.init()
	if b.log != nil {
		// Offsets already assigned by a previous process are the head a
		// resuming subscriber lags behind.
		b.head.Store(b.log.NextOffset() - 1)
	}
	b.scratch.New = func() any { return &pubScratch{} }
	b.jobs.New = func() any { return &fanJob{done: make(chan struct{}, 1)} }
	b.shards = make([]*shard, b.opts.Shards)
	for i := range b.shards {
		b.shards[i] = newShard(b, i)
	}
	// The worker set exists only when parallel fan-out is reachable:
	// forced on, or auto with the CPUs to exploit it. go statements
	// allocate, so workers start here (cold), never from the publish
	// path.
	if len(b.shards) > 1 &&
		(b.opts.Fanout == FanoutParallel || (b.opts.Fanout == FanoutAuto && b.procs > 1)) {
		for i := 1; i < len(b.shards); i++ {
			sh := b.shards[i]
			sh.fanCh = make(chan *fanJob)
			b.wg.Add(1)
			go b.fanWorker(sh)
		}
		b.fanReady = true
	}
	b.tel = newBrokerTel(b, opts.Metrics)
	return b
}

// Subscription is one subscriber registration. Receive events from
// Events(); call Cancel when done.
type Subscription struct {
	id           int
	rects        []geometry.Rect
	ch           chan Event
	b            *Broker
	shard        *shard // owning shard (nil under IndexDynamic)
	policy       OverflowPolicy
	blockTimeout time.Duration
	once         sync.Once
	sendMu       sync.Mutex // serialises deliveries with channel close
	closed       bool       // guarded by sendMu; true once ch is closed
	dropCt       atomic.Uint64
	highWater    atomic.Int64
	lastDrop     atomic.Int64 // unix nanos
	evicting     atomic.Bool
	// deliveredSeq is the highest Seq successfully enqueued on ch (the
	// broker head at creation before the first delivery); the gap to
	// the broker head is the subscription's lag in events.
	deliveredSeq atomic.Uint64
	// deliveredAtNS is the recorder-clock time of the last successful
	// enqueue (creation time before the first); its age is the
	// subscription's lag age while it is behind.
	deliveredAtNS atomic.Int64
	// slow is set while the subscription sits past the broker's
	// SlowLagThreshold, flipped by drops and cleared by deliveries.
	slow atomic.Bool
}

// ID returns the broker-assigned subscription identifier.
func (s *Subscription) ID() int { return s.id }

// Events returns the channel on which matching events are delivered. The
// channel is closed by Cancel or by the broker's Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Rects returns the subscription's predicate rectangles.
func (s *Subscription) Rects() []geometry.Rect {
	out := make([]geometry.Rect, len(s.rects))
	for i, r := range s.rects {
		out[i] = r.Clone()
	}
	return out
}

// Dropped reports how many events were dropped because this
// subscription's buffer was full.
func (s *Subscription) Dropped() uint64 { return s.dropCt.Load() }

// Policy returns the subscription's overflow policy.
func (s *Subscription) Policy() OverflowPolicy { return s.policy }

// Stats returns a snapshot of the subscription's delivery counters.
func (s *Subscription) Stats() SubStats {
	st := SubStats{
		Buffered:  len(s.ch),
		Capacity:  cap(s.ch),
		HighWater: int(s.highWater.Load()),
		Dropped:   s.dropCt.Load(),
		Evicted:   s.evicting.Load(),
	}
	if ns := s.lastDrop.Load(); ns != 0 {
		st.LastDrop = time.Unix(0, ns)
	}
	return st
}

// noteDepth records the buffer depth after a successful send, updating
// the subscription and broker high-water marks.
func (s *Subscription) noteDepth() {
	depth := int64(len(s.ch))
	for {
		cur := s.highWater.Load()
		if depth <= cur || s.highWater.CompareAndSwap(cur, depth) {
			break
		}
	}
	for {
		cur := s.b.highWater.Load()
		if depth <= cur || s.b.highWater.CompareAndSwap(cur, depth) {
			break
		}
	}
}

// noteDelivered records a successful enqueue: it advances the
// subscription's delivered offset (monotonically — concurrent
// publishers may land out of order), stamps the delivery time, and
// clears a standing slow flag now that the subscription is keeping up.
// nowNS is the recorder-clock time the caller already read for its
// publish record, so the success path adds no clock read.
func (s *Subscription) noteDelivered(seq uint64, nowNS int64) {
	for {
		cur := s.deliveredSeq.Load()
		if seq <= cur || s.deliveredSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	s.deliveredAtNS.Store(nowNS)
	if s.slow.Load() && s.slow.CompareAndSwap(true, false) {
		s.b.slowSubs.Add(-1)
		s.b.rec.Record(telemetry.KindSlowSub, 0, seq,
			int64(s.id), 0, 0, int64(s.dropCt.Load()))
	}
}

// noteDrop records one overflow loss on this subscription and, when
// slow-subscriber detection is on, flags the subscription once its lag
// behind the broker head crosses the threshold.
func (s *Subscription) noteDrop() {
	now := time.Now().UnixNano()
	s.dropCt.Add(1)
	s.lastDrop.Store(now)
	s.b.dropped.Add(1)
	s.b.lastDrop.Store(now)
	s.b.tel.drop(s.policy)
	// A dropped delivery consumes SLO error budget unconditionally.
	s.b.slo.ObserveBad()
	if thr := s.b.opts.SlowLagThreshold; thr > 0 {
		head := s.b.head.Load()
		seen := s.deliveredSeq.Load()
		if head > seen && head-seen >= thr && s.slow.CompareAndSwap(false, true) {
			s.b.slowSubs.Add(1)
			s.b.slowTransitions.Add(1)
			s.b.tel.slowTransition()
			s.b.rec.Record(telemetry.KindSlowSub, 0, head,
				int64(s.id), int64(head-seen), 1, int64(s.dropCt.Load()))
		}
	}
}

// closeCh closes the event channel, serialised against in-flight
// deliveries so a concurrent Publish can never send on a closed
// channel. Callers guarantee it runs at most once (via s.once or the
// broker's closed flag).
func (s *Subscription) closeCh() {
	s.sendMu.Lock()
	s.closed = true
	close(s.ch)
	s.sendMu.Unlock()
}

// Cancel removes the subscription and closes its channel. It is
// idempotent and safe to call concurrently with Publish.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		b := s.b
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, live := b.subs[s.id]; !live {
			return // broker already closed (channel closed there)
		}
		delete(b.subs, s.id)
		b.liveRects.Add(-int64(len(s.rects)))
		for _, r := range s.rects {
			b.selprof.removeRect(r)
		}
		if b.opts.Index == IndexDynamic {
			for _, r := range s.rects {
				b.dyn.Delete(s.id, r)
			}
			s.closeCh()
			return
		}
		sh := s.shard
		sh.mu.Lock()
		delete(sh.subs, s.id)
		// Rectangles indexed in the shard's base become stale; overlay
		// entries are removed eagerly. The overlay is filtered into a
		// fresh slice — never truncated in place — because published
		// snapshots still reference the old backing array.
		kept := make([]overlayEntry, 0, len(sh.overlay))
		removed := 0
		for _, e := range sh.overlay {
			if e.sub == s {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		sh.overlay = kept
		sh.stale += len(s.rects) - removed
		if sh.rebuilding && s.id < sh.rebuildCut {
			// This subscription's rectangles were collected into the
			// in-flight rebuild; they will be stale in the new base.
			sh.pendingStale += len(s.rects)
		}
		sh.publishSnapshotLocked()
		b.maybeTriggerRebuildLocked(sh)
		sh.mu.Unlock()
		s.closeCh()
	})
}

// SubscribeOptions tune one subscription. The zero value inherits the
// broker defaults.
type SubscribeOptions struct {
	// Buffer is the event channel capacity. Zero selects the broker's
	// DefaultBuffer; negative is invalid.
	Buffer int
	// Overflow selects what Publish does when the buffer is full. The
	// zero value inherits the broker's default policy.
	Overflow OverflowPolicy
	// BlockTimeout bounds the Block policy's wait. Zero selects the
	// broker's BlockTimeout.
	BlockTimeout time.Duration
}

// Subscribe registers a subscriber for the union of the given rectangles,
// using the default channel buffer. At least one non-empty rectangle is
// required.
func (b *Broker) Subscribe(rects ...geometry.Rect) (*Subscription, error) {
	return b.SubscribeWith(SubscribeOptions{}, rects...)
}

// SubscribeBuffered is Subscribe with an explicit channel capacity.
func (b *Broker) SubscribeBuffered(buffer int, rects ...geometry.Rect) (*Subscription, error) {
	if buffer < 1 {
		return nil, fmt.Errorf("broker: buffer must be >= 1, got %d", buffer)
	}
	return b.SubscribeWith(SubscribeOptions{Buffer: buffer}, rects...)
}

// SubscribeWith is Subscribe with per-subscription buffer and overflow
// policy control.
func (b *Broker) SubscribeWith(opts SubscribeOptions, rects ...geometry.Rect) (*Subscription, error) {
	if len(rects) == 0 {
		return nil, fmt.Errorf("broker: subscription needs at least one rectangle")
	}
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("broker: buffer must be >= 1, got %d", opts.Buffer)
	}
	switch opts.Overflow {
	case DropNewest, DropOldest, Block, CancelSlow:
	default:
		return nil, fmt.Errorf("broker: unknown overflow policy %d", int(opts.Overflow))
	}
	owned := make([]geometry.Rect, len(rects))
	for i, r := range rects {
		if r.Empty() {
			return nil, fmt.Errorf("broker: rectangle %d is empty", i)
		}
		owned[i] = r.Clone()
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("broker: closed")
	}
	buffer := opts.Buffer
	if buffer == 0 {
		buffer = b.opts.DefaultBuffer
	}
	policy := opts.Overflow
	if policy == DropNewest {
		policy = b.opts.Overflow
	}
	blockTimeout := opts.BlockTimeout
	if blockTimeout <= 0 {
		blockTimeout = b.opts.BlockTimeout
	}
	s := &Subscription{
		id:           b.nextID,
		rects:        owned,
		ch:           make(chan Event, buffer),
		b:            b,
		policy:       policy,
		blockTimeout: blockTimeout,
	}
	// A new subscription starts with zero lag: it is only behind events
	// published after this point.
	s.deliveredSeq.Store(b.head.Load())
	s.deliveredAtNS.Store(b.rec.Now())
	b.nextID++
	b.subs[s.id] = s
	if b.opts.Index == IndexDynamic {
		// Dedup happens broker-wide on the dynamic path, so the flag is
		// broker-wide too.
		if len(owned) > 1 {
			b.multiRect = true
		}
		if b.dyn == nil {
			d, err := rtree.NewDynamic(b.opts.Matcher.BranchFactor)
			if err != nil {
				delete(b.subs, s.id)
				return nil, fmt.Errorf("broker: %w", err)
			}
			b.dyn = d
		}
		for i, r := range owned {
			if err := b.dyn.Insert(rtree.Entry{Rect: r, ID: s.id}); err != nil {
				// Roll back the partial insertion.
				for _, rr := range owned[:i] {
					b.dyn.Delete(s.id, rr)
				}
				delete(b.subs, s.id)
				return nil, fmt.Errorf("broker: %w", err)
			}
		}
		b.liveRects.Add(int64(len(owned)))
		for _, r := range owned {
			b.selprof.addRect(r)
		}
		return s, nil
	}
	sh := b.shards[shardIndex(s.id, len(b.shards))]
	s.shard = sh
	sh.mu.Lock()
	sh.subs[s.id] = s
	if s.id >= sh.maxID {
		sh.maxID = s.id + 1
	}
	// Dedup is per shard (all of a subscription's rectangles share its
	// shard), so the flag is per shard too.
	if len(owned) > 1 {
		sh.multiRect = true
	}
	// Appending to the overlay's backing array is safe with live
	// snapshots: readers are bounded by their snapshot's slice length.
	for _, r := range owned {
		sh.overlay = append(sh.overlay, overlayEntry{rect: r, sub: s})
	}
	sh.publishSnapshotLocked()
	b.maybeTriggerRebuildLocked(sh)
	sh.mu.Unlock()
	b.liveRects.Add(int64(len(owned)))
	for _, r := range owned {
		b.selprof.addRect(r)
	}
	return s, nil
}

// putScratch returns per-publish scratch to the pool with its slices
// reset to zero length (capacity retained). Target pointers are kept in
// the pooled backing array until the next publish overwrites them —
// acceptable retention for steady-state zero-alloc publishing.
func (b *Broker) putScratch(sc *pubScratch) {
	sc.ids = sc.ids[:0]
	sc.targets = sc.targets[:0]
	// Drop the prep's references to caller-owned memory (publish point
	// and payload) before pooling.
	sc.prep.reset(nil, nil)
	b.scratch.Put(sc)
}

// eventPrep defers the per-publish allocations (point clone, payload
// clone) until the first delivery actually needs them. A publish whose
// matches all hit full DropNewest buffers — or match nothing — allocates
// nothing at all. One prep may be shared by several delivering
// goroutines under parallel fan-out: the clones are created once under
// mu and published through the done flag (atomic release/acquire), so
// every delivery of one publication shares the same point/payload
// clones.
type eventPrep struct {
	src     geometry.Point
	payload []byte
	point   geometry.Point
	cloned  []byte
	done    atomic.Bool
	mu      sync.Mutex
}

// reset rearms the prep for a new publication (or clears its caller
// references before pooling). Field-wise on purpose: the struct holds
// a mutex and must never be copied.
func (pr *eventPrep) reset(p geometry.Point, payload []byte) {
	pr.src = p
	pr.payload = payload
	pr.point = nil
	pr.cloned = nil
	pr.done.Store(false)
}

// materialize fills ev's Point and Payload from the prep, cloning the
// publication's point and payload on the first call.
//
//pubsub:hotpath
func (pr *eventPrep) materialize(ev *Event) {
	if !pr.done.Load() {
		pr.clone()
	}
	ev.Point = pr.point
	ev.Payload = pr.cloned
}

// clone creates the shared point/payload clones, once per publication.
//
//pubsub:coldpath -- lazy materialization: clones happen only when a delivery is actually attempted, off the zero-alloc match path
func (pr *eventPrep) clone() {
	pr.mu.Lock()
	if !pr.done.Load() {
		pr.point = pr.src.Clone()
		if pr.payload != nil {
			pr.cloned = append([]byte(nil), pr.payload...)
		}
		pr.done.Store(true)
	}
	pr.mu.Unlock()
}

// Publish routes an event to every matching live subscriber. It returns
// the number of subscriber channels the event was delivered to (dropped
// deliveries are excluded). The payload is cloned once per publish, so
// the caller may reuse its buffer immediately; subscribers of one
// publication share the clone and must treat it as read-only.
//
// Under IndexRebuild, Publish takes no lock: it matches against the
// immutable snapshot installed by the most recent mutation and uses
// pooled scratch, so the steady-state publish path performs no heap
// allocation. A Publish racing Close may load the final snapshot and
// then find every subscription already closed; that case is reported as
// errClosed (the sequence counter may still have advanced — Seq values
// are unique and ordered, not dense).
//
//pubsub:hotpath
func (b *Broker) Publish(p geometry.Point, payload []byte) (int, error) {
	return b.PublishTraced(p, payload, 0)
}

// PublishTraced is Publish with an explicit trace id correlating the
// publication across processes. A zero id (the Publish path) makes the
// broker assign a fresh one at ingest; either way the id travels on the
// delivered Event and on every flight-recorder record.
//
// The flight recorder always gets one compact publish record (fanout,
// deliveries, latency). Per-stage detail records — match effort,
// dispatch decision, per-subscriber deliver/drop — are written only for
// traced publications: those arriving with an explicit (wire-assigned)
// id, or sampled by the tracer. In-process untraced publishes therefore
// stay within the zero-alloc, low-overhead hot-path budget.
//
//pubsub:hotpath
func (b *Broker) PublishTraced(p geometry.Point, payload []byte, traceID uint64) (int, error) {
	// Telemetry is designed to vanish when disabled: tel is nil, span is
	// nil, and no time.Now fires — the uninstrumented path is identical
	// to the pre-telemetry broker. The always-on flight recorder adds
	// only monotonic clock reads and atomic stores.
	tel := b.tel
	rec := b.rec
	detail := traceID != 0
	if traceID == 0 {
		traceID = telemetry.NewTraceID()
	}
	span := b.tracer.StartWith("publish", traceID)
	detail = detail || span != nil
	instrumented := tel != nil || span != nil || detail || b.slo != nil
	r0 := rec.Now()
	var t0 time.Time
	if instrumented {
		t0 = time.Now()
	}

	// Durable path: append — and, policy permitting, fsync — before any
	// matching. The append must happen before the snapshot load below: a
	// subscriber registered before some reader observed NextOffset() == N
	// had its snapshot published before that observation, so every
	// publication with offset >= N loads a snapshot containing it and is
	// delivered live, while offsets < N fall inside the reader's replay
	// range — no gap between replay and live fanout. A failed append
	// refuses the publication outright: never acked, never delivered.
	var walOff uint64
	if b.log != nil {
		off, err := b.log.Append(traceID, p, payload)
		if err != nil {
			return 0, err
		}
		walOff = off
	}

	// Large sharded brokers fan the point out to the per-shard worker
	// set; the parallel path assigns Seq before matching and merges the
	// per-shard results, see publishParallel.
	if b.opts.Index != IndexDynamic && b.parallelFanoutNow() {
		return b.publishParallel(p, payload, traceID, detail, instrumented, span, r0, t0, walOff)
	}

	sc := b.scratch.Get().(*pubScratch)
	sc.ids = sc.ids[:0]
	sc.targets = sc.targets[:0]
	var qs match.QueryStats
	group := 0 // candidate subscriptions the decision chose among

	// Waterfall boundary: everything before this point (WAL append,
	// scratch setup) is the ingest stage. Stage histograms exist only
	// when metrics are on, so the extra clock read is gated with them.
	var tIngest time.Time
	if tel != nil {
		tIngest = time.Now()
	}

	if b.opts.Index == IndexDynamic {
		// The dynamic tree is mutated in place by Subscribe/Cancel, so
		// this strategy keeps the read lock; only IndexRebuild gets the
		// lock-free snapshot path.
		b.mu.RLock()
		if b.closed {
			b.mu.RUnlock()
			b.putScratch(sc)
			return 0, errClosed
		}
		multiRect := b.multiRect
		group = len(b.subs)
		if b.dyn != nil {
			if instrumented {
				var ds rtree.QueryStats
				sc.ids, ds = b.dyn.PointQueryAppendStats(p, sc.ids)
				qs.Add(match.QueryStats{NodesVisited: ds.NodesVisited, LeavesVisited: ds.LeavesVisited, EntriesTested: ds.EntriesTested, Matched: ds.ResultsMatched})
			} else {
				sc.ids = b.dyn.PointQueryAppend(p, sc.ids)
			}
		}
		for _, id := range sc.ids {
			if s, live := b.subs[id]; live {
				sc.targets = append(sc.targets, s)
			}
		}
		b.mu.RUnlock()
		// Deduplicate only when some subscription holds several
		// rectangles; with single-rect subscriptions every target is
		// distinct already. (The snapshot path dedups per shard inside
		// matchSnapshot.)
		if multiRect && len(sc.targets) > 1 {
			sc.targets = dedupTargets(sc.targets, 0)
		}
	} else {
		// Sequential shard visit: with one shard this is exactly the
		// pre-shard single-snapshot path; with several it walks them on
		// the publisher goroutine. Per-shard dedup inside matchSnapshot
		// is complete dedup (a subscription's rectangles never straddle
		// shards), so the merge is pure concatenation.
		closedShards := 0
		for _, sh := range b.shards {
			snap := sh.snap.Load()
			if snap == nil {
				closedShards++
				continue
			}
			if tel != nil {
				// Per-shard attribution: the recorder clock brackets each
				// shard's walk so the imbalance gauge and the per-shard
				// match histograms see where publish cost concentrates.
				m0 := rec.Now()
				group += matchSnapshot(snap, p, sc, instrumented, &qs)
				d := rec.Now() - m0
				sh.matchNS.Add(d)
				sh.matchCount.Add(1)
				tel.shardMatch[sh.idx].Observe(float64(d) / 1e9)
			} else {
				group += matchSnapshot(snap, p, sc, instrumented, &qs)
			}
		}
		if closedShards == len(b.shards) {
			b.putScratch(sc)
			return 0, errClosed
		}
	}
	targets := sc.targets

	// The match-phase clock split is surfaced only on detail records, so
	// the untraced hot path pays two clock reads total (r0, rEnd).
	var rMatch int64
	if detail {
		rMatch = rec.Now()
	}
	var tMatch time.Time
	if instrumented {
		tMatch = time.Now()
		if tel != nil {
			tel.matchLatency.Observe(tMatch.Sub(t0).Seconds())
			tel.observeQuery(qs.NodesVisited, qs.LeavesVisited, qs.EntriesTested)
			tel.stageIngest.ObserveExemplar(tIngest.Sub(t0).Seconds(), traceID)
			tel.stageMatch.ObserveExemplar(tMatch.Sub(tIngest).Seconds(), traceID)
		}
		span.Stage("match", tMatch.Sub(t0))
	}

	seq := walOff
	if b.log == nil {
		seq = b.seq.Add(1)
	}
	// Advance the lag head monotonically; concurrent publishers may
	// reach this line out of seq order.
	for {
		cur := b.head.Load()
		if seq <= cur || b.head.CompareAndSwap(cur, seq) {
			break
		}
	}
	ev := Event{Seq: seq, TraceID: traceID}
	if detail {
		rec.Record(telemetry.KindMatch, traceID, ev.Seq,
			int64(qs.NodesVisited), int64(qs.EntriesTested), int64(qs.LeavesVisited), int64(len(targets)))
		// The in-broker delivery decision: every matching subscriber gets
		// its own channel send (unicast fanout; method 0 = none matched).
		method := int64(0)
		if len(targets) > 0 {
			method = 1
		}
		ratioPPM := int64(0)
		if group > 0 {
			ratioPPM = int64(len(targets)) * 1_000_000 / int64(group)
		}
		rec.Record(telemetry.KindDecision, traceID, ev.Seq,
			method, int64(len(targets)), int64(group), ratioPPM)
	}
	sc.prep.reset(p, payload)
	delivered := 0
	for _, s := range targets {
		if b.deliver(s, &ev, &sc.prep, detail, r0) {
			delivered++
		}
	}
	b.delivered.Add(uint64(delivered))

	rEnd := rec.Now()
	matchNS := int64(0) // 0 on untraced publishes: the split was not read
	if detail {
		matchNS = rMatch - r0
	}
	rec.RecordAt(rEnd, telemetry.KindPublish, traceID, ev.Seq,
		int64(len(targets)), int64(delivered), matchNS, rEnd-r0)
	if instrumented {
		now := time.Now()
		if tel != nil {
			tel.published.Inc()
			tel.delivered.Add(uint64(delivered))
			tel.fanout.Observe(float64(len(targets)))
			tel.publishLatency.ObserveExemplar(now.Sub(t0).Seconds(), traceID)
			tel.stageEnqueue.ObserveExemplar(now.Sub(tMatch).Seconds(), traceID)
		}
		b.slo.Observe(now.Sub(t0).Seconds())
		b.selprof.notePoint(p)
		span.Stage("deliver", now.Sub(tMatch))
		span.Uint64("seq", ev.Seq)
		span.Int("fanout", len(targets))
		span.Int("delivered", delivered)
		span.Int("nodes_visited", qs.NodesVisited)
		span.Int("entries_tested", qs.EntriesTested)
		span.End()
	}
	b.putScratch(sc)
	if delivered == 0 && b.opts.Index != IndexDynamic && b.allShardsClosed() {
		// Close swapped the snapshots out from under us after we loaded
		// them: every delivery hit a closed subscription. Report the
		// broker closed rather than a silent zero-delivery success.
		return 0, errClosed
	}
	return delivered, nil
}

// deliver sends ev to one subscription, applying its overflow policy
// when the buffer is full. It runs outside b.mu; s.sendMu excludes a
// concurrent channel close (closeCh), and the closed check skips
// subscriptions cancelled after the publisher snapshotted its targets.
// The event's point/payload clones are materialized lazily, only when a
// send is actually attempted. detail enables per-subscriber flight
// records (traced publications only, so a saturated untraced publish
// writes nothing here).
//
//pubsub:commit -- hands the event to subscriber queues; after this the publication is observable
func (b *Broker) deliver(s *Subscription, ev *Event, pr *eventPrep, detail bool, nowNS int64) bool {
	if s.evicting.Load() {
		return false // CancelSlow eviction pending
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed {
		return false
	}
	if s.policy == DropNewest && len(s.ch) == cap(s.ch) {
		// Fast drop before cloning anything: a saturated DropNewest
		// subscriber costs the publisher no allocation.
		s.noteDrop()
		if detail {
			b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
		}
		return false
	}
	pr.materialize(ev)
	select {
	case s.ch <- *ev:
		s.noteDelivered(ev.Seq, nowNS)
		s.noteDepth()
		if detail {
			b.rec.Record(telemetry.KindDeliver, ev.TraceID, ev.Seq, int64(s.id), int64(len(s.ch)), 0, 0)
		}
		return true
	default:
	}
	//pubsub:allow locksafe -- overflow handling may wait boundedly (blockTimeout) under the per-subscription sendMu only; b.mu is not held
	return b.deliverOverflow(s, ev, detail, nowNS)
}

// deliverOverflow applies the subscription's overflow policy after a
// failed non-blocking send: evict-and-retry for DropOldest, a bounded
// wait for Block, eviction for CancelSlow, and a counted drop for
// DropNewest. The caller holds s.sendMu.
//
//pubsub:coldpath -- runs only when a subscriber buffer is full; the steady-state fast path is the non-blocking send in deliver
func (b *Broker) deliverOverflow(s *Subscription, ev *Event, detail bool, nowNS int64) bool {
	switch s.policy {
	case DropOldest:
		// Evict buffered events until the new one fits. sendMu keeps
		// other publishers out, but the consumer drains concurrently;
		// every iteration either sends or removes one event, so the
		// loop terminates.
		for {
			select {
			case <-s.ch:
				s.noteDrop()
				if detail {
					b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
				}
			default:
			}
			select {
			case s.ch <- *ev:
				s.noteDelivered(ev.Seq, nowNS)
				s.noteDepth()
				if detail {
					b.rec.Record(telemetry.KindDeliver, ev.TraceID, ev.Seq, int64(s.id), int64(len(s.ch)), 0, 0)
				}
				return true
			default:
			}
		}
	case Block:
		t := time.NewTimer(s.blockTimeout)
		defer t.Stop()
		select {
		case s.ch <- *ev:
			s.noteDelivered(ev.Seq, nowNS)
			s.noteDepth()
			if detail {
				b.rec.Record(telemetry.KindDeliver, ev.TraceID, ev.Seq, int64(s.id), int64(len(s.ch)), 0, 0)
			}
			return true
		case <-t.C:
			s.noteDrop()
			if detail {
				b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
			}
			return false
		}
	case CancelSlow:
		s.noteDrop()
		if detail {
			b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
		}
		if s.evicting.CompareAndSwap(false, true) {
			b.evicted.Add(1)
			if b.tel != nil {
				b.tel.evicted.Inc()
			}
			// Evictions are rare and diagnostic gold: record them even
			// for untraced publications.
			b.rec.Record(telemetry.KindEvict, ev.TraceID, ev.Seq, int64(s.id), 0, 0, 0)
			// Cancel closes the channel via closeCh, which needs the
			// sendMu we hold; evict from a fresh goroutine.
			go s.Cancel()
		}
		return false
	default: // DropNewest
		s.noteDrop()
		if detail {
			b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
		}
		return false
	}
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	rects := 0
	if b.opts.Index == IndexDynamic {
		if b.dyn != nil {
			rects = b.dyn.Len()
		}
	} else {
		for _, sh := range b.shards {
			sh.mu.Lock()
			rects += sh.rectanglesLocked()
			sh.mu.Unlock()
		}
	}
	published := b.seq.Load()
	if b.log != nil {
		// Durable mode: offsets are the publication count, and they
		// survive restarts where the in-memory counter does not.
		published = b.log.NextOffset() - 1
	}
	st := Stats{
		Subscriptions:  len(b.subs),
		Rectangles:     rects,
		Published:      published,
		Delivered:      b.delivered.Load(),
		Dropped:        b.dropped.Load(),
		Evicted:        b.evicted.Load(),
		IndexRebuilds:  b.rebuilds.Load(),
		QueueHighWater: int(b.highWater.Load()),
	}
	if ns := b.lastDrop.Load(); ns != 0 {
		st.LastDrop = time.Unix(0, ns)
	}
	return st
}

// Log returns the durable publication log the broker appends to, or
// nil when durability is off.
func (b *Broker) Log() *wal.Log { return b.log }

// Close shuts the broker down: all subscription channels are closed and
// further Publish/Subscribe calls fail. It waits for the background
// goroutines (per-shard rebuilders and fan-out workers, if started) to
// exit. It is idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.closedFlag.Store(true)
	close(b.stop)
	for id, s := range b.subs {
		s.closeCh()
		delete(b.subs, id)
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		sh.subs = make(map[int]*Subscription)
		sh.base = nil
		sh.slots = nil
		sh.baseLen = 0
		sh.stale = 0
		sh.overlay = nil
		sh.snap.Store(nil)
		sh.mu.Unlock()
	}
	b.dyn = nil
	b.liveRects.Store(0)
	b.mu.Unlock()
	// Outside the lock: rebuildShard re-acquires sh.mu before touching
	// state and bails out on closedFlag; fan-out workers drain their
	// in-flight job (whose shard snapshots are now nil) and exit on
	// the closed stop channel.
	b.wg.Wait()
}

// SubscribeFunc registers a subscription whose events are delivered by
// calling fn from a broker-managed goroutine, in order. The consumer
// goroutine exits when the subscription is cancelled or the broker
// closes. fn must not block indefinitely: while it runs, events queue in
// the subscription buffer and overflow is dropped like any slow
// subscriber's.
func (b *Broker) SubscribeFunc(fn func(Event), rects ...geometry.Rect) (*Subscription, error) {
	if fn == nil {
		return nil, fmt.Errorf("broker: nil handler")
	}
	s, err := b.Subscribe(rects...)
	if err != nil {
		return nil, err
	}
	b.consumers.Add(1)
	go func() {
		defer b.consumers.Done()
		for ev := range s.ch {
			fn(ev)
		}
	}()
	return s, nil
}

// WaitConsumers blocks until every SubscribeFunc consumer goroutine has
// exited (i.e. after Close or after cancelling their subscriptions).
// Useful in tests and orderly shutdown paths.
func (b *Broker) WaitConsumers() { b.consumers.Wait() }
