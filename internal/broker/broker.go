// Package broker provides a concurrent, in-process content-based
// publish-subscribe broker built on the library's matching index. It is
// the runtime a downstream application embeds: subscribers register
// rectangle predicates and receive matching events on a channel;
// publishers submit events as points in the event space.
//
// Index maintenance is incremental: new subscriptions enter a linear
// overlay that is periodically folded into a rebuilt S-tree, so both
// subscribe and publish stay fast under churn.
//
// Under the default rebuild strategy the publish path is lock-free and
// allocation-free in steady state: Publish matches against an immutable
// snapshot (base index + overlay) read through an atomic pointer, and
// index rebuilds run on a background goroutine that swaps a fresh
// snapshot in when done. See DESIGN.md for the snapshot semantics.
package broker

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/rtree"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

var errClosed = errors.New("broker: closed")

// Event is one published event as seen by a subscriber.
type Event struct {
	// Point is the event's location in the event space.
	Point geometry.Point
	// Payload is the opaque application payload.
	Payload []byte
	// Seq is the broker-assigned publication sequence number.
	Seq uint64
	// TraceID correlates this event with the publication's trace across
	// the flight recorder, span logs and remote peers. Assigned at
	// ingest (PublishTraced's argument, or broker-generated); never 0.
	TraceID uint64
}

// IndexStrategy selects how the broker maintains its matching index
// under subscription churn.
type IndexStrategy int

const (
	// IndexRebuild (the default) keeps new subscriptions in a linear
	// overlay and periodically folds them into a freshly packed index.
	// Queries stay as fast as the packed structure allows; churn pays an
	// amortised rebuild.
	IndexRebuild IndexStrategy = iota
	// IndexDynamic maintains a Guttman-style dynamic R-tree updated in
	// place on every subscribe/cancel. Churn is cheap and immediate; the
	// tree is looser than a packed one.
	IndexDynamic
)

// String returns the strategy's display name.
func (s IndexStrategy) String() string {
	switch s {
	case IndexRebuild:
		return "rebuild"
	case IndexDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// OverflowPolicy selects what Publish does when a subscription's buffer
// is full.
type OverflowPolicy int

const (
	// DropNewest (the default) discards the incoming event. The
	// subscriber keeps its backlog; new data is lost while it is slow.
	DropNewest OverflowPolicy = iota
	// DropOldest evicts the oldest buffered event to make room for the
	// incoming one. The subscriber always sees the freshest events at
	// the cost of holes in the history.
	DropOldest
	// Block makes Publish wait up to the subscription's BlockTimeout for
	// buffer space, then falls back to dropping the incoming event. It
	// trades publisher latency for fewer losses.
	Block
	// CancelSlow evicts the subscriber outright: its subscription is
	// cancelled (channel closed) the first time it overflows. Use it
	// when a stalled consumer must not be allowed to accumulate drops.
	CancelSlow
)

// String returns the policy's display name.
func (p OverflowPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	case CancelSlow:
		return "cancel-slow"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseOverflowPolicy converts a policy display name (as produced by
// String) back to the policy. It is the inverse used by CLI flags.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	for _, p := range []OverflowPolicy{DropNewest, DropOldest, Block, CancelSlow} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("broker: unknown overflow policy %q (want drop-newest, drop-oldest, block or cancel-slow)", s)
}

// Options tune the broker. The zero value is usable.
type Options struct {
	// DefaultBuffer is the per-subscription channel capacity used by
	// Subscribe. Zero selects 16.
	DefaultBuffer int
	// MinOverlay is the overlay size that always triggers an index
	// rebuild when exceeded (IndexRebuild strategy only). Zero selects
	// 64.
	MinOverlay int
	// Matcher tunes the rebuilt index (algorithm, branch factor, skew).
	Matcher match.Options
	// Index selects the maintenance strategy.
	Index IndexStrategy
	// Overflow is the default overflow policy for subscriptions that do
	// not choose their own via SubscribeWith.
	Overflow OverflowPolicy
	// BlockTimeout bounds the Block policy's wait for buffer space.
	// Zero selects 50ms.
	BlockTimeout time.Duration
	// Metrics, when non-nil, receives the broker's metric families
	// (publish/match latency, fanout, drops by policy, queue gauges,
	// index traversal effort). Nil disables metrics at zero cost on the
	// publish path.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, samples publications and logs their
	// match→deliver stage timings. Nil disables tracing.
	Tracer *telemetry.Tracer
	// Recorder receives compact flight-recorder records (one per
	// publish, plus per-stage detail for traced publications, evictions
	// and rebuilds). Nil selects the process-wide telemetry.Default()
	// recorder, so the flight recorder is always on; recording is
	// lock-free and allocation-free.
	Recorder *telemetry.Recorder
	// Log, when non-nil, makes every publication durable: it is appended
	// to the log — and, under the log's always policy, fsynced — before
	// any subscriber sees it, and the event's Seq becomes the
	// log-assigned offset, so Seq values survive restarts and can be
	// replayed with Log.ReadFrom. A failed append fails the Publish; the
	// publication is not delivered. The caller owns the log's lifetime
	// and closes it after the broker. Nil (the default) keeps the
	// original in-memory path bit-for-bit: no log, no fsync, Seq from a
	// process-local counter.
	Log *wal.Log
	// SlowLagThreshold flags a subscription as slow when an overflow
	// drop finds it at least this many events behind the broker head
	// (the WAL offset when durable, the Seq counter otherwise). A slow
	// transition bumps a counter and writes a slow_sub flight record;
	// the flag clears on the next successful delivery. Zero disables
	// detection.
	SlowLagThreshold uint64
	// StaleWindow is how long the rebuilder may leave rebuild-worthy
	// churn (an overlay or stale fraction past the trigger thresholds)
	// unfolded before the broker's health check reports Degraded. Zero
	// selects 10s.
	StaleWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.DefaultBuffer == 0 {
		o.DefaultBuffer = 16
	}
	if o.MinOverlay == 0 {
		o.MinOverlay = 64
	}
	if o.BlockTimeout == 0 {
		o.BlockTimeout = 50 * time.Millisecond
	}
	if o.StaleWindow == 0 {
		o.StaleWindow = 10 * time.Second
	}
	return o
}

// Stats is a snapshot of broker counters.
type Stats struct {
	Subscriptions int    // live subscriptions
	Rectangles    int    // live subscription rectangles
	Published     uint64 // events published
	Delivered     uint64 // events delivered to subscriber channels
	Dropped       uint64 // events dropped because a subscriber was slow
	Evicted       uint64 // subscriptions cancelled by the CancelSlow policy
	IndexRebuilds uint64
	// QueueHighWater is the deepest any subscription buffer has been
	// since the broker was created.
	QueueHighWater int
	// LastDrop is when the most recent overflow drop happened (zero if
	// none yet).
	LastDrop time.Time
}

// SubStats is a snapshot of one subscription's delivery counters.
type SubStats struct {
	Buffered  int       // events currently queued
	Capacity  int       // buffer capacity
	HighWater int       // deepest the buffer has been
	Dropped   uint64    // events lost to overflow on this subscription
	LastDrop  time.Time // most recent overflow drop (zero if none)
	Evicted   bool      // true once CancelSlow has evicted the subscriber
}

// overlayEntry is one recent subscription rectangle scanned linearly by
// Publish until the background rebuild folds it into the base index.
// Holding the *Subscription directly lets the lock-free publish path skip
// the id→subscription map lookup entirely.
type overlayEntry struct {
	rect geometry.Rect
	sub  *Subscription
}

// snapshot is the immutable matching state read by Publish without a
// lock. Mutations never modify a published snapshot in place: Subscribe
// may append to the overlay's backing array (readers are bounded by their
// own slice length), while Cancel and the rebuilder install freshly
// copied slices before storing a new snapshot.
type snapshot struct {
	// base indexes the rectangles present at the last rebuild. Its
	// SubscriberIDs are slots into the slots slice, not broker
	// subscription ids, so matching needs no map. nil before the first
	// rebuild. It may contain slots whose subscription has since been
	// cancelled; deliver's per-subscription closed check filters those.
	base  match.Matcher
	slots []*Subscription
	// overlay holds rectangles registered since the last rebuild.
	overlay []overlayEntry
	// multiRect is true once any live-or-dead subscription registered
	// more than one rectangle, forcing target deduplication.
	multiRect bool
}

// pubScratch is pooled per-publish working memory: matched slot ids and
// the collected target subscriptions.
type pubScratch struct {
	ids     []int
	targets []*Subscription
}

// Broker routes published events to matching subscribers. Create one with
// New. All methods are safe for concurrent use.
type Broker struct {
	opts Options

	mu        sync.RWMutex
	closed    bool
	nextID    int
	subs      map[int]*Subscription
	base      match.Matcher   // slot-indexed rectangles (may contain stale slots)
	slots     []*Subscription // slot -> subscription for base's ids
	baseLen   int             // rectangles in base (incl. stale)
	stale     int             // rectangles in base whose subscription is gone
	overlay   []overlayEntry  // recent rectangles, scanned linearly
	multiRect bool            // some subscription holds several rectangles
	dyn       *rtree.Dynamic  // IndexDynamic strategy: in-place tree

	// snap is the immutable matching state Publish reads without taking
	// b.mu (IndexRebuild strategy). nil once the broker is closed.
	snap atomic.Pointer[snapshot]

	// Background rebuilder (IndexRebuild strategy). rebuildCh has
	// capacity 1 so concurrent churn coalesces into at most one pending
	// rebuild behind the in-flight one. rebuilding/rebuildCut/
	// pendingStale reconcile churn that lands while a build is running
	// outside the lock.
	rebuildCh    chan struct{}
	rebuildStop  chan struct{}
	rebuildWG    sync.WaitGroup
	rebuilderOn  bool // rebuilder goroutine started (guarded by mu)
	rebuilding   bool // a collect→install window is open (guarded by mu)
	rebuildCut   int  // nextID captured at collection time (guarded by mu)
	pendingStale int  // rects of subs cancelled during the build (guarded by mu)

	scratch sync.Pool // *pubScratch

	tel    *brokerTel
	tracer *telemetry.Tracer
	rec    *telemetry.Recorder
	log    *wal.Log // nil unless durability is on

	seq       atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	evicted   atomic.Uint64
	rebuilds  atomic.Uint64
	highWater atomic.Int64
	lastDrop  atomic.Int64 // unix nanos of most recent drop
	// head is the highest sequence number assigned to any publication —
	// the WAL offset in durable mode, the Seq counter otherwise. Lag
	// reporting reads it without touching the WAL mutex.
	head atomic.Uint64
	// lastRebuildNS is the recorder-clock time of the last index
	// rebuild install (broker creation before the first), feeding the
	// rebuilder staleness health check.
	lastRebuildNS atomic.Int64
	// slowSubs counts subscriptions currently flagged slow;
	// slowTransitions counts healthy→slow flips since creation.
	slowSubs        atomic.Int64
	slowTransitions atomic.Uint64
	consumers       sync.WaitGroup
}

// New creates an empty broker.
func New(opts Options) *Broker {
	b := &Broker{
		opts:        opts.withDefaults(),
		subs:        make(map[int]*Subscription),
		tracer:      opts.Tracer,
		rec:         opts.Recorder,
		log:         opts.Log,
		rebuildCh:   make(chan struct{}, 1),
		rebuildStop: make(chan struct{}),
	}
	if b.rec == nil {
		b.rec = telemetry.Default()
	}
	if b.log != nil {
		// Offsets already assigned by a previous process are the head a
		// resuming subscriber lags behind.
		b.head.Store(b.log.NextOffset() - 1)
	}
	b.lastRebuildNS.Store(b.rec.Now())
	b.scratch.New = func() any { return &pubScratch{} }
	b.snap.Store(&snapshot{})
	b.tel = newBrokerTel(b, opts.Metrics)
	return b
}

// publishSnapshotLocked stores a fresh immutable snapshot of the current
// matching state. Caller holds b.mu.
func (b *Broker) publishSnapshotLocked() {
	b.snap.Store(&snapshot{
		base:      b.base,
		slots:     b.slots,
		overlay:   b.overlay,
		multiRect: b.multiRect,
	})
}

// Subscription is one subscriber registration. Receive events from
// Events(); call Cancel when done.
type Subscription struct {
	id           int
	rects        []geometry.Rect
	ch           chan Event
	b            *Broker
	policy       OverflowPolicy
	blockTimeout time.Duration
	once         sync.Once
	sendMu       sync.Mutex // serialises deliveries with channel close
	closed       bool       // guarded by sendMu; true once ch is closed
	dropCt       atomic.Uint64
	highWater    atomic.Int64
	lastDrop     atomic.Int64 // unix nanos
	evicting     atomic.Bool
	// deliveredSeq is the highest Seq successfully enqueued on ch (the
	// broker head at creation before the first delivery); the gap to
	// the broker head is the subscription's lag in events.
	deliveredSeq atomic.Uint64
	// deliveredAtNS is the recorder-clock time of the last successful
	// enqueue (creation time before the first); its age is the
	// subscription's lag age while it is behind.
	deliveredAtNS atomic.Int64
	// slow is set while the subscription sits past the broker's
	// SlowLagThreshold, flipped by drops and cleared by deliveries.
	slow atomic.Bool
}

// ID returns the broker-assigned subscription identifier.
func (s *Subscription) ID() int { return s.id }

// Events returns the channel on which matching events are delivered. The
// channel is closed by Cancel or by the broker's Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Rects returns the subscription's predicate rectangles.
func (s *Subscription) Rects() []geometry.Rect {
	out := make([]geometry.Rect, len(s.rects))
	for i, r := range s.rects {
		out[i] = r.Clone()
	}
	return out
}

// Dropped reports how many events were dropped because this
// subscription's buffer was full.
func (s *Subscription) Dropped() uint64 { return s.dropCt.Load() }

// Policy returns the subscription's overflow policy.
func (s *Subscription) Policy() OverflowPolicy { return s.policy }

// Stats returns a snapshot of the subscription's delivery counters.
func (s *Subscription) Stats() SubStats {
	st := SubStats{
		Buffered:  len(s.ch),
		Capacity:  cap(s.ch),
		HighWater: int(s.highWater.Load()),
		Dropped:   s.dropCt.Load(),
		Evicted:   s.evicting.Load(),
	}
	if ns := s.lastDrop.Load(); ns != 0 {
		st.LastDrop = time.Unix(0, ns)
	}
	return st
}

// noteDepth records the buffer depth after a successful send, updating
// the subscription and broker high-water marks.
func (s *Subscription) noteDepth() {
	depth := int64(len(s.ch))
	for {
		cur := s.highWater.Load()
		if depth <= cur || s.highWater.CompareAndSwap(cur, depth) {
			break
		}
	}
	for {
		cur := s.b.highWater.Load()
		if depth <= cur || s.b.highWater.CompareAndSwap(cur, depth) {
			break
		}
	}
}

// noteDelivered records a successful enqueue: it advances the
// subscription's delivered offset (monotonically — concurrent
// publishers may land out of order), stamps the delivery time, and
// clears a standing slow flag now that the subscription is keeping up.
// nowNS is the recorder-clock time the caller already read for its
// publish record, so the success path adds no clock read.
func (s *Subscription) noteDelivered(seq uint64, nowNS int64) {
	for {
		cur := s.deliveredSeq.Load()
		if seq <= cur || s.deliveredSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	s.deliveredAtNS.Store(nowNS)
	if s.slow.Load() && s.slow.CompareAndSwap(true, false) {
		s.b.slowSubs.Add(-1)
		s.b.rec.Record(telemetry.KindSlowSub, 0, seq,
			int64(s.id), 0, 0, int64(s.dropCt.Load()))
	}
}

// noteDrop records one overflow loss on this subscription and, when
// slow-subscriber detection is on, flags the subscription once its lag
// behind the broker head crosses the threshold.
func (s *Subscription) noteDrop() {
	now := time.Now().UnixNano()
	s.dropCt.Add(1)
	s.lastDrop.Store(now)
	s.b.dropped.Add(1)
	s.b.lastDrop.Store(now)
	s.b.tel.drop(s.policy)
	if thr := s.b.opts.SlowLagThreshold; thr > 0 {
		head := s.b.head.Load()
		seen := s.deliveredSeq.Load()
		if head > seen && head-seen >= thr && s.slow.CompareAndSwap(false, true) {
			s.b.slowSubs.Add(1)
			s.b.slowTransitions.Add(1)
			s.b.tel.slowTransition()
			s.b.rec.Record(telemetry.KindSlowSub, 0, head,
				int64(s.id), int64(head-seen), 1, int64(s.dropCt.Load()))
		}
	}
}

// closeCh closes the event channel, serialised against in-flight
// deliveries so a concurrent Publish can never send on a closed
// channel. Callers guarantee it runs at most once (via s.once or the
// broker's closed flag).
func (s *Subscription) closeCh() {
	s.sendMu.Lock()
	s.closed = true
	close(s.ch)
	s.sendMu.Unlock()
}

// Cancel removes the subscription and closes its channel. It is
// idempotent and safe to call concurrently with Publish.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.b.mu.Lock()
		defer s.b.mu.Unlock()
		if _, live := s.b.subs[s.id]; !live {
			return // broker already closed (channel closed there)
		}
		delete(s.b.subs, s.id)
		if s.b.opts.Index == IndexDynamic {
			for _, r := range s.rects {
				s.b.dyn.Delete(s.id, r)
			}
			s.closeCh()
			return
		}
		// Rectangles indexed in base become stale; overlay entries are
		// removed eagerly. The overlay is filtered into a fresh slice —
		// never truncated in place — because published snapshots still
		// reference the old backing array.
		kept := make([]overlayEntry, 0, len(s.b.overlay))
		removed := 0
		for _, e := range s.b.overlay {
			if e.sub == s {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		s.b.overlay = kept
		s.b.stale += len(s.rects) - removed
		if s.b.rebuilding && s.id < s.b.rebuildCut {
			// This subscription's rectangles were collected into the
			// in-flight rebuild; they will be stale in the new base.
			s.b.pendingStale += len(s.rects)
		}
		s.b.publishSnapshotLocked()
		s.b.maybeTriggerRebuildLocked()
		s.closeCh()
	})
}

// SubscribeOptions tune one subscription. The zero value inherits the
// broker defaults.
type SubscribeOptions struct {
	// Buffer is the event channel capacity. Zero selects the broker's
	// DefaultBuffer; negative is invalid.
	Buffer int
	// Overflow selects what Publish does when the buffer is full. The
	// zero value inherits the broker's default policy.
	Overflow OverflowPolicy
	// BlockTimeout bounds the Block policy's wait. Zero selects the
	// broker's BlockTimeout.
	BlockTimeout time.Duration
}

// Subscribe registers a subscriber for the union of the given rectangles,
// using the default channel buffer. At least one non-empty rectangle is
// required.
func (b *Broker) Subscribe(rects ...geometry.Rect) (*Subscription, error) {
	return b.SubscribeWith(SubscribeOptions{}, rects...)
}

// SubscribeBuffered is Subscribe with an explicit channel capacity.
func (b *Broker) SubscribeBuffered(buffer int, rects ...geometry.Rect) (*Subscription, error) {
	if buffer < 1 {
		return nil, fmt.Errorf("broker: buffer must be >= 1, got %d", buffer)
	}
	return b.SubscribeWith(SubscribeOptions{Buffer: buffer}, rects...)
}

// SubscribeWith is Subscribe with per-subscription buffer and overflow
// policy control.
func (b *Broker) SubscribeWith(opts SubscribeOptions, rects ...geometry.Rect) (*Subscription, error) {
	if len(rects) == 0 {
		return nil, fmt.Errorf("broker: subscription needs at least one rectangle")
	}
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("broker: buffer must be >= 1, got %d", opts.Buffer)
	}
	switch opts.Overflow {
	case DropNewest, DropOldest, Block, CancelSlow:
	default:
		return nil, fmt.Errorf("broker: unknown overflow policy %d", int(opts.Overflow))
	}
	owned := make([]geometry.Rect, len(rects))
	for i, r := range rects {
		if r.Empty() {
			return nil, fmt.Errorf("broker: rectangle %d is empty", i)
		}
		owned[i] = r.Clone()
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("broker: closed")
	}
	buffer := opts.Buffer
	if buffer == 0 {
		buffer = b.opts.DefaultBuffer
	}
	policy := opts.Overflow
	if policy == DropNewest {
		policy = b.opts.Overflow
	}
	blockTimeout := opts.BlockTimeout
	if blockTimeout <= 0 {
		blockTimeout = b.opts.BlockTimeout
	}
	s := &Subscription{
		id:           b.nextID,
		rects:        owned,
		ch:           make(chan Event, buffer),
		b:            b,
		policy:       policy,
		blockTimeout: blockTimeout,
	}
	// A new subscription starts with zero lag: it is only behind events
	// published after this point.
	s.deliveredSeq.Store(b.head.Load())
	s.deliveredAtNS.Store(b.rec.Now())
	b.nextID++
	b.subs[s.id] = s
	// Both strategies collect one target per matching rectangle, so both
	// need Publish's dedup once any subscription spans several rectangles.
	if len(owned) > 1 {
		b.multiRect = true
	}
	if b.opts.Index == IndexDynamic {
		if b.dyn == nil {
			d, err := rtree.NewDynamic(b.opts.Matcher.BranchFactor)
			if err != nil {
				delete(b.subs, s.id)
				return nil, fmt.Errorf("broker: %w", err)
			}
			b.dyn = d
		}
		for i, r := range owned {
			if err := b.dyn.Insert(rtree.Entry{Rect: r, ID: s.id}); err != nil {
				// Roll back the partial insertion.
				for _, rr := range owned[:i] {
					b.dyn.Delete(s.id, rr)
				}
				delete(b.subs, s.id)
				return nil, fmt.Errorf("broker: %w", err)
			}
		}
		return s, nil
	}
	// Appending to the overlay's backing array is safe with live
	// snapshots: readers are bounded by their snapshot's slice length.
	for _, r := range owned {
		b.overlay = append(b.overlay, overlayEntry{rect: r, sub: s})
	}
	b.publishSnapshotLocked()
	b.maybeTriggerRebuildLocked()
	return s, nil
}

// maybeTriggerRebuildLocked kicks the background rebuilder when the
// overlay (or the stale fraction of the base) grows past the thresholds.
// The rebuild itself runs outside the lock; concurrent triggers coalesce
// into at most one pending run. Caller holds b.mu.
func (b *Broker) maybeTriggerRebuildLocked() {
	overlayBig := len(b.overlay) > b.opts.MinOverlay && len(b.overlay)*4 > b.baseLen
	staleBig := b.stale*2 > b.baseLen && b.stale > 0
	if !overlayBig && !staleBig {
		return
	}
	if !b.rebuilderOn {
		b.rebuilderOn = true
		b.rebuildWG.Add(1)
		go b.rebuildLoop()
	}
	select {
	case b.rebuildCh <- struct{}{}:
	default: // a rebuild is already pending; coalesce
	}
}

// rebuildLoop is the single background rebuilder goroutine, started
// lazily on the first trigger and stopped by Close.
func (b *Broker) rebuildLoop() {
	defer b.rebuildWG.Done()
	for {
		select {
		case <-b.rebuildStop:
			return
		case <-b.rebuildCh:
			b.rebuildOnce()
		}
	}
}

// rebuildOnce folds the overlay into a freshly packed base index. The
// expensive match.New build runs outside b.mu; churn that lands during
// the build is reconciled at install time: subscriptions created after
// the collection cut stay in the overlay, and ones cancelled since the
// collection leave their rectangles stale in the new base.
func (b *Broker) rebuildOnce() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	// Re-check the thresholds under the lock: a coalesced trigger may
	// have been satisfied by the previous pass already.
	overlayBig := len(b.overlay) > b.opts.MinOverlay && len(b.overlay)*4 > b.baseLen
	staleBig := b.stale*2 > b.baseLen && b.stale > 0
	if !overlayBig && !staleBig {
		b.mu.Unlock()
		return
	}
	cut := b.nextID
	slots := make([]*Subscription, 0, len(b.subs))
	entries := make([]match.Subscription, 0, b.baseLen-b.stale+len(b.overlay))
	for _, s := range b.subs {
		slot := len(slots)
		slots = append(slots, s)
		for _, r := range s.rects {
			entries = append(entries, match.Subscription{Rect: r, SubscriberID: slot})
		}
	}
	b.rebuilding = true
	b.rebuildCut = cut
	b.pendingStale = 0
	b.mu.Unlock()

	r0 := b.rec.Now()
	var t0 time.Time
	if b.tel != nil {
		t0 = time.Now()
	}
	idx, err := match.New(entries, b.opts.Matcher)
	if err != nil {
		// Mixed dimensionalities across subscriptions make a tree index
		// impossible; fall back to linear matching.
		idx = match.BruteForce(entries)
	}

	b.mu.Lock()
	b.rebuilding = false
	if b.closed {
		b.mu.Unlock()
		return
	}
	kept := make([]overlayEntry, 0, len(b.overlay))
	for _, e := range b.overlay {
		if e.sub.id >= cut {
			kept = append(kept, e)
		}
	}
	b.overlay = kept
	b.base = idx
	b.slots = slots
	b.baseLen = len(entries)
	b.stale = b.pendingStale
	b.pendingStale = 0
	b.rebuilds.Add(1)
	b.lastRebuildNS.Store(b.rec.Now())
	b.publishSnapshotLocked()
	overlayLeft := len(b.overlay)
	rebuilds := b.rebuilds.Load()
	// Churn during the build may already warrant another pass.
	again := (len(b.overlay) > b.opts.MinOverlay && len(b.overlay)*4 > b.baseLen) ||
		(b.stale*2 > b.baseLen && b.stale > 0)
	b.mu.Unlock()

	b.rec.Record(telemetry.KindRebuild, 0, 0,
		int64(len(entries)), int64(overlayLeft), b.rec.Now()-r0, int64(rebuilds))
	if b.tel != nil {
		b.tel.rebuilds.Inc()
		b.tel.rebuildLatency.ObserveDuration(time.Since(t0))
	}
	if again {
		select {
		case b.rebuildCh <- struct{}{}:
		default:
		}
	}
}

// putScratch returns per-publish scratch to the pool with its slices
// reset to zero length (capacity retained). Target pointers are kept in
// the pooled backing array until the next publish overwrites them —
// acceptable retention for steady-state zero-alloc publishing.
func (b *Broker) putScratch(sc *pubScratch, ids []int, targets []*Subscription) {
	sc.ids = ids[:0]
	sc.targets = targets[:0]
	b.scratch.Put(sc)
}

// eventPrep defers the per-publish allocations (point clone, payload
// clone) until the first delivery actually needs them. A publish whose
// matches all hit full DropNewest buffers — or match nothing — allocates
// nothing at all.
type eventPrep struct {
	src     geometry.Point
	payload []byte
	done    bool
}

// materialize fills ev's Point and Payload from the prep, once.
//
//pubsub:coldpath -- lazy materialization: clones happen only when a delivery is actually attempted, off the zero-alloc match path
func (pr *eventPrep) materialize(ev *Event) {
	if pr.done {
		return
	}
	ev.Point = pr.src.Clone()
	if pr.payload != nil {
		ev.Payload = append([]byte(nil), pr.payload...)
	}
	pr.done = true
}

// Publish routes an event to every matching live subscriber. It returns
// the number of subscriber channels the event was delivered to (dropped
// deliveries are excluded). The payload is cloned once per publish, so
// the caller may reuse its buffer immediately; subscribers of one
// publication share the clone and must treat it as read-only.
//
// Under IndexRebuild, Publish takes no lock: it matches against the
// immutable snapshot installed by the most recent mutation and uses
// pooled scratch, so the steady-state publish path performs no heap
// allocation. A Publish racing Close may load the final snapshot and
// then find every subscription already closed; that case is reported as
// errClosed (the sequence counter may still have advanced — Seq values
// are unique and ordered, not dense).
//
//pubsub:hotpath
func (b *Broker) Publish(p geometry.Point, payload []byte) (int, error) {
	return b.PublishTraced(p, payload, 0)
}

// PublishTraced is Publish with an explicit trace id correlating the
// publication across processes. A zero id (the Publish path) makes the
// broker assign a fresh one at ingest; either way the id travels on the
// delivered Event and on every flight-recorder record.
//
// The flight recorder always gets one compact publish record (fanout,
// deliveries, latency). Per-stage detail records — match effort,
// dispatch decision, per-subscriber deliver/drop — are written only for
// traced publications: those arriving with an explicit (wire-assigned)
// id, or sampled by the tracer. In-process untraced publishes therefore
// stay within the zero-alloc, low-overhead hot-path budget.
//
//pubsub:hotpath
func (b *Broker) PublishTraced(p geometry.Point, payload []byte, traceID uint64) (int, error) {
	// Telemetry is designed to vanish when disabled: tel is nil, span is
	// nil, and no time.Now fires — the uninstrumented path is identical
	// to the pre-telemetry broker. The always-on flight recorder adds
	// only monotonic clock reads and atomic stores.
	tel := b.tel
	rec := b.rec
	detail := traceID != 0
	if traceID == 0 {
		traceID = telemetry.NewTraceID()
	}
	span := b.tracer.StartWith("publish", traceID)
	detail = detail || span != nil
	instrumented := tel != nil || span != nil || detail
	r0 := rec.Now()
	var t0 time.Time
	if instrumented {
		t0 = time.Now()
	}

	// Durable path: append — and, policy permitting, fsync — before any
	// matching. The append must happen before the snapshot load below: a
	// subscriber registered before some reader observed NextOffset() == N
	// had its snapshot published before that observation, so every
	// publication with offset >= N loads a snapshot containing it and is
	// delivered live, while offsets < N fall inside the reader's replay
	// range — no gap between replay and live fanout. A failed append
	// refuses the publication outright: never acked, never delivered.
	var walOff uint64
	if b.log != nil {
		off, err := b.log.Append(traceID, p, payload)
		if err != nil {
			return 0, err
		}
		walOff = off
	}

	sc := b.scratch.Get().(*pubScratch)
	ids := sc.ids[:0]
	targets := sc.targets[:0]
	var qs match.QueryStats
	multiRect := false
	group := 0 // candidate subscriptions the decision chose among

	if b.opts.Index == IndexDynamic {
		// The dynamic tree is mutated in place by Subscribe/Cancel, so
		// this strategy keeps the read lock; only IndexRebuild gets the
		// lock-free snapshot path.
		b.mu.RLock()
		if b.closed {
			b.mu.RUnlock()
			b.putScratch(sc, ids, targets)
			return 0, errClosed
		}
		multiRect = b.multiRect
		group = len(b.subs)
		if b.dyn != nil {
			if instrumented {
				var ds rtree.QueryStats
				ids, ds = b.dyn.PointQueryAppendStats(p, ids)
				qs.Add(match.QueryStats{NodesVisited: ds.NodesVisited, LeavesVisited: ds.LeavesVisited, EntriesTested: ds.EntriesTested, Matched: ds.ResultsMatched})
			} else {
				ids = b.dyn.PointQueryAppend(p, ids)
			}
		}
		for _, id := range ids {
			if s, live := b.subs[id]; live {
				targets = append(targets, s)
			}
		}
		b.mu.RUnlock()
	} else {
		snap := b.snap.Load()
		if snap == nil {
			b.putScratch(sc, ids, targets)
			return 0, errClosed
		}
		multiRect = snap.multiRect
		group = len(snap.slots) + len(snap.overlay)
		if snap.base != nil {
			if sm, ok := snap.base.(match.StatsMatcher); ok && instrumented {
				var bs match.QueryStats
				ids, bs = sm.MatchAppendStats(p, ids)
				qs.Add(bs)
			} else {
				ids = snap.base.MatchAppend(p, ids)
			}
		}
		for _, slot := range ids {
			targets = append(targets, snap.slots[slot])
		}
		for i := range snap.overlay {
			e := &snap.overlay[i]
			if e.rect.Contains(p) {
				targets = append(targets, e.sub)
				if instrumented {
					qs.Matched++
				}
			}
		}
		if instrumented {
			qs.EntriesTested += len(snap.overlay)
		}
	}

	// Deduplicate only when some subscription holds several rectangles;
	// with single-rect subscriptions every target is distinct already.
	if multiRect && len(targets) > 1 {
		slices.SortFunc(targets, func(x, y *Subscription) int { return x.id - y.id })
		w := 1
		for i := 1; i < len(targets); i++ {
			if targets[i] != targets[w-1] {
				targets[w] = targets[i]
				w++
			}
		}
		targets = targets[:w]
	}

	// The match-phase clock split is surfaced only on detail records, so
	// the untraced hot path pays two clock reads total (r0, rEnd).
	var rMatch int64
	if detail {
		rMatch = rec.Now()
	}
	var tMatch time.Time
	if instrumented {
		tMatch = time.Now()
		if tel != nil {
			tel.matchLatency.Observe(tMatch.Sub(t0).Seconds())
			tel.observeQuery(qs.NodesVisited, qs.LeavesVisited, qs.EntriesTested)
		}
		span.Stage("match", tMatch.Sub(t0))
	}

	seq := walOff
	if b.log == nil {
		seq = b.seq.Add(1)
	}
	// Advance the lag head monotonically; concurrent publishers may
	// reach this line out of seq order.
	for {
		cur := b.head.Load()
		if seq <= cur || b.head.CompareAndSwap(cur, seq) {
			break
		}
	}
	ev := Event{Seq: seq, TraceID: traceID}
	if detail {
		rec.Record(telemetry.KindMatch, traceID, ev.Seq,
			int64(qs.NodesVisited), int64(qs.EntriesTested), int64(qs.LeavesVisited), int64(len(targets)))
		// The in-broker delivery decision: every matching subscriber gets
		// its own channel send (unicast fanout; method 0 = none matched).
		method := int64(0)
		if len(targets) > 0 {
			method = 1
		}
		ratioPPM := int64(0)
		if group > 0 {
			ratioPPM = int64(len(targets)) * 1_000_000 / int64(group)
		}
		rec.Record(telemetry.KindDecision, traceID, ev.Seq,
			method, int64(len(targets)), int64(group), ratioPPM)
	}
	prep := eventPrep{src: p, payload: payload}
	delivered := 0
	for _, s := range targets {
		if b.deliver(s, &ev, &prep, detail, r0) {
			delivered++
		}
	}
	b.delivered.Add(uint64(delivered))

	rEnd := rec.Now()
	matchNS := int64(0) // 0 on untraced publishes: the split was not read
	if detail {
		matchNS = rMatch - r0
	}
	rec.RecordAt(rEnd, telemetry.KindPublish, traceID, ev.Seq,
		int64(len(targets)), int64(delivered), matchNS, rEnd-r0)
	if instrumented {
		now := time.Now()
		if tel != nil {
			tel.published.Inc()
			tel.delivered.Add(uint64(delivered))
			tel.fanout.Observe(float64(len(targets)))
			tel.publishLatency.Observe(now.Sub(t0).Seconds())
		}
		span.Stage("deliver", now.Sub(tMatch))
		span.Uint64("seq", ev.Seq)
		span.Int("fanout", len(targets))
		span.Int("delivered", delivered)
		span.Int("nodes_visited", qs.NodesVisited)
		span.Int("entries_tested", qs.EntriesTested)
		span.End()
	}
	b.putScratch(sc, ids, targets)
	if delivered == 0 && b.opts.Index != IndexDynamic && b.snap.Load() == nil {
		// Close swapped the snapshot out from under us after we loaded
		// it: every delivery hit a closed subscription. Report the broker
		// closed rather than a silent zero-delivery success.
		return 0, errClosed
	}
	return delivered, nil
}

// deliver sends ev to one subscription, applying its overflow policy
// when the buffer is full. It runs outside b.mu; s.sendMu excludes a
// concurrent channel close (closeCh), and the closed check skips
// subscriptions cancelled after the publisher snapshotted its targets.
// The event's point/payload clones are materialized lazily, only when a
// send is actually attempted. detail enables per-subscriber flight
// records (traced publications only, so a saturated untraced publish
// writes nothing here).
//
//pubsub:commit -- hands the event to subscriber queues; after this the publication is observable
func (b *Broker) deliver(s *Subscription, ev *Event, pr *eventPrep, detail bool, nowNS int64) bool {
	if s.evicting.Load() {
		return false // CancelSlow eviction pending
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed {
		return false
	}
	if s.policy == DropNewest && len(s.ch) == cap(s.ch) {
		// Fast drop before cloning anything: a saturated DropNewest
		// subscriber costs the publisher no allocation.
		s.noteDrop()
		if detail {
			b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
		}
		return false
	}
	pr.materialize(ev)
	select {
	case s.ch <- *ev:
		s.noteDelivered(ev.Seq, nowNS)
		s.noteDepth()
		if detail {
			b.rec.Record(telemetry.KindDeliver, ev.TraceID, ev.Seq, int64(s.id), int64(len(s.ch)), 0, 0)
		}
		return true
	default:
	}
	//pubsub:allow locksafe -- overflow handling may wait boundedly (blockTimeout) under the per-subscription sendMu only; b.mu is not held
	return b.deliverOverflow(s, ev, detail, nowNS)
}

// deliverOverflow applies the subscription's overflow policy after a
// failed non-blocking send: evict-and-retry for DropOldest, a bounded
// wait for Block, eviction for CancelSlow, and a counted drop for
// DropNewest. The caller holds s.sendMu.
//
//pubsub:coldpath -- runs only when a subscriber buffer is full; the steady-state fast path is the non-blocking send in deliver
func (b *Broker) deliverOverflow(s *Subscription, ev *Event, detail bool, nowNS int64) bool {
	switch s.policy {
	case DropOldest:
		// Evict buffered events until the new one fits. sendMu keeps
		// other publishers out, but the consumer drains concurrently;
		// every iteration either sends or removes one event, so the
		// loop terminates.
		for {
			select {
			case <-s.ch:
				s.noteDrop()
				if detail {
					b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
				}
			default:
			}
			select {
			case s.ch <- *ev:
				s.noteDelivered(ev.Seq, nowNS)
				s.noteDepth()
				if detail {
					b.rec.Record(telemetry.KindDeliver, ev.TraceID, ev.Seq, int64(s.id), int64(len(s.ch)), 0, 0)
				}
				return true
			default:
			}
		}
	case Block:
		t := time.NewTimer(s.blockTimeout)
		defer t.Stop()
		select {
		case s.ch <- *ev:
			s.noteDelivered(ev.Seq, nowNS)
			s.noteDepth()
			if detail {
				b.rec.Record(telemetry.KindDeliver, ev.TraceID, ev.Seq, int64(s.id), int64(len(s.ch)), 0, 0)
			}
			return true
		case <-t.C:
			s.noteDrop()
			if detail {
				b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
			}
			return false
		}
	case CancelSlow:
		s.noteDrop()
		if detail {
			b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
		}
		if s.evicting.CompareAndSwap(false, true) {
			b.evicted.Add(1)
			if b.tel != nil {
				b.tel.evicted.Inc()
			}
			// Evictions are rare and diagnostic gold: record them even
			// for untraced publications.
			b.rec.Record(telemetry.KindEvict, ev.TraceID, ev.Seq, int64(s.id), 0, 0, 0)
			// Cancel closes the channel via closeCh, which needs the
			// sendMu we hold; evict from a fresh goroutine.
			go s.Cancel()
		}
		return false
	default: // DropNewest
		s.noteDrop()
		if detail {
			b.rec.Record(telemetry.KindDrop, ev.TraceID, ev.Seq, int64(s.id), int64(s.policy), 0, 0)
		}
		return false
	}
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	rects := len(b.overlay) + b.baseLen - b.stale
	if b.opts.Index == IndexDynamic {
		rects = 0
		if b.dyn != nil {
			rects = b.dyn.Len()
		}
	}
	published := b.seq.Load()
	if b.log != nil {
		// Durable mode: offsets are the publication count, and they
		// survive restarts where the in-memory counter does not.
		published = b.log.NextOffset() - 1
	}
	st := Stats{
		Subscriptions:  len(b.subs),
		Rectangles:     rects,
		Published:      published,
		Delivered:      b.delivered.Load(),
		Dropped:        b.dropped.Load(),
		Evicted:        b.evicted.Load(),
		IndexRebuilds:  b.rebuilds.Load(),
		QueueHighWater: int(b.highWater.Load()),
	}
	if ns := b.lastDrop.Load(); ns != 0 {
		st.LastDrop = time.Unix(0, ns)
	}
	return st
}

// Log returns the durable publication log the broker appends to, or
// nil when durability is off.
func (b *Broker) Log() *wal.Log { return b.log }

// Close shuts the broker down: all subscription channels are closed and
// further Publish/Subscribe calls fail. It waits for the background
// rebuilder (if started) to exit. It is idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.rebuildStop)
	for id, s := range b.subs {
		s.closeCh()
		delete(b.subs, id)
	}
	b.base = nil
	b.slots = nil
	b.baseLen = 0
	b.stale = 0
	b.overlay = nil
	b.dyn = nil
	b.snap.Store(nil)
	b.mu.Unlock()
	// Outside the lock: rebuildOnce re-acquires b.mu before touching
	// state, and bails out on the closed flag.
	b.rebuildWG.Wait()
}

// SubscribeFunc registers a subscription whose events are delivered by
// calling fn from a broker-managed goroutine, in order. The consumer
// goroutine exits when the subscription is cancelled or the broker
// closes. fn must not block indefinitely: while it runs, events queue in
// the subscription buffer and overflow is dropped like any slow
// subscriber's.
func (b *Broker) SubscribeFunc(fn func(Event), rects ...geometry.Rect) (*Subscription, error) {
	if fn == nil {
		return nil, fmt.Errorf("broker: nil handler")
	}
	s, err := b.Subscribe(rects...)
	if err != nil {
		return nil, err
	}
	b.consumers.Add(1)
	go func() {
		defer b.consumers.Done()
		for ev := range s.ch {
			fn(ev)
		}
	}()
	return s, nil
}

// WaitConsumers blocks until every SubscribeFunc consumer goroutine has
// exited (i.e. after Close or after cancelling their subscriptions).
// Useful in tests and orderly shutdown paths.
func (b *Broker) WaitConsumers() { b.consumers.Wait() }
