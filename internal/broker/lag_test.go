package broker

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geometry"
	"repro/internal/health"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

func TestLagReportTracksDeliveredOffset(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	rep := b.LagReport()
	if len(rep.Subs) != 1 || rep.Subs[0].LagEvents != 0 {
		t.Fatalf("fresh subscription should have zero lag: %+v", rep)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep = b.LagReport()
	if rep.Head != 3 {
		t.Fatalf("head = %d, want 3", rep.Head)
	}
	if rep.Subs[0].LagEvents != 0 || rep.Subs[0].DeliveredSeq != 3 {
		t.Fatalf("delivered sub should track head: %+v", rep.Subs[0])
	}
	// Non-matching publications still advance the head; the idle
	// subscription's lag is the resume depth, not a missed-match count.
	if _, err := b.Publish(geometry.Point{50}, nil); err != nil {
		t.Fatal(err)
	}
	rep = b.LagReport()
	if rep.Head != 4 || rep.Subs[0].LagEvents != 1 {
		t.Fatalf("head %d lag %d, want 4/1", rep.Head, rep.Subs[0].LagEvents)
	}
	if rep.Subs[0].LagAgeSeconds <= 0 {
		t.Fatalf("lagging sub should have positive lag age: %+v", rep.Subs[0])
	}
	// Drain and deliver again: lag snaps back to zero.
	for len(s.Events()) > 0 {
		<-s.Events()
	}
	if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
		t.Fatal(err)
	}
	rep = b.LagReport()
	if rep.Subs[0].LagEvents != 0 || rep.Subs[0].LagAgeSeconds != 0 {
		t.Fatalf("delivery should clear lag: %+v", rep.Subs[0])
	}
}

func TestSlowSubscriberDetection(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1024)
	b := New(Options{SlowLagThreshold: 4, Metrics: reg, Recorder: rec})
	defer b.Close()
	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 1}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer (1 delivery), then drop until lag crosses 4.
	for i := 0; i < 8; i++ {
		if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !s.slow.Load() {
		t.Fatal("subscription should be flagged slow")
	}
	rep := b.LagReport()
	if rep.SlowSubs != 1 || rep.SlowTransitions != 1 || !rep.Subs[0].Slow {
		t.Fatalf("slow state not reported: %+v", rep)
	}
	if got := reg.CounterValue("pubsub_broker_slow_transitions_total"); got != 1 {
		t.Fatalf("slow transitions counter = %g, want 1", got)
	}
	recs := rec.SnapshotFilter(0, telemetry.KindSlowSub, 0)
	if len(recs) != 1 || recs[0].Args[2] != 1 {
		t.Fatalf("want one slow_sub record with slow=1, got %+v", recs)
	}
	// Draining and receiving one delivery clears the flag.
	for len(s.Events()) > 0 {
		<-s.Events()
	}
	if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
		t.Fatal(err)
	}
	if s.slow.Load() {
		t.Fatal("successful delivery should clear the slow flag")
	}
	rep = b.LagReport()
	if rep.SlowSubs != 0 || rep.SlowTransitions != 1 {
		t.Fatalf("slow recovery not reported: %+v", rep)
	}
}

func TestLagMetricsGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := New(Options{Metrics: reg})
	defer b.Close()
	if _, err := b.SubscribeWith(SubscribeOptions{Buffer: 1}, geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer holds 1, so lag = 5 - 1 = 4.
	var maxLag, head float64
	for _, f := range reg.Gather() {
		if len(f.Samples) == 0 {
			continue
		}
		switch f.Name {
		case "pubsub_broker_max_lag_events":
			maxLag = f.Samples[0].Value
		case "pubsub_broker_head_seq":
			head = f.Samples[0].Value
		}
	}
	if head != 5 || maxLag != 4 {
		t.Fatalf("head %g maxLag %g, want 5/4", head, maxLag)
	}
	hist := reg.Histogram1("pubsub_broker_lag_events")
	if hist.Count != 1 || hist.Max != 4 || hist.Min != 4 {
		t.Fatalf("lag histogram = %+v, want one sub at lag 4", hist)
	}
}

func TestIndexReportShapeAndSelectivity(t *testing.T) {
	b := New(Options{MinOverlay: 8})
	defer b.Close()
	// 40 identical narrow rects on dim 0, unbounded on dim 1: dim 0 is
	// the selective axis, and every pair is a duplicate.
	for i := 0; i < 40; i++ {
		r := geometry.RectOf(geometry.NewInterval(0, 1), geometry.FullInterval())
		if _, err := b.Subscribe(r); err != nil {
			t.Fatal(err)
		}
	}
	waitRebuilds(t, b, 1)
	rep := b.IndexReport()
	if rep.Subscriptions != 40 || rep.SampledRects != 40 {
		t.Fatalf("population wrong: %+v", rep)
	}
	if rep.Shape.Entries == 0 || rep.Shape.Height == 0 {
		t.Fatalf("base shape missing after rebuild: %+v", rep.Shape)
	}
	if rep.Rebuilds == 0 || rep.SecondsSinceRebuild < 0 {
		t.Fatalf("rebuild bookkeeping wrong: %+v", rep)
	}
	if len(rep.Dims) != 2 {
		t.Fatalf("dims = %d, want 2", len(rep.Dims))
	}
	if rep.Dims[0].Bounded != 40 || rep.Dims[0].BoundedFraction != 1 {
		t.Fatalf("dim 0 should be fully bounded: %+v", rep.Dims[0])
	}
	if rep.Dims[1].Bounded != 0 {
		t.Fatalf("dim 1 should be unbounded: %+v", rep.Dims[1])
	}
	if want := 40 * 39 / 2; rep.DuplicatePairs != want {
		t.Fatalf("duplicate pairs = %d, want %d", rep.DuplicatePairs, want)
	}
}

func TestIndexReportCoveringPairs(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Subscribe(geometry.NewRect(0, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(geometry.NewRect(10, 20)); err != nil {
		t.Fatal(err)
	}
	rep := b.IndexReport()
	if rep.CoveringPairs != 1 || rep.DuplicatePairs != 0 {
		t.Fatalf("covering scan wrong: %+v", rep)
	}
}

func TestBrokerHealthChecks(t *testing.T) {
	hr := health.NewRegistry()
	b := New(Options{SlowLagThreshold: 2, StaleWindow: 30 * time.Millisecond, MinOverlay: 4})
	b.RegisterHealth(hr)

	rep := hr.Evaluate()
	if rep.State != health.Healthy {
		t.Fatalf("fresh broker should be healthy: %+v", rep.Results)
	}

	// A slow subscriber degrades the broker component.
	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 1}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep = hr.Evaluate()
	if rep.State != health.Degraded {
		t.Fatalf("slow subscriber should degrade: %+v", rep.Results)
	}
	found := false
	for _, res := range rep.Results {
		if res.Component == "broker" && strings.Contains(res.Reason, "slow") {
			found = true
		}
	}
	if !found {
		t.Fatalf("broker reason should mention slow subs: %+v", rep.Results)
	}
	for len(s.Events()) > 0 {
		<-s.Events()
	}
	if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
		t.Fatal(err)
	}
	if rep = hr.Evaluate(); rep.State != health.Healthy {
		t.Fatalf("recovered broker should be healthy: %+v", rep.Results)
	}

	// Closing flips both components unhealthy.
	b.Close()
	rep = hr.Evaluate()
	if rep.State != health.Unhealthy {
		t.Fatalf("closed broker should be unhealthy: %+v", rep.Results)
	}
}

func TestRebuilderStalenessDegradesAndRecovers(t *testing.T) {
	hr := health.NewRegistry()
	b := New(Options{StaleWindow: 20 * time.Millisecond, MinOverlay: 4, Shards: 1})
	defer b.Close()
	b.RegisterHealth(hr)

	// Swallow rebuild triggers so churn genuinely goes stale: with
	// rebuilderOn already true, maybeTriggerRebuildLocked only writes
	// to rebuildCh, which nobody reads after we steal the loop's work
	// by never starting it.
	sh := b.shards[0]
	sh.mu.Lock()
	sh.rebuilderOn = true
	sh.mu.Unlock()

	for i := 0; i < 16; i++ {
		if _, err := b.Subscribe(geometry.NewRect(float64(i), float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep := hr.Evaluate()
		if rep.State == health.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuilder staleness never degraded: %+v", rep.Results)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Running the rebuild folds the overlay and recovers health.
	b.rebuildShard(sh)
	rep := hr.Evaluate()
	if rep.State != health.Healthy {
		t.Fatalf("rebuild should recover staleness: %+v", rep.Results)
	}
	if b.Stats().IndexRebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", b.Stats().IndexRebuilds)
	}
}

func TestDurableHeadInitialisedFromLog(t *testing.T) {
	dir := t.TempDir()
	log1 := openLog(t, dir, wal.Options{})
	b1 := New(Options{Log: log1})
	if _, err := b1.Publish(geometry.Point{1}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Publish(geometry.Point{2}, []byte("b")); err != nil {
		t.Fatal(err)
	}
	b1.Close()
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	log2 := openLog(t, dir, wal.Options{})
	b2 := New(Options{Log: log2})
	defer b2.Close()
	if rep := b2.LagReport(); rep.Head != 2 || !rep.Durable {
		t.Fatalf("restarted head = %+v, want head 2 durable", rep)
	}
	// A fresh subscription on the restarted broker starts at the
	// recovered head, not at zero lag against offset 0.
	if _, err := b2.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	if rep := b2.LagReport(); rep.Subs[0].LagEvents != 0 {
		t.Fatalf("fresh sub on recovered log should have zero lag: %+v", rep.Subs)
	}
}
