package broker

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/telemetry"
)

// A traced publish must leave a correlated record chain in the flight
// recorder: match stats, the dispatch decision, one deliver per target,
// and the closing publish summary, all under the caller's trace id.
func TestPublishTracedWritesCorrelatedRecords(t *testing.T) {
	rec := telemetry.NewRecorder(1024)
	b := New(Options{Recorder: rec})
	defer b.Close()
	if _, err := b.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(geometry.NewRect(0, 5)); err != nil {
		t.Fatal(err)
	}

	trace := telemetry.NewTraceID()
	n, err := b.PublishTraced(geometry.Point{3}, []byte("x"), trace)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("delivered = %d, want 2", n)
	}

	byKind := map[telemetry.RecordKind][]telemetry.Record{}
	for _, r := range rec.SnapshotFilter(trace, telemetry.KindNone, 0) {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	match := byKind[telemetry.KindMatch]
	if len(match) != 1 || match[0].Args[3] != 2 {
		t.Fatalf("match records = %+v, want one with matched=2", match)
	}
	dec := byKind[telemetry.KindDecision]
	if len(dec) != 1 {
		t.Fatalf("decision records = %+v, want 1", dec)
	}
	if dec[0].Args[1] != 2 || dec[0].Args[2] != 2 || dec[0].Args[3] != 1_000_000 {
		t.Fatalf("decision interested/group/ratio = %v, want 2/2/1000000", dec[0].Args)
	}
	if got := len(byKind[telemetry.KindDeliver]); got != 2 {
		t.Fatalf("deliver records = %d, want 2", got)
	}
	pub := byKind[telemetry.KindPublish]
	if len(pub) != 1 || pub[0].Args[0] != 2 || pub[0].Args[1] != 2 {
		t.Fatalf("publish record = %+v, want fanout=2 delivered=2", pub)
	}
	if pub[0].Seq == 0 {
		t.Fatal("publish record carries no event seq")
	}
	// The publish summary closes the trace: nothing sorts after it.
	all := rec.SnapshotFilter(trace, telemetry.KindNone, 0)
	if all[len(all)-1].Kind != telemetry.KindPublish {
		t.Fatalf("last record = %v, want publish", all[len(all)-1].Kind)
	}
}

// An untraced in-process publish stays cheap: one compact publish
// summary under a broker-assigned id, no per-stage or per-subscriber
// records.
func TestUntracedPublishRecordsSummaryOnly(t *testing.T) {
	rec := telemetry.NewRecorder(1024)
	b := New(Options{Recorder: rec})
	defer b.Close()
	if _, err := b.Subscribe(geometry.NewRect(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(geometry.Point{3}, nil); err != nil {
		t.Fatal(err)
	}
	recs := rec.Snapshot()
	if len(recs) != 1 || recs[0].Kind != telemetry.KindPublish {
		t.Fatalf("untraced publish records = %+v, want a single publish summary", recs)
	}
	if recs[0].TraceID == 0 {
		t.Fatal("broker did not assign a trace id to the untraced publish")
	}
}

// Queue overflow under a traced publish records the drop with the
// victim subscription and its policy.
func TestTracedPublishRecordsDrop(t *testing.T) {
	rec := telemetry.NewRecorder(1024)
	b := New(Options{Recorder: rec, DefaultBuffer: 1})
	defer b.Close()
	s, err := b.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	trace := telemetry.NewTraceID()
	for i := 0; i < 2; i++ {
		if _, err := b.PublishTraced(geometry.Point{3}, nil, trace); err != nil {
			t.Fatal(err)
		}
	}
	drops := rec.SnapshotFilter(trace, telemetry.KindDrop, 0)
	if len(drops) != 1 {
		t.Fatalf("drop records = %+v, want 1", drops)
	}
	if int(drops[0].Args[0]) != s.ID() {
		t.Fatalf("drop victim = %d, want %d", drops[0].Args[0], s.ID())
	}
	if OverflowPolicy(drops[0].Args[1]) != DropNewest {
		t.Fatalf("drop policy = %d, want drop-newest", drops[0].Args[1])
	}
}
