package broker

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func TestIndexStrategyString(t *testing.T) {
	if IndexRebuild.String() != "rebuild" || IndexDynamic.String() != "dynamic" {
		t.Error("strategy names wrong")
	}
	if IndexStrategy(9).String() != "strategy(9)" {
		t.Error("unknown strategy name wrong")
	}
}

func TestDynamicIndexMatchesRebuildIndex(t *testing.T) {
	// The two strategies must deliver identically under churn.
	rng := rand.New(rand.NewSource(1))
	reb := New(Options{MinOverlay: 8})
	dyn := New(Options{Index: IndexDynamic})
	defer reb.Close()
	defer dyn.Close()

	type pair struct {
		a, b *Subscription
		rect geometry.Rect
	}
	var pairs []pair
	for step := 0; step < 300; step++ {
		if len(pairs) == 0 || rng.Float64() < 0.65 {
			lo1, lo2 := rng.Float64()*90, rng.Float64()*90
			r := geometry.NewRect(lo1, lo1+8, lo2, lo2+8)
			a, err := reb.Subscribe(r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dyn.Subscribe(r)
			if err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, pair{a: a, b: b, rect: r})
		} else {
			i := rng.Intn(len(pairs))
			pairs[i].a.Cancel()
			pairs[i].b.Cancel()
			pairs = append(pairs[:i], pairs[i+1:]...)
		}
		if step%10 == 0 {
			p := geometry.Point{rng.Float64() * 100, rng.Float64() * 100}
			nA, err := reb.Publish(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			nB, err := dyn.Publish(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if nA != nB {
				t.Fatalf("step %d: rebuild delivered %d, dynamic %d", step, nA, nB)
			}
			// Drain both sides.
			for _, pr := range pairs {
				if pr.rect.Contains(p) {
					<-pr.a.Events()
					<-pr.b.Events()
				}
			}
		}
	}
	if got, want := dyn.Stats().Rectangles, reb.Stats().Rectangles; got != want {
		t.Errorf("rectangle counts diverge: dynamic %d, rebuild %d", got, want)
	}
	if dyn.Stats().IndexRebuilds != 0 {
		t.Errorf("dynamic strategy performed %d rebuilds", dyn.Stats().IndexRebuilds)
	}
}

func TestDynamicIndexRejectsMixedDims(t *testing.T) {
	b := New(Options{Index: IndexDynamic})
	defer b.Close()
	if _, err := b.Subscribe(geometry.NewRect(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(geometry.NewRect(0, 1, 0, 1)); err == nil {
		t.Error("mixed dimensionality accepted by dynamic index")
	}
	// The failed subscription must not be half-registered.
	if got := b.Stats().Subscriptions; got != 1 {
		t.Errorf("subscriptions = %d after failed subscribe", got)
	}
	if n, _ := b.Publish(geometry.Point{0.5}, nil); n != 1 {
		t.Errorf("delivered %d", n)
	}
}

func TestDynamicIndexMultiRectOverlapDedup(t *testing.T) {
	// Regression: the dynamic strategy's point query yields one id per
	// matching rectangle, so a subscription whose rectangles overlap at
	// the published point must still be delivered to exactly once.
	b := New(Options{Index: IndexDynamic})
	defer b.Close()

	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 8},
		geometry.NewRect(40, 60), geometry.NewRect(45, 55), geometry.NewRect(50, 52))
	if err != nil {
		t.Fatal(err)
	}
	other, err := b.Subscribe(geometry.NewRect(0, 100))
	if err != nil {
		t.Fatal(err)
	}

	p := geometry.Point{51} // inside all three rectangles of s
	for i := 0; i < 3; i++ {
		n, err := b.Publish(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("publish %d delivered %d times, want 2 (one per subscription)", i, n)
		}
		ev := <-s.Events()
		select {
		case dup := <-s.Events():
			t.Fatalf("duplicate delivery: seq %d then %d", ev.Seq, dup.Seq)
		default:
		}
		<-other.Events()
	}
}

func TestDynamicIndexCloseAndReuseSafety(t *testing.T) {
	b := New(Options{Index: IndexDynamic})
	s, err := b.Subscribe(geometry.NewRect(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, open := <-s.Events(); open {
		t.Error("channel open after close")
	}
	if _, err := b.Publish(geometry.Point{0.5}, nil); err == nil {
		t.Error("publish after close succeeded")
	}
}
