//go:build race

package broker

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates, so allocation-count
// assertions are skipped under -race.
const raceEnabled = true
