package broker

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/geometry"
	"repro/internal/invariant"
)

// TestShardIndexStableAndBalanced checks the id→shard mapping: stable,
// in range, and not pathologically skewed for sequential ids.
func TestShardIndexStableAndBalanced(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for id := 0; id < 4096; id++ {
		sh := shardIndex(id, n)
		if sh < 0 || sh >= n {
			t.Fatalf("shardIndex(%d, %d) = %d out of range", id, n, sh)
		}
		if sh != shardIndex(id, n) {
			t.Fatalf("shardIndex(%d, %d) not stable", id, n)
		}
		counts[sh]++
	}
	for i, c := range counts {
		// Uniform would be 512 per shard; a splitmix64-mixed assignment
		// stays well within 2x of uniform.
		if c < 256 || c > 1024 {
			t.Fatalf("shard %d holds %d of 4096 ids; distribution badly skewed: %v", i, c, counts)
		}
	}
	if shardIndex(123, 1) != 0 || shardIndex(123, 0) != 0 {
		t.Fatal("single-shard mapping must be 0")
	}
}

// TestShardedSubscriptionPlacement checks the dual bookkeeping: every
// subscription lives in exactly the shard its id hashes to, and the
// per-shard populations sum to the broker total.
func TestShardedSubscriptionPlacement(t *testing.T) {
	b := New(Options{Shards: 4})
	defer b.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := b.Subscribe(geometry.NewRect(float64(i), float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, st := range b.ShardStats() {
		total += st.Subscriptions
		if st.Subscriptions == 0 {
			t.Errorf("shard %d empty after %d uniform subscribes", st.Shard, n)
		}
	}
	if total != n {
		t.Fatalf("shard subscription sum = %d, want %d", total, n)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	for id, s := range b.subs {
		want := b.shards[shardIndex(id, len(b.shards))]
		if s.shard != want {
			t.Fatalf("sub %d owned by shard %d, want %d", id, s.shard.idx, want.idx)
		}
		want.mu.Lock()
		_, ok := want.subs[id]
		want.mu.Unlock()
		if !ok {
			t.Fatalf("sub %d missing from its shard %d map", id, want.idx)
		}
	}
}

// shardEquivCase is one broker configuration under the equivalence
// test.
type shardEquivCase struct {
	name string
	opts Options
}

// TestShardedMatchingEquivalence proves sharded matching ≡ single-shard
// ≡ brute-force oracle on a randomized workload with multi-rectangle
// subscriptions, churn (cancellations mid-stream), and rebuilds in
// flight (MinOverlay is tiny). Every publish's delivered count is
// checked against the oracle, and afterwards every subscriber's
// received multiset is too. Building with -tags=invariants scales the
// workload up.
func TestShardedMatchingEquivalence(t *testing.T) {
	subsN, pointsN := 60, 200
	if invariant.Enabled {
		subsN, pointsN = 150, 500
	}
	rng := rand.New(rand.NewSource(9))

	// One shared workload: multi-rect subscriptions over a 2-D space.
	type subSpec struct{ rects []geometry.Rect }
	specs := make([]subSpec, subsN)
	for i := range specs {
		nr := 1 + rng.Intn(3)
		rects := make([]geometry.Rect, nr)
		for j := range rects {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			w := 1 + rng.Float64()*25
			h := 1 + rng.Float64()*25
			rects[j] = geometry.NewRect(x, x+w, y, y+h)
		}
		specs[i] = subSpec{rects: rects}
	}
	points := make([]geometry.Point, pointsN)
	for i := range points {
		points[i] = geometry.Point{rng.Float64() * 110, rng.Float64() * 110}
	}
	phase1 := pointsN / 2
	cancelled := func(i int) bool { return i%4 == 3 }

	// Brute-force oracle: does any of sub i's rectangles contain point p?
	matches := func(i int, p geometry.Point) bool {
		for _, r := range specs[i].rects {
			if r.Contains(p) {
				return true
			}
		}
		return false
	}

	cases := []shardEquivCase{
		{"single-shard", Options{Shards: 1, MinOverlay: 4}},
		{"4-shards-sequential", Options{Shards: 4, MinOverlay: 4, Fanout: FanoutSequential}},
		{"4-shards-parallel", Options{Shards: 4, MinOverlay: 4, Fanout: FanoutParallel}},
		{"7-shards-auto", Options{Shards: 7, MinOverlay: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New(tc.opts)
			defer b.Close()
			subs := make([]*Subscription, subsN)
			for i, spec := range specs {
				s, err := b.SubscribeWith(SubscribeOptions{Buffer: pointsN + 1}, spec.rects...)
				if err != nil {
					t.Fatal(err)
				}
				subs[i] = s
			}
			for pi := 0; pi < phase1; pi++ {
				want := 0
				for i := range specs {
					if matches(i, points[pi]) {
						want++
					}
				}
				got, err := b.Publish(points[pi], nil)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("phase1 point %d delivered to %d subs, oracle says %d", pi, got, want)
				}
			}
			for i := range subs {
				if cancelled(i) {
					subs[i].Cancel()
				}
			}
			for pi := phase1; pi < pointsN; pi++ {
				want := 0
				for i := range specs {
					if !cancelled(i) && matches(i, points[pi]) {
						want++
					}
				}
				got, err := b.Publish(points[pi], nil)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("phase2 point %d delivered to %d subs, oracle says %d", pi, got, want)
				}
			}
			b.Close()
			// Drain every subscriber and compare its received multiset
			// against the oracle; distinct random points mean exact-value
			// keys are unambiguous.
			for i, s := range subs {
				got := map[[2]float64]int{}
				for ev := range s.Events() {
					got[[2]float64{ev.Point[0], ev.Point[1]}]++
				}
				want := map[[2]float64]int{}
				for pi, p := range points {
					if pi >= phase1 && cancelled(i) {
						continue
					}
					if matches(i, p) {
						want[[2]float64{p[0], p[1]}]++
					}
				}
				if len(got) != len(want) {
					t.Fatalf("sub %d received %d distinct points, want %d", i, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("sub %d received point %v %d times, want %d (dup = dedup failure)", i, k, got[k], n)
					}
				}
			}
		})
	}
}

// TestShardEmptyRebalance is the rebalance fix: cancelling the last
// subscription in a shard must not leave a permanently stale snapshot
// pinned — the shard's base and slot table are released and the
// rebuilder goes idle.
func TestShardEmptyRebalance(t *testing.T) {
	b := New(Options{Shards: 2, MinOverlay: 1})
	defer b.Close()
	subs := make([]*Subscription, 0, 64)
	for i := 0; i < 64; i++ {
		s, err := b.Subscribe(geometry.NewRect(float64(i), float64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	waitRebuilds(t, b, 1)
	for _, s := range subs {
		s.Cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for _, st := range b.ShardStats() {
			if st.Rectangles != 0 || st.BaseLen != 0 || st.OverlayLen != 0 || st.Stale != 0 || st.Rebuilding {
				clean = false
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("empty shards never shrank: %+v", b.ShardStats())
		}
		time.Sleep(time.Millisecond)
	}
	// The published snapshots must have released the packed index and
	// slot table (nothing pinned), not just zeroed the counters.
	for _, sh := range b.shards {
		snap := sh.snap.Load()
		if snap == nil {
			t.Fatal("shard snapshot nil before Close")
		}
		if snap.base != nil || snap.slots != nil || len(snap.overlay) != 0 {
			t.Fatalf("shard %d snapshot still pins base=%v slots=%d overlay=%d",
				sh.idx, snap.base != nil, len(snap.slots), len(snap.overlay))
		}
	}
	if st := b.Stats(); st.Rectangles != 0 || st.Subscriptions != 0 {
		t.Fatalf("broker stats after full churn-out: %+v", st)
	}
}

// TestShardRectangleAccountingUnderChurn asserts the per-shard
// Rectangles invariant — baseLen - stale + len(overlay) equals the live
// rectangle count of the shard's subscriptions — at every observable
// instant while rebuilds are racing subscription churn.
func TestShardRectangleAccountingUnderChurn(t *testing.T) {
	b := New(Options{Shards: 3, MinOverlay: 2})
	defer b.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		live := make([]*Subscription, 0, 256)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if len(live) < 32 || rng.Intn(3) > 0 {
				nr := 1 + rng.Intn(3)
				rects := make([]geometry.Rect, nr)
				for j := range rects {
					x := rng.Float64() * 100
					rects[j] = geometry.NewRect(x, x+5)
				}
				s, err := b.SubscribeWith(SubscribeOptions{Buffer: 1}, rects...)
				if err != nil {
					return
				}
				live = append(live, s)
			} else {
				i := rng.Intn(len(live))
				live[i].Cancel()
				live = append(live[:i], live[i+1:]...)
			}
		}
	}()

	deadline := time.Now().Add(400 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		for _, sh := range b.shards {
			sh.mu.Lock()
			wantRects := 0
			for _, s := range sh.subs {
				wantRects += len(s.rects)
			}
			got := sh.rectanglesLocked()
			rebuilding := sh.rebuilding
			sh.mu.Unlock()
			if got != wantRects {
				close(stop)
				wg.Wait()
				t.Fatalf("shard %d rectangle accounting drifted: baseLen-stale+overlay = %d, live rects = %d (rebuilding=%v)",
					sh.idx, got, wantRects, rebuilding)
			}
			checks++
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if checks == 0 {
		t.Fatal("no accounting checks ran")
	}
}

// TestCloseDuringMultiShardRebuild closes the broker while every
// shard's rebuilder (and the parallel fan-out worker set) is live, and
// checks nothing leaks.
func TestCloseDuringMultiShardRebuild(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		b := New(Options{Shards: 4, MinOverlay: 1, Fanout: FanoutParallel})
		for i := 0; i < 200; i++ {
			if _, err := b.Subscribe(geometry.NewRect(float64(i), float64(i+2))); err != nil {
				t.Fatal(err)
			}
		}
		// A publish in flight through the worker set while Close runs.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				if _, err := b.Publish(geometry.Point{float64(i) + 0.5}, nil); err != nil {
					return // errClosed once Close wins the race
				}
			}
		}()
		b.Close()
		<-done
	}
	waitGoroutines(t, base)
}

// TestParallelFanoutRaceStress drives concurrent publishers through
// the parallel worker set while per-shard rebuilds and cross-shard
// churn race them. Run with -race; sizes shrink under the detector's
// overhead.
func TestParallelFanoutRaceStress(t *testing.T) {
	pubs, churnOps := 3000, 1500
	if raceEnabled {
		pubs, churnOps = 600, 300
	}
	b := New(Options{Shards: 4, MinOverlay: 2, Fanout: FanoutParallel, SlowLagThreshold: 8})
	defer b.Close()
	for i := 0; i < 128; i++ {
		if _, err := b.SubscribeWith(SubscribeOptions{Buffer: 2},
			geometry.NewRect(float64(i%50), float64(i%50+10))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < pubs; i++ {
				p := geometry.Point{rng.Float64() * 60}
				if i%7 == 0 {
					// Traced publications exercise the detail-record path
					// through the workers too.
					if _, err := b.PublishTraced(p, []byte("x"), uint64(i)+1); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := b.Publish(p, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		live := make([]*Subscription, 0, 128)
		for i := 0; i < churnOps; i++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				s, err := b.SubscribeWith(SubscribeOptions{Buffer: 1},
					geometry.NewRect(rng.Float64()*50, rng.Float64()*50+60))
				if err != nil {
					t.Error(err)
					return
				}
				live = append(live, s)
			} else {
				j := rng.Intn(len(live))
				live[j].Cancel()
				live = append(live[:j], live[j+1:]...)
			}
		}
		for _, s := range live {
			s.Cancel()
		}
	}()
	wg.Wait()
	st := b.Stats()
	if st.Published == 0 || st.Delivered == 0 {
		t.Fatalf("stress made no progress: %+v", st)
	}
}

// TestPublishZeroAllocShardedParallel is the sharded twin of
// TestPublishZeroAllocSteadyState: steady-state publishing through the
// parallel fan-out worker set (4 shards, pools warm, all DropNewest
// buffers saturated) performs zero heap allocations.
func TestPublishZeroAllocShardedParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	b := New(Options{Shards: 4, MinOverlay: 4, Fanout: FanoutParallel})
	defer b.Close()
	for i := 0; i < 100; i++ {
		if _, err := b.SubscribeWith(SubscribeOptions{Buffer: 1}, geometry.NewRect(40, 60)); err != nil {
			t.Fatal(err)
		}
	}
	// With 100 uniform subscriptions every one of the 4 shards crosses
	// MinOverlay, so all 4 fold their overlays.
	waitRebuilds(t, b, 4)
	p := geometry.Point{50}
	payload := []byte("tick")
	if n, err := b.Publish(p, payload); err != nil || n != 100 {
		t.Fatalf("fill publish: n=%d err=%v", n, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := b.Publish(p, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state sharded Publish allocates %.1f times per op, want 0", allocs)
	}
}

// TestFanoutModeParse round-trips the mode names used by pubsubd's
// -fanout flag.
func TestFanoutModeParse(t *testing.T) {
	for _, m := range []FanoutMode{FanoutAuto, FanoutSequential, FanoutParallel} {
		got, err := ParseFanoutMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseFanoutMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseFanoutMode("bogus"); err == nil {
		t.Fatal("bogus mode should not parse")
	}
}
