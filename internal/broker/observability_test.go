package broker

import (
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geometry"
	"repro/internal/health"
	"repro/internal/telemetry"
)

// TestExemplarRecordingUnderParallelFanout hammers the exemplar slots
// from every direction at once — parallel fan-out publishers stamping
// stage and per-shard histograms, subscription churn driving the
// streaming selectivity profile and rebuilds, and a scraper rendering
// OpenMetrics exposition concurrently — to prove the lock-free
// exemplar path is race-clean (run with -race) and that every exemplar
// that surfaces is a well-formed trace id. Also asserts no goroutine
// leaks once the broker closes.
func TestExemplarRecordingUnderParallelFanout(t *testing.T) {
	base := runtime.NumGoroutine()

	reg := telemetry.NewRegistry()
	slo := health.NewSLO(health.SLOOptions{ObjectiveSeconds: 10}) // generous: nothing bad, just exercised
	b := New(Options{
		Shards:     4,
		Fanout:     FanoutParallel,
		MinOverlay: 4,
		Metrics:    reg,
		SLO:        slo,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publishers: traced publishes through the parallel fan-out path,
	// each stamping stage exemplars and per-shard match histograms.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pt := geometry.Point{rng.Float64() * 100, rng.Float64() * 100}
				if _, err := b.PublishTraced(pt, nil, telemetry.NewTraceID()); err != nil {
					return // broker closed under us
				}
			}
		}(int64(p) + 1)
	}

	// Churners: subscribe/cancel loops feeding the streaming
	// selectivity profile and forcing shard rebuilds mid-publish.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var live []*Subscription
			for {
				select {
				case <-stop:
					for _, s := range live {
						s.Cancel()
					}
					return
				default:
				}
				lo := rng.Float64() * 90
				s, err := b.SubscribeWith(SubscribeOptions{Buffer: 4},
					geometry.NewRect(lo, lo+10), geometry.NewRect(lo/2, lo/2+5))
				if err != nil {
					return
				}
				live = append(live, s)
				if len(live) > 32 {
					idx := rng.Intn(len(live))
					live[idx].Cancel()
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}(int64(c) + 100)
	}

	// Drainer: keep subscriber channels moving so publishers are not
	// throttled by full buffers into pure drop paths.
	// (Drops are fine — they feed slo.ObserveBad — but we want both.)

	// Scraper: concurrent OpenMetrics rendering reads the exemplar
	// slots while they are being overwritten.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			_ = reg.WriteOpenMetrics(&sb)
			_, _ = io.WriteString(io.Discard, sb.String())
			_ = b.IndexReport()
			_ = slo.Status()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every surfaced exemplar must be internally consistent: a
	// non-zero trace id with a value that falls in (or below the upper
	// bound of) its bucket is impossible to assert bucket-exactly under
	// torn reads, but the id and timestamp must be sane.
	now := time.Now().UnixNano()
	for _, f := range reg.Gather() {
		if f.Name != telemetry.StageFamily && f.Name != "pubsub_broker_shard_match_seconds" && f.Name != "pubsub_broker_publish_seconds" {
			continue
		}
		for _, s := range f.Samples {
			if s.Hist == nil {
				continue
			}
			for _, e := range s.Hist.Exemplars {
				if e.TraceID == 0 {
					continue
				}
				if e.Value < 0 {
					t.Fatalf("%s: exemplar with negative value %g", f.Name, e.Value)
				}
				if e.TimestampNS <= 0 || e.TimestampNS > now {
					t.Fatalf("%s: exemplar timestamp %d outside (0, now]", f.Name, e.TimestampNS)
				}
				if len(telemetry.FormatTraceID(e.TraceID)) != 16 {
					t.Fatalf("%s: trace id renders to %q", f.Name, telemetry.FormatTraceID(e.TraceID))
				}
			}
		}
	}
	stages := telemetry.StageReport(reg)
	var sawExemplar bool
	for _, st := range stages {
		if st.ExemplarTrace != "" {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Fatalf("no stage exemplar surfaced after concurrent publishes: %+v", stages)
	}
	if slo.Status().SlowTotal == 0 {
		t.Fatal("SLO evaluator saw no observations from the publish path")
	}

	b.Close()
	waitGoroutines(t, base)
}
