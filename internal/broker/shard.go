package broker

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/match"
	"repro/internal/telemetry"
)

// maxShards caps Options.Shards. Beyond a few hundred shards the
// per-publish fan-out cost dominates any rebuild-size win.
const maxShards = 256

// shardIndex maps a subscription id to its shard using the splitmix64
// finalizer: sequential ids spread uniformly, so shard load stays
// balanced without coordination, and the mapping is stable for the life
// of the broker (a subscription's rectangles never move between
// shards). The hash seam is where a later spatial split — partitioning
// by the highest-selectivity dimension from Index.PointQueryStats —
// would plug in.
func shardIndex(id, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// shard is one slice of the subscription space under the IndexRebuild
// strategy: the PR-4 snapshot/overlay/rebuilder machinery replicated so
// rebuild cost and snapshot size scale with subs/N instead of total
// subs. All of a subscription's rectangles live in exactly one shard
// (shardIndex of its id), so per-shard target deduplication is complete
// deduplication and the cross-shard merge is pure concatenation.
//
// Lock order: b.mu before sh.mu. The publish path takes neither — it
// reads sh.snap; the rebuilder takes only sh.mu.
type shard struct {
	b   *Broker
	idx int

	// fanCh hands publications to this shard's dedicated fan-out
	// worker; nil when the broker runs without workers (single shard,
	// or sequential fan-out). Unbuffered: a successful send guarantees
	// the worker processes exactly that job.
	fanCh chan *fanJob

	mu        sync.Mutex
	subs      map[int]*Subscription
	maxID     int             // one past the largest id ever assigned here (rebuild cut)
	base      match.Matcher   // slot-indexed rectangles (may contain stale slots)
	slots     []*Subscription // slot -> subscription for base's ids
	baseLen   int             // rectangles in base (incl. stale)
	stale     int             // rectangles in base whose subscription is gone
	overlay   []overlayEntry  // recent rectangles, scanned linearly
	multiRect bool            // some subscription in this shard holds several rectangles

	// Background rebuilder state (same reconciliation protocol as the
	// pre-shard broker, now per shard and guarded by sh.mu).
	rebuilderOn  bool // rebuilder goroutine started
	rebuilding   bool // a collect→install window is open
	rebuildCut   int  // maxID captured at collection time
	pendingStale int  // rects of subs cancelled during the build

	// rebuildCh has capacity 1 so churn coalesces into at most one
	// pending rebuild behind the in-flight one.
	rebuildCh chan struct{}

	// snap is the immutable matching state Publish reads without a
	// lock. nil once the broker is closed.
	snap atomic.Pointer[snapshot]

	rebuilds      atomic.Uint64
	lastRebuildNS atomic.Int64

	// Cumulative match cost attributed to this shard (recorder-clock
	// nanoseconds and walk count), accumulated per publish when metrics
	// are on. The imbalance gauge reads max/mean across shards.
	matchNS    atomic.Int64
	matchCount atomic.Int64
}

func newShard(b *Broker, idx int) *shard {
	sh := &shard{
		b:         b,
		idx:       idx,
		subs:      make(map[int]*Subscription),
		rebuildCh: make(chan struct{}, 1),
	}
	sh.snap.Store(&snapshot{})
	sh.lastRebuildNS.Store(b.rec.Now())
	return sh
}

// publishSnapshotLocked stores a fresh immutable snapshot of the
// shard's current matching state. Caller holds sh.mu.
func (sh *shard) publishSnapshotLocked() {
	sh.snap.Store(&snapshot{
		base:      sh.base,
		slots:     sh.slots,
		overlay:   sh.overlay,
		multiRect: sh.multiRect,
	})
}

// rebuildDueLocked reports whether the shard's overlay (or the stale
// fraction of its base) has grown past the rebuild thresholds. Caller
// holds sh.mu.
func (sh *shard) rebuildDueLocked() bool {
	overlayBig := len(sh.overlay) > sh.b.opts.MinOverlay && len(sh.overlay)*4 > sh.baseLen
	staleBig := sh.stale*2 > sh.baseLen && sh.stale > 0
	return overlayBig || staleBig
}

// maybeTriggerRebuildLocked kicks the shard's background rebuilder when
// its thresholds are crossed. The rebuild itself runs outside the lock;
// concurrent triggers coalesce into at most one pending run. Caller
// holds b.mu and sh.mu (mutations only — never the publish path), so
// the goroutine can never start after Close set b.closed.
func (b *Broker) maybeTriggerRebuildLocked(sh *shard) {
	if !sh.rebuildDueLocked() {
		return
	}
	if !sh.rebuilderOn {
		sh.rebuilderOn = true
		b.wg.Add(1)
		go b.shardRebuildLoop(sh)
	}
	select {
	case sh.rebuildCh <- struct{}{}:
	default: // a rebuild is already pending; coalesce
	}
}

// shardRebuildLoop is one shard's background rebuilder goroutine,
// started lazily on the shard's first trigger and stopped by Close.
func (b *Broker) shardRebuildLoop(sh *shard) {
	defer b.wg.Done()
	for {
		select {
		case <-b.stop:
			return
		case <-sh.rebuildCh:
			b.rebuildShard(sh)
		}
	}
}

// rebuildShard folds the shard's overlay into a freshly packed base
// index. The expensive match.New build runs outside sh.mu; churn that
// lands during the build is reconciled at install time: subscriptions
// created after the collection cut stay in the overlay, and ones
// cancelled since the collection leave their rectangles stale in the
// new base.
func (b *Broker) rebuildShard(sh *shard) {
	sh.mu.Lock()
	if b.closedFlag.Load() {
		sh.mu.Unlock()
		return
	}
	// Re-check the thresholds under the lock: a coalesced trigger may
	// have been satisfied by the previous pass already.
	if !sh.rebuildDueLocked() {
		sh.mu.Unlock()
		return
	}
	if len(sh.subs) == 0 {
		// Rebalance: the shard's last subscription is gone and its base
		// is all stale. Install the empty state under this same lock
		// hold — no build needed — so the packed index, the slot table
		// and the old overlay backing array are released instead of
		// staying pinned by a permanently-stale snapshot, and the
		// rebuilder goes idle.
		sh.base, sh.slots, sh.baseLen, sh.stale = nil, nil, 0, 0
		sh.overlay = nil
		sh.publishSnapshotLocked()
		sh.mu.Unlock()
		sh.finishRebuild(0, 0, b.rec.Now(), time.Time{})
		return
	}
	cut := sh.maxID
	slots := make([]*Subscription, 0, len(sh.subs))
	entries := make([]match.Subscription, 0, sh.baseLen-sh.stale+len(sh.overlay))
	for _, s := range sh.subs {
		slot := len(slots)
		slots = append(slots, s)
		for _, r := range s.rects {
			entries = append(entries, match.Subscription{Rect: r, SubscriberID: slot})
		}
	}
	sh.rebuilding = true
	sh.rebuildCut = cut
	sh.pendingStale = 0
	sh.mu.Unlock()

	r0 := b.rec.Now()
	var t0 time.Time
	if b.tel != nil {
		t0 = time.Now()
	}
	idx, err := match.New(entries, b.opts.Matcher)
	if err != nil {
		// Mixed dimensionalities across subscriptions make a tree index
		// impossible; fall back to linear matching.
		idx = match.BruteForce(entries)
	}

	sh.mu.Lock()
	sh.rebuilding = false
	if b.closedFlag.Load() {
		sh.mu.Unlock()
		return
	}
	kept := make([]overlayEntry, 0, len(sh.overlay))
	for _, e := range sh.overlay {
		if e.sub.id >= cut {
			kept = append(kept, e)
		}
	}
	sh.overlay = kept
	sh.base = idx
	sh.slots = slots
	sh.baseLen = len(entries)
	sh.stale = sh.pendingStale
	sh.pendingStale = 0
	sh.publishSnapshotLocked()
	overlayLeft := len(sh.overlay)
	// Churn during the build may already warrant another pass.
	again := sh.rebuildDueLocked()
	sh.mu.Unlock()

	sh.finishRebuild(len(entries), overlayLeft, r0, t0)
	if again {
		select {
		case sh.rebuildCh <- struct{}{}:
		default:
		}
	}
}

// finishRebuild bumps the shard and broker rebuild counters and writes
// the rebuild flight record (the record's seq field carries the shard
// index — rebuilds have no publication sequence).
func (sh *shard) finishRebuild(entries, overlayLeft int, r0 int64, t0 time.Time) {
	b := sh.b
	sh.rebuilds.Add(1)
	total := b.rebuilds.Add(1)
	sh.lastRebuildNS.Store(b.rec.Now())
	b.rec.Record(telemetry.KindRebuild, 0, uint64(sh.idx),
		int64(entries), int64(overlayLeft), b.rec.Now()-r0, int64(total))
	if b.tel != nil {
		b.tel.rebuilds.Inc()
		b.tel.shardRebuild(sh.idx)
		if !t0.IsZero() {
			b.tel.rebuildLatency.ObserveDuration(time.Since(t0))
		}
	}
}

// rectanglesLocked is the shard's live rectangle count derived from the
// snapshot bookkeeping. Caller holds sh.mu. The invariant
// baseLen - stale + len(overlay) == Σ len(s.rects) over sh.subs holds
// at every instant, including mid-rebuild (the churn test asserts it).
func (sh *shard) rectanglesLocked() int {
	return sh.baseLen - sh.stale + len(sh.overlay)
}

// ShardStat is one shard's introspection snapshot, surfaced by
// Broker.ShardStats and IndexReport.
type ShardStat struct {
	Shard         int  `json:"shard"`
	Subscriptions int  `json:"subscriptions"`
	Rectangles    int  `json:"rectangles"`
	BaseLen       int  `json:"base_len"`
	OverlayLen    int  `json:"overlay_len"`
	Stale         int  `json:"stale"`
	MultiRect     bool `json:"multi_rect,omitempty"`
	// Rebuilding is true while the shard's collect→install window is
	// open.
	Rebuilding bool   `json:"rebuilding,omitempty"`
	Rebuilds   uint64 `json:"rebuilds"`
	// SecondsSinceRebuild is the age of the shard's last rebuild
	// install (broker creation before the first).
	SecondsSinceRebuild float64 `json:"seconds_since_rebuild"`
}

// snapshotStat reads one shard's stat under its lock.
func (sh *shard) snapshotStat() ShardStat {
	nowNS := sh.b.rec.Now()
	sh.mu.Lock()
	st := ShardStat{
		Shard:         sh.idx,
		Subscriptions: len(sh.subs),
		Rectangles:    sh.rectanglesLocked(),
		BaseLen:       sh.baseLen,
		OverlayLen:    len(sh.overlay),
		Stale:         sh.stale,
		MultiRect:     sh.multiRect,
		Rebuilding:    sh.rebuilding,
		Rebuilds:      sh.rebuilds.Load(),
	}
	sh.mu.Unlock()
	st.SecondsSinceRebuild = time.Duration(nowNS - sh.lastRebuildNS.Load()).Seconds()
	return st
}

// ShardStats returns one stat per shard. Under IndexDynamic the broker
// has a single nominal shard whose counts are zero (the dynamic tree is
// not sharded); use IndexReport for the dynamic tree's shape.
func (b *Broker) ShardStats() []ShardStat {
	out := make([]ShardStat, len(b.shards))
	for i, sh := range b.shards {
		out[i] = sh.snapshotStat()
	}
	return out
}

// NumShards returns how many subscription shards the broker runs
// (always 1 under IndexDynamic).
func (b *Broker) NumShards() int { return len(b.shards) }
