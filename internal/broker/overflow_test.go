package broker

import (
	"testing"
	"time"

	"repro/internal/geometry"
)

// saturate publishes n matching events with nobody consuming.
func saturate(t *testing.T, b *Broker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := b.Publish(geometry.Point{5}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOverflowDropNewest(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 2}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, b, 5)
	// The two oldest events survive; the three newest were dropped.
	for want := 0; want < 2; want++ {
		ev := <-s.Events()
		if int(ev.Payload[0]) != want {
			t.Fatalf("event %d payload = %d", want, ev.Payload[0])
		}
	}
	st := s.Stats()
	if st.Dropped != 3 || st.LastDrop.IsZero() {
		t.Errorf("sub stats = %+v", st)
	}
	if bs := b.Stats(); bs.Dropped != 3 || bs.LastDrop.IsZero() {
		t.Errorf("broker stats = %+v", bs)
	}
}

func TestOverflowDropOldest(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 2, Overflow: DropOldest}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, b, 5)
	// The two newest events survive; the three oldest were evicted.
	for want := 3; want < 5; want++ {
		ev := <-s.Events()
		if int(ev.Payload[0]) != want {
			t.Fatalf("expected payload %d, got %d", want, ev.Payload[0])
		}
	}
	if st := s.Stats(); st.Dropped != 3 || st.HighWater != 2 {
		t.Errorf("sub stats = %+v", st)
	}
}

func TestOverflowBlockWaitsForConsumer(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.SubscribeWith(
		SubscribeOptions{Buffer: 1, Overflow: Block, BlockTimeout: 5 * time.Second},
		geometry.NewRect(0, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer, then drain it from a delayed consumer while the
	// second publish blocks.
	if _, err := b.Publish(geometry.Point{5}, nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		<-s.ch
	}()
	start := time.Now()
	n, err := b.Publish(geometry.Point{5}, nil)
	if err != nil || n != 1 {
		t.Fatalf("blocked publish: n=%d err=%v", n, err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("publish did not block for the consumer")
	}
	if s.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", s.Dropped())
	}
}

func TestOverflowBlockTimesOut(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	_, err := b.SubscribeWith(
		SubscribeOptions{Buffer: 1, Overflow: Block, BlockTimeout: 20 * time.Millisecond},
		geometry.NewRect(0, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, b, 1) // fills the buffer
	start := time.Now()
	n, err := b.Publish(geometry.Point{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("delivered %d, want timeout drop", n)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("dropped after %v, before the bounded wait elapsed", elapsed)
	}
	if st := b.Stats(); st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOverflowCancelSlowEvicts(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	slow, err := b.SubscribeWith(SubscribeOptions{Buffer: 1, Overflow: CancelSlow}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := b.SubscribeBuffered(64, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, b, 3) // overflows slow's buffer on the second publish

	// Eviction is asynchronous; wait for the subscription to disappear.
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Subscriptions != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := b.Stats(); st.Evicted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !slow.Stats().Evicted {
		t.Error("evicted flag not set on subscription")
	}

	// The healthy subscriber still receives everything, before and after.
	if _, err := b.Publish(geometry.Point{5}, []byte{99}); err != nil {
		t.Fatal(err)
	}
	got := 0
	for ev := range healthy.Events() {
		got++
		if ev.Payload[0] == 99 {
			break
		}
	}
	if got != 4 {
		t.Errorf("healthy subscriber saw %d events, want 4", got)
	}
	// slow's channel must be closed (drain any buffered remainder).
	for {
		if _, open := <-slow.Events(); !open {
			break
		}
	}
}

func TestBrokerDefaultOverflowPolicyInherited(t *testing.T) {
	b := New(Options{Overflow: DropOldest, DefaultBuffer: 2})
	defer b.Close()
	s, err := b.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != DropOldest {
		t.Fatalf("policy = %v, want drop-oldest", s.Policy())
	}
	saturate(t, b, 4)
	if ev := <-s.Events(); int(ev.Payload[0]) != 2 {
		t.Errorf("oldest surviving payload = %d, want 2", ev.Payload[0])
	}
}

func TestSubscribeWithValidation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.SubscribeWith(SubscribeOptions{Buffer: -1}, geometry.NewRect(0, 1)); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := b.SubscribeWith(SubscribeOptions{Overflow: OverflowPolicy(99)}, geometry.NewRect(0, 1)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestHighWaterMark(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.SubscribeWith(SubscribeOptions{Buffer: 8}, geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, b, 5)
	if st := s.Stats(); st.HighWater != 5 || st.Buffered != 5 || st.Capacity != 8 {
		t.Errorf("sub stats = %+v", st)
	}
	if bs := b.Stats(); bs.QueueHighWater != 5 {
		t.Errorf("broker high water = %d, want 5", bs.QueueHighWater)
	}
	// Draining does not lower the high-water mark.
	for i := 0; i < 5; i++ {
		<-s.Events()
	}
	if st := s.Stats(); st.HighWater != 5 || st.Buffered != 0 {
		t.Errorf("sub stats after drain = %+v", st)
	}
}

func TestPublishPayloadNotAliased(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	s, err := b.Subscribe(geometry.NewRect(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("original")
	if _, err := b.Publish(geometry.Point{5}, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!") // caller reuses its buffer immediately
	if ev := <-s.Events(); string(ev.Payload) != "original" {
		t.Errorf("payload = %q, want %q (broker aliased the caller's buffer)", ev.Payload, "original")
	}
}

func TestParseOverflowPolicy(t *testing.T) {
	for _, p := range []OverflowPolicy{DropNewest, DropOldest, Block, CancelSlow} {
		got, err := ParseOverflowPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseOverflowPolicy("bogus"); err == nil {
		t.Error("bogus policy parsed")
	}
}
