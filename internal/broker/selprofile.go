package broker

import (
	"math"
	"sync/atomic"

	"repro/internal/geometry"
)

// maxProfileDims bounds the streaming profile's fixed per-dimension
// accumulators. Rectangles with more dimensions flip the overflow
// flag and IndexReport falls back to the probe-time sample.
const maxProfileDims = 32

// dimAccum is one dimension's streaming accumulators. Rectangle-side
// counters move on Subscribe/Cancel (exact over the live population);
// point-side counters move on instrumented publishes. All fields are
// independent atomics: a reader can pair counts from slightly
// different instants, which introspection tolerates.
type dimAccum struct {
	seen    atomic.Int64 // live rects whose rectangle reaches this dim
	bounded atomic.Int64 // of those, with both endpoints finite
	// widthBits is a CAS-maintained float64 sum of bounded interval
	// widths; Cancel subtracts, so it tracks the live population.
	widthBits atomic.Uint64
	// loBits/hiBits are the bounded envelope's extreme endpoints.
	// High-watermark: Subscribe widens them, Cancel does not shrink
	// them back (the envelope of rectangles ever seen).
	loBits atomic.Uint64
	hiBits atomic.Uint64
	// points/inEnv: instrumented publish points carrying this
	// dimension, and how many landed inside the bounded envelope —
	// the "where does real traffic fall" signal the spatial-split
	// rule needs on top of rectangle shape.
	points atomic.Uint64
	inEnv  atomic.Uint64
}

// selProfile streams the per-dimension selectivity profile that
// replaces the probe-time rectangle sample as IndexReport's primary
// data source. It is exact over the live rectangle population
// (updated on the cold Subscribe/Cancel paths) and accumulates
// real-match point coverage from instrumented publishes with a few
// atomic ops per dimension — no locks, no allocation.
type selProfile struct {
	rects    atomic.Int64  // live rectangles profiled
	ptCount  atomic.Uint64 // instrumented publish points profiled
	maxDims  atomic.Int64  // widest rectangle seen
	overflow atomic.Bool   // some rectangle exceeded maxProfileDims
	dims     [maxProfileDims]dimAccum
}

// init seeds the envelope extremes; called once from New (the zero
// bits of loBits/hiBits would read as 0.0 and corrupt the min/max).
func (sp *selProfile) init() {
	for d := range sp.dims {
		sp.dims[d].loBits.Store(math.Float64bits(math.Inf(1)))
		sp.dims[d].hiBits.Store(math.Float64bits(math.Inf(-1)))
	}
}

// addRect streams one live rectangle in. Called under the subscribe
// path (cold).
func (sp *selProfile) addRect(r geometry.Rect) {
	if len(r) > maxProfileDims {
		sp.overflow.Store(true)
	}
	sp.rects.Add(1)
	for {
		cur := sp.maxDims.Load()
		if int64(len(r)) <= cur || sp.maxDims.CompareAndSwap(cur, int64(len(r))) {
			break
		}
	}
	n := len(r)
	if n > maxProfileDims {
		n = maxProfileDims
	}
	for d := 0; d < n; d++ {
		a := &sp.dims[d]
		a.seen.Add(1)
		iv := r[d]
		if math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1) {
			continue
		}
		a.bounded.Add(1)
		atomicAddFloat(&a.widthBits, iv.Length())
		atomicMinFloat(&a.loBits, iv.Lo)
		atomicMaxFloat(&a.hiBits, iv.Hi)
	}
}

// removeRect streams one rectangle out on Cancel. Width sums and
// counts shrink; the envelope stays (high-watermark).
func (sp *selProfile) removeRect(r geometry.Rect) {
	sp.rects.Add(-1)
	n := len(r)
	if n > maxProfileDims {
		n = maxProfileDims
	}
	for d := 0; d < n; d++ {
		a := &sp.dims[d]
		a.seen.Add(-1)
		iv := r[d]
		if math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1) {
			continue
		}
		a.bounded.Add(-1)
		atomicAddFloat(&a.widthBits, -iv.Length())
	}
}

// notePoint streams one published point's per-dimension envelope
// coverage. Reached from the publish hot path on instrumented
// publishes only; cost is a handful of atomics per dimension.
func (sp *selProfile) notePoint(p geometry.Point) {
	sp.ptCount.Add(1)
	n := len(p)
	if n > maxProfileDims {
		n = maxProfileDims
	}
	for d := 0; d < n; d++ {
		a := &sp.dims[d]
		if a.bounded.Load() == 0 {
			continue
		}
		lo := math.Float64frombits(a.loBits.Load())
		hi := math.Float64frombits(a.hiBits.Load())
		a.points.Add(1)
		if p[d] > lo && p[d] <= hi {
			a.inEnv.Add(1)
		}
	}
}

// report renders the streaming profile as DimSelectivity entries with
// the same semantics as the sampled dimSelectivity scan, plus the
// point-coverage fraction only the stream can provide. Returns nil
// when the profile has no data or overflowed its dimension bound, in
// which case the caller falls back to the sample.
func (sp *selProfile) report() []DimSelectivity {
	total := sp.rects.Load()
	dims := int(sp.maxDims.Load())
	if total <= 0 || dims == 0 || sp.overflow.Load() {
		return nil
	}
	if dims > maxProfileDims {
		dims = maxProfileDims
	}
	out := make([]DimSelectivity, dims)
	for d := 0; d < dims; d++ {
		a := &sp.dims[d]
		sel := DimSelectivity{Dim: d, Bounded: int(a.bounded.Load())}
		if sel.Bounded < 0 {
			sel.Bounded = 0
		}
		sel.BoundedFraction = float64(sel.Bounded) / float64(total)
		lo := math.Float64frombits(a.loBits.Load())
		hi := math.Float64frombits(a.hiBits.Load())
		if sel.Bounded > 0 && hi > lo {
			width := math.Float64frombits(a.widthBits.Load())
			sel.MeanWidthFraction = width / float64(sel.Bounded) / (hi - lo)
		}
		if pts := a.points.Load(); pts > 0 {
			sel.TrafficInEnvelope = float64(a.inEnv.Load()) / float64(pts)
		}
		out[d] = sel
	}
	return out
}

// atomicAddFloat adds delta to a CAS-maintained float64 sum.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		cur := bits.Load()
		if bits.CompareAndSwap(cur, math.Float64bits(math.Float64frombits(cur)+delta)) {
			return
		}
	}
}

// atomicMinFloat lowers a CAS-maintained float64 minimum.
func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		cur := bits.Load()
		if v >= math.Float64frombits(cur) || bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises a CAS-maintained float64 maximum.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		cur := bits.Load()
		if v <= math.Float64frombits(cur) || bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}
