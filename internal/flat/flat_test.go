package flat

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geometry"
)

// refNode is a minimal pointer tree used to exercise Build.
type refNode struct {
	mbr      geometry.Rect
	children []*refNode
	rects    []geometry.Rect
	ids      []int
}

func (n *refNode) MBR() geometry.Rect { return n.mbr }
func (n *refNode) NumChildren() int   { return len(n.children) }
func (n *refNode) Child(i int) Node   { return n.children[i] }
func (n *refNode) NumEntries() int    { return len(n.rects) }
func (n *refNode) Entry(i int) (geometry.Rect, int) {
	return n.rects[i], n.ids[i]
}

// buildRef packs rects into leaves of fanout entries each and stacks
// internal levels of the same fanout, bottom-up.
func buildRef(rects []geometry.Rect, ids []int, fanout int) *refNode {
	var leaves []*refNode
	for start := 0; start < len(rects); start += fanout {
		end := start + fanout
		if end > len(rects) {
			end = len(rects)
		}
		mbr := geometry.BoundingBox(rects[start:end]...)
		leaves = append(leaves, &refNode{mbr: mbr, rects: rects[start:end], ids: ids[start:end]})
	}
	level := leaves
	for len(level) > 1 {
		var parents []*refNode
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			var mbr geometry.Rect
			for _, c := range level[start:end] {
				mbr = mbr.Union(c.mbr)
			}
			parents = append(parents, &refNode{mbr: mbr, children: level[start:end]})
		}
		level = parents
	}
	return level[0]
}

func randomRects(rng *rand.Rand, n, dims int) ([]geometry.Rect, []int) {
	rects := make([]geometry.Rect, n)
	ids := make([]int, n)
	for i := range rects {
		r := make(geometry.Rect, dims)
		for d := range r {
			lo := rng.Float64() * 90
			r[d] = geometry.NewInterval(lo, lo+1+rng.Float64()*20)
		}
		rects[i] = r
		ids[i] = i
	}
	return rects, ids
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPointQueriesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range []int{1, 2, 3} {
		rects, ids := randomRects(rng, 300, dims)
		tree := Build(buildRef(rects, ids, 8), dims)
		if tree.NumEntries() != len(rects) {
			t.Fatalf("dims=%d: flattened %d entries, want %d", dims, tree.NumEntries(), len(rects))
		}
		var dst []int
		var stack []int32
		for q := 0; q < 200; q++ {
			p := make(geometry.Point, dims)
			for d := range p {
				p[d] = rng.Float64() * 120
			}
			var want []int
			for i, r := range rects {
				if r.Contains(p) {
					want = append(want, ids[i])
				}
			}
			var st Stats
			dst = dst[:0]
			dst, stack = tree.PointAppend(p, dst, stack, &st)
			if got := sortedCopy(dst); !equalIDs(got, sortedCopy(want)) {
				t.Fatalf("dims=%d q=%d: PointAppend = %v, want %v", dims, q, got, want)
			}
			if st.Matched != len(want) {
				t.Fatalf("dims=%d q=%d: stats.Matched = %d, want %d", dims, q, st.Matched, len(want))
			}

			var cst Stats
			count, s2 := tree.PointCount(p, stack, &cst)
			stack = s2
			if count != len(want) {
				t.Fatalf("dims=%d q=%d: PointCount = %d, want %d", dims, q, count, len(want))
			}

			var streamed []int
			var fst Stats
			stack = tree.PointFunc(p, stack, &fst, func(id int) bool {
				streamed = append(streamed, id)
				return true
			})
			if !equalIDs(sortedCopy(streamed), sortedCopy(want)) {
				t.Fatalf("dims=%d q=%d: PointFunc = %v, want %v", dims, q, streamed, want)
			}
		}
	}
}

func TestRegionQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rects, ids := randomRects(rng, 250, 2)
	tree := Build(buildRef(rects, ids, 8), 2)
	var stack []int32
	for q := 0; q < 100; q++ {
		region := make(geometry.Rect, 2)
		for d := range region {
			lo := rng.Float64() * 100
			region[d] = geometry.NewInterval(lo, lo+rng.Float64()*30)
		}
		var want []int
		for i, r := range rects {
			if r.Intersects(region) {
				want = append(want, ids[i])
			}
		}
		var got []int
		var st Stats
		stack = tree.RegionFunc(region, stack, &st, func(id int) bool {
			got = append(got, id)
			return true
		})
		if !equalIDs(sortedCopy(got), sortedCopy(want)) {
			t.Fatalf("q=%d: RegionFunc = %v, want %v", q, got, want)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rects, ids := randomRects(rng, 100, 2)
	tree := Build(buildRef(rects, ids, 8), 2)
	p := rects[0].Center()
	seen := 0
	var st Stats
	tree.PointFunc(p, nil, &st, func(int) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("early-stopped walk saw %d results, want 1", seen)
	}
}

func TestEmptyAndMismatchedQueries(t *testing.T) {
	empty := Build(nil, 2)
	var st Stats
	dst, _ := empty.PointAppend(geometry.Point{1, 2}, nil, nil, &st)
	if len(dst) != 0 {
		t.Fatalf("empty tree matched %v", dst)
	}

	rng := rand.New(rand.NewSource(5))
	rects, ids := randomRects(rng, 50, 2)
	tree := Build(buildRef(rects, ids, 8), 2)
	dst, _ = tree.PointAppend(geometry.Point{1}, nil, nil, &st) // wrong dims
	if len(dst) != 0 {
		t.Fatalf("mismatched-dims query matched %v", dst)
	}
	count, _ := tree.PointCount(geometry.Point{1, 2, 3}, nil, &st)
	if count != 0 {
		t.Fatalf("mismatched-dims count = %d", count)
	}
}

func TestUnboundedRectangles(t *testing.T) {
	// "volume >= 1000"-style half-unbounded subscriptions must flatten
	// and match exactly like the pointer tree.
	inf := geometry.Rect{geometry.Interval{Lo: 1000, Hi: math.Inf(1)}, geometry.NewInterval(0, 10)}
	fin := geometry.Rect{geometry.NewInterval(0, 500), geometry.NewInterval(0, 10)}
	rects := []geometry.Rect{inf, fin}
	ids := []int{7, 8}
	tree := Build(buildRef(rects, ids, 2), 2)
	var st Stats
	dst, _ := tree.PointAppend(geometry.Point{5000, 5}, nil, nil, &st)
	if !equalIDs(dst, []int{7}) {
		t.Fatalf("unbounded match = %v, want [7]", dst)
	}
}

func TestStackPoolRoundTrip(t *testing.T) {
	s := GetStack()
	*s = append(*s, 1, 2, 3)
	PutStack(s)
	s2 := GetStack()
	defer PutStack(s2)
	if cap(*s2) == 0 {
		t.Fatal("pool returned zero-capacity stack")
	}
}
