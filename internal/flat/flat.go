// Package flat compiles a pointer-linked spatial tree (S-tree or packed
// R-tree) into a contiguous, cache-conscious array layout and answers
// point and region queries by walking integer indices instead of chasing
// pointers.
//
// Layout. Nodes are numbered in BFS order, so the children of any node
// occupy a contiguous index range [childStart, childEnd). Leaf entries are
// likewise laid out in one contiguous range [entryStart, entryEnd) of a
// single entries array. Bounds are stored struct-of-arrays as planes: for
// a tree with n nodes over d dimensions, plane 2*k holds the lower bounds
// of dimension k for all n nodes and plane 2*k+1 the upper bounds, i.e.
//
//	nodeBounds[(2*k+0)*n + i] = node i, dimension k, Lo
//	nodeBounds[(2*k+1)*n + i] = node i, dimension k, Hi
//
// so a point-containment test touches 2*d cache-friendly strided loads
// and the per-dimension comparisons vectorise naturally. Entry bounds use
// the same plane layout over the entry count.
//
// Queries take a caller-provided scratch stack of node indices (returned
// for reuse; see GetStack/PutStack) and never allocate.
//
// The half-open containment convention matches geometry.Interval.Contains:
// x is inside (Lo, Hi] iff x > Lo && x <= Hi.
package flat

import (
	"fmt"
	"sync"

	"repro/internal/geometry"
	"repro/internal/invariant"
)

var errf = fmt.Errorf

// Node is the pointer-tree shape flattened by Build. A node is a leaf iff
// NumChildren returns 0; only leaves hold entries.
type Node interface {
	MBR() geometry.Rect
	NumChildren() int
	Child(i int) Node
	NumEntries() int
	Entry(i int) (geometry.Rect, int)
}

// Stats counts traversal effort for a single query. Fields mirror the
// QueryStats types of the stree and rtree packages.
type Stats struct {
	NodesVisited  int
	LeavesVisited int
	EntriesTested int
	Matched       int
}

// Tree is the flattened, immutable index. The zero value is an empty tree
// matching nothing.
type Tree struct {
	dims       int
	numNodes   int
	numEntries int

	// nodeBounds holds 2*dims planes of numNodes floats each (see the
	// package comment for the plane layout).
	nodeBounds []float64
	childStart []int32 // per node; childStart==childEnd marks a leaf
	childEnd   []int32
	entryStart []int32 // per node; non-empty only on leaves
	entryEnd   []int32

	entryBounds []float64 // 2*dims planes of numEntries floats each
	entryIDs    []int     // caller-assigned entry identifiers
}

// Build flattens the pointer tree rooted at root. A nil root yields an
// empty tree. dims is the dimensionality of every rectangle in the tree.
func Build(root Node, dims int) *Tree {
	t := &Tree{dims: dims}
	if root == nil || dims == 0 {
		return t
	}

	// Pass 1: size the arrays.
	nodes := 0
	entries := 0
	queue := make([]Node, 0, 64)
	queue = append(queue, root)
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		nodes++
		entries += n.NumEntries()
		for i := 0; i < n.NumChildren(); i++ {
			queue = append(queue, n.Child(i))
		}
	}
	t.numNodes = nodes
	t.numEntries = entries
	t.nodeBounds = make([]float64, 2*dims*nodes)
	t.childStart = make([]int32, nodes)
	t.childEnd = make([]int32, nodes)
	t.entryStart = make([]int32, nodes)
	t.entryEnd = make([]int32, nodes)
	t.entryBounds = make([]float64, 2*dims*entries)
	t.entryIDs = make([]int, entries)

	// Pass 2: BFS again, assigning child ranges as nodes are enqueued so
	// each node's children land contiguously.
	queue = queue[:0]
	queue = append(queue, root)
	nextNode := int32(1)
	nextEntry := int32(0)
	for idx := 0; idx < nodes; idx++ {
		n := queue[idx]
		mbr := n.MBR()
		for d := 0; d < dims; d++ {
			t.nodeBounds[(2*d+0)*nodes+idx] = mbr[d].Lo
			t.nodeBounds[(2*d+1)*nodes+idx] = mbr[d].Hi
		}
		nc := n.NumChildren()
		t.childStart[idx] = nextNode
		for i := 0; i < nc; i++ {
			queue = append(queue, n.Child(i))
		}
		nextNode += int32(nc)
		t.childEnd[idx] = nextNode

		ne := n.NumEntries()
		t.entryStart[idx] = nextEntry
		for i := 0; i < ne; i++ {
			r, id := n.Entry(i)
			e := int(nextEntry) + i
			for d := 0; d < dims; d++ {
				t.entryBounds[(2*d+0)*entries+e] = r[d].Lo
				t.entryBounds[(2*d+1)*entries+e] = r[d].Hi
			}
			t.entryIDs[e] = id
		}
		nextEntry += int32(ne)
		t.entryEnd[idx] = nextEntry
	}

	if invariant.Enabled {
		err := t.verify(root)
		invariant.Assertf(err == nil, "flat.Build diverged from source tree: %v", err)
	}
	return t
}

// NumNodes reports the number of flattened nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// NumEntries reports the number of flattened leaf entries.
func (t *Tree) NumEntries() int { return t.numEntries }

// Dims reports the dimensionality the tree was built with.
func (t *Tree) Dims() int { return t.dims }

// nodeContains reports whether node i's MBR contains p under the
// half-open (Lo, Hi] convention. len(p) must equal t.dims.
func (t *Tree) nodeContains(i int32, p geometry.Point) bool {
	n := t.numNodes
	b := t.nodeBounds
	for d := 0; d < len(p); d++ {
		x := p[d]
		if !(x > b[(2*d+0)*n+int(i)] && x <= b[(2*d+1)*n+int(i)]) {
			return false
		}
	}
	return true
}

// entryContains is nodeContains for leaf entry e.
func (t *Tree) entryContains(e int32, p geometry.Point) bool {
	n := t.numEntries
	b := t.entryBounds
	for d := 0; d < len(p); d++ {
		x := p[d]
		if !(x > b[(2*d+0)*n+int(e)] && x <= b[(2*d+1)*n+int(e)]) {
			return false
		}
	}
	return true
}

// nodeIntersects reports whether node i's MBR intersects the non-empty
// region r, mirroring geometry.Rect.Intersects. Stored bounds are never
// empty, so only the overlap test is needed.
func (t *Tree) nodeIntersects(i int32, r geometry.Rect) bool {
	n := t.numNodes
	b := t.nodeBounds
	for d := 0; d < len(r); d++ {
		lo := b[(2*d+0)*n+int(i)]
		hi := b[(2*d+1)*n+int(i)]
		if max64(lo, r[d].Lo) >= min64(hi, r[d].Hi) {
			return false
		}
	}
	return true
}

func (t *Tree) entryIntersects(e int32, r geometry.Rect) bool {
	n := t.numEntries
	b := t.entryBounds
	for d := 0; d < len(r); d++ {
		lo := b[(2*d+0)*n+int(e)]
		hi := b[(2*d+1)*n+int(e)]
		if max64(lo, r[d].Lo) >= min64(hi, r[d].Hi) {
			return false
		}
	}
	return true
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PointAppend appends the IDs of every entry containing p to dst and
// returns it, along with the (possibly grown) scratch stack for reuse.
// st must be non-nil; counters are added to, not reset.
//
//pubsub:hotpath
func (t *Tree) PointAppend(p geometry.Point, dst []int, stack []int32, st *Stats) ([]int, []int32) {
	if t.numNodes == 0 || len(p) != t.dims {
		return dst, stack
	}
	stack = stack[:0]
	if t.nodeContains(0, p) {
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		cs, ce := t.childStart[i], t.childEnd[i]
		if cs == ce {
			st.LeavesVisited++
			es, ee := t.entryStart[i], t.entryEnd[i]
			st.EntriesTested += int(ee - es)
			for e := es; e < ee; e++ {
				if t.entryContains(e, p) {
					st.Matched++
					dst = append(dst, t.entryIDs[e])
				}
			}
			continue
		}
		for c := cs; c < ce; c++ {
			if t.nodeContains(c, p) {
				stack = append(stack, c)
			}
		}
	}
	return dst, stack
}

// PointCount counts the entries containing p without materialising IDs.
//
//pubsub:hotpath
func (t *Tree) PointCount(p geometry.Point, stack []int32, st *Stats) (int, []int32) {
	if t.numNodes == 0 || len(p) != t.dims {
		return 0, stack
	}
	count := 0
	stack = stack[:0]
	if t.nodeContains(0, p) {
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		cs, ce := t.childStart[i], t.childEnd[i]
		if cs == ce {
			st.LeavesVisited++
			es, ee := t.entryStart[i], t.entryEnd[i]
			st.EntriesTested += int(ee - es)
			for e := es; e < ee; e++ {
				if t.entryContains(e, p) {
					count++
				}
			}
			continue
		}
		for c := cs; c < ce; c++ {
			if t.nodeContains(c, p) {
				stack = append(stack, c)
			}
		}
	}
	st.Matched += count
	return count, stack
}

// PointFunc streams the IDs of entries containing p to fn; fn returning
// false stops the walk. The scratch stack is returned for reuse.
func (t *Tree) PointFunc(p geometry.Point, stack []int32, st *Stats, fn func(id int) bool) []int32 {
	if t.numNodes == 0 || len(p) != t.dims {
		return stack
	}
	stack = stack[:0]
	if t.nodeContains(0, p) {
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		cs, ce := t.childStart[i], t.childEnd[i]
		if cs == ce {
			st.LeavesVisited++
			es, ee := t.entryStart[i], t.entryEnd[i]
			st.EntriesTested += int(ee - es)
			for e := es; e < ee; e++ {
				if t.entryContains(e, p) {
					st.Matched++
					if !fn(t.entryIDs[e]) {
						return stack
					}
				}
			}
			continue
		}
		for c := cs; c < ce; c++ {
			if t.nodeContains(c, p) {
				stack = append(stack, c)
			}
		}
	}
	return stack
}

// RegionFunc streams the IDs of entries intersecting r to fn; fn
// returning false stops the walk.
func (t *Tree) RegionFunc(r geometry.Rect, stack []int32, st *Stats, fn func(id int) bool) []int32 {
	if t.numNodes == 0 || len(r) != t.dims || r.Empty() {
		return stack
	}
	stack = stack[:0]
	if t.nodeIntersects(0, r) {
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		cs, ce := t.childStart[i], t.childEnd[i]
		if cs == ce {
			st.LeavesVisited++
			es, ee := t.entryStart[i], t.entryEnd[i]
			st.EntriesTested += int(ee - es)
			for e := es; e < ee; e++ {
				if t.entryIntersects(e, r) {
					st.Matched++
					if !fn(t.entryIDs[e]) {
						return stack
					}
				}
			}
			continue
		}
		for c := cs; c < ce; c++ {
			if t.nodeIntersects(c, r) {
				stack = append(stack, c)
			}
		}
	}
	return stack
}

// stackPool recycles traversal stacks across queries so steady-state
// queries allocate nothing.
var stackPool = sync.Pool{
	New: func() any {
		s := make([]int32, 0, 64)
		return &s
	},
}

// GetStack borrows a scratch stack from the shared pool.
func GetStack() *[]int32 { return stackPool.Get().(*[]int32) }

// PutStack returns a stack borrowed with GetStack.
func PutStack(s *[]int32) { stackPool.Put(s) }

// verify re-walks the source pointer tree and checks that the flattened
// arrays reproduce it node for node and entry for entry. Only called when
// the invariants build tag is enabled.
func (t *Tree) verify(root Node) error {
	type pair struct {
		n   Node
		idx int32
	}
	queue := []pair{{root, 0}}
	seenNodes := 0
	seenEntries := 0
	next := int32(1)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		seenNodes++
		mbr := cur.n.MBR()
		if len(mbr) != t.dims {
			return errf("node %d: dims %d != %d", cur.idx, len(mbr), t.dims)
		}
		for d := 0; d < t.dims; d++ {
			lo := t.nodeBounds[(2*d+0)*t.numNodes+int(cur.idx)]
			hi := t.nodeBounds[(2*d+1)*t.numNodes+int(cur.idx)]
			if lo != mbr[d].Lo || hi != mbr[d].Hi {
				return errf("node %d dim %d: flat (%g,%g] != source (%g,%g]", cur.idx, d, lo, hi, mbr[d].Lo, mbr[d].Hi)
			}
		}
		nc := cur.n.NumChildren()
		cs, ce := t.childStart[cur.idx], t.childEnd[cur.idx]
		if int(ce-cs) != nc || (nc > 0 && cs != next) {
			return errf("node %d: child range [%d,%d) != %d children at %d", cur.idx, cs, ce, nc, next)
		}
		for i := 0; i < nc; i++ {
			queue = append(queue, pair{cur.n.Child(i), cs + int32(i)})
		}
		next += int32(nc)
		ne := cur.n.NumEntries()
		es, ee := t.entryStart[cur.idx], t.entryEnd[cur.idx]
		if int(ee-es) != ne {
			return errf("node %d: entry range [%d,%d) != %d entries", cur.idx, es, ee, ne)
		}
		for i := 0; i < ne; i++ {
			r, id := cur.n.Entry(i)
			e := es + int32(i)
			if t.entryIDs[e] != id {
				return errf("entry %d: id %d != %d", e, t.entryIDs[e], id)
			}
			for d := 0; d < t.dims; d++ {
				lo := t.entryBounds[(2*d+0)*t.numEntries+int(e)]
				hi := t.entryBounds[(2*d+1)*t.numEntries+int(e)]
				if lo != r[d].Lo || hi != r[d].Hi {
					return errf("entry %d dim %d: flat (%g,%g] != source (%g,%g]", e, d, lo, hi, r[d].Lo, r[d].Hi)
				}
			}
		}
		seenEntries += ne
	}
	if seenNodes != t.numNodes || seenEntries != t.numEntries {
		return errf("walked %d nodes / %d entries, flattened %d / %d", seenNodes, seenEntries, t.numNodes, t.numEntries)
	}
	return nil
}
