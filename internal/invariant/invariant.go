//go:build invariants

// Package invariant provides structural assertions that compile to
// nothing in normal builds. Building with -tags=invariants turns them
// into panics, and the CI invariants job runs the index tests that way:
// every tree built during those tests is deep-checked (MBR containment,
// branch-factor bounds, skew limits) at construction time.
package invariant

import "fmt"

// Enabled reports whether assertions are compiled in. Callers use it to
// gate validation passes that are too expensive to even reach Assertf
// in normal builds.
const Enabled = true

// Assertf panics with a formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant: " + fmt.Sprintf(format, args...))
	}
}
