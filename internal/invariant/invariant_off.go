//go:build !invariants

// Package invariant provides structural assertions that compile to
// nothing in normal builds; see invariant.go for the enabled variant.
package invariant

// Enabled reports whether assertions are compiled in. In normal builds
// it is a constant false, so gated validation code is dead-stripped.
const Enabled = false

// Assertf does nothing in normal builds.
func Assertf(bool, string, ...any) {}
