// Package load parses and type-checks this module's packages using only
// the standard library, for consumption by the internal/analysis
// checkers. Module-local imports are resolved from source in dependency
// order; standard-library imports go through go/importer's source
// importer, so no compiled export data or external tooling is required.
//
// Test files are not loaded: the vet suite checks production code, and
// fixtures under testdata are loaded explicitly by the analysistest
// harness via LoadDir.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package. It satisfies
// analysis.Target.
type Package struct {
	Path  string // import path ("repro/internal/stree")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FileSet implements analysis.Target.
func (p *Package) FileSet() *token.FileSet { return p.Fset }

// ASTFiles implements analysis.Target.
func (p *Package) ASTFiles() []*ast.File { return p.Files }

// TypesPkg implements analysis.Target.
func (p *Package) TypesPkg() *types.Package { return p.Types }

// TypesInfo implements analysis.Target.
func (p *Package) TypesInfo() *types.Info { return p.Info }

// Loader loads packages of a single module rooted at a go.mod. It is
// not safe for concurrent use.
type Loader struct {
	ModuleRoot string // directory containing go.mod
	ModulePath string // module path declared in go.mod

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader locates the enclosing module by walking up from startDir to
// the nearest go.mod.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	for {
		modfile := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(modfile); err == nil {
			path := modulePath(string(data))
			if path == "" {
				return nil, fmt.Errorf("load: no module line in %s", modfile)
			}
			fset := token.NewFileSet()
			return &Loader{
				ModuleRoot: dir,
				ModulePath: path,
				fset:       fset,
				std:        importer.ForCompiler(fset, "source", nil),
				pkgs:       map[string]*Package{},
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("load: no go.mod above %s", startDir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer: module-local paths are loaded from
// source, everything else is delegated to the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.dirOf(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirOf maps a module-local import path to its directory.
func (l *Loader) dirOf(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load returns the module package with the given import path, loading
// and type-checking it (and its module dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirOf(path)
	if !ok {
		return nil, fmt.Errorf("load: %s is not in module %s", path, l.ModulePath)
	}
	return l.load(path, dir)
}

// LoadDir type-checks the package in dir under a caller-chosen import
// path. It is used by the analysistest harness to load fixture packages
// (which may import real module packages) and is cached like any other
// package.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if p, ok := l.pkgs[asPath]; ok {
		return p, nil
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(asPath, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// All loads every package in the module, in import-path order, skipping
// testdata, hidden directories and directories without buildable Go
// files under the current build context (so files gated behind tags
// such as "invariants" are excluded, exactly as in a default build).
func (l *Loader) All() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(p, 0); err != nil {
			if _, multi := err.(*build.MultiplePackageError); multi {
				return fmt.Errorf("load: %s: %w", p, err)
			}
			return nil // no buildable Go files here: not part of the build
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
