// Package fixture exercises wireerr rule 2: inside a strict package
// (the test registers this fixture's path in StrictPackages) every
// implicitly dropped error is flagged, not just wire API calls.
package fixture

import "bytes"

func bareLocalDrop(buf *bytes.Buffer) {
	buf.WriteByte('x') // want `wireerr: error result of WriteByte dropped by a bare statement`
}

func funcValueIsOutOfScope(f func() error) {
	// A function-typed value is not a *types.Func; the analyzer only
	// resolves named functions and methods.
	f()
}

func noErrorResultIsFine(buf *bytes.Buffer) {
	buf.Reset()
}

func checkedIsFine(buf *bytes.Buffer) error {
	return buf.WriteByte('y')
}

func explicitDiscardIsFine(buf *bytes.Buffer) {
	_ = buf.WriteByte('z')
}
