// Fixture for the snapshotmut analyzer: once a pointer has been
// published via atomic.Pointer.Store, the memory it reaches is frozen —
// stores through it or any alias must be flagged; re-binding the
// variable to a fresh value thaws it.
package snapshotmut

import "sync/atomic"

type snap struct {
	ids []int
	n   int
}

type holder struct {
	p atomic.Pointer[snap]
	v atomic.Value
}

func good(h *holder) {
	s := &snap{ids: nil, n: 1}
	h.p.Store(s)
	s = &snap{n: 2} // re-bound to a fresh value: thawed
	s.n = 3         // fine: mutates the unpublished replacement
	_ = s
}

func storeThenMutate(h *holder, s *snap) {
	h.p.Store(s)
	s.n = 1 // want "snapshotmut: store through s mutates memory published by atomic Store"
}

func mutateThenStore(h *holder, s *snap) {
	s.n = 1 // fine: mutation happens before publication
	h.p.Store(s)
}

func aliasEscapes(h *holder, s *snap) {
	h.p.Store(s)
	t := s
	t.n = 2 // want "snapshotmut: store through t mutates memory published by atomic Store"
}

func appendGrows(h *holder, s *snap) {
	h.p.Store(s)
	out := append(s.ids, 9) // want "snapshotmut: append to s may grow in place"
	_ = out
}

func sliceElem(h *holder, s *snap) {
	h.p.Store(s)
	s.ids[0] = 4 // want "snapshotmut: store through s mutates memory published by atomic Store"
}

func incDec(h *holder, s *snap) {
	h.p.Store(s)
	s.n++ // want "snapshotmut: s mutates memory published by atomic Store"
}

func branchFrozen(h *holder, s *snap, c bool) {
	if c {
		h.p.Store(s)
	}
	s.n = 5 // want "snapshotmut: store through s mutates memory published by atomic Store"
}

func valueStore(h *holder, s *snap) {
	h.v.Store(s)
	s.n = 6 // want "snapshotmut: store through s mutates memory published by atomic Store"
}

func valueStoreCopies(h *holder, n int) {
	h.v.Store(n) // plain value is copied into the interface box
	n++          // fine: the published copy is unaffected
	_ = n
}
