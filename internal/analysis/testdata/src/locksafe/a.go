// Package fixture exercises the locksafe analyzer: blocking operations
// while a mutex is held must be flagged; lock-free blocking, goroutine
// bodies and non-blocking selects must not.
package fixture

import (
	"io"
	"net"
	"sync"
	"time"
)

type pump struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn net.Conn
	wg   sync.WaitGroup
}

func (p *pump) sendUnderLock() {
	p.mu.Lock()
	p.ch <- 1 // want `locksafe: channel send while p\.mu is held`
	p.mu.Unlock()
}

func (p *pump) recvUnderDeferredUnlock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.ch // want `locksafe: channel receive while p\.mu is held`
}

func (p *pump) sleepUnderRLock() {
	p.rw.RLock()
	time.Sleep(time.Millisecond) // want `locksafe: call to time\.Sleep while p\.rw is held`
	p.rw.RUnlock()
}

func (p *pump) selectNoDefaultUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `locksafe: select without default while p\.mu is held`
	case v := <-p.ch:
		_ = v
	case p.ch <- 2:
	}
}

func (p *pump) nonblockingSelectIsFine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 3:
	default:
	}
}

func (p *pump) connWriteUnderLock() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.conn.Write([]byte("x")) // want `locksafe: Write on interface value`
	return err
}

func (p *pump) ioUnderLock(r io.Reader, buf []byte) {
	p.mu.Lock()
	_, _ = io.ReadFull(r, buf) // want `locksafe: call to io\.ReadFull while p\.mu is held`
	p.mu.Unlock()
}

func (p *pump) waitUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wg.Wait() // want `locksafe: call to WaitGroup\.Wait while p\.mu is held`
}

// block is a helper that blocks on its own; callers holding a lock must
// be flagged at the call site via the package fixpoint.
func (p *pump) block() {
	<-p.ch
}

func (p *pump) callsBlockingHelperUnderLock() {
	p.mu.Lock()
	p.block() // want `locksafe: call to block, which blocks`
	p.mu.Unlock()
}

func (p *pump) unlockedBranchIsTracked(closed bool) {
	p.mu.Lock()
	if closed {
		p.mu.Unlock()
		<-p.ch // lock released on this path: no diagnostic
		return
	}
	p.mu.Unlock()
	p.ch <- 4 // released here too
}

func (p *pump) goroutineDoesNotInheritLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.ch <- 5 // separate goroutine: not under our lock
	}()
}

func (p *pump) suppressed() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//pubsub:allow locksafe -- fixture: bounded handoff kept under the lock on purpose
	p.ch <- 6
}

func (p *pump) blockingWithoutLockIsFine() {
	<-p.ch
	time.Sleep(time.Millisecond)
	p.wg.Wait()
}

func (p *pump) loopForever() {
	for v := range p.ch {
		_ = v
	}
}

func (p *pump) spawnBlockingWorker() {
	// go f() returns immediately: launching a blocking worker is not a
	// blocking operation for the caller, and must not poison this
	// function's classification either.
	go p.loopForever()
}

func (p *pump) lockHeldAcrossLoopBody() {
	p.mu.Lock()
	for i := 0; i < 3; i++ {
		p.ch <- i // want `locksafe: channel send while p\.mu is held`
	}
	p.mu.Unlock()
}

func (p *pump) releasedOnOnePathIsNotHeldAtMerge(b bool) {
	p.mu.Lock()
	if b {
		p.mu.Unlock()
	}
	// Must-analysis: held only on the !b path, so the merge point is not
	// considered under the lock.
	<-p.ch
	if !b {
		p.mu.Unlock()
	}
}

func (p *pump) relockedInSwitchCases(mode int) {
	p.mu.Lock()
	switch mode {
	case 0:
		p.ch <- 7 // want `locksafe: channel send while p\.mu is held`
	case 1:
		p.mu.Unlock()
		<-p.ch // released on this path: no diagnostic
		p.mu.Lock()
	}
	p.wg.Wait() // want `locksafe: call to WaitGroup\.Wait while p\.mu is held`
	p.mu.Unlock()
}

func (p *pump) spawnsWorkerUnderLock() {
	p.mu.Lock()
	go p.loopForever()      // non-blocking launch: no diagnostic
	p.spawnBlockingWorker() // spawner is classified non-blocking: no diagnostic
	p.mu.Unlock()
}
