// Fixture for the atomicsafe analyzer: memory accessed via sync/atomic
// must never be read or written plainly, in either the typed
// (atomic.Uint64 et al.) or old-style (&x passed to atomic functions)
// form.
package atomicsafe

import "sync/atomic"

type counters struct {
	hits  atomic.Uint64
	old   uint64
	plain int
}

func typedGood(c *counters) uint64 {
	c.hits.Add(1)
	p := &c.hits // address-of is fine: aliasing is the pointer's problem
	_ = p
	return c.hits.Load()
}

func typedCopy(c *counters) {
	h := c.hits // want "atomicsafe: value of atomic type copied or read plainly"
	_ = h       // want "atomicsafe: value of atomic type copied or read plainly"
}

func typedCopyVar() {
	var v atomic.Int64
	v.Store(3)
	w := v // want "atomicsafe: value of atomic type copied or read plainly"
	_ = w  // want "atomicsafe: value of atomic type copied or read plainly"
}

func oldStyleField(c *counters) {
	atomic.AddUint64(&c.old, 1)
	c.old++    // want "atomicsafe: plain access of old"
	x := c.old // want "atomicsafe: plain access of old"
	_ = x
	atomic.LoadUint64(&c.old) // every atomic access stays fine
	c.plain++                 // untracked field: fine
}

var gauge int64

func oldStyleGlobal() int64 {
	atomic.StoreInt64(&gauge, 1)
	if gauge > 0 { // want "atomicsafe: plain access of gauge"
		return atomic.LoadInt64(&gauge)
	}
	return 0
}

func waived(c *counters) {
	atomic.AddUint64(&c.old, 1)
	//pubsub:allow atomicsafe -- single-goroutine init before publication
	c.old = 0
}
