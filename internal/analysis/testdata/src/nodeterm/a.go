// Package fixture exercises the nodeterm analyzer: wall-clock reads,
// global math/rand draws and map iteration must be flagged in
// deterministic code; seeded generators and sorted iteration must not.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `nodeterm: time\.Now\(\) in a deterministic package`
}

func timingMeasurement() time.Duration {
	//pubsub:allow nodeterm -- fixture: timing measurement, not simulation state
	start := time.Now()
	return time.Since(start)
}

func globalRand() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want `nodeterm: global rand\.Shuffle`
	return rand.Float64()              // want `nodeterm: global rand\.Float64`
}

func seededRandIsFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.5, 1, 100)
	return rng.Float64() + float64(z.Uint64())
}

func mapIteration(m map[string]int) []string {
	var out []string
	for k := range m { // want `nodeterm: map iteration order is randomised`
		out = append(out, k)
	}
	return out
}

func sortedIterationIsFine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//pubsub:allow nodeterm -- fixture: key collection is order-independent
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceIterationIsFine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
