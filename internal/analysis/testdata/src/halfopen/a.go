// Package fixture exercises the halfopen analyzer: raw composite
// literals of geometry.Interval / geometry.Rect must be flagged outside
// the geometry package; the validating constructors must not.
package fixture

import "repro/internal/geometry"

func rawInterval() geometry.Interval {
	return geometry.Interval{Lo: 0, Hi: 1} // want `halfopen: composite literal of geometry\.Interval`
}

func rawRect() geometry.Rect {
	// The nested Interval literals are part of the same defect: one
	// diagnostic for the outer literal only.
	return geometry.Rect{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}} // want `halfopen: composite literal of geometry\.Rect`
}

func constructorsAreFine() geometry.Rect {
	full := geometry.FullInterval()
	r := geometry.NewRect(0, 1, 2, 3)
	r = append(r, geometry.NewInterval(4, 5), full)
	return geometry.RectOf(r...)
}

func assemblyViaMakeIsFine(dims int) geometry.Rect {
	r := make(geometry.Rect, dims)
	for i := range r {
		r[i] = geometry.NewInterval(float64(i), float64(i+1))
	}
	return r
}

func suppressed() geometry.Interval {
	//pubsub:allow halfopen -- fixture: literal kept to exercise the directive
	return geometry.Interval{Lo: 7, Hi: 8}
}
