// Fixture for the allocfree analyzer: every construct that can hit the
// heap must be flagged when reachable from a //pubsub:hotpath root, and
// the amortized append-to-caller-storage idiom must stay clean.
package allocfree

import "sync"

type item struct {
	id  int
	buf []byte
}

type pool struct {
	mu    sync.Mutex
	items []item
	m     map[int]int
	sink  func()
}

//pubsub:hotpath
func hot(p *pool, out []int) []int {
	p.mu.Lock()
	out = append(out, 1) // amortized append into caller storage: allowed
	p.mu.Unlock()
	allocs(p)
	boxing(7)
	viaValue(p.sink)
	spawner(p)
	lazy(p)
	return out
}

func allocs(p *pool) {
	s := make([]int, 4) // want `allocfree: \[hot -> allocs\] make allocates`
	_ = s
	n := new(item) // want `allocfree: \[hot -> allocs\] new allocates`
	_ = n
	p.m[1] = 2    // want `allocfree: \[hot -> allocs\] map assignment may allocate`
	l := []int{3} // want `allocfree: \[hot -> allocs\] composite literal allocates backing storage`
	_ = l
	e := &item{id: 1} // want `allocfree: \[hot -> allocs\] address-taken composite literal escapes to the heap`
	_ = e
	a := "x" + "y" // want `allocfree: \[hot -> allocs\] string concatenation allocates`
	_ = a
	b := []byte("zz") // want `allocfree: \[hot -> allocs\] string conversion allocates`
	_ = b
	x := 1
	f := func() int { return x } // want `allocfree: \[hot -> allocs\] closure captures variables and escapes to the heap`
	_ = f
}

func sinkAny(v any) { _ = v }

func boxing(n int) {
	sinkAny(n)  // want `allocfree: \[hot -> boxing\] argument boxes a non-pointer value into an interface`
	sinkAny(&n) // pointer: one word, no box
}

func viaValue(fn func()) {
	fn() // want `allocfree: \[hot -> viaValue\] call through a function value cannot be proven allocation-free`
}

func spawner(p *pool) {
	go allocs(p) // want `allocfree: \[hot -> spawner\] go statement allocates a goroutine`
}

//pubsub:coldpath -- lazy materialization runs once per delivered event, off the match path
func lazy(p *pool) {
	p.items = append(p.items, item{}) // inside a declared boundary: not walked
}

//pubsub:coldpath -- stale boundary that nothing hot reaches // want `allocfree: //pubsub:coldpath on unreached is not reached from any //pubsub:hotpath root`
func unreached() {
	_ = make([]int, 1)
}
