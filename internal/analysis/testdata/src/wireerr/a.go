// Package fixture exercises wireerr rule 1: error returns from calls
// into internal/wire must not be dropped by a bare statement, go or
// defer anywhere in the module. Explicit discards and handled errors
// stay legal, as do drops of non-wire errors (outside strict packages).
package fixture

import (
	"bytes"

	"repro/internal/wire"
)

func bareFrameWrite(buf *bytes.Buffer, m *wire.Message) {
	wire.WriteMessage(buf, m) // want `wireerr: error result of wire\.WriteMessage dropped by a bare statement`
}

func deferredClose(c *wire.Client) {
	defer c.Close() // want `wireerr: error result of \(\*repro/internal/wire\.Client\)\.Close dropped by defer`
}

func goroutineUnsubscribe(c *wire.Client, id int) {
	go c.Unsubscribe(id) // want `wireerr: error result of \(\*repro/internal/wire\.Client\)\.Unsubscribe dropped by go`
}

func checkedIsFine(buf *bytes.Buffer, m *wire.Message) error {
	return wire.WriteMessage(buf, m)
}

func explicitDiscardIsFine(c *wire.Client) {
	_ = c.Close()
}

func nonWireDropIsFineHere(buf *bytes.Buffer) {
	buf.WriteByte('x')
}

func suppressed(c *wire.Client) {
	//pubsub:allow wireerr -- fixture: teardown path, close error is unactionable
	c.Close()
}
