// Fixture for the walorder analyzer: no path may acknowledge a record
// (nil-error return, commit-field store, commit-function call) while a
// durability guard's error is unchecked or known failed; guard errors
// must not be discarded; syncs must precede visibility.
package walorder

// File is the storage abstraction; declaring it (with Sync in the
// method set) makes this package active and seeds the guard set.
type File interface {
	Write(b []byte) (int, error)
	Sync() error
	Close() error
}

type wal struct {
	f File
	//pubsub:commit -- readers treat offsets below next as durable history
	next int64
}

func goodAppend(l *wal, b []byte) (int64, error) {
	n, err := l.f.Write(b)
	if err != nil {
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	_ = n
	off := l.next
	l.next++
	return off, nil
}

func ackBeforeCheck(l *wal, b []byte) error {
	_, err := l.f.Write(b)
	l.next++ // want "walorder: store to committed field before the error from durability guard Write"
	if err != nil {
		return err
	}
	return nil
}

func ackOnFailedPath(l *wal, b []byte) error {
	_, err := l.f.Write(b)
	if err != nil {
		return nil // want "walorder: return with a nil error on a path where durability guard Write"
	}
	return nil
}

func nilReturnBeforeCheck(l *wal, b []byte) error {
	_, err := l.f.Write(b)
	_ = err
	return nil // want "walorder: return with a nil error before the error from durability guard Write"
}

func discardBlank(l *wal) {
	_ = l.f.Sync() // want "walorder: error from durability guard Sync is discarded"
}

func discardExpr(l *wal) {
	l.f.Close() // want "walorder: error from durability guard Close is discarded"
}

func syncAfterVisible(l *wal) error {
	l.next++
	if err := l.f.Sync(); err != nil { // want "walorder: Sync fsyncs after the record was already made visible"
		return err
	}
	return nil
}

// helper has an error result and calls a guard, so it becomes a guard
// itself; callers must treat it like Sync.
func helper(l *wal) error {
	return l.f.Sync()
}

func derivedGuard(l *wal, b []byte) error {
	err := helper(l)
	l.next++ // want "walorder: store to committed field before the error from durability guard helper"
	return err
}

func propagateIsFine(l *wal, b []byte) error {
	_, err := l.f.Write(b)
	return err // propagating the unchecked error is the caller's problem
}

func waived(l *wal) {
	//pubsub:allow walorder -- shutdown path; the fail-stop latch reported the error already
	_ = l.f.Sync()
}
