package analysis

import (
	"go/ast"
	"go/token"
	"testing"
)

// The test domain is a set of strings (names assigned so far), with
// union join — a forward "may be assigned" analysis precise enough to
// exercise branching, joining and loop convergence.

type strset map[string]bool

func setFlow(entry strset) *Flow[strset] {
	return &Flow[strset]{
		Entry: entry,
		Transfer: func(s strset, n ast.Node) strset {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						s[id.Name] = true
					}
				}
			}
			return s
		},
		Join: func(a, b strset) strset {
			for k := range b {
				a[k] = true
			}
			return a
		},
		Equal: func(a, b strset) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(s strset) strset {
			c := make(strset, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
	}
}

// stateAtReturn runs the flow and returns the state on entry to the
// block containing the first ReturnStmt, after replaying that block's
// nodes up to the return.
func stateAtReturn(t *testing.T, body string, f *Flow[strset]) strset {
	t.Helper()
	g := parseBody(t, body)
	sol := Solve(g, f)
	for _, b := range g.Blocks {
		if !sol.Reached[b.Index] {
			continue
		}
		s := f.Clone(sol.In[b.Index])
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				return s
			}
			s = f.Transfer(s, n)
		}
	}
	t.Fatalf("no reachable return found")
	return nil
}

func TestFixpointBranchJoin(t *testing.T) {
	// a is assigned on both arms, b on one: at the join a is in the
	// union, b too (may-analysis).
	s := stateAtReturn(t, `
c := true
if c {
	a := 1
	_ = a
} else {
	a := 2
	b := 3
	_, _ = a, b
}
return`, setFlow(strset{}))
	if !s["a"] || !s["b"] || !s["c"] {
		t.Fatalf("state at return = %v, want a, b, c present", s)
	}
}

func TestFixpointLoopConverges(t *testing.T) {
	s := stateAtReturn(t, `
x := 0
for i := 0; i < 10; i++ {
	y := x
	_ = y
}
return`, setFlow(strset{}))
	for _, name := range []string{"x", "i", "y"} {
		if !s[name] {
			t.Fatalf("loop-assigned %q missing from state: %v", name, s)
		}
	}
}

func TestFixpointLoopBodyMayNotRun(t *testing.T) {
	// z is only assigned inside the loop; a must-analysis would drop
	// it, but the may-union keeps it. What we pin is that the solver
	// reached the exit with the pre-loop facts intact.
	s := stateAtReturn(t, `
x := 0
for x < 3 {
	x = x + 1
}
return`, setFlow(strset{}))
	if !s["x"] {
		t.Fatalf("x missing at exit: %v", s)
	}
}

func TestFixpointBranchRefinement(t *testing.T) {
	// Branch hook: on the true edge of `c` record "c:true", on the
	// false edge "c:false". The then-arm must see only the true fact.
	f := setFlow(strset{})
	f.Branch = func(s strset, cond ast.Expr, taken bool) strset {
		if id, ok := cond.(*ast.Ident); ok {
			if taken {
				s[id.Name+":true"] = true
			} else {
				s[id.Name+":false"] = true
			}
		}
		return s
	}
	g := parseBody(t, `
c := true
if c {
	a := 1
	_ = a
}
return`)
	sol := Solve(g, f)
	// Find the block containing `a := 1`: its In must contain c:true
	// and not c:false.
	for _, b := range g.Blocks {
		if !sol.Reached[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "a" {
				in := sol.In[b.Index]
				if !in["c:true"] {
					t.Fatalf("then-arm In = %v, want c:true", in)
				}
				if in["c:false"] {
					t.Fatalf("then-arm In = %v, must not contain c:false", in)
				}
				return
			}
		}
	}
	t.Fatalf("then-arm block not found")
}

func TestFixpointUnreachableSkipped(t *testing.T) {
	g := parseBody(t, `
x := 1
return
_ = x`)
	sol := Solve(g, setFlow(strset{}))
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				if sol.Reached[i] {
					t.Fatalf("dead block %d marked reached", i)
				}
			}
		}
	}
}

func TestFixpointDeferSeen(t *testing.T) {
	// Defer statements appear as nodes; a transfer that records them
	// must see the defer exactly once on the straight path.
	count := 0
	f := setFlow(strset{})
	base := f.Transfer
	f.Transfer = func(s strset, n ast.Node) strset {
		if _, ok := n.(*ast.DeferStmt); ok {
			count++
		}
		return base(s, n)
	}
	g := parseBody(t, "defer func() {}()\nreturn")
	Solve(g, f)
	if count != 1 {
		t.Fatalf("defer transferred %d times, want 1", count)
	}
}

func TestFixpointTerminationBackstop(t *testing.T) {
	// A domain that never stabilises (every Join adds a fresh fact)
	// must still terminate via the per-block visit cap.
	n := 0
	f := &Flow[strset]{
		Entry: strset{},
		Transfer: func(s strset, _ ast.Node) strset {
			n++
			s[string(rune('a'+n%26))+string(rune('0'+n%10))] = true
			return s
		},
		Join: func(a, b strset) strset {
			for k := range b {
				a[k] = true
			}
			a["extra"+string(rune('0'+len(a)%10))] = true
			return a
		},
		Equal: func(a, b strset) bool { return false }, // never converges
		Clone: func(s strset) strset {
			c := make(strset, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
	}
	g := parseBody(t, "x := 0\nfor {\nx = x + 1\n}")
	Solve(g, f) // must return, not hang
}
