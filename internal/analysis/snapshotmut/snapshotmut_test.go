package snapshotmut

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSnapshotmut(t *testing.T) {
	analysistest.Run(t, "../testdata/src/snapshotmut", "fixture/snapshotmut", Analyzer)
}
