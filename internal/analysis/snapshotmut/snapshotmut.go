// Package snapshotmut enforces frozen-snapshot immutability: once a
// value has been published through atomic.Pointer.Store (or
// atomic.Value.Store), readers may observe it at any time, so no code
// path may mutate memory reachable from it afterwards.
//
// The analysis is a forward dataflow over each function's CFG. Passing
// a variable to Store freezes it; assigning an expression rooted at a
// frozen variable to another variable freezes that alias too;
// re-binding a variable to a fresh value thaws it. Any store through a
// frozen root — field assignment, index assignment, IncDec, append —
// is reported. The check is intraprocedural (aliases escaping into
// other functions are out of scope); it exists to catch the classic
// in-function slip of "Store(snap) ... snap.field = x" that invalidates
// the lock-free readers' view.
package snapshotmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the snapshotmut analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc:  "no stores to memory reachable from a value after atomic Store publishes it",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
			// Function literals get their own independent walk: the
			// frozen set does not flow into them (conservatively
			// under-approximate rather than false-positive).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLit(pass, lit)
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// frozen is the abstract state: variables whose pointees are published,
// mapped to the Store position that froze them.
type frozen map[types.Object]token.Pos

func flow(pass *analysis.Pass) *analysis.Flow[frozen] {
	return &analysis.Flow[frozen]{
		Entry: frozen{},
		Transfer: func(s frozen, n ast.Node) frozen {
			return transfer(pass, s, n)
		},
		Join: func(a, b frozen) frozen {
			// May-analysis: frozen on any incoming path stays frozen.
			for k, v := range b {
				if _, ok := a[k]; !ok {
					a[k] = v
				}
			}
			return a
		},
		Equal: func(a, b frozen) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
		Clone: func(s frozen) frozen {
			c := make(frozen, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	checkBody(pass, fd.Body)
}

func checkLit(pass *analysis.Pass, lit *ast.FuncLit) {
	checkBody(pass, lit.Body)
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)
	f := flow(pass)
	sol := analysis.Solve(g, f)
	// Report pass: replay each reached block and flag mutations of
	// frozen memory at the state current before the node executes.
	for _, b := range g.Blocks {
		if !sol.Reached[b.Index] {
			continue
		}
		s := f.Clone(sol.In[b.Index])
		for _, n := range b.Nodes {
			reportMutations(pass, s, n)
			s = f.Transfer(s, n)
		}
	}
}

// transfer updates the frozen set across one CFG node.
func transfer(pass *analysis.Pass, s frozen, n ast.Node) frozen {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if pos, arg := storeCall(pass, call); arg != nil {
				if obj := rootVar(pass, arg); obj != nil {
					s[obj] = pos
				}
			}
		}
	case *ast.AssignStmt:
		// Store may also appear in an expression position of an
		// assignment RHS (rare: Store returns nothing, so only via
		// CompareAndSwap-like patterns; Swap returns the old value).
		for _, rhs := range n.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if pos, arg := storeCall(pass, call); arg != nil {
						if obj := rootVar(pass, arg); obj != nil {
							s[obj] = pos
						}
					}
				}
				return true
			})
		}
		// Alias propagation and re-binding.
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := lhsObj(pass, id)
				if obj == nil {
					continue
				}
				if root := frozenRoot(pass, s, n.Rhs[i]); root.IsValid() {
					s[obj] = root // new alias of frozen memory
				} else {
					delete(s, obj) // re-bound to fresh value: thawed
				}
			}
		}
	case *ast.GoStmt, *ast.DeferStmt:
		// A Store inside go/defer call arguments executes now only for
		// the arguments; keep it simple — handle direct Store calls.
		var call *ast.CallExpr
		if g, ok := n.(*ast.GoStmt); ok {
			call = g.Call
		} else {
			call = n.(*ast.DeferStmt).Call
		}
		if pos, arg := storeCall(pass, call); arg != nil {
			if obj := rootVar(pass, arg); obj != nil {
				s[obj] = pos
			}
		}
	}
	return s
}

// reportMutations flags stores through frozen roots at node n given
// pre-state s.
func reportMutations(pass *analysis.Pass, s frozen, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			// A plain `x = ...` re-binds (handled by transfer); only
			// stores THROUGH x mutate published memory: x.f = v,
			// x[i] = v, *x = v.
			switch ast.Unparen(lhs).(type) {
			case *ast.Ident:
				continue
			}
			if pos, obj := frozenBase(pass, s, lhs); pos.IsValid() {
				pass.Reportf(n.Pos(),
					"snapshotmut: store through %s mutates memory published by atomic Store at %s; build a new value and Store that instead",
					obj.Name(), pass.Fset.Position(pos))
			}
		}
		for _, rhs := range n.Rhs {
			reportAppendsAndMutators(pass, s, rhs)
		}
	case *ast.IncDecStmt:
		if pos, obj := frozenBase(pass, s, n.X); pos.IsValid() {
			pass.Reportf(n.Pos(),
				"snapshotmut: %s mutates memory published by atomic Store at %s; build a new value and Store that instead",
				obj.Name(), pass.Fset.Position(pos))
		}
	case *ast.ExprStmt:
		reportAppendsAndMutators(pass, s, n.X)
	}
	// append(frozen.f, ...) in any expression position.
	if e, ok := n.(ast.Expr); ok {
		reportAppendsAndMutators(pass, s, e)
	}
}

func reportAppendsAndMutators(pass *analysis.Pass, s frozen, e ast.Expr) {
	ast.Inspect(e, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if pos, obj := frozenBase(pass, s, call.Args[0]); pos.IsValid() {
			pass.Reportf(call.Pos(),
				"snapshotmut: append to %s may grow in place, mutating memory published by atomic Store at %s",
				obj.Name(), pass.Fset.Position(pos))
		}
		return true
	})
}

// storeCall recognises (atomic.Pointer[T]).Store / (atomic.Value).Store
// and Swap, returning the published argument.
func storeCall(pass *analysis.Pass, call *ast.CallExpr) (token.Pos, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return token.NoPos, nil
	}
	switch fn.Name() {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return token.NoPos, nil
	}
	// The published value is the last argument (new for CAS).
	if len(call.Args) == 0 {
		return token.NoPos, nil
	}
	return call.Pos(), call.Args[len(call.Args)-1]
}

// rootVar resolves an expression to the local/parameter variable it
// names, if any: x, (x). Only reference-typed variables (pointer,
// slice, map) are returned: storing a plain value into atomic.Value
// copies it into the interface box, so later mutation of the local is
// harmless.
func rootVar(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return v
	}
	return nil
}

func lhsObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// frozenRoot reports whether expression e is rooted at a frozen
// variable (x, x.f, x[i], *x, chains thereof), returning the freeze
// position.
func frozenRoot(pass *analysis.Pass, s frozen, e ast.Expr) token.Pos {
	pos, _ := frozenBase(pass, s, e)
	return pos
}

// frozenBase walks to the base variable of an lvalue/expression chain
// and reports whether it is frozen.
func frozenBase(pass *analysis.Pass, s frozen, e ast.Expr) (token.Pos, types.Object) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			if pos, ok := s[obj]; ok {
				return pos, obj
			}
		}
	case *ast.SelectorExpr:
		return frozenBase(pass, s, e.X)
	case *ast.IndexExpr:
		return frozenBase(pass, s, e.X)
	case *ast.StarExpr:
		return frozenBase(pass, s, e.X)
	case *ast.SliceExpr:
		return frozenBase(pass, s, e.X)
	}
	return token.NoPos, nil
}
