// Package atomicsafe enforces that memory accessed atomically is never
// accessed plainly. It catches two flavours of the mistake:
//
//  1. Typed atomics: a value of a sync/atomic type (atomic.Uint64,
//     atomic.Pointer[T], atomic.Value, ...) may only be used as the
//     receiver of a method call or have its address taken — copying
//     one (assignment, value argument, range copy) tears the
//     underlying word and breaks the noCopy contract.
//  2. Old-style atomics: once &x is passed to a sync/atomic function
//     (atomic.AddUint64(&x, 1), atomic.StoreInt32(&x, v), ...), every
//     other access to x must also go through sync/atomic — a plain
//     x++ or x = 0 races with the atomic users.
//
// The check is per package: an object's atomic discipline is visible
// wherever the object is, because mixed access is a data race no
// matter which file performs it.
package atomicsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc:  "atomically-accessed memory must never be read or written plainly",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, atomicObjs: map[types.Object][]token.Pos{}}
	// Pass A: find old-style atomic users — objects whose address
	// flows into a sync/atomic call.
	for _, f := range pass.Files {
		ast.Inspect(f, c.collectOldStyle)
	}
	// Pass B: flag plain accesses of those objects, and misuse of
	// typed atomics.
	for _, f := range pass.Files {
		c.checkFile(f)
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// atomicObjs maps variables/fields accessed via old-style
	// sync/atomic calls to the positions of those calls.
	atomicObjs map[types.Object][]token.Pos
}

// atomicCall returns the sync/atomic package function a call invokes
// (old-style AddUint64/LoadPointer/...), or nil.
func (c *checker) atomicCall(call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if _, isMethod := c.pass.TypesInfo.Selections[sel]; isMethod {
		return nil // typed-atomic method, not old style
	}
	return fn
}

func (c *checker) collectOldStyle(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	if c.atomicCall(call) == nil {
		return true
	}
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		if obj := c.rootObj(un.X); obj != nil {
			c.atomicObjs[obj] = append(c.atomicObjs[obj], call.Pos())
		}
	}
	return true
}

// rootObj resolves the variable or field object named by an lvalue
// expression: x, s.f, (*p).f. Index expressions are not tracked (the
// whole element set would need aliasing analysis).
func (c *checker) rootObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return c.pass.TypesInfo.Uses[e.Sel]
	case *ast.StarExpr:
		return c.rootObj(e.X)
	}
	return nil
}

// checkFile walks one file with a parent stack so each atomic-typed
// expression and old-style atomic object can be judged by how its
// enclosing expression uses it. ast.Inspect's nil callback marks
// post-order, which pops the stack.
func (c *checker) checkFile(f *ast.File) {
	var parents []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			parents = parents[:len(parents)-1]
			return true
		}
		c.checkNode(n, parents)
		parents = append(parents, n)
		return true
	})
}

func (c *checker) checkNode(n ast.Node, parents []ast.Node) {
	switch n := n.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[n]
		if obj == nil {
			return
		}
		// Fields are judged at their SelectorExpr, where the receiver
		// chain is visible.
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return
		}
		if posns, tracked := c.atomicObjs[obj]; tracked {
			if !c.accessIsAtomic(parents) {
				c.pass.Reportf(n.Pos(),
					"atomicsafe: plain access of %s, which is accessed atomically at %s; use sync/atomic for every access",
					obj.Name(), c.pass.Fset.Position(posns[0]))
			}
		}
		if isAtomicType(c.pass.TypesInfo.TypeOf(n)) {
			c.checkTypedUse(n, n.Pos(), parents)
		}
	case *ast.SelectorExpr:
		// Field selections of atomic type: judged here so the inner
		// Ident pass doesn't need Selections handling.
		if sel, ok := c.pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
			obj := sel.Obj()
			if posns, tracked := c.atomicObjs[obj]; tracked {
				if !c.accessIsAtomic(parents) {
					c.pass.Reportf(n.Pos(),
						"atomicsafe: plain access of %s, which is accessed atomically at %s; use sync/atomic for every access",
						obj.Name(), c.pass.Fset.Position(posns[0]))
				}
			}
			if isAtomicType(c.pass.TypesInfo.TypeOf(n)) {
				c.checkTypedUse(n, n.Pos(), parents)
			}
		}
	}
}

// accessIsAtomic reports whether the innermost interesting parent makes
// this use safe: operand of &, or inside the argument of a sync/atomic
// call (the & case covers that anyway), or a selector hop on the way to
// a method call.
func (c *checker) accessIsAtomic(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return true
			}
			return false
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.StarExpr:
			continue
		default:
			return false
		}
	}
	return false
}

// checkTypedUse flags uses of a sync/atomic-typed expression that are
// neither a method-call receiver nor an address-of operand.
func (c *checker) checkTypedUse(expr ast.Expr, pos token.Pos, parents []ast.Node) {
	// Walk outward through parens.
	child := ast.Node(expr)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.SelectorExpr:
			if p.X != child {
				return // we are the Sel of an outer selector; fine
			}
			// recv.Method(...) — selecting a method off the atomic is
			// the intended use; selecting a field of an atomic struct
			// type would also land here, but sync/atomic types export
			// no fields.
			if c.selectionIsMethod(p) {
				return
			}
			child = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return // &field passed along; aliasing is the pointer's problem
			}
		case *ast.CompositeLit:
			// atomic zero value inside a composite literal is
			// initialisation, not a copy of an in-use atomic.
			return
		case *ast.KeyValueExpr:
			return
		}
		break
	}
	c.pass.Reportf(pos,
		"atomicsafe: value of atomic type copied or read plainly; atomics must be used only via their methods or by address")
}

func (c *checker) selectionIsMethod(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// isAtomicType reports whether t (or what it points to after one
// deref) is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
