package atomicsafe

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicsafe(t *testing.T) {
	analysistest.Run(t, "../testdata/src/atomicsafe", "fixture/atomicsafe", Analyzer)
}
