// Package wireerr flags silently dropped errors around the wire
// protocol layer.
//
// Two rules:
//
//  1. Everywhere in the module: a call into internal/wire whose results
//     include an error (frame writes, Close, round trips, ...) must not
//     appear as a bare statement — the stream is poisoned or the
//     connection leaked exactly when such an error fires.
//  2. Inside the packages listed in StrictPackages (internal/wire
//     itself): every error-returning call is held to the same standard,
//     whoever it belongs to. Network code does not get to ignore
//     errors implicitly.
//
// Deliberate discards stay legal and visible: assign to the blank
// identifier ("_ = conn.Close()").
package wireerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// WirePath is the import path of the protected protocol package.
const WirePath = "repro/internal/wire"

// StrictPackages lists package paths in which rule 2 applies: every
// implicitly dropped error is flagged, not just wire API calls. Tests
// may add fixture paths.
var StrictPackages = map[string]bool{
	WirePath: true,
}

// Analyzer flags implicitly dropped errors from wire API calls
// (everywhere) and from any call (inside StrictPackages).
var Analyzer = &analysis.Analyzer{
	Name: "wireerr",
	Doc: "flags error returns from internal/wire frame writes and Close " +
		"that are dropped by a bare statement; handle them or discard " +
		"explicitly with _ =",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	strict := StrictPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				how = "dropped by a bare statement"
			case *ast.GoStmt:
				call = n.Call
				how = "dropped by go"
			case *ast.DeferStmt:
				call = n.Call
				how = "dropped by defer"
			default:
				return true
			}
			if call == nil {
				return true
			}
			check(pass, call, strict, how)
			return true
		})
	}
	return nil, nil
}

func check(pass *analysis.Pass, call *ast.CallExpr, strict bool, how string) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	fromWire := fn.Pkg() != nil && fn.Pkg().Path() == WirePath
	if !fromWire && !strict {
		return
	}
	what := fn.Name()
	if fromWire {
		what = "wire." + what
		if recv := sig.Recv(); recv != nil {
			what = fn.FullName()
		}
	}
	pass.Reportf(call.Pos(),
		"wireerr: error result of %s %s; handle it or discard explicitly with _ =",
		what, how)
}

// calleeFunc resolves the called function or method, or nil for
// builtins, function-typed variables and type conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// returnsError reports whether any result of the signature is exactly
// the built-in error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
