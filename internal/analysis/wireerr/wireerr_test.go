package wireerr

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestWireerr(t *testing.T) {
	analysistest.Run(t, "../testdata/src/wireerr", "fixture/wireerr", Analyzer)
}

func TestWireerrStrict(t *testing.T) {
	const path = "fixture/wireerrstrict"
	StrictPackages[path] = true
	defer delete(StrictPackages, path)
	analysistest.Run(t, "../testdata/src/wireerrstrict", path, Analyzer)
}
