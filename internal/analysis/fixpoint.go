package analysis

import "go/ast"

// Flow describes a forward dataflow problem over a CFG in terms of an
// abstract state S. The solver owns sharing discipline: Transfer and
// Branch receive a state the callee may mutate and must return the
// state to propagate (returning the argument is fine); Clone is used by
// the solver whenever one state flows to several places.
type Flow[S any] struct {
	// Entry is the state at function entry.
	Entry S
	// Transfer computes the state after executing one CFG node.
	Transfer func(S, ast.Node) S
	// Branch optionally refines the state along a conditional edge:
	// cond evaluated to taken. Nil means no refinement.
	Branch func(S, ast.Expr, bool) S
	// Join merges two states at a control-flow merge point.
	Join func(S, S) S
	// Equal reports whether two states are equivalent (fixpoint test).
	Equal func(S, S) bool
	// Clone returns an independent copy of a state.
	Clone func(S) S
}

// Solution holds the result of Solve: the fixpoint state at entry to
// each reached block. Report passes replay each reached block's nodes
// from In[block] through the same Transfer to get per-node states.
type Solution[S any] struct {
	// In maps block index to the joined entry state. Only blocks with
	// Reached[i] hold meaningful values.
	In []S
	// Reached marks blocks that some execution path can enter.
	Reached []bool
}

// maxBlockVisits bounds how often a single block is reprocessed, as a
// termination backstop for abstract domains without finite height. Real
// lattices here (lock sets, freeze sets, guard maps) converge in a
// handful of iterations; hitting the cap leaves a sound-enough
// under-approximation rather than hanging the build.
const maxBlockVisits = 1000

// Solve runs a forward worklist iteration of the dataflow problem f
// over g and returns the per-block fixpoint.
func Solve[S any](g *CFG, f *Flow[S]) *Solution[S] {
	n := len(g.Blocks)
	sol := &Solution[S]{In: make([]S, n), Reached: make([]bool, n)}
	visits := make([]int, n)

	sol.In[g.Entry.Index] = f.Clone(f.Entry)
	sol.Reached[g.Entry.Index] = true

	work := []*Block{g.Entry}
	queued := make([]bool, n)
	queued[g.Entry.Index] = true

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		if visits[blk.Index] >= maxBlockVisits {
			continue
		}
		visits[blk.Index]++

		state := f.Clone(sol.In[blk.Index])
		for _, node := range blk.Nodes {
			state = f.Transfer(state, node)
		}
		for _, e := range blk.Succs {
			out := f.Clone(state)
			if e.Cond != nil && f.Branch != nil {
				out = f.Branch(out, e.Cond, e.Taken)
			}
			i := e.To.Index
			if !sol.Reached[i] {
				sol.In[i] = out
				sol.Reached[i] = true
			} else {
				// Join into a clone so Equal compares against the
				// previous state even if Join mutates its argument.
				old := sol.In[i]
				joined := f.Join(f.Clone(old), out)
				if f.Equal(joined, old) {
					continue
				}
				sol.In[i] = joined
			}
			if !queued[i] {
				work = append(work, e.To)
				queued[i] = true
			}
		}
	}
	return sol
}
