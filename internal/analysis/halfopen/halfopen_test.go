package halfopen

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestHalfopen(t *testing.T) {
	analysistest.Run(t, "../testdata/src/halfopen", "fixture/halfopen", Analyzer)
}
