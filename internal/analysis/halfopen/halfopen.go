// Package halfopen flags composite-literal construction of
// geometry.Interval and geometry.Rect outside the geometry package.
//
// The half-open (lo, hi] interval discipline is a package invariant: the
// validating constructors (geometry.NewInterval, geometry.NewRect,
// geometry.RectOf) are the supported way to build these values, and raw
// literals in other packages bypass them — historically the source of
// NaN bounds and inverted intervals slipping into the index builders.
package halfopen

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// GeometryPath is the import path of the package whose types are
// protected. Literals inside this package itself are exempt.
const GeometryPath = "repro/internal/geometry"

// Analyzer flags geometry.Interval / geometry.Rect composite literals
// outside the geometry package.
var Analyzer = &analysis.Analyzer{
	Name: "halfopen",
	Doc: "flags raw geometry.Interval/Rect composite literals outside " +
		"internal/geometry; use NewInterval/NewRect/RectOf so the half-open " +
		"(lo, hi] discipline is validated at the boundary",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == GeometryPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		var flagged []*ast.CompositeLit
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			name := protectedTypeName(pass, lit)
			if name == "" {
				return true
			}
			// Suppress nested reports: an Interval literal inside an
			// already-flagged Rect literal is the same defect. Inspect
			// visits outer literals first, so containment is sufficient.
			for _, outer := range flagged {
				if outer.Pos() <= lit.Pos() && lit.End() <= outer.End() {
					return true
				}
			}
			flagged = append(flagged, lit)
			pass.Reportf(lit.Pos(),
				"halfopen: composite literal of geometry.%s outside %s bypasses the validating constructors; use geometry.NewInterval / geometry.NewRect / geometry.RectOf",
				name, GeometryPath)
			return true
		})
	}
	return nil, nil
}

// protectedTypeName reports whether the literal's type is
// geometry.Interval or geometry.Rect, returning the bare type name, or
// "" otherwise. Implicitly typed element literals (e.g. {Lo: 0, Hi: 1}
// inside a Rect literal) are resolved through the types map as well.
func protectedTypeName(pass *analysis.Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != GeometryPath {
		return ""
	}
	switch obj.Name() {
	case "Interval", "Rect":
		return obj.Name()
	}
	return ""
}
