// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expecting diagnostics carries a trailing comment of the
// form
//
//	// want "regexp" `another regexp`
//
// Each quoted pattern (double-quoted or backquoted) must be matched (as
// an unanchored regexp) by a distinct diagnostic reported on that line,
// and every diagnostic must be matched by some pattern.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)\\s*$")
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), applies the analyzer, and reports mismatches
// between its diagnostics and the fixture's want comments. asPath sets
// the fixture's synthetic import path, which some analyzers use for
// package-scoped behavior.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("analysistest: loading fixture: %v", err)
	}
	diags, err := analysis.RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(diags))
	for key, patterns := range wants {
		for _, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				t.Errorf("%s: bad want pattern %q: %v", key, p, err)
				continue
			}
			found := false
			for i, d := range diags {
				if matched[i] {
					continue
				}
				if lineKey(pkg.Fset, d.Pos) == key && re.MatchString(d.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no diagnostic matching %q", key, p)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", lineKey(pkg.Fset, d.Pos), d.Message)
		}
	}
}

// collectWants scans the fixture's comments for want annotations,
// returning file:line -> expected message patterns.
func collectWants(t *testing.T, pkg *load.Package) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.ContainsAny(c.Text, "\"`") {
						t.Errorf("%s: malformed want comment: %s", lineKey(pkg.Fset, c.Pos()), c.Text)
					}
					continue
				}
				key := lineKey(pkg.Fset, c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, q, err)
						continue
					}
					wants[key] = append(wants[key], pattern)
				}
			}
		}
	}
	return wants
}

func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
