// Package analysis is a dependency-free micro-framework for writing
// project-specific static analyzers, modelled on the API shape of
// golang.org/x/tools/go/analysis so the checkers under it can be ported
// to the upstream framework mechanically. It exists because this module
// deliberately has no external dependencies: analyzers receive parsed,
// type-checked packages (see the sibling load package) and report
// position-tagged diagnostics.
//
// Diagnostics can be suppressed at a call site with a directive comment:
//
//	//pubsub:allow <analyzer>[,<analyzer>...] -- reason
//
// placed either at the end of the offending line or on the line
// immediately above it. Suppressions are applied by RunAnalyzer, so both
// the pubsub-vet driver and the analysistest harness honor them. Every
// suppression must carry a reason; bare directives are reported as
// diagnostics themselves.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Mirrors x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pubsub:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the package in pass and reports diagnostics via
	// pass.Report or pass.Reportf. The returned value is unused by this
	// framework but kept for API parity with x/tools.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Target is the input to RunAnalyzer: a parsed, type-checked package.
// load.Package satisfies it.
type Target interface {
	FileSet() *token.FileSet
	ASTFiles() []*ast.File
	TypesPkg() *types.Package
	TypesInfo() *types.Info
}

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics, sorted by position, with //pubsub:allow suppressions
// already applied. Misused directives (no reason, unknown placement) are
// returned as diagnostics of the pseudo-analyzer "directive".
func RunAnalyzer(t Target, a *Analyzer) ([]Diagnostic, error) {
	fset := t.FileSet()
	sup, bad := collectDirectives(fset, t.ASTFiles())
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     t.ASTFiles(),
		Pkg:       t.TypesPkg(),
		TypesInfo: t.TypesInfo(),
		Report: func(d Diagnostic) {
			if sup.allows(fset, a.Name, d.Pos) {
				return
			}
			diags = append(diags, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags = append(diags, bad...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
