// Package analysis is a dependency-free micro-framework for writing
// project-specific static analyzers, modelled on the API shape of
// golang.org/x/tools/go/analysis so the checkers under it can be ported
// to the upstream framework mechanically. It exists because this module
// deliberately has no external dependencies: analyzers receive parsed,
// type-checked packages (see the sibling load package) and report
// position-tagged diagnostics.
//
// Beyond per-package AST walks, the package provides the building blocks
// for interprocedural dataflow analyses: per-function control-flow
// graphs (BuildCFG), a generic forward-fixpoint solver with
// path-sensitive branching (Solve), and a module-wide call graph
// (BuildCallGraph). Analyzers that need to see the whole module at once
// set RunModule instead of Run and receive every loaded package in one
// ModulePass.
//
// Diagnostics can be suppressed at a call site with a directive comment:
//
//	//pubsub:allow <analyzer>[,<analyzer>...] -- reason
//
// placed either at the end of the offending line or on the line
// immediately above it. Suppressions are applied by RunAnalyzer, so both
// the pubsub-vet driver and the analysistest harness honor them. Every
// suppression must carry a reason; bare directives are reported as
// diagnostics themselves, and so are waivers that no longer suppress
// anything (see Suppressions.Unused).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Mirrors x/tools' analysis.Analyzer.
// Exactly one of Run and RunModule must be set: Run for per-package
// checks, RunModule for interprocedural checks that need every package
// at once (call-graph reachability, cross-package contracts).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pubsub:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the package in pass and reports diagnostics via
	// pass.Report or pass.Reportf. The returned value is unused by this
	// framework but kept for API parity with x/tools.
	Run func(*Pass) (any, error)
	// RunModule inspects all packages of a module pass at once. Set it
	// instead of Run for interprocedural analyzers.
	RunModule func(*ModulePass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one analyzer diagnostic plus driver-level metadata: which
// analyzer produced it and whether a //pubsub:allow waiver covered it.
// The pubsub-vet driver collects Findings so that -json output can show
// waived diagnostics without them counting as failures.
type Finding struct {
	Analyzer string
	Diagnostic
	Waived bool
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ModulePass carries every loaded package through one module-level
// analyzer run.
type ModulePass struct {
	Analyzer *Analyzer
	// Fset is shared by all targets (the loader uses one FileSet).
	Fset    *token.FileSet
	Targets []Target
	Report  func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Target is the input to RunAnalyzer: a parsed, type-checked package.
// load.Package satisfies it.
type Target interface {
	FileSet() *token.FileSet
	ASTFiles() []*ast.File
	TypesPkg() *types.Package
	TypesInfo() *types.Info
}

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics, sorted by position, with //pubsub:allow suppressions
// already applied. Misused directives (no reason, unknown placement) are
// returned as diagnostics of the pseudo-analyzer "directive". A
// module-level analyzer (RunModule set) is run over the single package,
// which is what the analysistest harness needs.
func RunAnalyzer(t Target, a *Analyzer) ([]Diagnostic, error) {
	fset := t.FileSet()
	sup, bad := collectDirectives(fset, t.ASTFiles())
	findings, err := runWith(sup, []Target{t}, a)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, f := range findings {
		if !f.Waived {
			diags = append(diags, f.Diagnostic)
		}
	}
	diags = append(diags, bad...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunWith applies one analyzer to the given targets using a shared
// suppression table and returns every finding — including waived ones,
// flagged as such — sorted by position. The caller owns sup and is
// expected to have Collected directives from all relevant files first;
// usage is tracked on sup so that stale waivers can be reported once
// every analyzer has run. For a per-package analyzer (Run set) each
// target gets its own pass; for a module analyzer (RunModule set) all
// targets are handed over in one ModulePass.
func RunWith(sup *Suppressions, targets []Target, a *Analyzer) ([]Finding, error) {
	return runWith(sup, targets, a)
}

func runWith(sup *Suppressions, targets []Target, a *Analyzer) ([]Finding, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	if (a.Run == nil) == (a.RunModule == nil) {
		return nil, fmt.Errorf("%s: exactly one of Run and RunModule must be set", a.Name)
	}
	fset := targets[0].FileSet()
	var findings []Finding
	report := func(d Diagnostic) {
		findings = append(findings, Finding{
			Analyzer:   a.Name,
			Diagnostic: d,
			Waived:     sup.Allows(fset, a.Name, d.Pos),
		})
	}
	if a.RunModule != nil {
		pass := &ModulePass{Analyzer: a, Fset: fset, Targets: targets, Report: report}
		if _, err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	} else {
		for _, t := range targets {
			pass := &Pass{
				Analyzer:  a,
				Fset:      t.FileSet(),
				Files:     t.ASTFiles(),
				Pkg:       t.TypesPkg(),
				TypesInfo: t.TypesInfo(),
				Report:    report,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}
