// Package walorder path-sensitively verifies the durability ordering
// rule introduced with the write-ahead log: no code path may
// acknowledge a record (return a nil error, call a //pubsub:commit
// function, store to a //pubsub:commit field) while the error of a
// preceding durability guard — a write, fsync, truncate or close of
// log storage — is unchecked or known failed. It also flags guard
// errors that are discarded outright, and fsyncs issued after the
// record was already made visible (sync-after-publish reorders the
// crash-consistency contract).
//
// Guards are discovered, not listed: the seed set is the methods of
// any module interface named File whose method set includes Sync (the
// WAL's storage abstraction), plus os.Truncate/os.Remove; any module
// function with an error result that calls a guard becomes a guard
// itself, so the property propagates through syncLocked, rotateLocked,
// Log.Append and the broker's durable publish without annotation.
//
// The analyzer is module-scoped but self-limiting: it only reports
// inside packages that declare a commit mark or a File storage
// interface. Other packages (examples, CLIs) consume the durable API
// at a level where dropping an error is a UX choice, not a
// durability-ordering bug.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the walorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "walorder",
	Doc:       "no ack/visibility before durability-guard errors are checked",
	RunModule: run,
}

// status is the abstract state of one guard-error variable, ordered by
// badness for joins.
type status int

const (
	stOK        status = iota // proven nil on this path
	stFailed                  // proven non-nil on this path
	stUnchecked               // not yet branched on
)

type errInfo struct {
	st   status
	desc string // callee description for diagnostics
	pos  token.Pos
}

// wstate is the per-path dataflow state.
type wstate struct {
	errs    map[types.Object]errInfo
	visible bool
}

func run(pass *analysis.ModulePass) (any, error) {
	marks := analysis.NewMarks()
	for _, t := range pass.Targets {
		marks.Collect(t.FileSet(), t.ASTFiles(), t.TypesInfo())
	}
	graph := analysis.BuildCallGraph(pass.Targets)

	c := &checker{
		pass:       pass,
		marks:      marks,
		graph:      graph,
		guards:     map[*types.Func]bool{},
		syncGuards: map[*types.Func]bool{},
	}
	c.seedGuards()
	c.propagateGuards()

	for _, t := range pass.Targets {
		if !c.active(t) {
			continue
		}
		info := t.TypesInfo()
		for _, f := range t.ASTFiles() {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkFunc(info, fd)
				}
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.ModulePass
	marks *analysis.Marks
	graph *analysis.CallGraph
	// guards: functions whose returned error carries a durability
	// outcome. syncGuards: the subset that performs an fsync.
	guards     map[*types.Func]bool
	syncGuards map[*types.Func]bool
	// filePkgs: packages declaring a File storage interface.
	filePkgs map[*types.Package]bool
}

// seedGuards finds module interfaces named File with Sync in the
// method set and seeds guards from their methods.
func (c *checker) seedGuards() {
	c.filePkgs = map[*types.Package]bool{}
	for _, t := range c.pass.Targets {
		info := t.TypesInfo()
		for _, f := range t.ASTFiles() {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "File" {
						continue
					}
					obj, ok := info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					iface, ok := obj.Type().Underlying().(*types.Interface)
					if !ok {
						continue
					}
					hasSync := false
					for i := 0; i < iface.NumMethods(); i++ {
						if iface.Method(i).Name() == "Sync" {
							hasSync = true
						}
					}
					if !hasSync {
						continue
					}
					c.filePkgs[t.TypesPkg()] = true
					for i := 0; i < iface.NumMethods(); i++ {
						m := iface.Method(i)
						switch m.Name() {
						case "Write", "Sync", "Close", "Truncate":
							c.guards[m] = true
							if m.Name() == "Sync" {
								c.syncGuards[m] = true
							}
						}
					}
				}
			}
		}
	}
}

// propagateGuards closes the guard sets over the call graph: a module
// function with an error result calling a guard is itself a guard.
func (c *checker) propagateGuards() {
	for changed := true; changed; {
		changed = false
		for fn, node := range c.graph.Nodes {
			if !hasErrorResult(fn) {
				continue
			}
			for _, site := range node.Sites {
				if site.InGo {
					continue
				}
				isGuard, isSync := false, false
				if site.Iface != nil && c.guards[site.Iface] {
					isGuard = true
					isSync = c.syncGuards[site.Iface]
				}
				for _, callee := range site.Callees {
					if c.guards[callee] {
						isGuard = true
					}
					if c.syncGuards[callee] {
						isSync = true
					}
					if osGuard(callee) {
						isGuard = true
					}
				}
				if isGuard && !c.guards[fn] {
					c.guards[fn] = true
					changed = true
				}
				if isSync && !c.syncGuards[fn] {
					c.syncGuards[fn] = true
					changed = true
				}
			}
		}
	}
}

func osGuard(fn *types.Func) bool {
	switch fn.FullName() {
	case "os.Truncate", "os.Remove":
		return true
	}
	return false
}

func hasErrorResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// active reports whether diagnostics should be produced for target t:
// it declares a commit mark or a File storage interface.
func (c *checker) active(t analysis.Target) bool {
	if c.filePkgs[t.TypesPkg()] {
		return true
	}
	pkg := t.TypesPkg()
	for fn := range c.marks.Commit {
		if fn.Pkg() == pkg {
			return true
		}
	}
	for v := range c.marks.CommitFields {
		if v.Pkg() == pkg {
			return true
		}
	}
	return false
}

// guardCall resolves whether call invokes a guard, returning a
// description and whether it is a sync guard.
func (c *checker) guardCall(info *types.Info, call *ast.CallExpr) (desc string, sync bool, ok bool) {
	fn := calleeOf(info, call)
	if fn == nil {
		return "", false, false
	}
	if c.guards[fn] || osGuard(fn) {
		return fn.Name(), c.syncGuards[fn], true
	}
	// Interface method call: Selections gives the interface method.
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if s, found := info.Selections[sel]; found {
			if m, isFn := s.Obj().(*types.Func); isFn && c.guards[m] {
				return m.Name(), c.syncGuards[m], true
			}
		}
	}
	return "", false, false
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// checkFunc runs the ordering dataflow over one function.
func (c *checker) checkFunc(info *types.Info, fd *ast.FuncDecl) {
	g := analysis.BuildCFG(fd.Body)
	f := c.flow(info)
	sol := analysis.Solve(g, f)
	sig, _ := info.Defs[fd.Name].(*types.Func)
	var results *types.Tuple
	if sig != nil {
		results = sig.Type().(*types.Signature).Results()
	}
	for _, b := range g.Blocks {
		if !sol.Reached[b.Index] {
			continue
		}
		s := f.Clone(sol.In[b.Index])
		for _, n := range b.Nodes {
			c.reportAt(info, s, n, results)
			s = f.Transfer(s, n)
		}
	}
}

func (c *checker) flow(info *types.Info) *analysis.Flow[wstate] {
	return &analysis.Flow[wstate]{
		Entry: wstate{errs: map[types.Object]errInfo{}},
		Transfer: func(s wstate, n ast.Node) wstate {
			return c.transfer(info, s, n)
		},
		Branch: func(s wstate, cond ast.Expr, taken bool) wstate {
			c.refine(info, &s, cond, taken)
			return s
		},
		Join: func(a, b wstate) wstate {
			for obj, bi := range b.errs {
				ai, ok := a.errs[obj]
				if !ok || bi.st > ai.st {
					a.errs[obj] = bi
				}
			}
			a.visible = a.visible || b.visible
			return a
		},
		Equal: func(a, b wstate) bool {
			if a.visible != b.visible || len(a.errs) != len(b.errs) {
				return false
			}
			for obj, ai := range a.errs {
				bi, ok := b.errs[obj]
				if !ok || ai.st != bi.st {
					return false
				}
			}
			return true
		},
		Clone: func(s wstate) wstate {
			e := make(map[types.Object]errInfo, len(s.errs))
			for k, v := range s.errs {
				e[k] = v
			}
			return wstate{errs: e, visible: s.visible}
		},
	}
}

// transfer updates guard-error tracking and the visibility bit.
func (c *checker) transfer(info *types.Info, s wstate, n ast.Node) wstate {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Guard call on the RHS: bind its error result to the LHS.
		if len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				if desc, _, isGuard := c.guardCall(info, call); isGuard {
					c.bindGuardResults(info, &s, n.Lhs, call, desc)
					return s
				}
			}
		}
		// Otherwise: copies and re-bindings.
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := assignObj(info, id)
				if obj == nil {
					continue
				}
				if rid, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok {
					if src := info.Uses[rid]; src != nil {
						if ei, tracked := s.errs[src]; tracked {
							s.errs[obj] = ei
							continue
						}
					}
				}
				delete(s.errs, obj)
			}
		} else {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := assignObj(info, id); obj != nil {
						delete(s.errs, obj)
					}
				}
			}
		}
		// Stores to commit-marked fields publish state.
		for _, lhs := range n.Lhs {
			if c.commitFieldStore(info, lhs) {
				s.visible = true
			}
		}
	case *ast.IncDecStmt:
		if c.commitFieldStore(info, n.X) {
			s.visible = true
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if fn := calleeOf(info, call); fn != nil {
				if _, marked := c.marks.Commit[fn]; marked {
					s.visible = true
				}
			}
		}
	}
	return s
}

// bindGuardResults maps a guard call's error results onto LHS idents.
func (c *checker) bindGuardResults(info *types.Info, s *wstate, lhs []ast.Expr, call *ast.CallExpr, desc string) {
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		if !isErrorType(info.TypeOf(id)) && info.Defs[id] == nil {
			continue
		}
		if id.Name == "_" {
			continue // discarding is reported in reportAt
		}
		if !isErrorType(info.TypeOf(id)) {
			continue
		}
		if obj := assignObj(info, id); obj != nil {
			s.errs[obj] = errInfo{st: stUnchecked, desc: desc, pos: call.Pos()}
		}
	}
}

func assignObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// refine applies path conditions: err != nil / err == nil comparisons,
// recursively through &&, || and !.
func (c *checker) refine(info *types.Info, s *wstate, cond ast.Expr, taken bool) {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.NEQ, token.EQL:
			obj, isNilCmp := nilComparison(info, cond)
			if obj == nil || !isNilCmp {
				return
			}
			ei, tracked := s.errs[obj]
			if !tracked {
				return
			}
			nonNil := (cond.Op == token.NEQ) == taken
			if nonNil {
				ei.st = stFailed
			} else {
				ei.st = stOK
			}
			s.errs[obj] = ei
		case token.LAND:
			if taken {
				c.refine(info, s, cond.X, true)
				c.refine(info, s, cond.Y, true)
			}
		case token.LOR:
			if !taken {
				c.refine(info, s, cond.X, false)
				c.refine(info, s, cond.Y, false)
			}
		}
	case *ast.UnaryExpr:
		if cond.Op == token.NOT {
			c.refine(info, s, cond.X, !taken)
		}
	}
}

// nilComparison returns the tracked-variable side of an x==nil / x!=nil
// comparison.
func nilComparison(info *types.Info, cmp *ast.BinaryExpr) (types.Object, bool) {
	xNil := isNil(info, cmp.X)
	yNil := isNil(info, cmp.Y)
	if xNil == yNil {
		return nil, false
	}
	other := cmp.X
	if xNil {
		other = cmp.Y
	}
	if id, ok := ast.Unparen(other).(*ast.Ident); ok {
		return info.Uses[id], true
	}
	return nil, false
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}

// reportAt emits diagnostics for node n given pre-state s.
func (c *checker) reportAt(info *types.Info, s wstate, n ast.Node, results *types.Tuple) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if desc, isSync, isGuard := c.guardCall(info, call); isGuard {
				c.pass.Reportf(n.Pos(),
					"walorder: error from durability guard %s is discarded; a failed write/sync must keep the record unacknowledged", desc)
				if isSync && s.visible {
					c.reportSyncAfterVisible(n.Pos(), desc)
				}
				return
			}
			// Commit-function call: ordering event.
			if fn := calleeOf(info, call); fn != nil {
				if _, marked := c.marks.Commit[fn]; marked {
					c.reportCommit(s, n.Pos(), "call to commit point "+fn.Name())
				}
				if c.syncGuards[fn] && s.visible {
					c.reportSyncAfterVisible(n.Pos(), fn.Name())
				}
			}
		}
	case *ast.AssignStmt:
		// Discarded guard error via blank identifier.
		if len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				if desc, isSync, isGuard := c.guardCall(info, call); isGuard {
					for _, l := range n.Lhs {
						if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name == "_" && isErrorAt(info, call, n.Lhs, l) {
							c.pass.Reportf(n.Pos(),
								"walorder: error from durability guard %s is discarded; a failed write/sync must keep the record unacknowledged", desc)
						}
					}
					if isSync && s.visible {
						c.reportSyncAfterVisible(n.Pos(), desc)
					}
				}
			}
		}
		// Store to a commit field: ordering event.
		for _, lhs := range n.Lhs {
			if c.commitFieldStore(info, lhs) {
				c.reportCommit(s, n.Pos(), "store to committed field")
			}
		}
	case *ast.IncDecStmt:
		if c.commitFieldStore(info, n.X) {
			c.reportCommit(s, n.Pos(), "store to committed field")
		}
	case *ast.ReturnStmt:
		if results == nil {
			return
		}
		if len(n.Results) != results.Len() {
			return // naked return or comma-ok mismatch; skip
		}
		for i := 0; i < results.Len(); i++ {
			if isErrorType(results.At(i).Type()) && isNil(info, n.Results[i]) {
				c.reportCommit(s, n.Pos(), "return with a nil error")
			}
		}
	}
}

// reportCommit flags a commit event occurring while some guard error is
// unchecked or known failed.
func (c *checker) reportCommit(s wstate, pos token.Pos, what string) {
	for _, ei := range s.errs {
		switch ei.st {
		case stUnchecked:
			c.pass.Reportf(pos,
				"walorder: %s before the error from durability guard %s (called at %s) is checked; check it first so a failed sync keeps the record invisible and unacknowledged",
				what, ei.desc, c.pass.Fset.Position(ei.pos))
		case stFailed:
			c.pass.Reportf(pos,
				"walorder: %s on a path where durability guard %s (called at %s) has failed; the record must stay unacknowledged",
				what, ei.desc, c.pass.Fset.Position(ei.pos))
		}
	}
}

func (c *checker) reportSyncAfterVisible(pos token.Pos, desc string) {
	c.pass.Reportf(pos,
		"walorder: %s fsyncs after the record was already made visible; sync must happen before the commit point", desc)
}

// commitFieldStore reports whether lhs stores to a //pubsub:commit
// struct field.
func (c *checker) commitFieldStore(info *types.Info, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var obj types.Object
	if s, found := info.Selections[sel]; found {
		obj = s.Obj()
	} else {
		obj = info.Uses[sel.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, marked := c.marks.CommitFields[v]
	return marked
}

func isErrorAt(info *types.Info, call *ast.CallExpr, lhs []ast.Expr, l ast.Expr) bool {
	// For single-value guard calls assigned to one blank, the call's
	// type is the error; for multi-value, find the error-typed result
	// at this LHS position.
	if len(lhs) == 1 {
		return isErrorType(info.TypeOf(call))
	}
	tup, ok := info.TypeOf(call).(*types.Tuple)
	if !ok {
		return false
	}
	for i, cand := range lhs {
		if cand == l && i < tup.Len() {
			return isErrorType(tup.At(i).Type())
		}
	}
	return false
}
