package walorder

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestWalorder(t *testing.T) {
	analysistest.Run(t, "../testdata/src/walorder", "fixture/walorder", Analyzer)
}
