package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The analysis framework understands a small family of //pubsub:
// directive comments:
//
//	//pubsub:allow name1,name2 -- reason
//	//pubsub:hotpath [-- reason]
//	//pubsub:coldpath -- reason
//	//pubsub:commit -- reason
//
// allow suppresses matching diagnostics reported on its own line; a
// directive alone on a line also covers the line below, so multi-line
// statements can be annotated above their first line. hotpath marks a
// function as an allocation-free root for the allocfree analyzer.
// coldpath marks a function as a declared allocation boundary: the hot
// path may call it, but its interior is by design off the steady-state
// path (lazy materialization, opt-in durability, sampled tracing).
// commit marks a function or struct field whose call/store publishes
// state to readers, for the walorder analyzer. Any other //pubsub:
// comment is reported as malformed, so typos cannot silently disable a
// check.
const (
	directivePrefix = "//pubsub:allow"
	hotpathPrefix   = "//pubsub:hotpath"
	coldpathPrefix  = "//pubsub:coldpath"
	commitPrefix    = "//pubsub:commit"
	anyPrefix       = "//pubsub:"
)

// suppression is one (directive, analyzer) pair. Several line-table
// entries may share one suppression (a directive covers its own line
// and the next), so matching on either marks the directive used.
type suppression struct {
	pos  token.Pos
	name string
	used bool
}

// Suppressions is the parsed //pubsub:allow table for a set of files,
// with usage tracking so the driver can report waivers that no longer
// suppress anything.
type Suppressions struct {
	byLine  map[string]map[int][]*suppression // filename -> line -> entries
	entries []*suppression
}

// NewSuppressions returns an empty table, ready for Collect.
func NewSuppressions() *Suppressions {
	return &Suppressions{byLine: map[string]map[int][]*suppression{}}
}

func (s *Suppressions) add(file string, line int, e *suppression) {
	byLine, ok := s.byLine[file]
	if !ok {
		byLine = map[int][]*suppression{}
		s.byLine[file] = byLine
	}
	byLine[line] = append(byLine[line], e)
}

// Allows reports whether a diagnostic from analyzer name at pos is
// covered by a directive, marking the covering directive as used.
func (s *Suppressions) Allows(fset *token.FileSet, name string, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	hit := false
	for _, e := range s.byLine[p.Filename][p.Line] {
		if e.name == name {
			e.used = true
			hit = true
		}
	}
	return hit
}

// Unused returns one diagnostic per waiver that suppressed nothing
// across every analyzer run recorded so far. known is the set of
// registered analyzer names, so a waiver naming an unknown analyzer
// gets a sharper message. Call only after the full analyzer set has
// run; a partial run would report in-use waivers as stale.
func (s *Suppressions) Unused(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if e.used {
			continue
		}
		if known != nil && !known[e.name] {
			out = append(out, Diagnostic{
				Pos: e.pos,
				Message: fmt.Sprintf("directive: //pubsub:allow names unknown analyzer %q; "+
					"fix the name or delete the waiver", e.name),
			})
			continue
		}
		out = append(out, Diagnostic{
			Pos: e.pos,
			Message: fmt.Sprintf("directive: unused //pubsub:allow %s waiver: it suppresses "+
				"no diagnostic; delete it or fix the annotated code", e.name),
		})
	}
	return out
}

// Collect scans the files' comments for //pubsub:allow directives,
// adding them to the table. It returns diagnostics for malformed
// directives (a directive without a reason is an error: the point of
// the mechanism is a documented, greppable waiver) and for unknown
// //pubsub: directive kinds. hotpath/coldpath/commit comments are
// validated here but consumed by CollectMarks.
func (s *Suppressions) Collect(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, anyPrefix) {
					continue
				}
				if strings.HasPrefix(text, hotpathPrefix) ||
					strings.HasPrefix(text, coldpathPrefix) ||
					strings.HasPrefix(text, commitPrefix) {
					continue // validated and attached by CollectMarks
				}
				if !strings.HasPrefix(text, directivePrefix) {
					bad = append(bad, Diagnostic{
						Pos: c.Pos(),
						Message: "directive: unknown //pubsub: directive; known kinds are " +
							"allow, hotpath, coldpath, commit",
					})
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				names, _, ok := splitDirective(rest)
				if !ok {
					bad = append(bad, Diagnostic{
						Pos: c.Pos(),
						Message: "directive: malformed //pubsub:allow; want " +
							"\"//pubsub:allow <analyzer>[,<analyzer>] -- reason\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range names {
					e := &suppression{pos: c.Pos(), name: n}
					s.entries = append(s.entries, e)
					// The directive covers its own line, and — so that
					// multi-line statements (selects, calls) can carry the
					// annotation above themselves — the next line too.
					s.add(pos.Filename, pos.Line, e)
					s.add(pos.Filename, pos.Line+1, e)
				}
			}
		}
	}
	return bad
}

// collectDirectives is the single-package form used by RunAnalyzer.
func collectDirectives(fset *token.FileSet, files []*ast.File) (*Suppressions, []Diagnostic) {
	sup := NewSuppressions()
	bad := sup.Collect(fset, files)
	return sup, bad
}

// splitDirective parses " name1,name2 -- reason". The separator may be
// "--" or an em dash; both names and reason must be non-empty.
func splitDirective(rest string) (names []string, reason string, ok bool) {
	rest = strings.TrimSpace(rest)
	sepIdx, sepLen := -1, 0
	for _, sep := range []string{"--", "—"} {
		if i := strings.Index(rest, sep); i >= 0 && (sepIdx < 0 || i < sepIdx) {
			sepIdx, sepLen = i, len(sep)
		}
	}
	if sepIdx < 0 {
		return nil, "", false
	}
	namePart := strings.TrimSpace(rest[:sepIdx])
	reason = strings.TrimSpace(rest[sepIdx+sepLen:])
	if namePart == "" || reason == "" {
		return nil, "", false
	}
	for _, n := range strings.Split(namePart, ",") {
		n = strings.TrimSpace(n)
		if n == "" || strings.ContainsAny(n, " \t") {
			return nil, "", false
		}
		names = append(names, n)
	}
	return names, reason, true
}

// Marks are the contract annotations attached to declarations:
// allocation-free roots, declared allocation boundaries, and commit
// points. They are keyed by types objects so interprocedural analyzers
// can look marks up straight from call-graph nodes.
type Marks struct {
	// Hot maps functions marked //pubsub:hotpath to the directive position.
	Hot map[*types.Func]token.Pos
	// Cold maps functions marked //pubsub:coldpath to the declared reason.
	Cold map[*types.Func]string
	// ColdPos maps the same functions to the directive position, for
	// reporting unreachable boundaries at the mark itself.
	ColdPos map[*types.Func]token.Pos
	// Commit maps functions whose call acknowledges/publishes state.
	Commit map[*types.Func]token.Pos
	// CommitFields maps struct fields whose store publishes state.
	CommitFields map[*types.Var]token.Pos
	// Bad holds malformed or unattached mark directives.
	Bad []Diagnostic
}

// NewMarks returns an empty mark set ready for Collect.
func NewMarks() *Marks {
	return &Marks{
		Hot:          map[*types.Func]token.Pos{},
		Cold:         map[*types.Func]string{},
		ColdPos:      map[*types.Func]token.Pos{},
		Commit:       map[*types.Func]token.Pos{},
		CommitFields: map[*types.Var]token.Pos{},
	}
}

// markKind classifies one hotpath/coldpath/commit comment, or returns
// ok=false for other comments.
func markKind(text string) (prefix string, ok bool) {
	for _, p := range []string{hotpathPrefix, coldpathPrefix, commitPrefix} {
		if text == p || strings.HasPrefix(text, p+" ") || strings.HasPrefix(text, p+"\t") {
			return p, true
		}
	}
	return "", false
}

// markReason parses the optional " -- reason" tail of a mark directive.
// wantReason makes a missing reason an error.
func markReason(text, prefix string) (reason string, ok bool) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return "", true
	}
	for _, sep := range []string{"--", "—"} {
		if r, found := strings.CutPrefix(rest, sep); found {
			r = strings.TrimSpace(r)
			return r, r != ""
		}
	}
	return "", false
}

// Collect attaches hotpath/coldpath/commit directives found in the
// files to the function declarations and struct fields they document.
// A mark must appear in the doc comment of a function declaration, or
// in the doc or trailing comment of a struct field (commit only).
// Marks that attach to nothing — or coldpath/commit marks without a
// reason — are reported in Bad: a contract annotation that silently
// stopped applying is itself a bug.
func (m *Marks) Collect(fset *token.FileSet, files []*ast.File, info *types.Info) {
	attached := map[*ast.Comment]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil {
					continue
				}
				obj, _ := info.Defs[d.Name].(*types.Func)
				for _, c := range d.Doc.List {
					prefix, ok := markKind(c.Text)
					if !ok {
						continue
					}
					attached[c] = true
					if obj == nil {
						continue
					}
					m.attachFunc(c, prefix, obj)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
							if cg == nil {
								continue
							}
							for _, c := range cg.List {
								prefix, ok := markKind(c.Text)
								if !ok {
									continue
								}
								attached[c] = true
								m.attachField(c, prefix, field, info)
							}
						}
					}
				}
			}
		}
	}
	// Any mark comment not consumed above decorates nothing.
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if prefix, ok := markKind(c.Text); ok && !attached[c] {
					m.Bad = append(m.Bad, Diagnostic{
						Pos: c.Pos(),
						Message: fmt.Sprintf("directive: %s attaches to no declaration; "+
							"place it in a function's doc comment%s", prefix,
							map[bool]string{true: " or on a struct field", false: ""}[prefix == commitPrefix]),
					})
				}
			}
		}
	}
}

func (m *Marks) attachFunc(c *ast.Comment, prefix string, obj *types.Func) {
	reason, ok := markReason(c.Text, prefix)
	switch prefix {
	case hotpathPrefix:
		if !ok {
			m.Bad = append(m.Bad, Diagnostic{Pos: c.Pos(),
				Message: "directive: malformed //pubsub:hotpath; want \"//pubsub:hotpath [-- reason]\""})
			return
		}
		m.Hot[obj] = c.Pos()
	case coldpathPrefix:
		if !ok || reason == "" {
			m.Bad = append(m.Bad, Diagnostic{Pos: c.Pos(),
				Message: "directive: //pubsub:coldpath requires a reason: \"//pubsub:coldpath -- reason\""})
			return
		}
		m.Cold[obj] = reason
		m.ColdPos[obj] = c.Pos()
	case commitPrefix:
		if !ok || reason == "" {
			m.Bad = append(m.Bad, Diagnostic{Pos: c.Pos(),
				Message: "directive: //pubsub:commit requires a reason: \"//pubsub:commit -- reason\""})
			return
		}
		m.Commit[obj] = c.Pos()
	}
}

func (m *Marks) attachField(c *ast.Comment, prefix string, field *ast.Field, info *types.Info) {
	if prefix != commitPrefix {
		m.Bad = append(m.Bad, Diagnostic{Pos: c.Pos(),
			Message: fmt.Sprintf("directive: %s applies to functions, not struct fields", prefix)})
		return
	}
	reason, ok := markReason(c.Text, prefix)
	if !ok || reason == "" {
		m.Bad = append(m.Bad, Diagnostic{Pos: c.Pos(),
			Message: "directive: //pubsub:commit requires a reason: \"//pubsub:commit -- reason\""})
		return
	}
	for _, name := range field.Names {
		if obj, ok := info.Defs[name].(*types.Var); ok {
			m.CommitFields[obj] = c.Pos()
		}
	}
}
