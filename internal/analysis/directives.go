package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The full form is
//
//	//pubsub:allow name1,name2 -- reason
//
// A trailing directive suppresses matching diagnostics reported on its
// own line; a directive alone on a line also suppresses the line below,
// so multi-line statements can be annotated above their first line.
const directivePrefix = "//pubsub:allow"

// suppressions maps filename -> line -> set of allowed analyzer names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, name string) {
	byLine, ok := s[file]
	if !ok {
		byLine = map[int]map[string]bool{}
		s[file] = byLine
	}
	names, ok := byLine[line]
	if !ok {
		names = map[string]bool{}
		byLine[line] = names
	}
	names[name] = true
}

// allows reports whether a diagnostic from analyzer name at pos is
// covered by a directive.
func (s suppressions) allows(fset *token.FileSet, name string, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	return s[p.Filename][p.Line][name]
}

// collectDirectives scans the files' comments for //pubsub:allow
// directives. It returns the suppression table plus diagnostics for
// malformed directives (a directive without a reason is an error: the
// point of the mechanism is a documented, greppable waiver).
func collectDirectives(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				names, _, ok := splitDirective(rest)
				if !ok {
					bad = append(bad, Diagnostic{
						Pos: c.Pos(),
						Message: "directive: malformed //pubsub:allow; want " +
							"\"//pubsub:allow <analyzer>[,<analyzer>] -- reason\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range names {
					// The directive covers its own line, and — so that
					// multi-line statements (selects, calls) can carry the
					// annotation above themselves — the next line too.
					sup.add(pos.Filename, pos.Line, n)
					sup.add(pos.Filename, pos.Line+1, n)
				}
			}
		}
	}
	return sup, bad
}

// splitDirective parses " name1,name2 -- reason". The separator may be
// "--" or an em dash; both names and reason must be non-empty.
func splitDirective(rest string) (names []string, reason string, ok bool) {
	rest = strings.TrimSpace(rest)
	sepIdx, sepLen := -1, 0
	for _, sep := range []string{"--", "—"} {
		if i := strings.Index(rest, sep); i >= 0 && (sepIdx < 0 || i < sepIdx) {
			sepIdx, sepLen = i, len(sep)
		}
	}
	if sepIdx < 0 {
		return nil, "", false
	}
	namePart := strings.TrimSpace(rest[:sepIdx])
	reason = strings.TrimSpace(rest[sepIdx+sepLen:])
	if namePart == "" || reason == "" {
		return nil, "", false
	}
	for _, n := range strings.Split(namePart, ",") {
		n = strings.TrimSpace(n)
		if n == "" || strings.ContainsAny(n, " \t") {
			return nil, "", false
		}
		names = append(names, n)
	}
	return names, reason, true
}
