package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a function body and returns its CFG.
func parseBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fn.Body)
}

// reachable returns the set of block indices reachable from entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

// nodeCount sums nodes over reachable blocks.
func nodeCount(g *CFG) int {
	n := 0
	for i := range g.Blocks {
		if reachable(g)[i] {
			n += len(g.Blocks[i].Nodes)
		}
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g := parseBody(t, "x := 1\n_ = x\nreturn")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 0 {
		t.Fatalf("return must seal the block; succs = %d", len(g.Entry.Succs))
	}
}

func TestCFGIfElse(t *testing.T) {
	g := parseBody(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	// Entry ends with the condition and must have exactly two
	// conditional successors with opposite Taken values.
	entry := g.Entry
	if len(entry.Succs) != 2 {
		t.Fatalf("cond successors = %d, want 2", len(entry.Succs))
	}
	if entry.Succs[0].Cond == nil || entry.Succs[1].Cond == nil {
		t.Fatalf("if edges must carry the condition")
	}
	if entry.Succs[0].Taken == entry.Succs[1].Taken {
		t.Fatalf("if edges must have opposite Taken")
	}
	// Both arms join: the final _ = x appears exactly once.
	if got := nodeCount(g); got != 5 { // x:=1, cond, x=2, x=3, _=x
		t.Fatalf("reachable node count = %d, want 5", got)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := parseBody(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	entry := g.Entry
	if len(entry.Succs) != 2 {
		t.Fatalf("cond successors = %d, want 2", len(entry.Succs))
	}
	// The false edge must skip straight to the join block.
	var falseEdge *Edge
	for i := range entry.Succs {
		if !entry.Succs[i].Taken {
			falseEdge = &entry.Succs[i]
		}
	}
	if falseEdge == nil {
		t.Fatalf("missing false edge")
	}
	found := false
	for _, n := range falseEdge.To.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("false edge must reach the join block holding _ = x")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := parseBody(t, "s := 0\nfor i := 0; i < 10; i++ {\ns += i\n}\n_ = s")
	// The loop head must be reachable from both entry and the body
	// (back edge), i.e. some reachable block has the condition with a
	// predecessor count of 2. We verify structurally: condition block
	// has a true edge into the body and false edge out.
	var condBlock *Block
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil && e.Taken {
				condBlock = b
			}
		}
	}
	if condBlock == nil {
		t.Fatalf("no conditional edge found for loop")
	}
	// Count predecessors of the cond block among reachable blocks.
	preds := 0
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, e := range b.Succs {
			if e.To == condBlock {
				preds++
			}
		}
	}
	if preds < 2 {
		t.Fatalf("loop head predecessors = %d, want >= 2 (entry + back edge)", preds)
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	g := parseBody(t, "x := 0\nfor {\nx++\nif x > 3 {\nbreak\n}\n}\n_ = x")
	// _ = x after the loop must be reachable (via break).
	found := false
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("code after for{}+break must stay reachable")
	}
}

func TestCFGInfiniteLoopNoBreak(t *testing.T) {
	g := parseBody(t, "for {\n}\n_ = 1")
	// _ = 1 is dead: no reachable block may contain it.
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				t.Fatalf("code after for{} without break must be unreachable")
			}
		}
	}
}

func TestCFGContinueInsideSwitchTargetsLoop(t *testing.T) {
	// continue inside a switch must target the enclosing loop head,
	// not the switch exit.
	g := parseBody(t, `
for i := 0; i < 4; i++ {
	switch i {
	case 0:
		continue
	}
	_ = i
}`)
	// The block holding the continue edge must point at a block whose
	// successor chain includes the loop condition — weak but structural:
	// assert the graph converges and everything stays reachable.
	r := reachable(g)
	if len(r) < 4 {
		t.Fatalf("too few reachable blocks: %d", len(r))
	}
}

func TestCFGSwitchDefaultAndFallthrough(t *testing.T) {
	g := parseBody(t, `
x := 0
switch x {
case 0:
	x = 1
	fallthrough
case 1:
	x = 2
default:
	x = 3
}
_ = x`)
	// All three assignments plus the final one must be reachable.
	assigns := 0
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				assigns++
			}
		}
	}
	if assigns != 5 { // x:=0, x=1, x=2, x=3, _=x
		t.Fatalf("reachable assignments = %d, want 5", assigns)
	}
}

func TestCFGSelectHeaderAndEmptySelect(t *testing.T) {
	g := parseBody(t, "ch := make(chan int)\nselect {\ncase <-ch:\n}\n_ = 1")
	// The select statement itself must appear as a node.
	foundSelect := false
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				foundSelect = true
			}
		}
	}
	if !foundSelect {
		t.Fatalf("select header node missing")
	}

	g = parseBody(t, "select {\n}\n_ = 1")
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				t.Fatalf("code after select{} must be unreachable")
			}
		}
	}
}

func TestCFGRangeHeader(t *testing.T) {
	g := parseBody(t, "xs := []int{1}\nfor _, x := range xs {\n_ = x\n}\n_ = xs")
	foundRange := false
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				foundRange = true
			}
		}
	}
	if !foundRange {
		t.Fatalf("range header node missing")
	}
}

func TestCFGGotoForward(t *testing.T) {
	g := parseBody(t, "x := 0\ngoto done\ndone:\n_ = x")
	// _ = x must be reachable through the goto edge.
	found := false
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("goto target must be reachable")
	}
}

func TestCFGDeferAndGoAreNodes(t *testing.T) {
	g := parseBody(t, "defer func() {}()\ngo func() {}()\nreturn")
	kinds := map[string]bool{}
	for _, n := range g.Entry.Nodes {
		switch n.(type) {
		case *ast.DeferStmt:
			kinds["defer"] = true
		case *ast.GoStmt:
			kinds["go"] = true
		case *ast.ReturnStmt:
			kinds["return"] = true
		}
	}
	for _, k := range []string{"defer", "go", "return"} {
		if !kinds[k] {
			t.Fatalf("%s statement missing from entry block", k)
		}
	}
}

func TestCFGPanicSealsBlock(t *testing.T) {
	g := parseBody(t, "panic(\"boom\")\n_ = 1")
	for i, b := range g.Blocks {
		if !reachable(g)[i] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				t.Fatalf("code after panic must be unreachable")
			}
		}
	}
}
