package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is a module-wide static call graph over the functions and
// methods declared in a set of targets. Interface method calls are
// resolved to every module type implementing the interface, so walking
// the graph over-approximates runtime behaviour — the right direction
// for reachability-style checkers. Calls through plain function values
// cannot be resolved statically and are recorded as dynamic sites.
type CallGraph struct {
	// Nodes maps every declared function/method to its node.
	Nodes map[*types.Func]*CallNode
	// fset/infos retained for resolving calls found outside declared
	// bodies (e.g. in function literals an analyzer walks itself).
	infos []*types.Info
}

// CallNode is one declared function with its body and outgoing calls.
type CallNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	// Target is the package the declaration lives in.
	Target Target
	// Sites lists the function's call sites in source order. Sites
	// inside nested function literals are included with InLit set —
	// a literal may escape, so its calls are still "caused" by this
	// function — and sites that spawn goroutines have InGo set.
	Sites []CallSite
}

// CallSite is one call expression inside a declared function.
type CallSite struct {
	Call *ast.CallExpr
	// Callees holds the possible static targets: one entry for a
	// direct or concrete-method call, several for an interface method
	// call (every implementing module type). Empty means the callee is
	// outside the module or unresolvable.
	Callees []*types.Func
	// Iface is the interface method being called, if the call is
	// through an interface; Callees then holds the implementations.
	Iface *types.Func
	// Dynamic marks calls through a function value (variable, field,
	// parameter) that static analysis cannot resolve.
	Dynamic bool
	// InGo marks calls that are the operand of a go statement.
	InGo bool
	// InDefer marks calls that are the operand of a defer statement.
	InDefer bool
	// InLit marks calls textually inside a nested function literal.
	InLit bool
}

// BuildCallGraph constructs the call graph of all functions declared in
// targets. Interface calls are resolved against every named type
// declared in any target.
func BuildCallGraph(targets []Target) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}

	// Pass 1: declared functions and the module's named types.
	var namedTypes []*types.Named
	for _, t := range targets {
		g.infos = append(g.infos, t.TypesInfo())
		info := t.TypesInfo()
		for _, f := range t.ASTFiles() {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if fn, ok := info.Defs[d.Name].(*types.Func); ok {
						g.Nodes[fn] = &CallNode{Func: fn, Decl: d, Target: t}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
							if named, ok := tn.Type().(*types.Named); ok {
								namedTypes = append(namedTypes, named)
							}
						}
					}
				}
			}
		}
	}

	// Pass 2: call sites.
	for _, node := range g.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		info := node.Target.TypesInfo()
		collectSites(node, node.Decl.Body, info, namedTypes, g, false)
	}
	return g
}

// collectSites walks body recording call sites into node. inLit marks
// that we are inside a nested function literal.
func collectSites(node *CallNode, body ast.Node, info *types.Info, named []*types.Named, g *CallGraph, inLit bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inLit {
				collectSites(node, n.Body, info, named, g, true)
				return false
			}
			return true
		case *ast.GoStmt:
			site := g.resolveSite(info, n.Call, named)
			site.InGo = true
			site.InLit = inLit
			node.Sites = append(node.Sites, site)
			// Still descend into arguments (they're evaluated in the
			// caller) and a possible literal operand.
			for _, arg := range n.Call.Args {
				collectSites(node, arg, info, named, g, inLit)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				collectSites(node, lit.Body, info, named, g, true)
			}
			return false
		case *ast.DeferStmt:
			site := g.resolveSite(info, n.Call, named)
			site.InDefer = true
			site.InLit = inLit
			node.Sites = append(node.Sites, site)
			for _, arg := range n.Call.Args {
				collectSites(node, arg, info, named, g, inLit)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				collectSites(node, lit.Body, info, named, g, true)
			}
			return false
		case *ast.CallExpr:
			site := g.resolveSite(info, n, named)
			site.InLit = inLit
			node.Sites = append(node.Sites, site)
			return true
		}
		return true
	})
}

// resolveSite classifies one call expression.
func (g *CallGraph) resolveSite(info *types.Info, call *ast.CallExpr, named []*types.Named) CallSite {
	site := CallSite{Call: call}
	// Conversions and builtins are not calls for graph purposes.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			site.Callees = []*types.Func{origin(obj)}
		case *types.Builtin, *types.TypeName:
			// builtin or conversion: no callee
		case *types.Var:
			site.Dynamic = true
		case nil:
			// Defs (shouldn't happen for call position) or conversion.
			if _, ok := info.Defs[fun]; !ok {
				if info.Types[fun].IsType() {
					break
				}
			}
		default:
			site.Dynamic = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Selecting a func-typed field: dynamic.
				site.Dynamic = true
				break
			}
			recv := sel.Recv()
			if types.IsInterface(recv) {
				site.Iface = fn
				site.Callees = implementationsOf(recv, fn, named)
			} else {
				site.Callees = []*types.Func{origin(fn)}
			}
		} else {
			// Qualified identifier pkg.F, or a conversion pkg.T(x).
			switch obj := info.Uses[fun.Sel].(type) {
			case *types.Func:
				site.Callees = []*types.Func{origin(obj)}
			case *types.TypeName:
				// conversion
			case *types.Var:
				site.Dynamic = true
			}
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is walked by
		// collectSites; the call itself resolves to nothing.
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation f[T](...): Uses on the underlying ident
		// resolves to the generic origin.
		if id := calleeIdent(fun); id != nil {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				site.Callees = []*types.Func{origin(fn)}
			} else if _, ok := info.Uses[id].(*types.TypeName); ok {
				// generic type conversion
			} else {
				site.Dynamic = true
			}
		} else {
			site.Dynamic = true
		}
	default:
		// Call of a call's result, type assertion, etc.
		if !info.Types[call.Fun].IsType() {
			site.Dynamic = true
		}
	}
	return site
}

func calleeIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.IndexExpr:
		return calleeIdent(e.X)
	case *ast.IndexListExpr:
		return calleeIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// origin maps an instantiated generic function/method back to its
// declared origin, which is what the Nodes map is keyed by.
func origin(fn *types.Func) *types.Func {
	return fn.Origin()
}

// implementationsOf returns the declared methods of every module type
// implementing iface's method fn.
func implementationsOf(iface types.Type, fn *types.Func, named []*types.Named) []*types.Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		var impl types.Type
		if types.Implements(n, it) {
			impl = n
		} else if p := types.NewPointer(n); types.Implements(p, it) {
			impl = p
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, origin(m))
		}
	}
	return out
}

// FuncOf returns the node for fn, or nil if fn is not declared in the
// module (stdlib, builtin).
func (g *CallGraph) FuncOf(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[origin(fn)]
}
