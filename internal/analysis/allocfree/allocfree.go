// Package allocfree statically proves //pubsub:hotpath functions
// allocation-free by walking the module call graph from each marked
// root and flagging every reachable construct that can hit the heap:
// make/new, escaping composite literals, capturing closures, interface
// boxing of non-pointer values, growing appends of fresh backing
// arrays, map writes, goroutine spawns, string conversions and
// concatenation, and calls to standard-library functions not on a
// small proven-non-allocating allowlist.
//
// Two directives shape the proof. //pubsub:hotpath marks a root: the
// function and everything it reaches must be allocation-free.
// //pubsub:coldpath marks a declared allocation boundary — a callee
// that is by design off the steady-state path (lazy materialization,
// opt-in durability, sampled tracing): the walk notes the edge and
// does not descend. A coldpath mark that no hot walk ever reaches is
// reported, so boundaries cannot rot.
//
// The analyzer deliberately accepts one amortized idiom: append into a
// slice that the caller owns (a parameter, struct field, or local
// rooted at one) is allowed even though a growth step reallocates —
// the module's pools guarantee steady-state capacity. Appends whose
// first argument is a fresh value (nil, a literal, a make call) are
// flagged.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the allocfree analyzer. It is module-scoped: reachability
// crosses package boundaries.
var Analyzer = &analysis.Analyzer{
	Name:      "allocfree",
	Doc:       "prove //pubsub:hotpath call trees allocation-free",
	RunModule: run,
}

// allowedStdPkgs are standard-library packages every function of which
// is allocation-free on the paths this module uses.
var allowedStdPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"unsafe":      true,
}

// allowedStdFuncs are individually vetted non-allocating functions and
// methods, keyed by types.Func.FullName.
var allowedStdFuncs = map[string]bool{
	"(*sync.Mutex).Lock":           true,
	"(*sync.Mutex).Unlock":         true,
	"(*sync.Mutex).TryLock":        true,
	"(*sync.RWMutex).Lock":         true,
	"(*sync.RWMutex).Unlock":       true,
	"(*sync.RWMutex).RLock":        true,
	"(*sync.RWMutex).RUnlock":      true,
	"(*sync.Pool).Get":             true, // pool hit; steady-state misses are a pool-sizing bug, not an alloc
	"(*sync.Pool).Put":             true,
	"(*sync.WaitGroup).Add":        true,
	"(*sync.WaitGroup).Done":       true,
	"(*sync.Once).Do":              true,
	"time.Now":                     true, // vDSO clock read, no heap
	"time.Since":                   true,
	"(time.Time).Sub":              true,
	"(time.Time).UnixNano":         true,
	"(time.Time).Add":              true,
	"(time.Time).Before":           true,
	"(time.Time).After":            true,
	"(time.Duration).Seconds":      true,
	"(time.Duration).Nanoseconds":  true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Microseconds": true,
	"sort.Search":                  true,
	"sort.SearchFloat64s":          true,
	"sort.SearchInts":              true,
	"errors.Is":                    true,
	"(*errors.errorString).Error":  true,
	// slog Attr constructors build a value in place; no heap until a
	// handler formats them, which only happens on sampled spans.
	"log/slog.Duration": true,
	"log/slog.Int":      true,
	"log/slog.Int64":    true,
	"log/slog.Uint64":   true,
	"log/slog.Float64":  true,
}

// allowedGenericStd are generic std functions matched by prefix of
// FullName (instantiations render type args into the name).
var allowedGenericStd = []string{
	"slices.SortFunc", // pdqsort, in place
	"slices.Sort",     // in place (also covers SortStableFunc)
	"slices.BinarySearch",
}

type checker struct {
	pass    *analysis.ModulePass
	graph   *analysis.CallGraph
	marks   *analysis.Marks
	infoOf  map[analysis.Target]*types.Info
	visited map[*types.Func]bool
	// reachedCold records coldpath boundaries some hot walk crossed.
	reachedCold map[*types.Func]bool
	// reported dedups (func, position) so shared helpers reached from
	// several roots flag each site once.
	reported map[token.Pos]bool
}

func run(pass *analysis.ModulePass) (any, error) {
	marks := analysis.NewMarks()
	for _, t := range pass.Targets {
		marks.Collect(t.FileSet(), t.ASTFiles(), t.TypesInfo())
	}
	// Mark misuse is reported by the driver's directive pass; here we
	// only consume well-formed marks. (RunAnalyzer-based fixtures still
	// see Bad marks via the directive pseudo-analyzer.)
	c := &checker{
		pass:        pass,
		graph:       analysis.BuildCallGraph(pass.Targets),
		marks:       marks,
		visited:     map[*types.Func]bool{},
		reachedCold: map[*types.Func]bool{},
		reported:    map[token.Pos]bool{},
	}

	// Stable iteration: walk roots in source order.
	var roots []*types.Func
	for fn := range marks.Hot {
		roots = append(roots, fn)
	}
	sortFuncsByPos(roots, marks.Hot)
	for _, root := range roots {
		node := c.graph.FuncOf(root)
		if node == nil {
			continue
		}
		c.walk(node, []string{root.Name()})
	}

	// Coldpath rot: a boundary no hot walk touched guards nothing.
	var colds []*types.Func
	for fn := range marks.Cold {
		colds = append(colds, fn)
	}
	sortFuncsByPos(colds, marks.ColdPos)
	for _, fn := range colds {
		if !c.reachedCold[fn] {
			c.pass.Reportf(marks.ColdPos[fn],
				"allocfree: //pubsub:coldpath on %s is not reached from any //pubsub:hotpath root; delete the mark or mark a caller", fn.Name())
		}
	}
	return nil, nil
}

func sortFuncsByPos(fns []*types.Func, pos map[*types.Func]token.Pos) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && pos[fns[j]] < pos[fns[j-1]]; j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

// walk checks fn's body and recurses into module callees. chain is the
// call path from the root, for diagnostics.
func (c *checker) walk(node *analysis.CallNode, chain []string) {
	fn := node.Func
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	if node.Decl.Body == nil {
		return
	}
	info := node.Target.TypesInfo()
	c.checkBody(node, info, chain)

	for _, site := range node.Sites {
		if site.InGo {
			continue // the spawn itself is flagged by checkBody; the goroutine body runs off-path
		}
		if site.Dynamic {
			c.report(site.Call.Pos(), chain,
				"call through a function value cannot be proven allocation-free; call a named function or add a //pubsub:coldpath boundary")
			continue
		}
		for _, callee := range site.Callees {
			c.checkCallee(site, callee, chain)
		}
	}
}

func (c *checker) checkCallee(site analysis.CallSite, callee *types.Func, chain []string) {
	if reason, ok := c.marks.Cold[callee]; ok {
		c.reachedCold[callee] = true
		_ = reason
		return // declared boundary: do not descend
	}
	if target := c.graph.FuncOf(callee); target != nil {
		c.walk(target, append(chain[:len(chain):len(chain)], callee.Name()))
		return
	}
	// Outside the module: allow only vetted std functions.
	if c.stdAllowed(callee) {
		return
	}
	name := callee.FullName()
	c.report(site.Call.Pos(), chain,
		fmt.Sprintf("call to %s, which is not on the proven allocation-free allowlist", name))
}

func (c *checker) stdAllowed(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg != nil && allowedStdPkgs[pkg.Path()] {
		return true
	}
	full := fn.FullName()
	if allowedStdFuncs[full] {
		return true
	}
	for _, prefix := range allowedGenericStd {
		if strings.HasPrefix(full, prefix) {
			return true
		}
	}
	return false
}

func (c *checker) report(pos token.Pos, chain []string, msg string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	via := strings.Join(chain, " -> ")
	c.pass.Reportf(pos, "allocfree: [%s] %s", via, msg)
}

// checkBody flags allocating constructs lexically inside fn (excluding
// nested function literals, which are judged at their own sites: a
// capturing literal is flagged where it is created).
func (c *checker) checkBody(node *analysis.CallNode, info *types.Info, chain []string) {
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesVariables(n, info) {
				c.report(n.Pos(), chain, "closure captures variables and escapes to the heap")
			}
			// Non-capturing literals compile to static funcs; their
			// bodies still execute on-path, so check them inline.
			ast.Inspect(n.Body, inspect)
			return false
		case *ast.GoStmt:
			c.report(n.Pos(), chain, "go statement allocates a goroutine")
			return false
		case *ast.CallExpr:
			c.checkCall(n, info, chain)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(lit.Pos(), chain, "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if c.escapes(n, info) {
				c.report(n.Pos(), chain, "composite literal allocates backing storage")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := typeUnder(info.TypeOf(ix.X)).(*types.Map); isMap {
						c.report(n.Pos(), chain, "map assignment may allocate")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				c.report(n.Pos(), chain, "string concatenation allocates")
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, inspect)
}

// checkCall flags allocating builtins, conversions, and boxing at one
// call expression. Callee reachability is handled by walk.
func (c *checker) checkCall(call *ast.CallExpr, info *types.Info, chain []string) {
	// Conversions can hide behind any type expression: []byte(s),
	// pkg.T(x), (func())(f).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, info, chain)
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.report(call.Pos(), chain, b.Name()+" allocates")
				return
			case "append":
				if len(call.Args) > 0 && freshSliceExpr(call.Args[0], info) {
					c.report(call.Pos(), chain, "append to a fresh slice allocates its backing array")
				}
				// append into caller-owned storage is the module's
				// amortized-zero idiom: allowed.
			case "print", "println":
				c.report(call.Pos(), chain, b.Name()+" allocates")
				return
			}
		}
	}
	c.checkBoxing(call, info, chain)
}

func (c *checker) checkConversion(call *ast.CallExpr, info *types.Info, chain []string) {
	if len(call.Args) != 1 {
		return
	}
	dst := typeUnder(info.TypeOf(call))
	src := typeUnder(info.TypeOf(call.Args[0]))
	if isStringT(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isStringT(src) {
		c.report(call.Pos(), chain, "string conversion allocates")
	}
	if _, ok := dst.(*types.Interface); ok {
		if !isPointerLike(src) {
			c.report(call.Pos(), chain, "conversion to interface boxes the value on the heap")
		}
	}
}

// checkBoxing flags arguments whose concrete non-pointer value is
// passed into an interface-typed parameter.
func (c *checker) checkBoxing(call *ast.CallExpr, info *types.Info, chain []string) {
	sig, ok := typeUnder(info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through, no per-element box
		}
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if sl, ok := typeUnder(last).(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := typeUnder(pt).(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, argIsIface := typeUnder(at).(*types.Interface); argIsIface {
			continue // interface-to-interface: no new box
		}
		if isNilLiteral(arg, info) || isPointerLike(typeUnder(at)) {
			continue
		}
		// Untyped constants that fit in a pointer word may still box;
		// be conservative and flag them too.
		c.report(arg.Pos(), chain, "argument boxes a non-pointer value into an interface")
	}
}

// escapes reports whether the composite literal itself requires heap
// storage. Slice and map literals always allocate their backing; struct
// and array literals are stack values unless their address is taken —
// the &T{...} case is flagged at the parent UnaryExpr in checkBody.
func (c *checker) escapes(lit *ast.CompositeLit, info *types.Info) bool {
	switch typeUnder(info.TypeOf(lit)).(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func capturesVariables(lit *ast.FuncLit, info *types.Info) bool {
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if declared[obj] {
			return true
		}
		// Package-level vars aren't captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pkg() != nil && v.Pkg().Scope() == v.Parent() {
			return true
		}
		captures = true
		return false
	})
	return captures
}

func freshSliceExpr(e ast.Expr, info *types.Info) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return true
			}
		}
	}
	return false
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(t types.Type) bool { return isStringT(typeUnder(t)) }

func isStringT(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isPointerLike: values already one pointer word wide do not box.
func isPointerLike(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Kind() == types.UnsafePointer || t.Kind() == types.UntypedNil
	case *types.Named:
		return isPointerLike(t.Underlying())
	}
	return false
}

func isNilLiteral(e ast.Expr, info *types.Info) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}
