package allocfree

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "../testdata/src/allocfree", "fixture/allocfree", Analyzer)
}
