package nodeterm

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "../testdata/src/nodeterm", "fixture/nodeterm", Analyzer)
}
