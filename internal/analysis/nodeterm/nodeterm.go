// Package nodeterm flags sources of nondeterminism in packages that are
// required to be bit-for-bit reproducible from a seed (the simulation
// facade, workload generators, experiment drivers and the topology
// generator; see EXPERIMENTS.md).
//
// It reports three classes of defect:
//
//   - time.Now(): wall-clock reads make output depend on the run, not
//     the seed. Timing-measurement sites (ablation harnesses) carry a
//     //pubsub:allow nodeterm directive instead.
//   - package-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...): these draw from the process-global generator,
//     whose state is shared across the program and, since Go 1.20,
//     seeded randomly. Deterministic code must thread a *rand.Rand
//     created by rand.New(rand.NewSource(seed)).
//   - range over a map: iteration order is deliberately randomised by
//     the runtime, so any output derived from it is order-unstable.
//     Extract and sort the keys first.
package nodeterm

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags wall-clock reads, global math/rand use and map
// iteration in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "flags time.Now, global math/rand functions and range-over-map " +
		"in packages whose output must be reproducible from a seed",
	Run: run,
}

// seededConstructors are the math/rand package-level functions that are
// fine in deterministic code: they build explicitly-seeded generators
// rather than drawing from the global one.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *rand.Rand; draws nothing itself
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods on *rand.Rand are the
	// deterministic alternative and must not be flagged.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"nodeterm: time.Now() in a deterministic package; derive timestamps from the simulation clock or seed, or annotate a timing-measurement site with //pubsub:allow nodeterm")
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"nodeterm: global %s.%s draws from the shared process-wide generator; thread a *rand.Rand from rand.New(rand.NewSource(seed)) instead",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(rng.Pos(),
			"nodeterm: map iteration order is randomised by the runtime; collect and sort the keys before iterating (or annotate order-independent aggregation with //pubsub:allow nodeterm)")
	}
}
