// Package locksafe flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held. In the broker and wire layers a
// lock held across a channel operation, network write or sleep turns
// one slow peer into a broker-wide stall — the classic failure mode of
// a concurrent pub-sub core.
//
// The analysis solves a forward must-dataflow problem over each
// function's CFG (analysis.BuildCFG + analysis.Solve): the abstract
// state is the set of locks held on every path to a program point, with
// set intersection as the join, so a lock released on either arm of a
// branch is not considered held after the merge. A package-level
// fixpoint classifies same-package functions that block (directly or
// transitively) so calls to them are flagged at the call site.
// Blocking operations are:
//
//   - channel send or receive outside a select with a default clause
//   - select without a default clause
//   - range over a channel
//   - time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait
//   - Read/Write/ReadFrom/WriteTo on interface values (io.Reader,
//     io.Writer, net.Conn, ...) and io.ReadFull/io.Copy/io.CopyN:
//     behind an interface may sit a network peer
//   - calls to same-package functions classified as blocking
//
// Function literals are analyzed as separate functions with an empty
// lock set: a goroutine does not hold its creator's locks. A deferred
// Unlock keeps the lock held to the end of the function, as at runtime.
//
// Intentional, bounded waits under a lock are annotated with
// //pubsub:allow locksafe -- reason.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags blocking operations while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags channel operations, selects, sleeps, waits and interface " +
		"I/O performed while a sync.Mutex/RWMutex is held",
	Run: run,
}

// lock/unlock method sets, identified by types.Func.FullName so that
// embedded (promoted) mutexes are matched too.
var (
	lockMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	// blockingStdCalls block by name, wherever they are called from.
	blockingStdCalls = map[string]string{
		"time.Sleep":             "time.Sleep",
		"(*sync.WaitGroup).Wait": "WaitGroup.Wait",
		"(*sync.Cond).Wait":      "Cond.Wait",
		"io.ReadFull":            "io.ReadFull",
		"io.ReadAll":             "io.ReadAll",
		"io.Copy":                "io.Copy",
		"io.CopyN":               "io.CopyN",
	}
	// blockingIfaceMethods are method names that count as blocking when
	// invoked on an interface value: the dynamic type may be a socket.
	blockingIfaceMethods = map[string]bool{
		"Read":     true,
		"Write":    true,
		"ReadFrom": true,
		"WriteTo":  true,
	}
)

type checker struct {
	pass *analysis.Pass
	// blockingFns maps same-package functions (by object) to a short
	// description of why they block, for call-site messages.
	blockingFns map[*types.Func]string
	decls       map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:        pass,
		blockingFns: map[*types.Func]string{},
		decls:       map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}

	// Fixpoint: seed with directly blocking functions, then propagate
	// through same-package calls until stable.
	for obj, fd := range c.decls {
		if why := c.directlyBlocking(fd.Body); why != "" {
			c.blockingFns[obj] = why
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			if _, done := c.blockingFns[obj]; done {
				continue
			}
			if callee, why := c.callsBlockingFn(fd.Body); callee != nil {
				c.blockingFns[obj] = fmt.Sprintf("calls %s (%s)", callee.Name(), why)
				changed = true
			}
		}
	}

	for _, fd := range c.decls {
		c.checkFunc(fd.Body)
	}
	return nil, nil
}

// lockSet tracks which mutexes are held, keyed by the printed receiver
// expression (an approximation that works for the field- and
// variable-shaped receivers this codebase uses).
type lockSet map[string]token.Pos

// flow is the must-hold dataflow problem: a lock is in the state only
// if it is held on every path, so join is set intersection.
func (c *checker) flow() *analysis.Flow[lockSet] {
	return &analysis.Flow[lockSet]{
		Entry:    lockSet{},
		Transfer: c.transfer,
		Join:     intersect,
		Equal: func(a, b lockSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
		Clone: func(s lockSet) lockSet {
			out := make(lockSet, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
	}
}

// checkFunc solves the lock-set dataflow over one function body and
// replays each reached block to flag blocking operations under a lock.
// Function literals encountered during the replay recurse here with
// their own empty entry set.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	comm := commStmts(body)
	g := analysis.BuildCFG(body)
	f := c.flow()
	sol := analysis.Solve(g, f)
	for _, b := range g.Blocks {
		if !sol.Reached[b.Index] {
			continue
		}
		s := f.Clone(sol.In[b.Index])
		for _, n := range b.Nodes {
			c.scanNode(n, s, comm)
			s = f.Transfer(s, n)
		}
	}
}

// commStmts collects the comm statements of every select in the body.
// The CFG places them in their clause's block, but the blocking happens
// at the select header, so the replay must not flag their channel ops.
func commStmts(body *ast.BlockStmt) map[ast.Node]bool {
	comm := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comm[cc.Comm] = true
				}
			}
		}
		return true
	})
	return comm
}

// transfer updates the lock set across one CFG node. Deferred calls run
// at function exit (a deferred Unlock keeps the lock held here), go
// statements run concurrently, and a select header's comm operations
// are handled in their clause blocks.
func (c *checker) transfer(s lockSet, n ast.Node) lockSet {
	switch n := n.(type) {
	case *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt:
		return s
	case *ast.RangeStmt:
		// Only the ranged-over expression evaluates at the header; the
		// body's lock ops live in the body's own blocks.
		return c.applyLockOps(n.X, s)
	default:
		return c.applyLockOps(n, s)
	}
}

// scanNode flags blocking operations in one CFG node given the lock set
// held before it executes.
func (c *checker) scanNode(n ast.Node, held lockSet, comm map[ast.Node]bool) {
	if comm[n] {
		// The comm ops of a select are non-blocking (the select header is
		// where blocking happens); only scan for calls and literals.
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				c.checkFunc(m.Body)
				return false
			case *ast.CallExpr:
				c.call(m, held)
			}
			return true
		})
		return
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Deferred calls run outside any critical section we can see;
		// analyze their literals separately.
		c.funcLitsIn(n.Call)
	case *ast.GoStmt:
		// The goroutine runs concurrently and does not hold our locks.
		c.funcLitsIn(n.Call)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.flagIfHeld(n.Pos(), "select without default", held)
		}
		// Comm ops and clause bodies are separate CFG blocks.
	case *ast.RangeStmt:
		if t := c.pass.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.flagIfHeld(n.Pos(), "range over channel", held)
			}
		}
		c.scanGeneric(n.X, held)
	default:
		c.scanGeneric(n, held)
	}
}

// scanGeneric walks a simple statement or expression node for blocking
// operations, recursing into function literals with an empty lock set.
func (c *checker) scanGeneric(n ast.Node, held lockSet) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			c.checkFunc(m.Body)
			return false
		case *ast.SendStmt:
			c.flagIfHeld(m.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				c.flagIfHeld(m.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			c.call(m, held)
		}
		return true
	})
}

// call flags a single call expression if its callee blocks.
func (c *checker) call(call *ast.CallExpr, held lockSet) {
	if len(held) == 0 {
		return
	}
	if why := c.blockingCallDesc(call); why != "" {
		c.flagIfHeld(call.Pos(), why, held)
	}
}

// blockingCallDesc classifies one call as blocking, returning a human
// description or "".
func (c *checker) blockingCallDesc(call *ast.CallExpr) string {
	fn := c.calleeFunc(call)
	if fn == nil {
		return ""
	}
	if desc, ok := blockingStdCalls[fn.FullName()]; ok {
		return "call to " + desc
	}
	if blockingIfaceMethods[fn.Name()] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := c.pass.TypeOf(sel.X); t != nil {
				if _, ok := t.Underlying().(*types.Interface); ok {
					return fmt.Sprintf("%s on interface value (potential network I/O)", fn.Name())
				}
			}
		}
	}
	if fn.Pkg() == c.pass.Pkg {
		if why, ok := c.blockingFns[fn]; ok {
			return fmt.Sprintf("call to %s, which blocks (%s)", fn.Name(), why)
		}
	}
	return ""
}

// directlyBlocking reports why a function body blocks on its own (not
// via same-package calls), or "".
func (c *checker) directlyBlocking(body *ast.BlockStmt) string {
	selectDefaults := map[*ast.SelectStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					selectDefaults[s] = true
				}
			}
		}
		return true
	})
	var walk func(n ast.Node) string
	walk = func(n ast.Node) string {
		found := ""
		ast.Inspect(n, func(m ast.Node) bool {
			if found != "" {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate function
			case *ast.GoStmt:
				// Launching a goroutine is non-blocking for the caller;
				// the spawned function runs with its own (empty) lock set.
				return false
			case *ast.SelectStmt:
				if !selectDefaults[m] {
					found = "contains select without default"
					return false
				}
				// Non-blocking select: comm ops are fine, bodies still scanned.
				for _, cl := range m.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, b := range cc.Body {
							if f := walk(b); f != "" {
								found = f
								return false
							}
						}
					}
				}
				return false
			case *ast.SendStmt:
				found = "contains channel send"
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					found = "contains channel receive"
					return false
				}
			case *ast.RangeStmt:
				if t := c.pass.TypeOf(m.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = "ranges over a channel"
						return false
					}
				}
			case *ast.CallExpr:
				fn := c.calleeFunc(m)
				if fn == nil {
					return true
				}
				if desc, ok := blockingStdCalls[fn.FullName()]; ok {
					found = "calls " + desc
					return false
				}
				if blockingIfaceMethods[fn.Name()] {
					if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
						if t := c.pass.TypeOf(sel.X); t != nil {
							if _, ok := t.Underlying().(*types.Interface); ok {
								found = "performs interface I/O"
								return false
							}
						}
					}
				}
			}
			return true
		})
		return found
	}
	return walk(body)
}

// callsBlockingFn finds the first call (outside function literals) to a
// same-package function already classified as blocking.
func (c *checker) callsBlockingFn(body *ast.BlockStmt) (*types.Func, string) {
	var callee *types.Func
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if callee != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			// go f() returns immediately even if f blocks.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.calleeFunc(call)
		if fn == nil || fn.Pkg() != c.pass.Pkg {
			return true
		}
		if w, ok := c.blockingFns[fn]; ok {
			callee, why = fn, w
		}
		return true
	})
	return callee, why
}

// funcLitsIn analyzes function literals appearing in a call's arguments
// or callee position as independent functions.
func (c *checker) funcLitsIn(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(lit.Body)
			return false
		}
		return true
	})
}

// applyLockOps updates the lock set for any Lock/Unlock calls in n
// (sequentially, left to right as they appear). Function literals are
// separate functions; their lock ops do not affect this set.
func (c *checker) applyLockOps(n ast.Node, held lockSet) lockSet {
	out := held
	mutated := false
	mutable := func() lockSet {
		if !mutated {
			cp := make(lockSet, len(out))
			for k, v := range out {
				cp[k] = v
			}
			out = cp
			mutated = true
		}
		return out
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.calleeFunc(call)
		if fn == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := fn.FullName()
		switch {
		case lockMethods[name]:
			mutable()[exprString(c.pass.Fset, sel.X)] = call.Pos()
		case unlockMethods[name]:
			delete(mutable(), exprString(c.pass.Fset, sel.X))
		}
		return true
	})
	return out
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// flagIfHeld reports op at pos if any lock is held, naming the
// longest-held lock for the message.
func (c *checker) flagIfHeld(pos token.Pos, op string, held lockSet) {
	if len(held) == 0 {
		return
	}
	var name string
	var at token.Pos = token.Pos(1 << 62)
	for k, p := range held {
		if p < at {
			name, at = k, p
		}
	}
	c.pass.Reportf(pos,
		"locksafe: %s while %s is held (locked at %s); release the lock first, restructure, or annotate an intentional bounded wait with //pubsub:allow locksafe",
		op, name, c.pass.Fset.Position(at))
}

func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}
