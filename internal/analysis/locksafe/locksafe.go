// Package locksafe flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held. In the broker and wire layers a
// lock held across a channel operation, network write or sleep turns
// one slow peer into a broker-wide stall — the classic failure mode of
// a concurrent pub-sub core.
//
// The analysis is a per-function abstract interpretation of the lock
// set, with a package-level fixpoint so that calls to same-package
// functions that themselves block (directly or transitively) are
// flagged at the call site. Blocking operations are:
//
//   - channel send or receive outside a select with a default clause
//   - select without a default clause
//   - range over a channel
//   - time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait
//   - Read/Write/ReadFrom/WriteTo on interface values (io.Reader,
//     io.Writer, net.Conn, ...) and io.ReadFull/io.Copy/io.CopyN:
//     behind an interface may sit a network peer
//   - calls to same-package functions classified as blocking
//
// Function literals are analyzed as separate functions with an empty
// lock set: a goroutine does not hold its creator's locks. A deferred
// Unlock keeps the lock held to the end of the function, as at runtime.
//
// Intentional, bounded waits under a lock are annotated with
// //pubsub:allow locksafe -- reason.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags blocking operations while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags channel operations, selects, sleeps, waits and interface " +
		"I/O performed while a sync.Mutex/RWMutex is held",
	Run: run,
}

// lock/unlock method sets, identified by types.Func.FullName so that
// embedded (promoted) mutexes are matched too.
var (
	lockMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	// blockingStdCalls block by name, wherever they are called from.
	blockingStdCalls = map[string]string{
		"time.Sleep":             "time.Sleep",
		"(*sync.WaitGroup).Wait": "WaitGroup.Wait",
		"(*sync.Cond).Wait":      "Cond.Wait",
		"io.ReadFull":            "io.ReadFull",
		"io.ReadAll":             "io.ReadAll",
		"io.Copy":                "io.Copy",
		"io.CopyN":               "io.CopyN",
	}
	// blockingIfaceMethods are method names that count as blocking when
	// invoked on an interface value: the dynamic type may be a socket.
	blockingIfaceMethods = map[string]bool{
		"Read":     true,
		"Write":    true,
		"ReadFrom": true,
		"WriteTo":  true,
	}
)

type checker struct {
	pass *analysis.Pass
	// blockingFns maps same-package functions (by object) to a short
	// description of why they block, for call-site messages.
	blockingFns map[*types.Func]string
	decls       map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:        pass,
		blockingFns: map[*types.Func]string{},
		decls:       map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}

	// Fixpoint: seed with directly blocking functions, then propagate
	// through same-package calls until stable.
	for obj, fd := range c.decls {
		if why := c.directlyBlocking(fd.Body); why != "" {
			c.blockingFns[obj] = why
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			if _, done := c.blockingFns[obj]; done {
				continue
			}
			if callee, why := c.callsBlockingFn(fd.Body); callee != nil {
				c.blockingFns[obj] = fmt.Sprintf("calls %s (%s)", callee.Name(), why)
				changed = true
			}
		}
	}

	for _, fd := range c.decls {
		c.checkFunc(fd.Body)
	}
	return nil, nil
}

// lockSet tracks which mutexes are held, keyed by the printed receiver
// expression (an approximation that works for the field- and
// variable-shaped receivers this codebase uses).
type lockSet map[string]token.Pos

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// checkFunc interprets one function body with an empty entry lock set,
// and recurses into function literals (also with empty sets).
func (c *checker) checkFunc(body *ast.BlockStmt) {
	c.stmts(body.List, lockSet{})
}

// stmts interprets a statement sequence, returning the lock set at the
// fall-through exit and whether the sequence always terminates
// (returns, panics or branches away).
func (c *checker) stmts(list []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = c.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (c *checker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.ExprStmt:
		c.expr(s.X, held)
		return c.applyLockOps(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
		h := held
		for _, e := range s.Rhs {
			h = c.applyLockOps(e, h)
		}
		return h, false
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
		c.flagIfHeld(s.Pos(), "channel send", held)
		return held, false
	case *ast.IncDecStmt:
		c.expr(s.X, held)
		return held, false
	case *ast.DeferStmt:
		// A deferred Unlock releases at function exit, i.e. never within
		// this body: leave the set unchanged. Other deferred calls run
		// outside any critical section we can see; analyze their
		// literals separately.
		c.funcLits(s.Call, held)
		return held, false
	case *ast.GoStmt:
		// The goroutine runs concurrently and does not hold our locks.
		c.funcLits(s.Call, lockSet{})
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		held = c.applyLockOps(s.Cond, held)
		thenHeld, thenTerm := c.stmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = c.stmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held)
		}
		body, _ := c.stmts(s.Body.List, held.clone())
		if s.Post != nil {
			c.stmt(s.Post, body)
		}
		// Approximation: assume the loop body is lock-balanced, keeping
		// the entry set at exit.
		return held, false
	case *ast.RangeStmt:
		c.expr(s.X, held)
		if t := c.pass.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.flagIfHeld(s.Pos(), "range over channel", held)
			}
		}
		c.stmts(s.Body.List, held.clone())
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		return c.caseBodies(s.Body, held), false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		return c.caseBodies(s.Body, held), false
	case *ast.SelectStmt:
		return c.selectStmt(s, held), false
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e, held)
				return false
			}
			return true
		})
		return held, false
	default:
		return held, false
	}
}

// caseBodies analyzes each case clause of a switch against a copy of
// the entry set and intersects the fall-through results.
func (c *checker) caseBodies(body *ast.BlockStmt, held lockSet) lockSet {
	result := held
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.expr(e, held)
		}
		after, term := c.stmts(cc.Body, held.clone())
		if !term {
			result = intersect(result, after)
		}
	}
	return result
}

// selectStmt handles the one construct where channel operations may be
// non-blocking: a select with a default clause. Without one, the select
// itself blocks.
func (c *checker) selectStmt(s *ast.SelectStmt, held lockSet) lockSet {
	hasDefault := false
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		c.flagIfHeld(s.Pos(), "select without default", held)
	}
	result := held
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		// The comm ops themselves are non-blocking inside a select (the
		// select statement is where blocking happens), so only walk
		// their subexpressions for calls and nested literals.
		if cc.Comm != nil {
			ast.Inspect(cc.Comm, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					c.call(call, held)
				}
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(lit.Body)
					return false
				}
				return true
			})
		}
		after, term := c.stmts(cc.Body, held.clone())
		if !term {
			result = intersect(result, after)
		}
	}
	return result
}

// expr scans an expression for blocking operations (receives, blocking
// calls) evaluated with the current lock set, and analyzes nested
// function literals with an empty set.
func (c *checker) expr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFunc(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.flagIfHeld(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			c.call(n, held)
		}
		return true
	})
}

// call flags a single call expression if its callee blocks.
func (c *checker) call(call *ast.CallExpr, held lockSet) {
	if len(held) == 0 {
		return
	}
	if why := c.blockingCallDesc(call); why != "" {
		c.flagIfHeld(call.Pos(), why, held)
	}
}

// blockingCallDesc classifies one call as blocking, returning a human
// description or "".
func (c *checker) blockingCallDesc(call *ast.CallExpr) string {
	fn := c.calleeFunc(call)
	if fn == nil {
		return ""
	}
	if desc, ok := blockingStdCalls[fn.FullName()]; ok {
		return "call to " + desc
	}
	if blockingIfaceMethods[fn.Name()] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := c.pass.TypeOf(sel.X); t != nil {
				if _, ok := t.Underlying().(*types.Interface); ok {
					return fmt.Sprintf("%s on interface value (potential network I/O)", fn.Name())
				}
			}
		}
	}
	if fn.Pkg() == c.pass.Pkg {
		if why, ok := c.blockingFns[fn]; ok {
			return fmt.Sprintf("call to %s, which blocks (%s)", fn.Name(), why)
		}
	}
	return ""
}

// directlyBlocking reports why a function body blocks on its own (not
// via same-package calls), or "".
func (c *checker) directlyBlocking(body *ast.BlockStmt) string {
	selectDefaults := map[*ast.SelectStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					selectDefaults[s] = true
				}
			}
		}
		return true
	})
	var walk func(n ast.Node) string
	walk = func(n ast.Node) string {
		found := ""
		ast.Inspect(n, func(m ast.Node) bool {
			if found != "" {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate function
			case *ast.GoStmt:
				// Launching a goroutine is non-blocking for the caller;
				// the spawned function runs with its own (empty) lock set.
				return false
			case *ast.SelectStmt:
				if !selectDefaults[m] {
					found = "contains select without default"
					return false
				}
				// Non-blocking select: comm ops are fine, bodies still scanned.
				for _, cl := range m.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, b := range cc.Body {
							if f := walk(b); f != "" {
								found = f
								return false
							}
						}
					}
				}
				return false
			case *ast.SendStmt:
				found = "contains channel send"
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					found = "contains channel receive"
					return false
				}
			case *ast.RangeStmt:
				if t := c.pass.TypeOf(m.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = "ranges over a channel"
						return false
					}
				}
			case *ast.CallExpr:
				fn := c.calleeFunc(m)
				if fn == nil {
					return true
				}
				if desc, ok := blockingStdCalls[fn.FullName()]; ok {
					found = "calls " + desc
					return false
				}
				if blockingIfaceMethods[fn.Name()] {
					if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
						if t := c.pass.TypeOf(sel.X); t != nil {
							if _, ok := t.Underlying().(*types.Interface); ok {
								found = "performs interface I/O"
								return false
							}
						}
					}
				}
			}
			return true
		})
		return found
	}
	return walk(body)
}

// callsBlockingFn finds the first call (outside function literals) to a
// same-package function already classified as blocking.
func (c *checker) callsBlockingFn(body *ast.BlockStmt) (*types.Func, string) {
	var callee *types.Func
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if callee != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			// go f() returns immediately even if f blocks.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.calleeFunc(call)
		if fn == nil || fn.Pkg() != c.pass.Pkg {
			return true
		}
		if w, ok := c.blockingFns[fn]; ok {
			callee, why = fn, w
		}
		return true
	})
	return callee, why
}

// funcLits analyzes function literals appearing in a call's arguments
// or callee position as independent functions.
func (c *checker) funcLits(call *ast.CallExpr, _ lockSet) {
	ast.Inspect(call, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(lit.Body)
			return false
		}
		return true
	})
}

// applyLockOps updates the lock set for any Lock/Unlock calls in e
// (sequentially, left to right as they appear).
func (c *checker) applyLockOps(e ast.Expr, held lockSet) lockSet {
	out := held
	mutated := false
	mutable := func() lockSet {
		if !mutated {
			out = out.clone()
			mutated = true
		}
		return out
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.calleeFunc(call)
		if fn == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := fn.FullName()
		switch {
		case lockMethods[name]:
			mutable()[exprString(c.pass.Fset, sel.X)] = call.Pos()
		case unlockMethods[name]:
			delete(mutable(), exprString(c.pass.Fset, sel.X))
		}
		return true
	})
	return out
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// flagIfHeld reports op at pos if any lock is held, naming the
// longest-held lock for the message.
func (c *checker) flagIfHeld(pos token.Pos, op string, held lockSet) {
	if len(held) == 0 {
		return
	}
	var name string
	var at token.Pos = token.Pos(1 << 62)
	for k, p := range held {
		if p < at {
			name, at = k, p
		}
	}
	c.pass.Reportf(pos,
		"locksafe: %s while %s is held (locked at %s); release the lock first, restructure, or annotate an intentional bounded wait with //pubsub:allow locksafe",
		op, name, c.pass.Fset.Position(at))
}

func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}
