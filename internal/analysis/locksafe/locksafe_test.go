package locksafe

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "../testdata/src/locksafe", "fixture/locksafe", Analyzer)
}
