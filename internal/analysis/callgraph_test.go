package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// testTarget is an in-memory Target for engine unit tests.
type testTarget struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (t *testTarget) FileSet() *token.FileSet  { return t.fset }
func (t *testTarget) ASTFiles() []*ast.File    { return t.files }
func (t *testTarget) TypesPkg() *types.Package { return t.pkg }
func (t *testTarget) TypesInfo() *types.Info   { return t.info }

func typecheck(t *testing.T, fset *token.FileSet, path, src string) *testTarget {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &testTarget{fset: fset, files: []*ast.File{f}, pkg: pkg, info: info}
}

const callgraphSrc = `package p

type Writer interface {
	Write(b []byte) (int, error)
}

type fileW struct{ n int }

func (f *fileW) Write(b []byte) (int, error) { f.n += len(b); return len(b), nil }

type nullW struct{}

func (nullW) Write(b []byte) (int, error) { return len(b), nil }

func direct() int { return 1 }

func caller(w Writer, fn func() int) {
	direct()
	w.Write(nil)
	fn()
	go direct()
	defer direct()
}
`

func buildTestGraph(t *testing.T) (*CallGraph, *testTarget) {
	t.Helper()
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "p", callgraphSrc)
	return BuildCallGraph([]Target{tt}), tt
}

func findFunc(t *testing.T, g *CallGraph, name string) *CallNode {
	t.Helper()
	for fn, node := range g.Nodes {
		if fn.Name() == name {
			return node
		}
	}
	t.Fatalf("function %s not in graph", name)
	return nil
}

func TestCallGraphNodes(t *testing.T) {
	g, _ := buildTestGraph(t)
	for _, name := range []string{"direct", "caller", "Write"} {
		found := false
		for fn := range g.Nodes {
			if fn.Name() == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("declared function %s missing from graph", name)
		}
	}
}

func TestCallGraphDirectCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	caller := findFunc(t, g, "caller")
	var hits int
	for _, site := range caller.Sites {
		for _, callee := range site.Callees {
			if callee.Name() == "direct" {
				hits++
				if site.Iface != nil {
					t.Fatalf("direct call misclassified as interface call")
				}
			}
		}
	}
	if hits != 3 { // plain, go, defer
		t.Fatalf("direct call sites = %d, want 3", hits)
	}
}

func TestCallGraphInterfaceResolution(t *testing.T) {
	g, _ := buildTestGraph(t)
	caller := findFunc(t, g, "caller")
	for _, site := range caller.Sites {
		if site.Iface == nil {
			continue
		}
		if site.Iface.Name() != "Write" {
			t.Fatalf("iface method = %s, want Write", site.Iface.Name())
		}
		// Both fileW and nullW implement Writer.
		if len(site.Callees) != 2 {
			t.Fatalf("interface call resolved to %d impls, want 2", len(site.Callees))
		}
		for _, c := range site.Callees {
			if g.FuncOf(c) == nil {
				t.Fatalf("implementation %s not a graph node", c.FullName())
			}
		}
		return
	}
	t.Fatalf("no interface call site recorded")
}

func TestCallGraphDynamicAndGoDefer(t *testing.T) {
	g, _ := buildTestGraph(t)
	caller := findFunc(t, g, "caller")
	var dynamic, inGo, inDefer bool
	for _, site := range caller.Sites {
		if site.Dynamic {
			dynamic = true
		}
		if site.InGo {
			inGo = true
		}
		if site.InDefer {
			inDefer = true
		}
	}
	if !dynamic {
		t.Fatalf("fn() call not marked Dynamic")
	}
	if !inGo {
		t.Fatalf("go direct() not marked InGo")
	}
	if !inDefer {
		t.Fatalf("defer direct() not marked InDefer")
	}
}

func TestCallGraphFuncLitSites(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "q", `package q
func leaf() {}
func hasLit() {
	f := func() { leaf() }
	f()
}
`)
	g := BuildCallGraph([]Target{tt})
	hasLit := findFunc(t, g, "hasLit")
	var litSite bool
	for _, site := range hasLit.Sites {
		for _, c := range site.Callees {
			if c.Name() == "leaf" && site.InLit {
				litSite = true
			}
		}
	}
	if !litSite {
		t.Fatalf("call inside func literal must be recorded with InLit")
	}
}

func TestCallGraphConversionNotACall(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "r", `package r
type myInt int
func conv(x int) myInt { return myInt(x) }
`)
	g := BuildCallGraph([]Target{tt})
	conv := findFunc(t, g, "conv")
	for _, site := range conv.Sites {
		if site.Dynamic || len(site.Callees) > 0 {
			t.Fatalf("conversion recorded as a call: %+v", site)
		}
	}
}
