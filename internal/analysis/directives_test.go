package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		rest   string // directive text after //pubsub:allow
		names  []string
		reason string
		ok     bool
	}{
		{" locksafe -- bounded wait", []string{"locksafe"}, "bounded wait", true},
		{" locksafe,nodeterm -- two at once", []string{"locksafe", "nodeterm"}, "two at once", true},
		{" locksafe, nodeterm -- spaced list", []string{"locksafe", "nodeterm"}, "spaced list", true},
		{" locksafe — em dash reason", []string{"locksafe"}, "em dash reason", true},
		{" locksafe", nil, "", false},    // missing separator and reason
		{" locksafe --", nil, "", false}, // empty reason
		{" -- reason but no names", nil, "", false},
		{" two words -- name may not contain spaces", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := splitDirective(c.rest)
		if ok != c.ok {
			t.Errorf("splitDirective(%q): ok = %v, want %v", c.rest, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if reason != c.reason {
			t.Errorf("splitDirective(%q): reason = %q, want %q", c.rest, reason, c.reason)
		}
		if len(names) != len(c.names) {
			t.Errorf("splitDirective(%q): names = %v, want %v", c.rest, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("splitDirective(%q): names = %v, want %v", c.rest, names, c.names)
				break
			}
		}
	}
}

func TestSuppressionsUsageTracking(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "sup", `package sup

func f() {
	//pubsub:allow locksafe -- used waiver
	_ = 1
	//pubsub:allow locksafe -- stale waiver
	_ = 2
	//pubsub:allow nosuch -- names a phantom analyzer
	_ = 3
}
`)
	sup := NewSuppressions()
	if bad := sup.Collect(fset, tt.files); len(bad) != 0 {
		t.Fatalf("unexpected bad directives: %v", bad)
	}

	// Simulate a diagnostic on the line below the first waiver.
	var usedPos token.Pos
	for _, cg := range tt.files[0].Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "used waiver") {
				usedPos = c.Pos()
			}
		}
	}
	p := fset.Position(usedPos)
	diagPos := fset.File(usedPos).LineStart(p.Line + 1)
	if !sup.Allows(fset, "locksafe", diagPos) {
		t.Fatalf("waiver must cover the next line")
	}
	if sup.Allows(fset, "otheranalyzer", diagPos) {
		t.Fatalf("waiver must only cover its named analyzer")
	}

	known := map[string]bool{"locksafe": true}
	unused := sup.Unused(known)
	if len(unused) != 2 {
		t.Fatalf("unused = %d diagnostics, want 2 (stale + unknown): %v", len(unused), unused)
	}
	var sawStale, sawUnknown bool
	for _, d := range unused {
		if strings.Contains(d.Message, "unused //pubsub:allow locksafe") {
			sawStale = true
		}
		if strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			sawUnknown = true
		}
	}
	if !sawStale || !sawUnknown {
		t.Fatalf("unused diagnostics missing stale/unknown cases: %v", unused)
	}
}

func TestSuppressionsMalformed(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "mal", `package mal

func f() {
	//pubsub:allow locksafe
	_ = 1
	//pubsub:frobnicate -- not a directive kind
	_ = 2
}
`)
	sup := NewSuppressions()
	bad := sup.Collect(fset, tt.files)
	if len(bad) != 2 {
		t.Fatalf("bad = %d diagnostics, want 2: %v", len(bad), bad)
	}
	var sawNoReason, sawUnknownKind bool
	for _, d := range bad {
		if strings.Contains(d.Message, "malformed //pubsub:allow") {
			sawNoReason = true
		}
		if strings.Contains(d.Message, "unknown //pubsub: directive") {
			sawUnknownKind = true
		}
	}
	if !sawNoReason || !sawUnknownKind {
		t.Fatalf("missing expected malformed diagnostics: %v", bad)
	}
}

func TestCollectMarks(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "mk", `package mk

//pubsub:hotpath
func root() {}

//pubsub:coldpath -- lazy work off the steady-state path
func boundary() {}

//pubsub:commit -- acknowledges the record to callers
func ack() {}

type s struct {
	//pubsub:commit -- readers treat this as published
	next  int64
	plain int
}

//pubsub:coldpath
func missingReason() {}
`)
	m := NewMarks()
	m.Collect(fset, tt.files, tt.info)

	wantOne := func(name string, got int) {
		t.Helper()
		if got != 1 {
			t.Fatalf("%s marks = %d, want 1", name, got)
		}
	}
	wantOne("hotpath", len(m.Hot))
	wantOne("coldpath", len(m.Cold))
	wantOne("commit func", len(m.Commit))
	wantOne("commit field", len(m.CommitFields))
	for fn := range m.Hot {
		if fn.Name() != "root" {
			t.Fatalf("hot mark on %s, want root", fn.Name())
		}
	}
	for fn, reason := range m.Cold {
		if fn.Name() != "boundary" || !strings.Contains(reason, "lazy work") {
			t.Fatalf("cold mark = %s %q", fn.Name(), reason)
		}
	}
	for v := range m.CommitFields {
		if v.Name() != "next" {
			t.Fatalf("commit field mark on %s, want next", v.Name())
		}
	}
	if len(m.Bad) != 1 || !strings.Contains(m.Bad[0].Message, "coldpath requires a reason") {
		t.Fatalf("bad marks = %v, want one missing-reason diagnostic", m.Bad)
	}
}

func TestCollectMarksUnattached(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "un", `package un

func f() {
	//pubsub:hotpath
	_ = 1
}
`)
	m := NewMarks()
	m.Collect(fset, tt.files, tt.info)
	if len(m.Hot) != 0 {
		t.Fatalf("floating mark must not attach: %v", m.Hot)
	}
	if len(m.Bad) != 1 || !strings.Contains(m.Bad[0].Message, "attaches to no declaration") {
		t.Fatalf("bad = %v, want one unattached diagnostic", m.Bad)
	}
}

func TestCollectMarksFieldMisuse(t *testing.T) {
	fset := token.NewFileSet()
	tt := typecheck(t, fset, "fm", `package fm

type s struct {
	//pubsub:hotpath
	x int
}
`)
	m := NewMarks()
	m.Collect(fset, tt.files, tt.info)
	if len(m.Bad) != 1 || !strings.Contains(m.Bad[0].Message, "applies to functions, not struct fields") {
		t.Fatalf("bad = %v, want one field-misuse diagnostic", m.Bad)
	}
}
