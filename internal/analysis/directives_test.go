package analysis

import "testing"

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		rest   string // directive text after //pubsub:allow
		names  []string
		reason string
		ok     bool
	}{
		{" locksafe -- bounded wait", []string{"locksafe"}, "bounded wait", true},
		{" locksafe,nodeterm -- two at once", []string{"locksafe", "nodeterm"}, "two at once", true},
		{" locksafe, nodeterm -- spaced list", []string{"locksafe", "nodeterm"}, "spaced list", true},
		{" locksafe — em dash reason", []string{"locksafe"}, "em dash reason", true},
		{" locksafe", nil, "", false},    // missing separator and reason
		{" locksafe --", nil, "", false}, // empty reason
		{" -- reason but no names", nil, "", false},
		{" two words -- name may not contain spaces", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := splitDirective(c.rest)
		if ok != c.ok {
			t.Errorf("splitDirective(%q): ok = %v, want %v", c.rest, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if reason != c.reason {
			t.Errorf("splitDirective(%q): reason = %q, want %q", c.rest, reason, c.reason)
		}
		if len(names) != len(c.names) {
			t.Errorf("splitDirective(%q): names = %v, want %v", c.rest, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("splitDirective(%q): names = %v, want %v", c.rest, names, c.names)
				break
			}
		}
	}
}
