package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is a per-function control-flow graph over AST nodes. Blocks hold
// the nodes executed in order; edges carry an optional branch condition
// so a dataflow analysis can refine state along the true/false arms of
// an if or a for. The graph is built purely syntactically — it
// over-approximates (every case of a switch is reachable, loops may
// execute zero times) which is the right direction for a checker that
// must not miss executions.
type CFG struct {
	// Entry is the function's first block.
	Entry *Block
	// Blocks lists every block, Entry first. Blocks unreachable from
	// Entry (code after return, bodies of select{}) are still present
	// but a Solve over the graph never visits them.
	Blocks []*Block
}

// Block is a straight-line sequence of AST nodes, ended by the control
// transfer its Succs describe.
type Block struct {
	Index int
	// Nodes are statements and evaluated condition expressions, in
	// execution order. Compound statements contribute their evaluated
	// parts: an *ast.IfStmt never appears, but its Cond expression
	// does; *ast.SelectStmt and *ast.RangeStmt appear themselves as
	// "header" nodes because analyzers must see the blocking
	// communication they perform; switch case expressions are prepended
	// to their clause's block.
	Nodes []ast.Node
	Succs []Edge
}

// Edge is one control transfer. If Cond is non-nil the edge is taken
// when Cond evaluates to Taken — this is what gives analyzers
// path-sensitivity at branches.
type Edge struct {
	To    *Block
	Cond  ast.Expr
	Taken bool
}

// cfgBuilder incrementally grows a CFG. cur is the block under
// construction; nil means the current point is unreachable (after
// return/panic/goto/break) — add starts a fresh unreachable block in
// that case so dead nodes stay addressable without edges into them.
type cfgBuilder struct {
	g   *CFG
	cur *Block
	// breaks holds break targets (loops, switches, selects), innermost
	// last; continues holds loop post targets only.
	breaks    []*Block
	continues []*Block
	// labels maps label names to goto targets; labelBreak/labelCont to
	// the labelled construct's break/continue targets. labelNext is the
	// label awaiting its construct (set by LabeledStmt, consumed by the
	// next push).
	labels       map[string]*Block
	labelBreak   map[string]*Block
	labelCont    map[string]*Block
	labelNext    string
	pendingGotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of one function body.
// body may be nil (declared-only functions) — the CFG then has a single
// empty block.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:          &CFG{},
		labels:     map[string]*Block{},
		labelBreak: map[string]*Block{},
		labelCont:  map[string]*Block{},
	}
	b.cur = b.newBlock()
	b.g.Entry = b.cur
	if body != nil {
		b.stmtList(body.List)
	}
	for _, pg := range b.pendingGotos {
		if to, ok := b.labels[pg.label]; ok {
			pg.from.Succs = append(pg.from.Succs, Edge{To: to})
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump links cur to blk and makes blk current. A nil cur (unreachable
// point) contributes no edge.
func (b *cfgBuilder) jump(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, Edge{To: blk})
	}
	b.cur = blk
}

// edgeTo adds an edge from cur without changing cur.
func (b *cfgBuilder) edgeTo(blk *Block, cond ast.Expr, taken bool) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, Edge{To: blk, Cond: cond, Taken: taken})
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // dead code: block exists, nothing points at it
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		thenB := b.newBlock()
		doneB := b.newBlock()
		b.edgeTo(thenB, s.Cond, true)
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			b.edgeTo(elseB, s.Cond, false)
		} else {
			b.edgeTo(doneB, s.Cond, false)
		}
		b.cur = thenB
		b.stmt(s.Body)
		b.jump(doneB)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.jump(doneB)
		}
		b.cur = doneB

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.jump(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edgeTo(body, s.Cond, true)
			b.edgeTo(done, s.Cond, false)
		} else {
			b.edgeTo(body, nil, false)
			// for {}: done is only reachable via break.
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushLoop(done, cont)
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.jump(post)
			b.stmt(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.popLoop()
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.jump(head)
		// The RangeStmt itself is the header node: analyzers see the
		// ranged-over expression (possibly a channel receive) here.
		b.add(s)
		b.edgeTo(body, nil, false)
		b.edgeTo(done, nil, false)
		b.pushLoop(done, head)
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List)

	case *ast.SelectStmt:
		// The select header blocks until one comm can proceed;
		// analyzers inspect the whole statement (default presence, comm
		// ops) at the header node.
		b.add(s)
		head := b.cur
		done := b.newBlock()
		b.pushBreak(done)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.newBlock()
			head.Succs = append(head.Succs, Edge{To: body})
			b.cur = body
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(done)
		}
		b.popBreak()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: head keeps zero successors and
			// everything after is dead.
			b.cur = nil
			return
		}
		b.cur = done

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.jump(head)
		b.labels[s.Label.Name] = head
		b.labelNext = s.Label.Name
		b.stmt(s.Stmt)
		b.labelNext = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			var to *Block
			if s.Label != nil {
				to = b.labelBreak[s.Label.Name]
			} else if len(b.breaks) > 0 {
				to = b.breaks[len(b.breaks)-1]
			}
			if to != nil {
				b.edgeTo(to, nil, false)
			}
			b.cur = nil
		case token.CONTINUE:
			var to *Block
			if s.Label != nil {
				to = b.labelCont[s.Label.Name]
			} else if len(b.continues) > 0 {
				to = b.continues[len(b.continues)-1]
			}
			if to != nil {
				b.edgeTo(to, nil, false)
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil && b.cur != nil {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Modelled structurally by switchClauses (edge to the next
			// clause body); nothing to do at the statement itself.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.cur = nil
			}
		}

	default:
		b.add(s)
	}
}

// switchClauses builds the clause structure shared by switch and type
// switch: every clause body gets an edge from the dispatch block, case
// expressions are prepended to the clause's block, fallthrough becomes
// an edge to the next clause body, and a missing default adds a direct
// dispatch→done edge.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	done := b.newBlock()
	b.pushBreak(done)
	hasDefault := false
	var bodies []*Block
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: body})
		bodies = append(bodies, body)
		b.cur = body
		for _, e := range cc.List {
			b.add(e)
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if endsInFallthrough(cc.Body) && i+1 < len(bodies) {
			b.jump(bodies[i+1])
			b.cur = nil
		} else {
			b.jump(done)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, Edge{To: done})
	}
	b.popBreak()
	b.cur = done
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.labelNext != "" {
		b.labelBreak[b.labelNext] = brk
		b.labelCont[b.labelNext] = cont
		b.labelNext = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// pushBreak registers a break target for a non-loop construct (switch,
// select). continue targets are untouched: continue inside a switch
// still refers to the enclosing loop.
func (b *cfgBuilder) pushBreak(brk *Block) {
	b.breaks = append(b.breaks, brk)
	if b.labelNext != "" {
		b.labelBreak[b.labelNext] = brk
		b.labelNext = ""
	}
}

func (b *cfgBuilder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}
