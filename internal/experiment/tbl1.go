package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/workload"
)

// Tbl1Row is one row of the Section 5 subscription-parameter table,
// together with the empirically observed shape frequencies of a large
// sample drawn from it (wildcard / lower-bounded / upper-bounded /
// bounded intervals).
type Tbl1Row struct {
	Name   string
	Params workload.IntervalParams

	// Observed shape frequencies from sampling.
	FracWildcard float64
	FracAtLeast  float64
	FracAtMost   float64
	FracBounded  float64
}

// Tbl1Parameters reproduces the Section 5 parameter table and validates
// it by sampling: the observed interval-shape frequencies must match the
// configured q0/q1/q2.
func Tbl1Parameters(seed int64, samples int) ([]Tbl1Row, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("experiment: samples must be positive, got %d", samples)
	}
	space := workload.StockSpace()
	rows := []Tbl1Row{
		{Name: "price", Params: workload.PriceParams()},
		{Name: "volume", Params: workload.VolumeParams()},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range rows {
		domain := space.Domain[workload.DimQuote]
		var wild, atLeast, atMost, bounded int
		for s := 0; s < samples; s++ {
			iv := rows[i].Params.SampleInterval(rng, domain)
			switch {
			case iv == domain:
				wild++
			case iv.Hi == domain.Hi && iv.Lo > domain.Lo:
				atLeast++
			case iv.Lo == domain.Lo && iv.Hi < domain.Hi:
				atMost++
			default:
				bounded++
			}
		}
		n := float64(samples)
		rows[i].FracWildcard = float64(wild) / n
		rows[i].FracAtLeast = float64(atLeast) / n
		rows[i].FracAtMost = float64(atMost) / n
		rows[i].FracBounded = float64(bounded) / n
	}
	return rows, nil
}

// WriteTbl1 renders the parameter table with its empirical validation.
func WriteTbl1(w io.Writer, rows []Tbl1Row) {
	fmt.Fprintf(w, "Section 5 parameter table — subscription interval distributions\n")
	fmt.Fprintf(w, "%-8s %5s %5s %5s %9s %9s %9s %8s\n",
		"", "q0", "q1", "q2", "mu1,s1", "mu2,s2", "mu3,s3", "c,alpha")
	for _, r := range rows {
		p := r.Params
		fmt.Fprintf(w, "%-8s %5.2f %5.2f %5.2f %6g, %-2g %6g, %-2g %6g, %-2g %4g, %-2g\n",
			r.Name, p.Q0, p.Q1, p.Q2, p.Mu1, p.Sigma1, p.Mu2, p.Sigma2, p.Mu3, p.Sigma3,
			p.ParetoScale, p.ParetoAlpha)
	}
	fmt.Fprintf(w, "observed shape frequencies (sampled, after domain clamping):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s wildcard=%.3f at-least=%.3f at-most=%.3f bounded=%.3f\n",
			r.Name, r.FracWildcard, r.FracAtLeast, r.FracAtMost, r.FracBounded)
	}
}
