package experiment

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// TestFig6Golden pins the exact Figure 6 series for one reduced
// configuration at the published seed. Because every stochastic component
// draws from math/rand with injected sources (whose sequence is stable
// across Go releases for a fixed seed), any change to these numbers means
// the reproduction pipeline changed behaviour — intentionally or not.
//
// If a deliberate change (e.g. a workload fix) moves these values, verify
// the full fig6 shape still matches EXPERIMENTS.md and re-pin.
func TestFig6Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Fig6DistributionMethod(Fig6Config{
		Seed:         DefaultSeed,
		Groups:       []int{11},
		Algorithms:   []cluster.Algorithm{cluster.AlgForgyKMeans},
		Thresholds:   []float64{0, 0.10, 0.50},
		Modes:        []int{9},
		Publications: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		threshold   float64
		improvement float64
		unicasts    int
		multicasts  int
		suppressed  int
	}{
		{threshold: 0, improvement: -1.2853562423, unicasts: 96, multicasts: 1140, suppressed: 764},
		{threshold: 0.1, improvement: 18.1625768185, unicasts: 832, multicasts: 404, suppressed: 764},
		{threshold: 0.5, improvement: 0, unicasts: 1236, multicasts: 0, suppressed: 764},
	}
	if len(res.Points) != len(want) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(want))
	}
	for i, w := range want {
		p := res.Points[i]
		if p.Threshold != w.threshold {
			t.Fatalf("point %d threshold %v, want %v", i, p.Threshold, w.threshold)
		}
		if math.Abs(p.Improvement-w.improvement) > 1e-6 {
			t.Errorf("t=%v improvement %.10f, want %.10f", w.threshold, p.Improvement, w.improvement)
		}
		if p.Unicasts != w.unicasts || p.Multicasts != w.multicasts || p.Suppressed != w.suppressed {
			t.Errorf("t=%v decisions %d/%d/%d, want %d/%d/%d", w.threshold,
				p.Unicasts, p.Multicasts, p.Suppressed, w.unicasts, w.multicasts, w.suppressed)
		}
	}
}
