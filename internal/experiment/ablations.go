package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/multicast"
	"repro/internal/rtree"
	"repro/internal/stree"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// abl-match: S-tree vs Hilbert R-tree vs brute force, scaling in k and N.
// This is the comparison the paper defers to "a subsequent paper".
// ---------------------------------------------------------------------

// MatchScalePoint is one (algorithm, k, N) measurement.
type MatchScalePoint struct {
	Algorithm match.Algorithm
	K         int // number of subscriptions
	N         int // dimensions

	BuildTime    time.Duration
	QueryTime    time.Duration // mean per point query
	NodesVisited float64       // mean, tree matchers only
	Matches      float64       // mean result size (sanity)
}

// MatchScaleConfig parameterises abl-match. Zero fields get defaults.
type MatchScaleConfig struct {
	Seed    int64
	Ks      []int
	Ns      []int
	Queries int
}

func (c MatchScaleConfig) withDefaults() MatchScaleConfig {
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{1000, 5000, 20000}
	}
	if len(c.Ns) == 0 {
		c.Ns = []int{2, 4, 8}
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	return c
}

// randomRects draws k axis-aligned rectangles in [0,100)^n with sides up
// to ~10 units, mimicking range subscriptions.
func randomRects(rng *rand.Rand, k, n int) []geometry.Rect {
	out := make([]geometry.Rect, k)
	for i := range out {
		r := make(geometry.Rect, n)
		for d := range r {
			lo := rng.Float64() * 95
			r[d] = geometry.NewInterval(lo, lo+0.5+rng.Float64()*10)
		}
		out[i] = r
	}
	return out
}

// AblMatchScaling measures matching performance across algorithms, k and
// N.
func AblMatchScaling(cfg MatchScaleConfig) ([]MatchScalePoint, error) {
	cfg = cfg.withDefaults()
	var points []MatchScalePoint
	for _, n := range cfg.Ns {
		for _, k := range cfg.Ks {
			rng := rand.New(rand.NewSource(cfg.Seed))
			rects := randomRects(rng, k, n)
			subs := make([]match.Subscription, k)
			for i, r := range rects {
				subs[i] = match.Subscription{Rect: r, SubscriberID: i}
			}
			queries := make([]geometry.Point, cfg.Queries)
			for i := range queries {
				p := make(geometry.Point, n)
				for d := range p {
					p[d] = rng.Float64() * 100
				}
				queries[i] = p
			}
			for _, alg := range []match.Algorithm{match.AlgSTree, match.AlgHilbertRTree, match.AlgDynamicRTree, match.AlgPredCount, match.AlgBruteForce} {
				//pubsub:allow nodeterm -- wall-clock here measures build cost, it never feeds simulation state
				start := time.Now()
				m, err := match.New(subs, match.Options{Algorithm: alg})
				if err != nil {
					return nil, err
				}
				build := time.Since(start)

				var visited, matches float64
				//pubsub:allow nodeterm -- wall-clock here measures query latency, it never feeds simulation state
				start = time.Now()
				for _, q := range queries {
					matches += float64(m.Count(q))
				}
				queryTime := time.Since(start) / time.Duration(len(queries))

				// Traversal stats from the underlying trees.
				switch alg {
				case match.AlgSTree:
					t := stree.MustBuild(toStreeEntries(subs), stree.Options{})
					for _, q := range queries {
						_, qs := t.PointQueryStats(q)
						visited += float64(qs.NodesVisited)
					}
					visited /= float64(len(queries))
				case match.AlgHilbertRTree:
					t := rtree.MustBuild(toRtreeEntries(subs), rtree.Options{})
					for _, q := range queries {
						_, qs := t.PointQueryStats(q)
						visited += float64(qs.NodesVisited)
					}
					visited /= float64(len(queries))
				}
				points = append(points, MatchScalePoint{
					Algorithm:    alg,
					K:            k,
					N:            n,
					BuildTime:    build,
					QueryTime:    queryTime,
					NodesVisited: visited,
					Matches:      matches / float64(len(queries)),
				})
			}
		}
	}
	return points, nil
}

func toStreeEntries(subs []match.Subscription) []stree.Entry {
	out := make([]stree.Entry, len(subs))
	for i, s := range subs {
		out[i] = stree.Entry{Rect: s.Rect, ID: s.SubscriberID}
	}
	return out
}

func toRtreeEntries(subs []match.Subscription) []rtree.Entry {
	out := make([]rtree.Entry, len(subs))
	for i, s := range subs {
		out[i] = rtree.Entry{Rect: s.Rect, ID: s.SubscriberID}
	}
	return out
}

// WriteMatchScaling renders abl-match.
func WriteMatchScaling(w io.Writer, points []MatchScalePoint) {
	fmt.Fprintf(w, "abl-match — matching algorithms vs k (subscriptions) and N (dimensions)\n")
	fmt.Fprintf(w, "%-14s %7s %3s %12s %12s %10s %8s\n",
		"algorithm", "k", "N", "build", "query/pt", "nodes/pt", "hits/pt")
	for _, p := range points {
		fmt.Fprintf(w, "%-14s %7d %3d %12v %12v %10.1f %8.2f\n",
			p.Algorithm, p.K, p.N, p.BuildTime.Round(time.Microsecond),
			p.QueryTime.Round(time.Nanosecond), p.NodesVisited, p.Matches)
	}
}

// ---------------------------------------------------------------------
// abl-skew / abl-branch: S-tree packing parameter sweeps.
// ---------------------------------------------------------------------

// StreeParamPoint is one parameter-sweep measurement.
type StreeParamPoint struct {
	Skew         float64
	BranchFactor int
	BuildTime    time.Duration
	QueryTime    time.Duration
	NodesVisited float64
	Height       int
}

// AblStreeSkew sweeps the skew factor p at the paper's M=40.
func AblStreeSkew(seed int64, skews []float64) ([]StreeParamPoint, error) {
	if len(skews) == 0 {
		skews = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	return ablStreeParams(seed, func(p float64) stree.Options {
		return stree.Options{Skew: p}
	}, skews, nil)
}

// AblStreeBranch sweeps the branch factor M at the paper's p=0.3.
func AblStreeBranch(seed int64, branches []int) ([]StreeParamPoint, error) {
	if len(branches) == 0 {
		branches = []int{4, 8, 16, 40, 64, 128}
	}
	var asFloat []float64
	for _, b := range branches {
		asFloat = append(asFloat, float64(b))
	}
	return ablStreeParams(seed, func(m float64) stree.Options {
		return stree.Options{BranchFactor: int(m)}
	}, asFloat, branches)
}

func ablStreeParams(seed int64, mk func(float64) stree.Options, params []float64, branches []int) ([]StreeParamPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	rects := randomRects(rng, 10000, 4)
	entries := make([]stree.Entry, len(rects))
	for i, r := range rects {
		entries[i] = stree.Entry{Rect: r, ID: i}
	}
	queries := make([]geometry.Point, 2000)
	for i := range queries {
		queries[i] = geometry.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	var out []StreeParamPoint
	for i, p := range params {
		opts := mk(p)
		//pubsub:allow nodeterm -- wall-clock here measures build cost, it never feeds simulation state
		start := time.Now()
		t, err := stree.Build(entries, opts)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		var visited float64
		//pubsub:allow nodeterm -- wall-clock here measures query latency, it never feeds simulation state
		start = time.Now()
		for _, q := range queries {
			_, qs := t.PointQueryStats(q)
			visited += float64(qs.NodesVisited)
		}
		queryTime := time.Since(start) / time.Duration(len(queries))
		pt := StreeParamPoint{
			BuildTime:    build,
			QueryTime:    queryTime,
			NodesVisited: visited / float64(len(queries)),
			Height:       t.Stats().Height,
		}
		if branches != nil {
			pt.BranchFactor = branches[i]
			pt.Skew = stree.DefaultSkew
		} else {
			pt.Skew = p
			pt.BranchFactor = stree.DefaultBranchFactor
		}
		out = append(out, pt)
	}
	return out, nil
}

// WriteStreeParams renders abl-skew / abl-branch.
func WriteStreeParams(w io.Writer, title string, points []StreeParamPoint) {
	fmt.Fprintf(w, "%s — S-tree packing parameters (10000 subs, 4 dims)\n", title)
	fmt.Fprintf(w, "%6s %4s %12s %12s %10s %7s\n", "p", "M", "build", "query/pt", "nodes/pt", "height")
	for _, p := range points {
		fmt.Fprintf(w, "%6.2f %4d %12v %12v %10.1f %7d\n",
			p.Skew, p.BranchFactor, p.BuildTime.Round(time.Microsecond),
			p.QueryTime.Round(time.Nanosecond), p.NodesVisited, p.Height)
	}
}

// ---------------------------------------------------------------------
// abl-cluster: clustering algorithm runtime and quality.
// ---------------------------------------------------------------------

// ClusterAlgoPoint is one clustering algorithm's measurement.
type ClusterAlgoPoint struct {
	Algorithm   cluster.Algorithm
	Groups      int
	Runtime     time.Duration
	TotalWaste  float64
	CoveredProb float64
	// Improvement is the Figure 6 improvement at the best threshold over
	// a fixed evaluation stream.
	Improvement   float64
	BestThreshold float64
}

// AblClusterAlgos compares the three clustering algorithms on runtime and
// on end-to-end delivery quality (paper claim: Forgy k-means is both the
// best and the fastest; MST is fast but worst; pairwise is slow).
func AblClusterAlgos(seed int64, groups int) ([]ClusterAlgoPoint, error) {
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return nil, err
	}
	model := workload.MustStockPublications(9)

	interests := make([]cluster.Interest, len(tb.Subs))
	msubs := make([]match.Subscription, len(tb.Subs))
	nodes := make([]int, len(tb.Subs))
	for i, s := range tb.Subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	matcher, err := match.New(msubs, match.Options{Algorithm: match.AlgSTree})
	if err != nil {
		return nil, err
	}
	cost := multicast.NewCostModel(tb.Graph)
	stubs := tb.Graph.NodesByRole(topology.RoleStub)

	rng := rand.New(rand.NewSource(seed + 9))
	const publications = 5000
	events := make([]geometry.Point, publications)
	publishers := make([]int, publications)
	for i := range events {
		events[i] = model.Sample(rng)
		publishers[i] = stubs[rng.Intn(len(stubs))]
	}

	var out []ClusterAlgoPoint
	for _, alg := range []cluster.Algorithm{cluster.AlgForgyKMeans, cluster.AlgBatchKMeans, cluster.AlgPairwise, cluster.AlgMST} {
		//pubsub:allow nodeterm -- wall-clock here measures clustering cost, it never feeds simulation state
		start := time.Now()
		clu, err := cluster.Build(interests, model, tb.Space.Domain, cluster.Config{
			Groups: groups, Algorithm: alg,
		})
		if err != nil {
			return nil, err
		}
		runtime := time.Since(start)

		best := ClusterAlgoPoint{
			Algorithm:   alg,
			Groups:      groups,
			Runtime:     runtime,
			TotalWaste:  clu.TotalWaste(),
			CoveredProb: clu.CoveredProb(),
			Improvement: -1e18,
		}
		for _, th := range []float64{0, 0.05, 0.10, 0.15, 0.20} {
			planner, err := dispatch.NewPlanner(clu, matcher, cost, nodes, dispatch.Config{Threshold: th})
			if err != nil {
				return nil, err
			}
			var tot dispatch.Totals
			for i, ev := range events {
				d, err := planner.Deliver(publishers[i], ev)
				if err != nil {
					return nil, err
				}
				tot.Add(d)
			}
			if imp := tot.Improvement(); imp > best.Improvement {
				best.Improvement = imp
				best.BestThreshold = th
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// WriteClusterAlgos renders abl-cluster.
func WriteClusterAlgos(w io.Writer, points []ClusterAlgoPoint) {
	fmt.Fprintf(w, "abl-cluster — clustering algorithms (runtime and delivery quality)\n")
	fmt.Fprintf(w, "%-14s %6s %12s %12s %10s %12s %6s\n",
		"algorithm", "groups", "runtime", "waste", "covered", "improvement", "t*")
	for _, p := range points {
		fmt.Fprintf(w, "%-14s %6d %12v %12.4f %10.3f %11.1f%% %5.0f%%\n",
			p.Algorithm, p.Groups, p.Runtime.Round(time.Millisecond),
			p.TotalWaste, p.CoveredProb, p.Improvement, p.BestThreshold*100)
	}
}

// ---------------------------------------------------------------------
// abl-groups: improvement vs number of multicast groups.
// ---------------------------------------------------------------------

// GroupsPoint is one group-count measurement.
type GroupsPoint struct {
	Groups      int
	Improvement float64
	Threshold   float64
}

// AblGroupCounts sweeps the number of multicast groups n for Forgy
// k-means at the paper's best threshold.
func AblGroupCounts(seed int64, counts []int, threshold float64) ([]GroupsPoint, error) {
	if len(counts) == 0 {
		counts = []int{1, 6, 11, 21, 41, 61, 101}
	}
	if threshold == 0 {
		threshold = 0.10
	}
	res, err := Fig6DistributionMethod(Fig6Config{
		Seed:       seed,
		Groups:     counts,
		Algorithms: []cluster.Algorithm{cluster.AlgForgyKMeans},
		Thresholds: []float64{threshold},
		Modes:      []int{9},
	})
	if err != nil {
		return nil, err
	}
	var out []GroupsPoint
	for _, p := range res.Points {
		out = append(out, GroupsPoint{Groups: p.Groups, Improvement: p.Improvement, Threshold: p.Threshold})
	}
	return out, nil
}

// WriteGroupCounts renders abl-groups.
func WriteGroupCounts(w io.Writer, points []GroupsPoint) {
	fmt.Fprintf(w, "abl-groups — improvement vs number of multicast groups (forgy k-means)\n")
	fmt.Fprintf(w, "%8s %12s %6s\n", "groups", "improvement", "t")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %11.1f%% %5.0f%%\n", p.Groups, p.Improvement, p.Threshold*100)
	}
}

// ---------------------------------------------------------------------
// abl-mode: dense-mode vs sparse-mode vs application-level multicast.
// ---------------------------------------------------------------------

// ModePoint is one (mode, threshold) measurement.
type ModePoint struct {
	Mode        multicast.Mode
	Threshold   float64
	Improvement float64
	Cost        float64
}

// AblMulticastModes compares the three multicast mechanisms on the
// Figure 6 testbed across the threshold sweep, with Forgy k-means
// clustering into 11 groups and the 9-mode publication model. The paper
// evaluates dense mode only; this ablation quantifies what its results
// would look like under sparse mode or application-level multicast.
func AblMulticastModes(seed int64, thresholds []float64) ([]ModePoint, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0, 0.05, 0.10, 0.15, 0.30}
	}
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return nil, err
	}
	model := workload.MustStockPublications(9)
	interests := make([]cluster.Interest, len(tb.Subs))
	msubs := make([]match.Subscription, len(tb.Subs))
	nodes := make([]int, len(tb.Subs))
	for i, s := range tb.Subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	clu, err := cluster.Build(interests, model, tb.Space.Domain, cluster.Config{
		Groups: 11, Algorithm: cluster.AlgForgyKMeans,
	})
	if err != nil {
		return nil, err
	}
	matcher, err := match.New(msubs, match.Options{Algorithm: match.AlgSTree})
	if err != nil {
		return nil, err
	}
	cost := multicast.NewCostModel(tb.Graph)
	stubs := tb.Graph.NodesByRole(topology.RoleStub)

	rng := rand.New(rand.NewSource(seed + 31))
	const publications = 5000
	events := make([]geometry.Point, publications)
	publishers := make([]int, publications)
	for i := range events {
		events[i] = model.Sample(rng)
		publishers[i] = stubs[rng.Intn(len(stubs))]
	}

	var out []ModePoint
	for _, mode := range []multicast.Mode{multicast.ModeDense, multicast.ModeSparse, multicast.ModeALM} {
		for _, th := range thresholds {
			planner, err := dispatch.NewPlanner(clu, matcher, cost, nodes,
				dispatch.Config{Threshold: th, Mode: mode})
			if err != nil {
				return nil, err
			}
			var tot dispatch.Totals
			for i, ev := range events {
				d, err := planner.Deliver(publishers[i], ev)
				if err != nil {
					return nil, err
				}
				tot.Add(d)
			}
			out = append(out, ModePoint{
				Mode:        mode,
				Threshold:   th,
				Improvement: tot.Improvement(),
				Cost:        tot.Cost,
			})
		}
	}
	return out, nil
}

// WriteMulticastModes renders abl-mode.
func WriteMulticastModes(w io.Writer, points []ModePoint) {
	fmt.Fprintf(w, "abl-mode — multicast mechanisms under the distribution-method scheme\n")
	fmt.Fprintf(w, "%-8s %10s %12s %14s\n", "mode", "threshold", "improvement", "total cost")
	for _, p := range points {
		fmt.Fprintf(w, "%-8s %9.0f%% %11.1f%% %14.0f\n",
			p.Mode, p.Threshold*100, p.Improvement, p.Cost)
	}
}

// ---------------------------------------------------------------------
// abl-grid: sensitivity to the grid resolution C and top-cell count T.
// ---------------------------------------------------------------------

// GridPoint is one (C, T) measurement.
type GridPoint struct {
	GridRes     int
	TopCells    int
	NonEmpty    int     // non-empty grid cells
	Covered     float64 // publication mass covered by S_1..S_n
	Improvement float64 // at threshold 0.10, Forgy k-means, 11 groups
}

// AblGridSensitivity sweeps the clustering grid parameters the paper
// leaves unspecified: the per-dimension resolution C (with T fixed at
// the paper's 200) and the top-cell budget T (with C fixed at the
// library default). It quantifies the coverage/selectivity trade-off
// that motivated the default C = 4.
func AblGridSensitivity(seed int64) ([]GridPoint, error) {
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return nil, err
	}
	model := workload.MustStockPublications(9)
	interests := make([]cluster.Interest, len(tb.Subs))
	msubs := make([]match.Subscription, len(tb.Subs))
	nodes := make([]int, len(tb.Subs))
	for i, s := range tb.Subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	matcher, err := match.New(msubs, match.Options{Algorithm: match.AlgSTree})
	if err != nil {
		return nil, err
	}
	cost := multicast.NewCostModel(tb.Graph)
	stubs := tb.Graph.NodesByRole(topology.RoleStub)

	rng := rand.New(rand.NewSource(seed + 41))
	const publications = 5000
	events := make([]geometry.Point, publications)
	publishers := make([]int, publications)
	for i := range events {
		events[i] = model.Sample(rng)
		publishers[i] = stubs[rng.Intn(len(stubs))]
	}

	measure := func(res, top int) (GridPoint, error) {
		clu, err := cluster.Build(interests, model, tb.Space.Domain, cluster.Config{
			Groups: 11, TopCells: top, GridRes: res, Algorithm: cluster.AlgForgyKMeans,
		})
		if err != nil {
			return GridPoint{}, err
		}
		grid, err := cluster.NewGrid(tb.Space.Domain, res)
		if err != nil {
			return GridPoint{}, err
		}
		cells, err := cluster.BuildCells(grid, interests, model)
		if err != nil {
			return GridPoint{}, err
		}
		planner, err := dispatch.NewPlanner(clu, matcher, cost, nodes, dispatch.Config{Threshold: 0.10})
		if err != nil {
			return GridPoint{}, err
		}
		var tot dispatch.Totals
		for i, ev := range events {
			d, err := planner.Deliver(publishers[i], ev)
			if err != nil {
				return GridPoint{}, err
			}
			tot.Add(d)
		}
		return GridPoint{
			GridRes:     res,
			TopCells:    top,
			NonEmpty:    len(cells),
			Covered:     clu.CoveredProb(),
			Improvement: tot.Improvement(),
		}, nil
	}

	var out []GridPoint
	for _, res := range []int{3, 4, 5, 6, 8} {
		p, err := measure(res, 200)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	for _, top := range []int{50, 100, 400} {
		p, err := measure(cluster.DefaultGridRes, top)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteGridSensitivity renders abl-grid.
func WriteGridSensitivity(w io.Writer, points []GridPoint) {
	fmt.Fprintf(w, "abl-grid — clustering grid parameters (forgy k-means, 11 groups, t=10%%)\n")
	fmt.Fprintf(w, "%4s %6s %10s %10s %12s\n", "C", "T", "nonempty", "covered", "improvement")
	for _, p := range points {
		fmt.Fprintf(w, "%4d %6d %10d %9.1f%% %11.1f%%\n",
			p.GridRes, p.TopCells, p.NonEmpty, 100*p.Covered, p.Improvement)
	}
}

// ---------------------------------------------------------------------
// abl-publisher: publisher placement and popularity.
// ---------------------------------------------------------------------

// PublisherPoint is one publisher-model measurement.
type PublisherPoint struct {
	Model       string
	Threshold   float64
	Improvement float64
}

// AblPublisherModels compares uniform stub publishers (the default used
// throughout the reproduction), Zipf-popular stub publishers, and
// transit-node publishers, under the standard Figure 6 configuration
// (Forgy k-means, 11 groups, 9 modes). The paper leaves publisher
// placement V_P unspecified; this ablation shows how much it matters.
func AblPublisherModels(seed int64, thresholds []float64) ([]PublisherPoint, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0, 0.10, 0.20}
	}
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return nil, err
	}
	model := workload.MustStockPublications(9)
	stubs := tb.Graph.NodesByRole(topology.RoleStub)
	transit := tb.Graph.NodesByRole(topology.RoleTransit)

	pmRng := rand.New(rand.NewSource(seed + 51))
	uniform, err := workload.UniformPublishers(stubs)
	if err != nil {
		return nil, err
	}
	zipf, err := workload.ZipfPublishers(stubs, 1.0, pmRng)
	if err != nil {
		return nil, err
	}
	backbone, err := workload.UniformPublishers(transit)
	if err != nil {
		return nil, err
	}
	models := []struct {
		name string
		pm   *workload.PublisherModel
	}{
		{name: "uniform-stub", pm: uniform},
		{name: "zipf-stub", pm: zipf},
		{name: "transit", pm: backbone},
	}

	var out []PublisherPoint
	for _, th := range thresholds {
		eng, err := core.New(tb.Graph, tb.Subs, model, core.Config{
			Space:     tb.Space,
			Matcher:   match.Options{Algorithm: match.AlgSTree},
			Cluster:   cluster.Config{Groups: 11, Algorithm: cluster.AlgForgyKMeans},
			Threshold: th,
		})
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			tot, err := eng.RunWith(rand.New(rand.NewSource(seed+61)), 5000, m.pm)
			if err != nil {
				return nil, err
			}
			out = append(out, PublisherPoint{
				Model:       m.name,
				Threshold:   th,
				Improvement: tot.Improvement(),
			})
		}
	}
	return out, nil
}

// WritePublisherModels renders abl-publisher.
func WritePublisherModels(w io.Writer, points []PublisherPoint) {
	fmt.Fprintf(w, "abl-publisher — publisher placement under the distribution-method scheme\n")
	fmt.Fprintf(w, "%-14s %10s %12s\n", "publishers", "threshold", "improvement")
	for _, p := range points {
		fmt.Fprintf(w, "%-14s %9.0f%% %11.1f%%\n", p.Model, p.Threshold*100, p.Improvement)
	}
}

// ---------------------------------------------------------------------
// abl-rule: threshold rule vs per-publication cost oracle.
// ---------------------------------------------------------------------

// RulePoint is one decision-rule measurement.
type RulePoint struct {
	Rule        string
	Threshold   float64
	Improvement float64
}

// AblDecisionRules compares the paper's threshold rule (swept over t)
// against the cost oracle that picks the cheaper of unicast and group
// multicast per publication — the "where to draw the line" question the
// paper leaves for future work. The oracle upper-bounds every threshold
// setting.
func AblDecisionRules(seed int64, thresholds []float64) ([]RulePoint, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0, 0.05, 0.10, 0.15, 0.20}
	}
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return nil, err
	}
	model := workload.MustStockPublications(9)
	interests := make([]cluster.Interest, len(tb.Subs))
	msubs := make([]match.Subscription, len(tb.Subs))
	nodes := make([]int, len(tb.Subs))
	for i, s := range tb.Subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	clu, err := cluster.Build(interests, model, tb.Space.Domain, cluster.Config{
		Groups: 11, Algorithm: cluster.AlgForgyKMeans,
	})
	if err != nil {
		return nil, err
	}
	matcher, err := match.New(msubs, match.Options{Algorithm: match.AlgSTree})
	if err != nil {
		return nil, err
	}
	cost := multicast.NewCostModel(tb.Graph)
	stubs := tb.Graph.NodesByRole(topology.RoleStub)

	rng := rand.New(rand.NewSource(seed + 71))
	const publications = 5000
	events := make([]geometry.Point, publications)
	publishers := make([]int, publications)
	for i := range events {
		events[i] = model.Sample(rng)
		publishers[i] = stubs[rng.Intn(len(stubs))]
	}

	run := func(cfg dispatch.Config) (float64, error) {
		planner, err := dispatch.NewPlanner(clu, matcher, cost, nodes, cfg)
		if err != nil {
			return 0, err
		}
		var tot dispatch.Totals
		for i, ev := range events {
			d, err := planner.Deliver(publishers[i], ev)
			if err != nil {
				return 0, err
			}
			tot.Add(d)
		}
		return tot.Improvement(), nil
	}

	var out []RulePoint
	for _, th := range thresholds {
		imp, err := run(dispatch.Config{Threshold: th})
		if err != nil {
			return nil, err
		}
		out = append(out, RulePoint{Rule: "threshold", Threshold: th, Improvement: imp})
	}
	imp, err := run(dispatch.Config{Rule: dispatch.RuleCost})
	if err != nil {
		return nil, err
	}
	out = append(out, RulePoint{Rule: "cost-oracle", Improvement: imp})
	return out, nil
}

// WriteDecisionRules renders abl-rule.
func WriteDecisionRules(w io.Writer, points []RulePoint) {
	fmt.Fprintf(w, "abl-rule — threshold rule vs per-publication cost oracle\n")
	fmt.Fprintf(w, "%-12s %10s %12s\n", "rule", "threshold", "improvement")
	for _, p := range points {
		th := fmt.Sprintf("%.0f%%", p.Threshold*100)
		if p.Rule == "cost-oracle" {
			th = "-"
		}
		fmt.Fprintf(w, "%-12s %10s %11.1f%%\n", p.Rule, th, p.Improvement)
	}
}
