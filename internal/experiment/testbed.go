// Package experiment contains one harness per evaluation artifact of the
// paper — each figure and table — plus the ablations documented in
// DESIGN.md. Every harness is deterministic given its seed and returns
// typed results; cmd/pubsub-bench renders them as the textual equivalent
// of the paper's plots, and bench_test.go wraps them in testing.B
// benchmarks.
package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
	"repro/internal/workload"
)

// DefaultSeed is the seed used by all published runs. (The year the paper
// appeared.)
const DefaultSeed = 2003

// Testbed is the shared simulation substrate of Section 5: the ~600-node
// transit-stub topology and the 1000-subscription population.
type Testbed struct {
	Graph *topology.Graph
	Space workload.Space
	Subs  []workload.PlacedSubscription
}

// TestbedConfig controls testbed generation. The zero value selects the
// paper's published parameters.
type TestbedConfig struct {
	// Topology overrides the transit-stub configuration. Nil selects
	// topology.DefaultConfig().
	Topology *topology.Config
	// Subscriptions overrides the subscription generator configuration.
	// Nil selects workload.DefaultSubscriptionConfig().
	Subscriptions *workload.SubscriptionConfig
}

// NewTestbed builds the Section 5 testbed deterministically from a seed.
func NewTestbed(cfg TestbedConfig, seed int64) (*Testbed, error) {
	rng := rand.New(rand.NewSource(seed))
	topoCfg := topology.DefaultConfig()
	if cfg.Topology != nil {
		topoCfg = *cfg.Topology
	}
	g, err := topology.Generate(topoCfg, rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: topology: %w", err)
	}
	space := workload.StockSpace()
	subCfg := workload.DefaultSubscriptionConfig()
	if cfg.Subscriptions != nil {
		subCfg = *cfg.Subscriptions
	}
	subs, err := workload.GenerateSubscriptions(g, space, subCfg, rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: subscriptions: %w", err)
	}
	return &Testbed{Graph: g, Space: space, Subs: subs}, nil
}
