package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/dispatch"
	"repro/internal/geometry"
	"repro/internal/match"
	"repro/internal/multicast"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fig6Config parameterises the Figure 6 experiment: the effect of
// switching to unicast based on the proportion of interested clients.
// Zero fields are completed to the paper's setup.
type Fig6Config struct {
	Seed int64
	// Groups are the multicast group counts to evaluate (paper: 11, 61).
	Groups []int
	// Algorithms are the clustering algorithms to compare (paper: Forgy
	// k-means, pairwise grouping, minimum spanning tree).
	Algorithms []cluster.Algorithm
	// Thresholds is the sweep of t values (0 = static multicast).
	Thresholds []float64
	// Modes are the publication hot-spot counts (paper: 1, 4, 9).
	Modes []int
	// Publications is the number of events simulated per configuration.
	Publications int
	// TopCells and GridRes tune the clustering stage.
	TopCells int
	GridRes  int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Groups) == 0 {
		c.Groups = []int{11, 61}
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []cluster.Algorithm{cluster.AlgForgyKMeans, cluster.AlgPairwise, cluster.AlgMST}
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50}
	}
	if len(c.Modes) == 0 {
		c.Modes = []int{9}
	}
	if c.Publications == 0 {
		c.Publications = 10000
	}
	if c.TopCells == 0 {
		c.TopCells = cluster.DefaultTopCells
	}
	if c.GridRes == 0 {
		c.GridRes = cluster.DefaultGridRes
	}
	return c
}

// Fig6Point is one point of a Figure 6 curve.
type Fig6Point struct {
	Algorithm cluster.Algorithm
	Groups    int
	Modes     int
	Threshold float64

	Improvement float64
	Unicasts    int
	Multicasts  int
	Suppressed  int
}

// Fig6Result is the full experiment output.
type Fig6Result struct {
	Config Fig6Config
	Points []Fig6Point
}

// Fig6DistributionMethod runs the Figure 6 experiment: for every
// (algorithm, group count, mode count) it clusters once, then sweeps the
// distribution-method threshold over a fixed publication stream and
// reports the improvement percentage over unicast. The event stream is
// identical across algorithms, group counts and thresholds, so curves
// are directly comparable.
func Fig6DistributionMethod(cfg Fig6Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	tb, err := NewTestbed(TestbedConfig{}, cfg.Seed)
	if err != nil {
		return nil, err
	}

	interests := make([]cluster.Interest, len(tb.Subs))
	msubs := make([]match.Subscription, len(tb.Subs))
	nodes := make([]int, len(tb.Subs))
	for i, s := range tb.Subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	matcher, err := match.New(msubs, match.Options{Algorithm: match.AlgSTree})
	if err != nil {
		return nil, fmt.Errorf("experiment: matcher: %w", err)
	}
	cost := multicast.NewCostModel(tb.Graph)
	stubs := tb.Graph.NodesByRole(topology.RoleStub)
	if len(stubs) == 0 {
		return nil, fmt.Errorf("experiment: topology has no stub nodes")
	}

	res := &Fig6Result{Config: cfg}
	for _, modes := range cfg.Modes {
		model, err := workload.StockPublications(modes)
		if err != nil {
			return nil, err
		}
		// Fixed stream per mode count.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(modes)))
		events := make([]geometry.Point, cfg.Publications)
		publishers := make([]int, cfg.Publications)
		for i := range events {
			events[i] = model.Sample(rng)
			publishers[i] = stubs[rng.Intn(len(stubs))]
		}

		for _, alg := range cfg.Algorithms {
			for _, groups := range cfg.Groups {
				clu, err := cluster.Build(interests, model, tb.Space.Domain, cluster.Config{
					Groups:    groups,
					TopCells:  cfg.TopCells,
					GridRes:   cfg.GridRes,
					Algorithm: alg,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: clustering (%v, n=%d): %w", alg, groups, err)
				}
				for _, th := range cfg.Thresholds {
					planner, err := dispatch.NewPlanner(clu, matcher, cost, nodes, dispatch.Config{Threshold: th})
					if err != nil {
						return nil, err
					}
					var tot dispatch.Totals
					for i, ev := range events {
						d, err := planner.Deliver(publishers[i], ev)
						if err != nil {
							return nil, err
						}
						tot.Add(d)
					}
					res.Points = append(res.Points, Fig6Point{
						Algorithm:   alg,
						Groups:      groups,
						Modes:       modes,
						Threshold:   th,
						Improvement: tot.Improvement(),
						Unicasts:    tot.Unicasts,
						Multicasts:  tot.Multicasts,
						Suppressed:  tot.Suppressed,
					})
				}
			}
		}
	}
	return res, nil
}

// BestThreshold returns, for each (algorithm, groups, modes) curve, the
// threshold achieving the highest improvement.
func (r *Fig6Result) BestThreshold() map[string]Fig6Point {
	best := map[string]Fig6Point{}
	for _, p := range r.Points {
		key := fmt.Sprintf("%s/n=%d/modes=%d", p.Algorithm, p.Groups, p.Modes)
		if cur, ok := best[key]; !ok || p.Improvement > cur.Improvement {
			best[key] = p
		}
	}
	return best
}

// WriteTable renders the curves, one row per (algorithm, groups, modes)
// with the improvement at each threshold.
func (r *Fig6Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 — improvement %% over unicast vs distribution-method threshold\n")
	fmt.Fprintf(w, "(%d publications per cell; 0%% = all unicast, 100%% = per-message ideal multicast)\n",
		r.Config.Publications)
	fmt.Fprintf(w, "%-14s %6s %6s |", "algorithm", "groups", "modes")
	for _, th := range r.Config.Thresholds {
		fmt.Fprintf(w, " t=%3.0f%%", th*100)
	}
	fmt.Fprintln(w)
	for _, modes := range r.Config.Modes {
		for _, alg := range r.Config.Algorithms {
			for _, groups := range r.Config.Groups {
				fmt.Fprintf(w, "%-14s %6d %6d |", alg, groups, modes)
				for _, th := range r.Config.Thresholds {
					for _, p := range r.Points {
						if p.Algorithm == alg && p.Groups == groups && p.Modes == modes && p.Threshold == th {
							fmt.Fprintf(w, " %6.1f", p.Improvement)
						}
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintf(w, "best thresholds per curve:\n")
	best := r.BestThreshold()
	for _, modes := range r.Config.Modes {
		for _, alg := range r.Config.Algorithms {
			for _, groups := range r.Config.Groups {
				key := fmt.Sprintf("%s/n=%d/modes=%d", alg, groups, modes)
				p := best[key]
				fmt.Fprintf(w, "  %-28s t*=%3.0f%%  improvement=%.1f%%\n", key, p.Threshold*100, p.Improvement)
			}
		}
	}
}

// WriteFig6GroupBreakdown re-runs the headline configuration (Forgy
// k-means, 11 groups, 9 modes, t = 10%) with a per-group recorder and
// renders the breakdown: how much traffic each group S_q attracts, its
// mean interested fraction, and its improvement.
func WriteFig6GroupBreakdown(w io.Writer, seed int64, publications int) error {
	if publications == 0 {
		publications = 10000
	}
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return err
	}
	model, err := workload.StockPublications(9)
	if err != nil {
		return err
	}
	interests := make([]cluster.Interest, len(tb.Subs))
	msubs := make([]match.Subscription, len(tb.Subs))
	nodes := make([]int, len(tb.Subs))
	for i, s := range tb.Subs {
		interests[i] = cluster.Interest{Rect: s.Rect, Subscriber: s.ID}
		msubs[i] = match.Subscription{Rect: s.Rect, SubscriberID: s.ID}
		nodes[i] = s.Node
	}
	clu, err := cluster.Build(interests, model, tb.Space.Domain, cluster.Config{
		Groups: 11, Algorithm: cluster.AlgForgyKMeans,
	})
	if err != nil {
		return err
	}
	matcher, err := match.New(msubs, match.Options{Algorithm: match.AlgSTree})
	if err != nil {
		return err
	}
	planner, err := dispatch.NewPlanner(clu, matcher, multicast.NewCostModel(tb.Graph), nodes,
		dispatch.Config{Threshold: 0.10})
	if err != nil {
		return err
	}
	stubs := tb.Graph.NodesByRole(topology.RoleStub)
	rng := rand.New(rand.NewSource(seed + 9))
	rec := dispatch.NewRecorder()
	for i := 0; i < publications; i++ {
		d, err := planner.Deliver(stubs[rng.Intn(len(stubs))], model.Sample(rng))
		if err != nil {
			return err
		}
		rec.Record(d)
	}
	fmt.Fprintf(w, "per-group breakdown (forgy k-means, 11 groups, 9 modes, t=10%%):\n")
	rec.WriteTable(w)
	return nil
}

// WriteCSV renders the Figure 6 points as CSV for external plotting:
// algorithm,groups,modes,threshold,improvement,unicasts,multicasts,suppressed.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "groups", "modes", "threshold", "improvement", "unicasts", "multicasts", "suppressed"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{
			p.Algorithm.String(),
			strconv.Itoa(p.Groups),
			strconv.Itoa(p.Modes),
			strconv.FormatFloat(p.Threshold, 'f', -1, 64),
			strconv.FormatFloat(p.Improvement, 'f', 4, 64),
			strconv.Itoa(p.Unicasts),
			strconv.Itoa(p.Multicasts),
			strconv.Itoa(p.Suppressed),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
