package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/topology"
)

// Fig3Report reproduces Figure 3: the generated network topology. Since
// the paper's artifact is a plot of the graph, the report carries both
// the structural statistics and a per-block breakdown that identify the
// same object.
type Fig3Report struct {
	Stats  topology.Stats
	Blocks []Fig3Block
	// DiameterSample is the largest shortest-path distance observed from
	// a sample of sources — a locality indicator.
	DiameterSample float64
}

// Fig3Block summarises one transit block.
type Fig3Block struct {
	Block        int
	TransitNodes int
	Stubs        int
	StubNodes    int
}

// Fig3Topology generates the Section 5 topology and summarises it.
func Fig3Topology(seed int64) (*Fig3Report, error) {
	tb, err := NewTestbed(TestbedConfig{}, seed)
	if err != nil {
		return nil, err
	}
	g := tb.Graph
	r := &Fig3Report{Stats: g.Stats()}

	blocks := map[int]*Fig3Block{}
	stubSeen := map[int]bool{}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(i)
		b, ok := blocks[n.Block]
		if !ok {
			b = &Fig3Block{Block: n.Block}
			blocks[n.Block] = b
		}
		switch n.Role {
		case topology.RoleTransit:
			b.TransitNodes++
		case topology.RoleStub:
			b.StubNodes++
			if !stubSeen[n.Stub] {
				stubSeen[n.Stub] = true
				b.Stubs++
			}
		}
	}
	for i := 0; i < len(blocks); i++ {
		r.Blocks = append(r.Blocks, *blocks[i])
	}

	rng := rand.New(rand.NewSource(seed + 1))
	for s := 0; s < 8; s++ {
		sp := g.Dijkstra(rng.Intn(g.NumNodes()))
		for _, d := range sp.Dist {
			if d > r.DiameterSample {
				r.DiameterSample = d
			}
		}
	}
	return r, nil
}

// WriteTable renders the report.
func (r *Fig3Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 — generated transit-stub topology\n")
	fmt.Fprintf(w, "  nodes=%d (transit=%d stub=%d)  edges=%d  mean degree=%.2f\n",
		r.Stats.Nodes, r.Stats.TransitNodes, r.Stats.StubNodes, r.Stats.Edges, r.Stats.MeanDegree)
	fmt.Fprintf(w, "  blocks=%d  stubs=%d  edge cost range=[%.2f, %.2f]  diameter(sample)=%.1f\n",
		r.Stats.Blocks, r.Stats.Stubs, r.Stats.MinEdgeCost, r.Stats.MaxEdgeCost, r.DiameterSample)
	for _, b := range r.Blocks {
		fmt.Fprintf(w, "  block %d: transit=%d stubs=%d stub nodes=%d\n",
			b.Block, b.TransitNodes, b.Stubs, b.StubNodes)
	}
}
