package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestNewTestbedPaperScale(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.Graph.NumNodes(); n < 400 || n > 800 {
		t.Errorf("nodes = %d, want ~600", n)
	}
	if len(tb.Subs) != 1000 {
		t.Errorf("subscriptions = %d, want 1000", len(tb.Subs))
	}
}

func TestNewTestbedOverrides(t *testing.T) {
	topo := workloadSmallTopology()
	subCfg := workload.DefaultSubscriptionConfig()
	subCfg.Count = 100
	tb, err := NewTestbed(TestbedConfig{Topology: &topo, Subscriptions: &subCfg}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Subs) != 100 {
		t.Errorf("subscriptions = %d", len(tb.Subs))
	}
	if tb.Graph.Stats().Blocks != 3 {
		t.Errorf("blocks = %d", tb.Graph.Stats().Blocks)
	}
}

func TestFig3Topology(t *testing.T) {
	r, err := Fig3Topology(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Blocks != 3 || len(r.Blocks) != 3 {
		t.Errorf("blocks = %d/%d, want 3", r.Stats.Blocks, len(r.Blocks))
	}
	totalStub := 0
	for _, b := range r.Blocks {
		if b.TransitNodes == 0 || b.Stubs == 0 || b.StubNodes == 0 {
			t.Errorf("degenerate block %+v", b)
		}
		totalStub += b.StubNodes
	}
	if totalStub != r.Stats.StubNodes {
		t.Errorf("per-block stub nodes sum %d != %d", totalStub, r.Stats.StubNodes)
	}
	if r.DiameterSample <= 0 {
		t.Error("diameter sample not positive")
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Error("table header missing")
	}
}

func TestFig4DataAnalysis(t *testing.T) {
	cfg := workload.DefaultTapeConfig()
	cfg.Trades = 20000
	r, err := Fig4DataAnalysis(cfg, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// (a) normalized prices fit a tight normal around 1.
	if math.Abs(r.PriceFit.Mu-1) > 0.01 {
		t.Errorf("price mu = %v, want ~1", r.PriceFit.Mu)
	}
	if r.PriceFit.R2 < 0.95 {
		t.Errorf("price normal fit R2 = %v, want close to 1", r.PriceFit.R2)
	}
	// (b) popularity is Zipf-like with theta near the configured 1.0.
	if math.Abs(r.PopularityFit.Theta-1) > 0.35 {
		t.Errorf("popularity theta = %v, want ~1", r.PopularityFit.Theta)
	}
	if r.PopularityFit.R2 < 0.8 {
		t.Errorf("popularity R2 = %v", r.PopularityFit.R2)
	}
	// (c) amounts are heavy-tailed Pareto with alpha near 1.2.
	if math.Abs(r.AmountFit.Alpha-1.2) > 0.1 {
		t.Errorf("amount alpha = %v, want ~1.2", r.AmountFit.Alpha)
	}
	if r.AmountFit.R2 < 0.95 {
		t.Errorf("amount R2 = %v", r.AmountFit.R2)
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	for _, want := range []string{"Figure 4", "normal fit", "zipf fit", "pareto fit"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig5TopStocks(t *testing.T) {
	cfg := workload.DefaultTapeConfig()
	cfg.Trades = 30000
	profiles, err := Fig5TopStocks(cfg, 3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for i, p := range profiles {
		if i > 0 && p.Trades > profiles[i-1].Trades {
			t.Errorf("profiles not sorted by trade count")
		}
		// Per-stock prices are bell-shaped around 1 (Figure 5's claim).
		if math.Abs(p.PriceFit.Mu-1) > 0.02 {
			t.Errorf("stock %d price mu = %v", p.Stock, p.PriceFit.Mu)
		}
		if p.PriceFit.R2 < 0.85 {
			t.Errorf("stock %d price R2 = %v", p.Stock, p.PriceFit.R2)
		}
	}
	var sb strings.Builder
	WriteFig5Table(&sb, profiles)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Error("table header missing")
	}
}

func TestTbl1Parameters(t *testing.T) {
	rows, err := Tbl1Parameters(DefaultSeed, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "price" || rows[1].Name != "volume" {
		t.Fatalf("rows = %+v", rows)
	}
	// Observed wildcard rate tracks q0 (clamping can only raise it).
	for _, r := range rows {
		if r.FracWildcard < r.Params.Q0-0.02 {
			t.Errorf("%s wildcard %v below q0 %v", r.Name, r.FracWildcard, r.Params.Q0)
		}
		sum := r.FracWildcard + r.FracAtLeast + r.FracAtMost + r.FracBounded
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s fractions sum to %v", r.Name, sum)
		}
	}
	if _, err := Tbl1Parameters(1, 0); err == nil {
		t.Error("zero samples accepted")
	}
	var sb strings.Builder
	WriteTbl1(&sb, rows)
	if !strings.Contains(sb.String(), "parameter table") {
		t.Error("table header missing")
	}
}

// fig6Quick runs a drastically reduced Figure 6 configuration.
func fig6Quick(t *testing.T) *Fig6Result {
	t.Helper()
	res, err := Fig6DistributionMethod(Fig6Config{
		Seed:         DefaultSeed,
		Groups:       []int{11},
		Algorithms:   []cluster.Algorithm{cluster.AlgForgyKMeans, cluster.AlgMST},
		Thresholds:   []float64{0, 0.10, 0.50},
		Modes:        []int{9},
		Publications: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig6DistributionMethod(t *testing.T) {
	res := fig6Quick(t)
	if len(res.Points) != 2*3 {
		t.Fatalf("points = %d, want 6", len(res.Points))
	}
	byKey := map[string]Fig6Point{}
	for _, p := range res.Points {
		byKey[p.Algorithm.String()+string(rune('0'+int(p.Threshold*10)))] = p
		if p.Unicasts+p.Multicasts+p.Suppressed != res.Config.Publications {
			t.Fatalf("decision counts inconsistent: %+v", p)
		}
	}
	// The paper's headline shape: a moderate threshold beats a huge one,
	// and at t=0.5 essentially everything is unicast (improvement ~ 0).
	forgyMid := byKey["forgy-kmeans1"]
	forgyHigh := byKey["forgy-kmeans5"]
	if forgyMid.Improvement <= forgyHigh.Improvement {
		t.Errorf("t=0.10 improvement %.1f not above t=0.50 %.1f",
			forgyMid.Improvement, forgyHigh.Improvement)
	}
	if math.Abs(forgyHigh.Improvement) > 5 {
		t.Errorf("t=0.50 improvement = %.1f, want ~0", forgyHigh.Improvement)
	}

	best := res.BestThreshold()
	if len(best) != 2 {
		t.Errorf("best thresholds = %v", best)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	if !strings.Contains(sb.String(), "Figure 6") || !strings.Contains(sb.String(), "best thresholds") {
		t.Error("table content missing")
	}
}

func TestFig6Deterministic(t *testing.T) {
	a := fig6Quick(t)
	b := fig6Quick(t)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestAblMatchScaling(t *testing.T) {
	points, err := AblMatchScaling(MatchScaleConfig{
		Ks: []int{500}, Ns: []int{2, 4}, Queries: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*5 { // two N values x five algorithms
		t.Fatalf("points = %d", len(points))
	}
	// All algorithms must agree on mean hits for the same (k, N).
	hits := map[int]map[string]float64{}
	for _, p := range points {
		if hits[p.N] == nil {
			hits[p.N] = map[string]float64{}
		}
		hits[p.N][p.Algorithm.String()] = p.Matches
	}
	for n, m := range hits {
		var ref float64
		first := true
		for alg, h := range m {
			if first {
				ref, first = h, false
				continue
			}
			if math.Abs(h-ref) > 1e-9 {
				t.Errorf("N=%d: %s hits %v != %v", n, alg, h, ref)
			}
		}
	}
	var sb strings.Builder
	WriteMatchScaling(&sb, points)
	if !strings.Contains(sb.String(), "abl-match") {
		t.Error("table header missing")
	}
}

func TestAblStreeSweeps(t *testing.T) {
	skew, err := AblStreeSkew(DefaultSeed, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(skew) != 2 || skew[0].Skew != 0.1 || skew[1].Skew != 0.5 {
		t.Fatalf("skew points = %+v", skew)
	}
	branch, err := AblStreeBranch(DefaultSeed, []int{4, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(branch) != 2 || branch[0].BranchFactor != 4 || branch[1].BranchFactor != 40 {
		t.Fatalf("branch points = %+v", branch)
	}
	// Higher fanout gives a shallower tree.
	if branch[1].Height >= branch[0].Height {
		t.Errorf("M=40 height %d not below M=4 height %d", branch[1].Height, branch[0].Height)
	}
	var sb strings.Builder
	WriteStreeParams(&sb, "abl-skew", skew)
	WriteStreeParams(&sb, "abl-branch", branch)
	if !strings.Contains(sb.String(), "abl-skew") {
		t.Error("table header missing")
	}
}

func TestAblGroupCounts(t *testing.T) {
	points, err := AblGroupCounts(DefaultSeed, []int{1, 11}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %+v", points)
	}
	var sb strings.Builder
	WriteGroupCounts(&sb, points)
	if !strings.Contains(sb.String(), "abl-groups") {
		t.Error("table header missing")
	}
}

func workloadSmallTopology() topology.Config {
	cfg := topology.DefaultConfig()
	cfg.MeanStubNodes = 5
	return cfg
}

func TestAblMulticastModes(t *testing.T) {
	points, err := AblMulticastModes(DefaultSeed, []float64{0, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 { // 3 modes x 2 thresholds
		t.Fatalf("points = %d", len(points))
	}
	var sb strings.Builder
	WriteMulticastModes(&sb, points)
	if !strings.Contains(sb.String(), "abl-mode") {
		t.Error("table header missing")
	}
}

func TestAblGridSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points, err := AblGridSensitivity(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d", len(points))
	}
	// Coverage must fall as the grid gets finer at fixed T.
	if points[0].Covered < points[4].Covered {
		t.Errorf("coverage did not fall with finer grids: C=3 %.3f vs C=8 %.3f",
			points[0].Covered, points[4].Covered)
	}
	var sb strings.Builder
	WriteGridSensitivity(&sb, points)
	if !strings.Contains(sb.String(), "abl-grid") {
		t.Error("table header missing")
	}
}

func TestAblPublisherModels(t *testing.T) {
	points, err := AblPublisherModels(DefaultSeed, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	var sb strings.Builder
	WritePublisherModels(&sb, points)
	if !strings.Contains(sb.String(), "abl-publisher") {
		t.Error("table header missing")
	}
}

func TestAblDecisionRules(t *testing.T) {
	points, err := AblDecisionRules(DefaultSeed, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 { // one threshold + the oracle
		t.Fatalf("points = %d", len(points))
	}
	oracle := points[len(points)-1]
	if oracle.Rule != "cost-oracle" {
		t.Fatalf("last point = %+v", oracle)
	}
	// The oracle dominates the threshold rule.
	if oracle.Improvement < points[0].Improvement-1e-9 {
		t.Errorf("oracle %.2f%% below threshold rule %.2f%%",
			oracle.Improvement, points[0].Improvement)
	}
	var sb strings.Builder
	WriteDecisionRules(&sb, points)
	if !strings.Contains(sb.String(), "abl-rule") {
		t.Error("table header missing")
	}
}

func TestWriteFig6GroupBreakdown(t *testing.T) {
	var sb strings.Builder
	if err := WriteFig6GroupBreakdown(&sb, DefaultSeed, 500); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "per-group breakdown") || !strings.Contains(out, "S_0") {
		t.Errorf("breakdown output missing content: %.200s", out)
	}
}

func TestFig6WriteCSV(t *testing.T) {
	res := fig6Quick(t)
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.Points)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(res.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "algorithm,groups,modes,threshold") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "forgy-kmeans,11,9,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestAblClusterAlgos(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points, err := AblClusterAlgos(DefaultSeed, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // forgy, batch, pairwise, mst
		t.Fatalf("points = %d", len(points))
	}
	byAlg := map[string]ClusterAlgoPoint{}
	for _, p := range points {
		if p.Groups != 7 {
			t.Errorf("%v groups = %d", p.Algorithm, p.Groups)
		}
		if p.Runtime <= 0 || p.TotalWaste < 0 {
			t.Errorf("degenerate point %+v", p)
		}
		byAlg[p.Algorithm.String()] = p
	}
	// The paper's runtime ordering: pairwise is by far the slowest.
	if byAlg["pairwise"].Runtime < byAlg["forgy-kmeans"].Runtime {
		t.Errorf("pairwise (%v) faster than forgy (%v)",
			byAlg["pairwise"].Runtime, byAlg["forgy-kmeans"].Runtime)
	}
	// And the quality ordering: MST is the worst clusterer.
	if byAlg["mst"].TotalWaste < byAlg["forgy-kmeans"].TotalWaste {
		t.Errorf("mst waste %v below forgy %v", byAlg["mst"].TotalWaste, byAlg["forgy-kmeans"].TotalWaste)
	}
	var sb strings.Builder
	WriteClusterAlgos(&sb, points)
	if !strings.Contains(sb.String(), "abl-cluster") {
		t.Error("table header missing")
	}
}
