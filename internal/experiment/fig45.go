package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig4Report reproduces the Figure 4 data study on the synthetic trade
// tape: (a) the normalized price distribution and its normal fit, (b) the
// per-stock trade-frequency series and its Zipf fit, (c) the trade-amount
// distribution and its Pareto/Zipf fit.
type Fig4Report struct {
	Trades int
	Stocks int

	// (a) normalized prices.
	PriceSummary stats.Summary
	PriceFit     stats.NormalFit
	PriceHist    *stats.Histogram
	// PriceKS tests the prices against the fitted normal.
	PriceKS stats.KSResult

	// (b) trades per stock, decreasing.
	TradeCounts   []int
	PopularityFit stats.ZipfFit

	// (c) trade amounts.
	AmountSummary stats.Summary
	AmountFit     stats.ParetoFit
}

// Fig4DataAnalysis generates a tape and runs the paper's fitting analysis
// over it.
func Fig4DataAnalysis(cfg workload.TapeConfig, seed int64) (*Fig4Report, error) {
	rng := rand.New(rand.NewSource(seed))
	trades, err := workload.GenerateTape(cfg, rng)
	if err != nil {
		return nil, err
	}
	r := &Fig4Report{Trades: len(trades), Stocks: cfg.Stocks}

	prices := make([]float64, len(trades))
	amounts := make([]float64, len(trades))
	for i, t := range trades {
		prices[i] = t.NormalizedPrice()
		amounts[i] = t.Amount
	}

	r.PriceSummary = stats.Summarize(prices)
	r.PriceFit, err = stats.FitNormal(prices)
	if err != nil {
		return nil, fmt.Errorf("experiment: price fit: %w", err)
	}
	hist, err := stats.NewHistogram(
		r.PriceSummary.Mean-4*r.PriceSummary.Std,
		r.PriceSummary.Mean+4*r.PriceSummary.Std, 20)
	if err != nil {
		return nil, err
	}
	hist.AddAll(prices)
	r.PriceHist = hist
	normCDF := func(x float64) float64 {
		return workload.Normal{Mu: r.PriceFit.Mu, Sigma: r.PriceFit.Sigma}.CDF(x)
	}
	if r.PriceKS, err = stats.KSTest(prices, normCDF); err != nil {
		return nil, fmt.Errorf("experiment: price KS: %w", err)
	}

	r.TradeCounts = workload.TradeCounts(trades, cfg.Stocks)
	r.PopularityFit, err = stats.FitZipf(r.TradeCounts)
	if err != nil {
		return nil, fmt.Errorf("experiment: popularity fit: %w", err)
	}

	r.AmountSummary = stats.Summarize(amounts)
	r.AmountFit, err = stats.FitPareto(amounts)
	if err != nil {
		return nil, fmt.Errorf("experiment: amount fit: %w", err)
	}
	return r, nil
}

// WriteTable renders the report.
func (r *Fig4Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Figure 4 — synthetic tape data study (%d trades, %d stocks)\n", r.Trades, r.Stocks)
	fmt.Fprintf(w, "  (a) normalized price: mean=%.4f std=%.4f skew=%.3f exkurt=%.3f\n",
		r.PriceSummary.Mean, r.PriceSummary.Std, r.PriceSummary.Skewness, r.PriceSummary.ExcessKurtosis)
	fmt.Fprintf(w, "      normal fit: N(%.4f, %.4f) R2=%.4f  KS D=%.4f\n",
		r.PriceFit.Mu, r.PriceFit.Sigma, r.PriceFit.R2, r.PriceKS.D)
	fmt.Fprintf(w, "      histogram: %s\n", sparkline(r.PriceHist.Counts))
	fmt.Fprintf(w, "  (b) trades per stock (top 10): %v\n", head(r.TradeCounts, 10))
	fmt.Fprintf(w, "      zipf fit: theta=%.3f R2=%.4f\n", r.PopularityFit.Theta, r.PopularityFit.R2)
	fmt.Fprintf(w, "  (c) trade amount: mean=%.0f min=%.0f max=%.0f\n",
		r.AmountSummary.Mean, r.AmountSummary.Min, r.AmountSummary.Max)
	fmt.Fprintf(w, "      pareto fit: scale=%.0f alpha=%.3f ccdf-loglog R2=%.4f\n",
		r.AmountFit.Scale, r.AmountFit.Alpha, r.AmountFit.R2)
}

// Fig5Profile is one stock's row in the Figure 5 study: the price and
// amount distributions of a most-traded stock.
type Fig5Profile struct {
	Stock     int
	Trades    int
	PriceFit  stats.NormalFit
	AmountFit stats.ParetoFit
	PriceHist *stats.Histogram
}

// Fig5TopStocks profiles the k most-traded stocks of a synthetic tape.
func Fig5TopStocks(cfg workload.TapeConfig, k int, seed int64) ([]Fig5Profile, error) {
	rng := rand.New(rand.NewSource(seed))
	trades, err := workload.GenerateTape(cfg, rng)
	if err != nil {
		return nil, err
	}
	top := workload.TopStocks(trades, cfg.Stocks, k)
	profiles := make([]Fig5Profile, 0, len(top))
	for _, stock := range top {
		var prices, amounts []float64
		for _, t := range trades {
			if t.Stock != stock {
				continue
			}
			prices = append(prices, t.NormalizedPrice())
			amounts = append(amounts, t.Amount)
		}
		p := Fig5Profile{Stock: stock, Trades: len(prices)}
		if p.PriceFit, err = stats.FitNormal(prices); err != nil {
			return nil, fmt.Errorf("experiment: stock %d price fit: %w", stock, err)
		}
		if p.AmountFit, err = stats.FitPareto(amounts); err != nil {
			return nil, fmt.Errorf("experiment: stock %d amount fit: %w", stock, err)
		}
		hist, err := stats.NewHistogram(p.PriceFit.Mu-4*p.PriceFit.Sigma, p.PriceFit.Mu+4*p.PriceFit.Sigma, 20)
		if err != nil {
			return nil, err
		}
		hist.AddAll(prices)
		p.PriceHist = hist
		profiles = append(profiles, p)
	}
	return profiles, nil
}

// WriteFig5Table renders the profiles.
func WriteFig5Table(w io.Writer, profiles []Fig5Profile) {
	fmt.Fprintf(w, "Figure 5 — most frequently traded stocks\n")
	for i, p := range profiles {
		fmt.Fprintf(w, "  #%d stock=%d trades=%d price N(%.4f, %.4f) R2=%.3f | amount Pareto(%.0f, %.2f) R2=%.3f\n",
			i+1, p.Stock, p.Trades, p.PriceFit.Mu, p.PriceFit.Sigma, p.PriceFit.R2,
			p.AmountFit.Scale, p.AmountFit.Alpha, p.AmountFit.R2)
		fmt.Fprintf(w, "      price histogram: %s\n", sparkline(p.PriceHist.Counts))
	}
}

// sparkline renders counts as a coarse ASCII bar string.
func sparkline(counts []int) string {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat(".", len(counts))
	}
	levels := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for _, c := range counts {
		i := c * (len(levels) - 1) / max
		sb.WriteByte(levels[i])
	}
	return sb.String()
}

func head(xs []int, n int) []int {
	if n > len(xs) {
		n = len(xs)
	}
	return xs[:n]
}
