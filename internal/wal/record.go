// Package wal implements the broker's durable publication log: a
// segmented, append-only sequence of CRC-framed records, one per
// publication, identified by a monotonically increasing offset.
//
// The log is the crash-safety layer of the system. Appends happen
// before a publication is delivered or acknowledged; the sync policy
// (always / interval / never) bounds how much acknowledged data one
// process crash can lose, and boot-time recovery scans every segment,
// truncates a torn tail and refuses to open a log with corruption
// anywhere else — acknowledged history is replayed exactly, or the
// operator is told, never silently shortened.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Frame geometry. Every record on disk is
//
//	u32 body length | u32 CRC-32C of body | body
//
// with the body itself
//
//	u64 offset | u64 trace id | u16 dims | dims × f64 point | u32 payload length | payload
//
// all big-endian. The explicit payload length makes the body
// self-describing, so a decoder can reject a frame whose declared
// length disagrees with its contents instead of mis-slicing it.
const (
	frameHeader = 8 // body length + CRC
	recordFixed = 8 + 8 + 2 + 4

	// MaxPointDims bounds a record's dimensionality; real event spaces
	// are tiny, so anything huge is corruption, not data.
	MaxPointDims = 4096
	// MaxBody bounds one record body, mirroring the wire frame limit:
	// a declared length beyond it is treated as corruption.
	MaxBody = 1 << 21
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// every platform Go targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrShortRecord means the input ends mid-record — the
// torn-tail signature recovery truncates at; ErrCorruptRecord means
// the bytes are structurally wrong or fail the checksum.
var (
	ErrShortRecord   = errors.New("wal: short record")
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

// ErrRecordTooLarge is returned by Append for a record exceeding
// MaxPointDims or MaxBody. Such a record must be rejected before it
// reaches disk: its frame would encode (appendRecord silently truncates
// the dimension count to 16 bits) but never decode, so an acknowledged,
// fsynced copy would poison recovery and every replay at its offset.
var ErrRecordTooLarge = errors.New("wal: record too large")

// Record is one logged publication.
type Record struct {
	// Offset is the log-assigned position: 1 for the first record ever,
	// monotonically increasing, never reused.
	Offset uint64
	// TraceID is the publication's cross-process trace id.
	TraceID uint64
	// Point is the event's location in the event space.
	Point []float64
	// Payload is the opaque application payload.
	Payload []byte
}

// appendRecord appends rec's frame to dst and returns the extended
// slice. It is the single encoder; the CRC covers the whole body.
func appendRecord(dst []byte, rec *Record) []byte {
	bodyLen := recordFixed + 8*len(rec.Point) + len(rec.Payload)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+bodyLen)...)
	b := dst[start:]
	binary.BigEndian.PutUint32(b[0:4], uint32(bodyLen))
	body := b[frameHeader:]
	binary.BigEndian.PutUint64(body[0:8], rec.Offset)
	binary.BigEndian.PutUint64(body[8:16], rec.TraceID)
	binary.BigEndian.PutUint16(body[16:18], uint16(len(rec.Point)))
	at := 18
	for _, v := range rec.Point {
		binary.BigEndian.PutUint64(body[at:at+8], math.Float64bits(v))
		at += 8
	}
	binary.BigEndian.PutUint32(body[at:at+4], uint32(len(rec.Payload)))
	copy(body[at+4:], rec.Payload)
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(body, crcTable))
	return dst
}

// EncodedSize returns the on-disk size of rec's frame.
func (rec *Record) EncodedSize() int {
	return frameHeader + recordFixed + 8*len(rec.Point) + len(rec.Payload)
}

// DecodeRecord decodes one frame from the front of b, returning the
// record and the number of bytes consumed. It returns ErrShortRecord
// when b ends before the declared frame does (a torn tail) and
// ErrCorruptRecord when the frame is structurally invalid or its
// checksum does not match. It never panics, whatever the input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, ErrShortRecord
	}
	bodyLen := int(binary.BigEndian.Uint32(b[0:4]))
	if bodyLen < recordFixed || bodyLen > MaxBody {
		return Record{}, 0, fmt.Errorf("%w: body length %d", ErrCorruptRecord, bodyLen)
	}
	if len(b) < frameHeader+bodyLen {
		return Record{}, 0, ErrShortRecord
	}
	body := b[frameHeader : frameHeader+bodyLen]
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %08x, frame says %08x", ErrCorruptRecord, got, want)
	}
	dims := int(binary.BigEndian.Uint16(body[16:18]))
	if dims > MaxPointDims {
		return Record{}, 0, fmt.Errorf("%w: %d dimensions", ErrCorruptRecord, dims)
	}
	payloadAt := 18 + 8*dims
	if payloadAt+4 > bodyLen {
		return Record{}, 0, fmt.Errorf("%w: %d dimensions overflow a %d-byte body", ErrCorruptRecord, dims, bodyLen)
	}
	payloadLen := int(binary.BigEndian.Uint32(body[payloadAt : payloadAt+4]))
	if payloadAt+4+payloadLen != bodyLen {
		return Record{}, 0, fmt.Errorf("%w: payload length %d disagrees with body length %d", ErrCorruptRecord, payloadLen, bodyLen)
	}
	rec := Record{
		Offset:  binary.BigEndian.Uint64(body[0:8]),
		TraceID: binary.BigEndian.Uint64(body[8:16]),
	}
	if dims > 0 {
		rec.Point = make([]float64, dims)
		at := 18
		for i := range rec.Point {
			rec.Point[i] = math.Float64frombits(binary.BigEndian.Uint64(body[at : at+8]))
			at += 8
		}
	}
	if payloadLen > 0 {
		rec.Payload = append([]byte(nil), body[payloadAt+4:payloadAt+4+payloadLen]...)
	}
	return rec, frameHeader + bodyLen, nil
}
