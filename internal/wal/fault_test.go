package wal

import (
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// faultOpts wires a faultnet disk controller into a log's segment
// opener: every active segment the log creates is fault-injected.
func faultOpts(d *faultnet.Disk, base Options) Options {
	base.OpenSegment = func(path string) (File, error) {
		return d.Create(path)
	}
	return base
}

// TestAppendFailStopOnSyncError: under -fsync always, the first fsync
// failure must refuse that append AND every later one — an
// acknowledged-but-not-durable publication must be impossible.
func TestAppendFailStopOnSyncError(t *testing.T) {
	d := faultnet.NewDisk(faultnet.DiskOptions{FailSyncAfter: 3})
	l := mustOpen(t, t.TempDir(), faultOpts(d, Options{Sync: SyncAlways}))
	appendN(t, l, 2) // syncs 1 and 2 succeed
	if _, err := l.Append(9, []float64{1}, []byte("doomed")); !errors.Is(err, faultnet.ErrInjectedSync) {
		t.Fatalf("append over failing fsync = %v, want ErrInjectedSync", err)
	}
	// Fail-stop is sticky: later appends fail even though the disk's
	// write path still works.
	if _, err := l.Append(10, []float64{1}, []byte("also doomed")); err == nil {
		t.Fatal("append after fsync failure succeeded: silent durability loss")
	}
	if st := l.Stats(); !st.Failed || st.NextOffset != 3 {
		t.Fatalf("Stats = %+v, want Failed with NextOffset 3", st)
	}
	// Explicit Sync reports the latched error too.
	if err := l.Sync(); err == nil {
		t.Fatal("Sync after fail-stop returned nil")
	}
	// The durable prefix stays replayable.
	r, err := l.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if recs := drain(t, r); len(recs) != 2 {
		t.Fatalf("replay after fail-stop: %d records, want the 2 acked ones", len(recs))
	}
}

// TestAppendENOSPC: running out of space fails the append with an
// ENOSPC-wrapping error, latches fail-stop, and recovery truncates the
// torn crossing write.
func TestAppendENOSPC(t *testing.T) {
	dir := t.TempDir()
	d := faultnet.NewDisk(faultnet.DiskOptions{WriteLimitBytes: 150})
	l := mustOpen(t, dir, faultOpts(d, Options{Sync: SyncNever}))
	var acked uint64
	var lastErr error
	for i := 0; i < 100; i++ {
		off, err := l.Append(uint64(i), []float64{float64(i)}, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			lastErr = err
			break
		}
		acked = off
	}
	if lastErr == nil {
		t.Fatal("never hit the byte budget")
	}
	if !errors.Is(lastErr, syscall.ENOSPC) {
		t.Fatalf("append error %v does not unwrap to ENOSPC", lastErr)
	}
	if _, err := l.Append(1, nil, nil); err == nil {
		t.Fatal("append after ENOSPC succeeded")
	}
	l.Close()

	// Recovery over the real files: the torn crossing write is truncated;
	// every acked record survives.
	l2 := mustOpen(t, dir, Options{})
	if got := l2.NextOffset() - 1; got != acked {
		t.Fatalf("recovered %d records, acked %d", got, acked)
	}
	if l2.Recovered().TruncatedBytes == 0 {
		t.Fatal("recovery reports no truncation despite the torn ENOSPC write")
	}
}

// TestTornWritesNeverLoseAckedRecords drives appends over a disk that
// tears writes randomly; whenever an append is acked it must survive
// recovery, and whenever it fails nothing after it may survive.
func TestTornWritesNeverLoseAckedRecords(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		dir := t.TempDir()
		d := faultnet.NewDisk(faultnet.DiskOptions{Seed: seed, TornWriteProb: 0.2})
		l, err := Open(dir, faultOpts(d, Options{Sync: SyncNever}))
		if err != nil {
			t.Fatal(err)
		}
		var acked uint64
		for i := 0; i < 50; i++ {
			off, err := l.Append(uint64(i), []float64{float64(i)}, []byte(fmt.Sprintf("p%d", i)))
			if err != nil {
				break
			}
			acked = off
		}
		l.Close()

		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		if got := l2.NextOffset() - 1; got != acked {
			t.Fatalf("seed %d: recovered %d records, acked %d", seed, got, acked)
		}
		r, _ := l2.ReadFrom(0)
		for want := uint64(1); ; want++ {
			rec, err := r.Next()
			if err == io.EOF {
				if want != acked+1 {
					t.Fatalf("seed %d: replay stopped at %d, want %d", seed, want-1, acked)
				}
				break
			}
			if err != nil {
				t.Fatalf("seed %d: replay: %v", seed, err)
			}
			if rec.Offset != want || string(rec.Payload) != fmt.Sprintf("p%d", want-1) {
				t.Fatalf("seed %d: replayed record %d corrupted", seed, want)
			}
		}
		l2.Close()
	}
}

// TestWriteErrorIsFailStop: a plain write error (no bytes land) latches
// the log exactly like a sync error.
func TestWriteErrorIsFailStop(t *testing.T) {
	d := faultnet.NewDisk(faultnet.DiskOptions{FailWriteAfter: 3})
	l := mustOpen(t, t.TempDir(), faultOpts(d, Options{Sync: SyncNever}))
	appendN(t, l, 2)
	if _, err := l.Append(1, nil, nil); !errors.Is(err, faultnet.ErrInjectedWrite) {
		t.Fatalf("append = %v, want ErrInjectedWrite", err)
	}
	if _, err := l.Append(1, nil, nil); !errors.Is(err, faultnet.ErrInjectedWrite) {
		t.Fatalf("fail-stop not sticky: %v", err)
	}
}

// TestIntervalSyncFailureSurfacesOnAppend: under -fsync interval the
// background syncer hits the error; the next append must report it
// rather than keep acking undurable publications.
func TestIntervalSyncFailureSurfacesOnAppend(t *testing.T) {
	d := faultnet.NewDisk(faultnet.DiskOptions{FailSyncAfter: 1})
	l := mustOpen(t, t.TempDir(), faultOpts(d, Options{Sync: SyncEvery, SyncInterval: time.Millisecond}))
	appendN(t, l, 1)
	deadline := 2000
	for i := 0; ; i++ {
		if _, err := l.Append(1, nil, nil); err != nil {
			if !errors.Is(err, faultnet.ErrInjectedSync) {
				t.Fatalf("append = %v, want ErrInjectedSync", err)
			}
			break
		}
		if i >= deadline {
			t.Fatal("background sync failure never surfaced on Append")
		}
		time.Sleep(time.Millisecond)
	}
}
