package wal

import (
	"fmt"

	"repro/internal/health"
)

// RegisterHealth registers the "wal" component: unhealthy once the
// fail-stop latch has tripped — the latch never clears, because a log
// that lost a write or sync cannot promise durability again without a
// restart and recovery — and healthy otherwise, with the live offsets
// as detail. The check reads the latch at probe time only; nothing is
// added to the append path.
func (l *Log) RegisterHealth(hr *health.Registry) {
	hr.Register("wal", func() (health.State, string) {
		if err := l.Err(); err != nil {
			return health.Unhealthy, fmt.Sprintf("fail-stop: %v", err)
		}
		st := l.Stats()
		return health.Healthy, fmt.Sprintf("next offset %d, %d segment(s), %d bytes",
			st.NextOffset, st.Segments, st.Bytes)
	})
}
