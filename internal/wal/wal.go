package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before it returns. An acknowledged
	// publication survives any crash; appends pay the fsync.
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs on a background interval. A crash loses at most
	// one sync window of acknowledged publications.
	SyncEvery
	// SyncNever leaves syncing to the operating system. A process crash
	// loses nothing (the OS holds the pages); a machine crash may lose
	// everything since the last OS writeback.
	SyncNever
)

// String returns the policy's display name.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("sync(%d)", int(p))
	}
}

// ParseSyncPolicy converts a policy display name back to the policy.
// It is the inverse used by the -fsync flag.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	for _, p := range []SyncPolicy{SyncAlways, SyncEvery, SyncNever} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// File is the write side of one segment as the log sees it. *os.File
// satisfies it; fault-injection tests substitute wrappers that fail.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// Options tune a log. The zero value is usable: 64 MiB segments,
// unlimited retention, fsync on every append.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size. Zero selects 64 MiB.
	SegmentBytes int64
	// RetentionBytes caps the log's total size: once exceeded, the
	// oldest whole segments are deleted (the active segment never is).
	// Deleted offsets are no longer replayable. Zero keeps everything.
	RetentionBytes int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncEvery.
	// Zero selects 50ms.
	SyncInterval time.Duration
	// Metrics, when non-nil, receives the log's metric families
	// (append/sync latency, appended bytes, segment and offset gauges,
	// replay and recovery counters). Nil disables metrics.
	Metrics *telemetry.Registry
	// Recorder receives flight-recorder records for appends, syncs,
	// recovery and replays. Nil selects the process-wide
	// telemetry.Default() recorder.
	Recorder *telemetry.Recorder
	// OpenSegment opens a fresh segment file for appending, creating or
	// truncating it. Nil selects os.OpenFile; tests substitute
	// fault-injecting files. Only the write path goes through it —
	// recovery and replay read segments directly.
	OpenSegment func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.Recorder == nil {
		o.Recorder = telemetry.Default()
	}
	if o.OpenSegment == nil {
		o.OpenSegment = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		}
	}
	return o
}

// segment is one log file: records with contiguous offsets starting at
// base. The last element of Log.segs is the active (append) segment.
type segment struct {
	base    uint64 // offset of the segment's first record
	path    string
	size    int64
	records uint64 // records in the segment (base+records = next base)
}

func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", base))
}

// parseSegmentBase extracts the base offset from a segment file name,
// reporting whether the name is a segment at all.
func parseSegmentBase(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	Segments       int    // segment files scanned (before any new active segment)
	Records        uint64 // valid records accepted
	TruncatedBytes int64  // torn-tail bytes removed from the final segment
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	FirstOffset uint64 // oldest replayable offset (NextOffset if empty)
	NextOffset  uint64 // offset the next append will get
	Segments    int
	Bytes       int64 // total size across segments
	Failed      bool  // the log has fail-stopped on an I/O error
}

// Log is a segmented append-only publication log. Create one with
// Open; all methods are safe for concurrent use.
//
// The log fail-stops: once any write or sync fails, every subsequent
// Append returns the original error, so a broker backed by the log
// refuses new publications instead of silently dropping durability.
type Log struct {
	dir  string
	opts Options
	tel  *walTel
	rec  *telemetry.Recorder

	mu     sync.Mutex
	segs   []*segment
	active File
	//pubsub:commit -- readers treat offsets below next as durable, acknowledged history
	next      uint64 // next offset to assign
	first     uint64 // oldest retained offset (== next when empty)
	dirty     int    // records appended since the last sync
	failed    error  // sticky fail-stop error
	closed    bool
	buf       []byte // append scratch, reused under mu
	recovered RecoveryStats

	syncStop chan struct{}
	syncWG   sync.WaitGroup
}

// Open creates or recovers the log in dir. Recovery scans every
// segment oldest-first, verifies each record's checksum, length and
// offset continuity, truncates a torn tail on the final segment, and
// fails — rather than silently dropping history — on corruption
// anywhere else. A fresh active segment is then started at the next
// offset.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		rec:      opts.Recorder,
		next:     1,
		first:    1,
		syncStop: make(chan struct{}),
	}
	r0 := l.rec.Now()
	if err := l.recover(); err != nil {
		return nil, err
	}
	// Fresh active segment at the next offset. Any existing file with
	// this base holds zero valid records (a non-empty one would have
	// advanced next past its records), so truncating it is safe.
	if err := l.openActiveLocked(); err != nil {
		return nil, err
	}
	l.tel = newWALTel(l, opts.Metrics)
	if l.tel != nil {
		l.tel.recoveredRecords.Add(l.recovered.Records)
		l.tel.truncatedBytes.Add(uint64(l.recovered.TruncatedBytes))
	}
	l.rec.Record(telemetry.KindWALRecover, 0, l.next-1,
		int64(l.recovered.Segments), int64(l.recovered.Records),
		l.recovered.TruncatedBytes, l.rec.Now()-r0)
	if opts.Sync == SyncEvery {
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// recover scans the segment files into l.segs and sets next/first.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", l.dir, err)
	}
	var segs []*segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base, ok := parseSegmentBase(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, &segment{base: base, path: filepath.Join(l.dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	l.recovered.Segments = len(segs)

	for i, seg := range segs {
		final := i == len(segs)-1
		if i > 0 {
			prev := segs[i-1]
			if want := prev.base + prev.records; seg.base != want {
				return fmt.Errorf("wal: segment %s starts at offset %d, want %d: missing or reordered segment", seg.path, seg.base, want)
			}
		}
		if err := l.scanSegment(seg, final); err != nil {
			return err
		}
	}
	// Drop a final segment recovery truncated to nothing: a zero-record
	// file would collide with the fresh active segment at the same base.
	if n := len(segs); n > 0 && segs[n-1].records == 0 {
		if err := os.Remove(segs[n-1].path); err != nil {
			return fmt.Errorf("wal: removing empty segment: %w", err)
		}
		segs = segs[:n-1]
	}
	l.segs = segs
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		l.next = last.base + last.records
		l.first = segs[0].base
	}
	return nil
}

// scanSegment validates every record in one segment file. On the final
// segment a short or corrupt tail is truncated away (a crash mid-append
// legitimately leaves one); anywhere else it is an error.
func (l *Log) scanSegment(seg *segment, final bool) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	at := 0
	expect := seg.base
	var scanErr error
	for at < len(data) {
		rec, n, err := DecodeRecord(data[at:])
		if err != nil {
			scanErr = err
			break
		}
		if rec.Offset != expect {
			scanErr = fmt.Errorf("%w: offset %d, want %d", ErrCorruptRecord, rec.Offset, expect)
			break
		}
		at += n
		expect++
	}
	seg.size = int64(at)
	seg.records = expect - seg.base
	l.recovered.Records += seg.records
	if scanErr == nil {
		return nil
	}
	if !final {
		return fmt.Errorf("wal: segment %s corrupt at byte %d (not the log tail, refusing to drop acknowledged history): %w", seg.path, at, scanErr)
	}
	// Torn tail on the final segment: truncate to the last whole record.
	torn := int64(len(data)) - int64(at)
	if err := os.Truncate(seg.path, int64(at)); err != nil {
		return fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
	}
	l.recovered.TruncatedBytes += torn
	return nil
}

// openActiveLocked starts a fresh segment at l.next and appends it to
// l.segs. Called from Open (no lock needed yet) and rotation (under mu).
func (l *Log) openActiveLocked() error {
	seg := &segment{base: l.next, path: segmentPath(l.dir, l.next)}
	f, err := l.opts.OpenSegment(seg.path)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	l.active = f
	l.segs = append(l.segs, seg)
	l.syncDir()
	return nil
}

// syncDir fsyncs the log directory so segment creations and deletions
// themselves survive a crash. Best-effort: some filesystems refuse to
// sync directories, and the records inside are checksummed anyway.
func (l *Log) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// fail latches the log's fail-stop state.
func (l *Log) fail(err error) {
	if l.failed == nil {
		l.failed = err
		if l.tel != nil {
			l.tel.failedState.Set(1)
		}
	}
}

// Append assigns the next offset to the record, writes it to the
// active segment, and — under SyncAlways — fsyncs before returning. A
// write or sync failure latches the log into the fail-stop state and
// the publication must not be acknowledged. rec.Offset is ignored; the
// log assigns it. The point and payload are copied to disk, not
// retained.
//
//pubsub:coldpath -- opt-in durability: the zero-alloc publish path enters the WAL only when a durable broker is configured
func (l *Log) Append(traceID uint64, point []float64, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, l.failed
	}
	if l.closed {
		return 0, ErrClosed
	}
	// Enforce the decoder's limits before anything touches disk: a
	// record DecodeRecord would reject must never be written, or the
	// acknowledged history becomes unrecoverable (recovery refuses
	// corruption anywhere but the tail). An oversized record is a
	// caller error, not an I/O fault, so it does not latch fail-stop —
	// the log stays open for well-formed appends.
	if len(point) > MaxPointDims {
		return 0, fmt.Errorf("%w: point has %d dimensions (max %d)", ErrRecordTooLarge, len(point), MaxPointDims)
	}
	if body := recordFixed + 8*len(point) + len(payload); body > MaxBody {
		return 0, fmt.Errorf("%w: %d-byte body (max %d)", ErrRecordTooLarge, body, MaxBody)
	}
	rec := Record{Offset: l.next, TraceID: traceID, Point: point, Payload: payload}
	l.buf = appendRecord(l.buf[:0], &rec)

	active := l.segs[len(l.segs)-1]
	if active.records > 0 && active.size+int64(len(l.buf)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.fail(err)
			return 0, l.failed
		}
		active = l.segs[len(l.segs)-1]
	}

	var t0 time.Time
	if l.tel != nil {
		t0 = time.Now()
	}
	r0 := l.rec.Now()
	//pubsub:allow locksafe -- the segment write must serialise with offset assignment; l.mu is the log's append lock
	n, err := l.active.Write(l.buf)
	if err != nil {
		// The prefix may be torn on disk; recovery truncates it. The
		// offset is not acknowledged and will be reused after recovery.
		l.fail(fmt.Errorf("wal: appending offset %d: %w", rec.Offset, err))
		return 0, l.failed
	}
	synced := int64(0)
	if l.opts.Sync == SyncAlways {
		// Sync before publishing the new offset: if the fsync fails, the
		// record is never acknowledged and never visible to readers, even
		// though its bytes may sit in the torn tail.
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
		synced = 1
	} else {
		l.dirty++
	}
	active.size += int64(n)
	active.records++
	l.next = rec.Offset + 1
	if l.tel != nil {
		l.tel.appends.Inc()
		l.tel.appendedBytes.Add(uint64(n))
		l.tel.appendLatency.ObserveDuration(time.Since(t0))
	}
	l.rec.Record(telemetry.KindWALAppend, traceID, rec.Offset,
		int64(n), synced, l.rec.Now()-r0, 0)
	return rec.Offset, nil
}

// rotateLocked seals the active segment (sync + close) and starts a
// fresh one, then applies retention. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment before rotation: %w", err)
	}
	l.dirty = 0
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	if err := l.openActiveLocked(); err != nil {
		return err
	}
	if l.tel != nil {
		l.tel.rotations.Inc()
	}
	l.applyRetentionLocked()
	return nil
}

// applyRetentionLocked deletes the oldest sealed segments while the
// log exceeds RetentionBytes. The active segment is never deleted.
func (l *Log) applyRetentionLocked() {
	if l.opts.RetentionBytes <= 0 {
		return
	}
	total := int64(0)
	for _, s := range l.segs {
		total += s.size
	}
	removed := false
	for len(l.segs) > 1 && total > l.opts.RetentionBytes {
		victim := l.segs[0]
		if err := os.Remove(victim.path); err != nil {
			break // disk trouble; retry at the next rotation
		}
		total -= victim.size
		l.segs = l.segs[1:]
		l.first = l.segs[0].base
		removed = true
		if l.tel != nil {
			l.tel.retentionDeletes.Inc()
		}
	}
	if removed {
		l.syncDir()
	}
}

// syncLocked fsyncs the active segment, latching fail-stop on error.
// Caller holds l.mu.
func (l *Log) syncLocked() error {
	var t0 time.Time
	if l.tel != nil {
		t0 = time.Now()
	}
	r0 := l.rec.Now()
	pending := l.dirty
	if err := l.active.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: fsync: %w", err))
		return l.failed
	}
	l.dirty = 0
	if l.tel != nil {
		l.tel.syncs.Inc()
		l.tel.syncLatency.ObserveDuration(time.Since(t0))
	}
	l.rec.Record(telemetry.KindWALSync, 0, l.next-1,
		int64(pending), l.rec.Now()-r0, 0, 0)
	return nil
}

// Sync flushes appended records to stable storage now, regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// syncLoop is the SyncEvery background syncer.
func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.syncStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.failed == nil && l.dirty > 0 {
				//pubsub:allow walorder -- syncLocked latches fail-stop; the next Append reports the error
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// NextOffset returns the offset the next Append will assign. Every
// record with a smaller offset (down to FirstOffset) is fully written.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// FirstOffset returns the oldest offset still retained (equal to
// NextOffset when the log holds no records).
func (l *Log) FirstOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Recovered reports what Open found on disk.
func (l *Log) Recovered() RecoveryStats { return l.recovered }

// Err returns the sticky fail-stop error, or nil while the log is
// healthy. Once non-nil it never clears: every later Append and Sync
// fails with it, so health probes can surface the root cause.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		FirstOffset: l.first,
		NextOffset:  l.next,
		Segments:    len(l.segs),
		Failed:      l.failed != nil,
	}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	return st
}

// Close stops the background syncer, flushes once more and closes the
// active segment. Further appends fail with ErrClosed; replay readers
// already open keep working. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.syncStop)
	var err error
	if l.failed == nil && l.dirty > 0 {
		err = l.syncLocked()
	}
	if cerr := l.active.Close(); err == nil && cerr != nil && l.failed == nil {
		err = fmt.Errorf("wal: closing segment: %w", cerr)
	}
	l.mu.Unlock()
	l.syncWG.Wait()
	return err
}
