package wal

import (
	"repro/internal/telemetry"
)

// walTel bundles the log's metric handles. A nil *walTel is the
// disabled state: call sites nil-check before touching it, so a log
// without a registry pays nothing beyond its own bookkeeping.
type walTel struct {
	appends          *telemetry.Counter
	appendedBytes    *telemetry.Counter
	appendLatency    *telemetry.Histogram
	syncs            *telemetry.Counter
	syncLatency      *telemetry.Histogram
	rotations        *telemetry.Counter
	retentionDeletes *telemetry.Counter
	recoveredRecords *telemetry.Counter
	truncatedBytes   *telemetry.Counter
	replays          *telemetry.Counter
	replayedRecords  *telemetry.Counter
	failedState      *telemetry.Gauge
}

// newWALTel registers the log's metric families against reg plus
// scrape-time gauges reading l's state. Nil reg disables metrics.
func newWALTel(l *Log, reg *telemetry.Registry) *walTel {
	if reg == nil {
		return nil
	}
	t := &walTel{
		appends: reg.Counter("pubsub_wal_appends_total",
			"Records appended to the publication log."),
		appendedBytes: reg.Counter("pubsub_wal_appended_bytes_total",
			"Bytes appended to the publication log."),
		appendLatency: reg.Histogram("pubsub_wal_append_seconds",
			"Log append latency including the fsync under the always policy.", telemetry.LatencyBuckets()),
		syncs: reg.Counter("pubsub_wal_syncs_total",
			"fsyncs issued against the active segment."),
		syncLatency: reg.Histogram("pubsub_wal_sync_seconds",
			"fsync latency on the active segment.", telemetry.LatencyBuckets()),
		rotations: reg.Counter("pubsub_wal_segment_rotations_total",
			"Active segment rotations."),
		retentionDeletes: reg.Counter("pubsub_wal_segments_deleted_total",
			"Sealed segments deleted by retention."),
		recoveredRecords: reg.Counter("pubsub_wal_recovered_records_total",
			"Records accepted by boot-time recovery."),
		truncatedBytes: reg.Counter("pubsub_wal_truncated_bytes_total",
			"Torn-tail bytes truncated by boot-time recovery."),
		replays: reg.Counter("pubsub_wal_replays_total",
			"Replay readers opened."),
		replayedRecords: reg.Counter("pubsub_wal_replayed_records_total",
			"Records streamed to replay readers."),
		failedState: reg.Gauge("pubsub_wal_failed",
			"1 when the log has fail-stopped on an I/O error."),
	}
	reg.GaugeFunc("pubsub_wal_segments",
		"Segment files in the publication log.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(len(l.segs))
		})
	reg.GaugeFunc("pubsub_wal_first_offset",
		"Oldest offset still replayable.", func() float64 {
			return float64(l.FirstOffset())
		})
	reg.GaugeFunc("pubsub_wal_next_offset",
		"Offset the next append will be assigned.", func() float64 {
			return float64(l.NextOffset())
		})
	reg.GaugeFunc("pubsub_wal_bytes",
		"Total bytes across all segments.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			total := int64(0)
			for _, s := range l.segs {
				total += s.size
			}
			return float64(total)
		})
	return t
}
