package wal

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/faultnet"
	"repro/internal/health"
)

// TestFailStopFlipsHealth injects a sync fault and checks the whole
// probe chain: the fail-stop latch turns the "wal" component unhealthy,
// /healthz flips 200 -> 503, and a /readyz that already passed boot
// un-readies again — a latched log must drop out of rotation, not just
// log an error.
func TestFailStopFlipsHealth(t *testing.T) {
	hr := health.NewRegistry()
	hr.PassGate("boot")
	d := faultnet.NewDisk(faultnet.DiskOptions{FailSyncAfter: 1})
	l := mustOpen(t, t.TempDir(), faultOpts(d, Options{Sync: SyncAlways}))
	l.RegisterHealth(hr)

	livez := health.LivenessHandler(hr)
	readyz := health.ReadinessHandler(hr)

	rw := httptest.NewRecorder()
	livez.ServeHTTP(rw, httptest.NewRequest("GET", "/healthz", nil))
	if rw.Code != 200 {
		t.Fatalf("/healthz on healthy log = %d, want 200", rw.Code)
	}
	rw = httptest.NewRecorder()
	readyz.ServeHTTP(rw, httptest.NewRequest("GET", "/readyz", nil))
	if rw.Code != 200 {
		t.Fatalf("/readyz on healthy log = %d, want 200", rw.Code)
	}

	// The first append's fsync fails: the latch trips.
	if _, err := l.Append(1, []float64{1}, []byte("doomed")); !errors.Is(err, faultnet.ErrInjectedSync) {
		t.Fatalf("append = %v, want injected sync failure", err)
	}

	rep := hr.Evaluate()
	if rep.State != health.Unhealthy {
		t.Fatalf("latched log should be unhealthy: %+v", rep.Results)
	}
	found := false
	for _, res := range rep.Results {
		if res.Component == "wal" && strings.Contains(res.Reason, "fail-stop") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wal reason should carry the fail-stop cause: %+v", rep.Results)
	}
	rw = httptest.NewRecorder()
	livez.ServeHTTP(rw, httptest.NewRequest("GET", "/healthz", nil))
	if rw.Code != 503 {
		t.Fatalf("/healthz on latched log = %d, want 503", rw.Code)
	}
	rw = httptest.NewRecorder()
	readyz.ServeHTTP(rw, httptest.NewRequest("GET", "/readyz", nil))
	if rw.Code != 503 {
		t.Fatalf("/readyz on latched log = %d, want 503 (un-ready after boot)", rw.Code)
	}
}
