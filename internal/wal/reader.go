package wal

import (
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

// Reader streams a half-open offset range of the log, oldest first.
// Create one with Log.ReadFrom. A Reader is not safe for concurrent
// use, but reads run without blocking appends: the range is fixed at
// creation and every record inside it was fully written before then.
type Reader struct {
	log  *Log
	next uint64 // next offset to return
	end  uint64 // one past the last offset to return

	segs []segmentRef // remaining segments overlapping [next, end)
	data []byte       // current segment's bytes
	at   int          // decode position within data
}

type segmentRef struct {
	base uint64
	path string
}

// ReadFrom opens a reader over [from, end) where end is the log's next
// offset at the moment of the call — records appended afterwards are
// not included, so callers can replay history and then switch to live
// delivery without duplicates by resuming at End. A from below the
// oldest retained offset is clamped to it; a from beyond the end
// yields an immediately-exhausted reader.
func (l *Log) ReadFrom(from uint64) (*Reader, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if from < l.first {
		from = l.first
	}
	end := l.next
	var segs []segmentRef
	for i, s := range l.segs {
		segEnd := s.base + s.records
		if i == len(l.segs)-1 {
			segEnd = end
		}
		if segEnd > from && s.base < end {
			segs = append(segs, segmentRef{base: s.base, path: s.path})
		}
	}
	l.mu.Unlock()
	if l.tel != nil {
		l.tel.replays.Inc()
	}
	l.rec.Record(telemetry.KindWALReplay, 0, from, int64(from), int64(end), 0, 0)
	return &Reader{log: l, next: from, end: end, segs: segs}, nil
}

// End returns one past the last offset this reader will yield. Live
// delivery resumed at End observes every record exactly once.
func (r *Reader) End() uint64 { return r.end }

// Next returns the record at the reader's cursor and advances it,
// or io.EOF once the range is exhausted. A segment deleted by
// retention mid-replay surfaces as an error, never as a silent gap.
func (r *Reader) Next() (Record, error) {
	for {
		if r.next >= r.end {
			return Record{}, io.EOF
		}
		if r.data == nil {
			if len(r.segs) == 0 {
				return Record{}, fmt.Errorf("wal: offset %d missing: log metadata inconsistent", r.next)
			}
			seg := r.segs[0]
			data, err := os.ReadFile(seg.path)
			if err != nil {
				if os.IsNotExist(err) {
					return Record{}, fmt.Errorf("wal: offset %d no longer retained (segment deleted mid-replay): %w", r.next, err)
				}
				return Record{}, fmt.Errorf("wal: reading segment: %w", err)
			}
			r.data, r.at = data, 0
		}
		if r.at >= len(r.data) {
			// Segment exhausted; the next offset lives in the next one.
			r.data, r.segs = nil, r.segs[1:]
			continue
		}
		rec, n, err := DecodeRecord(r.data[r.at:])
		if err != nil {
			// Inside [next, end) every record was fully written before the
			// reader was created, so this is on-disk corruption.
			return Record{}, fmt.Errorf("wal: replay at offset %d: %w", r.next, err)
		}
		r.at += n
		if rec.Offset < r.next {
			continue // earlier record in the first segment, before from
		}
		if rec.Offset != r.next {
			return Record{}, fmt.Errorf("%w: replay expected offset %d, found %d", ErrCorruptRecord, r.next, rec.Offset)
		}
		r.next++
		if r.log.tel != nil {
			r.log.tel.replayedRecords.Inc()
		}
		return rec, nil
	}
}
