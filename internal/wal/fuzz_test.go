package wal

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the record decoder (it must
// never panic and never consume more than it was given) and, when the
// input does decode, re-encodes the result and requires the canonical
// bytes to decode to the same record.
func FuzzWALRecord(f *testing.F) {
	seed := []Record{
		{},
		{Offset: 1, TraceID: 42, Point: []float64{1, 2, 3}, Payload: []byte("hello")},
		{Offset: math.MaxUint64, Point: []float64{math.NaN(), math.Inf(-1)}},
	}
	for _, r := range seed {
		f.Add(appendRecord(nil, &r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		reenc := appendRecord(nil, &rec)
		rec2, n2, err := DecodeRecord(reenc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if n2 != len(reenc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(reenc))
		}
		if rec2.Offset != rec.Offset || rec2.TraceID != rec.TraceID ||
			len(rec2.Point) != len(rec.Point) || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", rec2, rec)
		}
		for i := range rec.Point {
			if math.Float64bits(rec2.Point[i]) != math.Float64bits(rec.Point[i]) {
				t.Fatalf("point[%d] bits changed across round trip", i)
			}
		}
	})
}

// FuzzWALRecovery writes a known log, then mangles the final segment's
// tail — truncation point and an optional bit flip chosen by the
// fuzzer — and requires recovery to (a) succeed whenever the damage is
// confined to the tail, (b) recover a strict prefix of the appended
// records, bit-exact, and (c) never hand a torn or corrupt record to a
// replay reader.
func FuzzWALRecovery(f *testing.F) {
	f.Add(uint16(0), uint16(0), false)
	f.Add(uint16(10), uint16(3), true)
	f.Add(uint16(200), uint16(0), true)
	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flip bool) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		const total = 12
		payloads := make([][]byte, total)
		for i := 0; i < total; i++ {
			payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 5+i)
			if _, err := l.Append(uint64(i), []float64{float64(i)}, payloads[i]); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) != 1 {
			t.Fatalf("want a single segment, got %d", len(segs))
		}
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		keep := len(data) - int(cut)%(len(data)+1)
		data = data[:keep]
		// Optionally flip a bit inside the LAST record's frame only, so
		// the damage stays in the tail and recovery must still succeed.
		rec := Record{Offset: total, TraceID: total - 1, Point: []float64{total - 1}, Payload: payloads[total-1]}
		lastStart := 0
		for lastStart < len(data) {
			if len(data)-lastStart <= rec.EncodedSize() {
				break
			}
			_, n, err := DecodeRecord(data[lastStart:])
			if err != nil || n == 0 {
				break
			}
			lastStart += n
		}
		if flip && len(data) > lastStart {
			data[lastStart+int(flipAt)%(len(data)-lastStart)] ^= 1 << (flipAt % 8)
		}
		if err := os.WriteFile(segs[0], data, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(dir, Options{})
		if err != nil {
			// Damage reached before the tail record; refusing is the
			// specified behaviour — but only when we actually flipped.
			if !flip {
				t.Fatalf("recovery failed on pure truncation: %v", err)
			}
			return
		}
		defer l2.Close()
		recovered := l2.NextOffset() - 1
		if recovered > total {
			t.Fatalf("recovered %d records from %d appended", recovered, total)
		}
		r, err := l2.ReadFrom(0)
		if err != nil {
			t.Fatal(err)
		}
		var got int
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("replay after recovery: %v", err)
			}
			got++
			if rec.Offset != uint64(got) {
				t.Fatalf("replayed offset %d at position %d", rec.Offset, got)
			}
			if !bytes.Equal(rec.Payload, payloads[got-1]) {
				t.Fatalf("record %d payload differs from what was appended", got)
			}
		}
		if uint64(got) != recovered {
			t.Fatalf("replay yielded %d records, recovery reported %d", got, recovered)
		}
	})
}
