package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		off, err := l.Append(uint64(1000+i), []float64{float64(i), -float64(i)}, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := l.NextOffset() - 1; off != want {
			t.Fatalf("Append returned offset %d, NextOffset says %d", off, want+1)
		}
	}
}

// drain reads the full range [from, End) and returns the records.
func drain(t *testing.T, r *Reader) []Record {
	t.Helper()
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, rec)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Offset: 1, TraceID: 42, Point: []float64{1.5, -2.25, math.Inf(1)}, Payload: []byte("hello")},
		{Offset: 1<<63 + 7, TraceID: 0, Point: nil, Payload: nil},
		{Offset: 3, TraceID: 9, Point: []float64{math.NaN()}, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for i, in := range cases {
		buf := appendRecord(nil, &in)
		if len(buf) != in.EncodedSize() {
			t.Errorf("case %d: encoded %d bytes, EncodedSize says %d", i, len(buf), in.EncodedSize())
		}
		out, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("case %d: DecodeRecord: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if out.Offset != in.Offset || out.TraceID != in.TraceID {
			t.Errorf("case %d: header mismatch: %+v vs %+v", i, out, in)
		}
		if len(out.Point) != len(in.Point) {
			t.Fatalf("case %d: point dims %d vs %d", i, len(out.Point), len(in.Point))
		}
		for j := range in.Point {
			if math.Float64bits(out.Point[j]) != math.Float64bits(in.Point[j]) {
				t.Errorf("case %d: point[%d] %v vs %v", i, j, out.Point[j], in.Point[j])
			}
		}
		if !bytes.Equal(out.Payload, in.Payload) {
			t.Errorf("case %d: payload mismatch", i)
		}
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	rec := Record{Offset: 7, TraceID: 1, Point: []float64{1, 2}, Payload: []byte("x")}
	good := appendRecord(nil, &rec)

	// Every truncation is a short record, never a panic or corruption.
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeRecord(good[:i]); !errors.Is(err, ErrShortRecord) {
			t.Errorf("truncated to %d bytes: got %v, want ErrShortRecord", i, err)
		}
	}
	// Every single-bit flip is caught by the CRC (or a structural check).
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Errorf("bit flip at byte %d decoded cleanly", i)
		}
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	appendN(t, l, 25)
	r, err := l.ReadFrom(0)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	recs := drain(t, r)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
	for i, rec := range recs {
		if rec.Offset != uint64(i+1) {
			t.Errorf("record %d has offset %d, want %d", i, rec.Offset, i+1)
		}
		if want := fmt.Sprintf("payload-%d", i); string(rec.Payload) != want {
			t.Errorf("record %d payload %q, want %q", i, rec.Payload, want)
		}
	}

	// A mid-log start and one beyond the end.
	r, _ = l.ReadFrom(20)
	if recs := drain(t, r); len(recs) != 6 || recs[0].Offset != 20 {
		t.Errorf("ReadFrom(20): got %d records starting at %d", len(recs), recs[0].Offset)
	}
	r, _ = l.ReadFrom(1000)
	if recs := drain(t, r); len(recs) != 0 {
		t.Errorf("ReadFrom past end: got %d records, want 0", len(recs))
	}
}

func TestReaderExcludesLaterAppends(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	appendN(t, l, 10)
	r, err := l.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.End() != 11 {
		t.Fatalf("End = %d, want 11", r.End())
	}
	appendN(t, l, 10) // land after the reader's range
	if recs := drain(t, r); len(recs) != 10 {
		t.Fatalf("reader yielded %d records, want the 10 before its creation", len(recs))
	}
}

func TestRecoveryAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendN(t, l, 12)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
	if got := l2.NextOffset(); got != 13 {
		t.Fatalf("recovered NextOffset = %d, want 13", got)
	}
	if st := l2.Recovered(); st.Records != 12 || st.TruncatedBytes != 0 {
		t.Fatalf("RecoveryStats = %+v, want 12 records, 0 truncated", st)
	}
	// New appends continue the offset sequence.
	off, err := l2.Append(1, []float64{9}, []byte("after"))
	if err != nil || off != 13 {
		t.Fatalf("post-recovery Append = (%d, %v), want (13, nil)", off, err)
	}
	r, _ := l2.ReadFrom(0)
	if recs := drain(t, r); len(recs) != 13 {
		t.Fatalf("full replay after reopen: %d records, want 13", len(recs))
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	for cut := 1; cut <= 8; cut++ {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{Sync: SyncAlways})
		appendN(t, l, 5)
		l.Close()

		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) == 0 {
			t.Fatal("no segment files")
		}
		last := segs[len(segs)-1]
		fi, _ := os.Stat(last)
		if err := os.Truncate(last, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		l2 := mustOpen(t, dir, Options{Sync: SyncAlways})
		if got := l2.NextOffset(); got != 5 {
			t.Fatalf("cut %d: NextOffset = %d, want 5 (last record torn away)", cut, got)
		}
		if st := l2.Recovered(); st.TruncatedBytes == 0 {
			t.Fatalf("cut %d: recovery reports no truncation", cut)
		}
		r, _ := l2.ReadFrom(0)
		if recs := drain(t, r); len(recs) != 4 {
			t.Fatalf("cut %d: %d records survive, want 4", cut, len(recs))
		}
		l2.Close()
	}
}

func TestRecoveryRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncAlways, SegmentBytes: 1}) // every record rotates
	appendN(t, l, 3)
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected one segment per record, got %d", len(segs))
	}
	// Flip a byte in the FIRST segment: not the tail, so recovery must
	// refuse rather than drop acknowledged history.
	data, _ := os.ReadFile(segs[0])
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a log with mid-log corruption")
	} else if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRecoveryRejectsMissingSegment(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncAlways, SegmentBytes: 1})
	appendN(t, l, 3)
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a log with a missing middle segment")
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	rec := Record{Offset: 1, TraceID: 1, Point: []float64{1, 2}, Payload: []byte("0123456789")}
	per := rec.EncodedSize()
	l := mustOpen(t, dir, Options{
		Sync:           SyncNever,
		SegmentBytes:   int64(3 * per), // 3 records per segment
		RetentionBytes: int64(7 * per), // keep roughly the last 2-3 segments
	})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(1, []float64{1, 2}, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.FirstOffset == 1 {
		t.Fatal("retention never pruned the head")
	}
	if st.NextOffset != 21 {
		t.Fatalf("NextOffset = %d, want 21", st.NextOffset)
	}
	// Replay from 0 clamps to the surviving head and stays contiguous.
	r, _ := l.ReadFrom(0)
	recs := drain(t, r)
	if len(recs) == 0 || recs[0].Offset != st.FirstOffset || recs[len(recs)-1].Offset != 20 {
		t.Fatalf("clamped replay got offsets [%d..%d], want [%d..20]",
			recs[0].Offset, recs[len(recs)-1].Offset, st.FirstOffset)
	}
	// Reopen: first offset survives recovery too.
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	if l2.FirstOffset() != st.FirstOffset || l2.NextOffset() != 21 {
		t.Fatalf("reopen: first/next = %d/%d, want %d/21", l2.FirstOffset(), l2.NextOffset(), st.FirstOffset)
	}
}

func TestIntervalSyncFlushes(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncEvery, SyncInterval: 5 * time.Millisecond})
	appendN(t, l, 3)
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		dirty := l.dirty
		l.mu.Unlock()
		if dirty == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseIsIdempotentAndStopsAppends(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	appendN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(1, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if _, err := l.ReadFrom(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrom after Close: %v, want ErrClosed", err)
	}
}

func TestConcurrentAppendersGetUniqueContiguousOffsets(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	offs := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				off, err := l.Append(uint64(g), []float64{float64(g)}, nil)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				offs[g] = append(offs[g], off)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, per := range offs {
		for i := 1; i < len(per); i++ {
			if per[i] <= per[i-1] {
				t.Fatal("offsets not monotonic within one appender")
			}
		}
		for _, o := range per {
			if seen[o] {
				t.Fatalf("offset %d assigned twice", o)
			}
			seen[o] = true
		}
	}
	for o := uint64(1); o <= goroutines*each; o++ {
		if !seen[o] {
			t.Fatalf("offset %d never assigned", o)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncEvery, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted nonsense")
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := mustOpen(t, t.TempDir(), Options{Sync: SyncAlways, Metrics: reg})
	appendN(t, l, 4)
	r, _ := l.ReadFrom(0)
	drain(t, r)
	if v := reg.CounterValue("pubsub_wal_appends_total"); v != 4 {
		t.Errorf("appends_total = %v, want 4", v)
	}
	if v := reg.CounterValue("pubsub_wal_syncs_total"); v < 4 {
		t.Errorf("syncs_total = %v, want >= 4 under SyncAlways", v)
	}
	if v := reg.CounterValue("pubsub_wal_replayed_records_total"); v != 4 {
		t.Errorf("replayed_records_total = %v, want 4", v)
	}
}

// TestAppendRejectsOversizedRecords: a record DecodeRecord would reject
// must never reach disk — an fsynced, acknowledged, undecodable frame
// makes recovery refuse the whole log. The rejection is a caller error,
// not fail-stop: the log keeps accepting well-formed appends, and a
// reopen replays exactly the accepted history.
func TestAppendRejectsOversizedRecords(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 3)

	bigPoint := make([]float64, MaxPointDims+1)
	if _, err := l.Append(1, bigPoint, nil); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("Append with %d dims: err = %v, want ErrRecordTooLarge", len(bigPoint), err)
	}
	bigPayload := make([]byte, MaxBody)
	if _, err := l.Append(1, []float64{1}, bigPayload); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("Append with %d-byte payload: err = %v, want ErrRecordTooLarge", len(bigPayload), err)
	}

	// Not fail-stop: the log still works, and offsets were not burned.
	if st := l.Stats(); st.Failed {
		t.Fatal("oversized append latched fail-stop")
	}
	off, err := l.Append(2, []float64{1, 2}, []byte("after"))
	if err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
	if off != 4 {
		t.Fatalf("Append after rejection got offset %d, want 4", off)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recovery sees only the accepted records.
	l2 := mustOpen(t, dir, Options{Sync: SyncNever})
	if got := l2.Recovered().Records; got != 4 {
		t.Fatalf("recovered %d records, want 4", got)
	}
	r, err := l2.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if recs := drain(t, r); len(recs) != 4 || string(recs[3].Payload) != "after" {
		t.Fatalf("replayed %d records (last %q), want 4 ending in \"after\"", len(recs), recs[len(recs)-1].Payload)
	}
}
