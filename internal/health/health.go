// Package health is a small component health registry: long-lived
// subsystems (broker, WAL, wire server, rebuilder) register pull-style
// check functions, and probes evaluate them on demand. Checks run only
// when a probe asks, so registering one adds zero cost to the publish
// hot path. The package also tracks one-shot readiness gates — boot
// milestones such as "WAL recovery replayed" and "first index snapshot
// built" — that flip exactly once and gate /readyz separately from the
// live checks.
//
// All methods are safe on a nil *Registry, so components can accept an
// optional registry without guarding every call.
package health

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// State is a component's health verdict, ordered by severity.
type State int

const (
	// Healthy means the component is operating normally.
	Healthy State = iota
	// Degraded means the component works but something needs operator
	// attention (a stale index, a climbing keepalive-miss rate).
	Degraded
	// Unhealthy means the component has failed and will not recover on
	// its own (a latched WAL, a dead listener).
	Unhealthy
)

// String returns the lowercase state name used in probe bodies.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Check reports a component's current state and a short human reason.
// Checks run at probe time and must be safe for concurrent use; they
// should read a few atomics or a small snapshot, not take broker-wide
// locks.
type Check func() (State, string)

// Result is one evaluated check.
type Result struct {
	Component string `json:"component"`
	State     string `json:"state"`
	Reason    string `json:"reason,omitempty"`
}

// Report is the outcome of evaluating every registered check.
type Report struct {
	// State is the worst component state.
	State State
	// Results lists every component, sorted by name.
	Results []Result
}

// Registry holds named health checks and readiness gates. The zero
// value is unusable; create one with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	checks map[string]Check
	order  []string
	gates  map[string]bool // gate name -> done
	gorder []string
}

// NewRegistry creates an empty health registry.
func NewRegistry() *Registry {
	return &Registry{checks: make(map[string]Check), gates: make(map[string]bool)}
}

// Register adds (or replaces) a component's check function. A nil
// check unregisters the component.
func (r *Registry) Register(component string, check Check) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if check == nil {
		if _, ok := r.checks[component]; ok {
			delete(r.checks, component)
			for i, n := range r.order {
				if n == component {
					r.order = append(r.order[:i], r.order[i+1:]...)
					break
				}
			}
		}
		return
	}
	if _, ok := r.checks[component]; !ok {
		r.order = append(r.order, component)
	}
	r.checks[component] = check
}

// AddGate declares a named readiness gate in the not-done state. Gates
// are boot milestones: readiness stays false until every declared gate
// has been passed. Declaring an existing gate is a no-op (its state is
// kept).
func (r *Registry) AddGate(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gates[name]; ok {
		return
	}
	r.gates[name] = false
	r.gorder = append(r.gorder, name)
}

// PassGate marks a gate as done. Passing an undeclared gate declares
// and passes it in one step; passing twice is a no-op.
func (r *Registry) PassGate(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gates[name]; !ok {
		r.gorder = append(r.gorder, name)
	}
	r.gates[name] = true
}

// Ready reports whether every declared gate has passed, along with the
// names of the gates still pending (sorted).
func (r *Registry) Ready() (bool, []string) {
	if r == nil {
		return true, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var pending []string
	for name, done := range r.gates {
		if !done {
			pending = append(pending, name)
		}
	}
	sort.Strings(pending)
	return len(pending) == 0, pending
}

// Evaluate runs every registered check and folds the results into a
// report. The registry lock covers only the copy of the check table;
// the checks themselves run unlocked, so a slow check cannot block
// registration. A nil registry evaluates to an empty healthy report.
func (r *Registry) Evaluate() Report {
	if r == nil {
		return Report{}
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	checks := make([]Check, len(names))
	for i, n := range names {
		checks[i] = r.checks[n]
	}
	r.mu.RUnlock()

	rep := Report{Results: make([]Result, len(names))}
	for i, c := range checks {
		st, reason := c()
		rep.Results[i] = Result{Component: names[i], State: st.String(), Reason: reason}
		if st > rep.State {
			rep.State = st
		}
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Component < rep.Results[j].Component })
	return rep
}

// WriteText renders the report as one "component: state (reason)" line
// per component, preceded by the overall verdict — the format appended
// to SIGQUIT dumps.
func (r *Registry) WriteText(w io.Writer) error {
	rep := r.Evaluate()
	ready, pending := r.Ready()
	if _, err := fmt.Fprintf(w, "health: %s", rep.State); err != nil {
		return err
	}
	if !ready {
		if _, err := fmt.Fprintf(w, " (not ready: %v)", pending); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, res := range rep.Results {
		line := fmt.Sprintf("  %s: %s", res.Component, res.State)
		if res.Reason != "" {
			line += " (" + res.Reason + ")"
		}
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}
