package health

import (
	"fmt"
	"sync/atomic"
	"time"
)

// The SLO evaluator implements multi-window burn-rate alerting over a
// latency objective (Google SRE workbook, chapter 5): every delivery
// is classified good or bad against the objective, counts accumulate
// in a lock-free ring of time slots spanning the long window, and the
// health check compares the bad-event rate against the error budget
// over two windows at once. A hot *fast* window (window/12, the
// SRE 1h:5m ratio) turning red means the budget is burning right now
// and degrades the component immediately; only a burn that *sustains*
// — the fast window stays red for a full sustain period while the
// long window confirms real budget loss — goes Unhealthy. When the
// incident ends the fast window clears within minutes and the
// component recovers on its own, exactly the property that makes
// multi-window alerts non-flappy.
const (
	sloSlots   = 60 // ring granularity: window/60 per slot
	sloFastDiv = 12 // fast window = window / 12 (the SRE 1h:5m shape)
)

// SLOOptions configure an SLO evaluator. Zero values pick defaults.
type SLOOptions struct {
	// ObjectiveSeconds is the delivery-latency threshold: an
	// end-to-end publish slower than this (or a dropped delivery)
	// consumes error budget. Required; <= 0 disables classification
	// (every latency observation counts good).
	ObjectiveSeconds float64
	// Budget is the allowed bad-event fraction. Default 0.01 — a p99
	// objective.
	Budget float64
	// Window is the long evaluation window. Default 1h.
	Window time.Duration
	// FastBurnThreshold is the burn-rate multiple at which the fast
	// window degrades the component. Default 14.4, the SRE fast-page
	// threshold (2% of a 30-day budget in one hour).
	FastBurnThreshold float64
	// Sustain is how long the fast window must stay above the
	// threshold (with the long window confirming burn >= 1) before
	// the component goes Unhealthy. Default Window / 12.
	Sustain time.Duration
	// MinEvents is the minimum event count a window needs before its
	// burn rate is trusted; below it the window reads 0. Default 10.
	MinEvents uint64
}

type sloSlot struct {
	epoch atomic.Int64 // absolute slot index the counters belong to
	total atomic.Uint64
	bad   atomic.Uint64
}

// SLO tracks a latency/drop service-level objective. Observe and
// ObserveBad are lock-free and allocation-free, safe on the publish
// hot path; evaluation happens at health-probe time. All methods are
// nil-safe so an unconfigured SLO costs one branch.
type SLO struct {
	objective  float64
	budget     float64
	window     time.Duration
	slotDur    int64 // ns per ring slot
	fastSlots  int64
	fastThresh float64
	sustainNS  int64
	minEvents  uint64

	slots [sloSlots]sloSlot

	// burningSince is the probe time (UnixNano) the fast window first
	// exceeded the threshold, 0 when not burning. Updated only by
	// evaluation, never by Observe.
	burningSince atomic.Int64
}

// NewSLO builds an SLO evaluator.
func NewSLO(opts SLOOptions) *SLO {
	if opts.Budget <= 0 {
		opts.Budget = 0.01
	}
	if opts.Window <= 0 {
		opts.Window = time.Hour
	}
	if opts.FastBurnThreshold <= 0 {
		opts.FastBurnThreshold = 14.4
	}
	if opts.Sustain <= 0 {
		opts.Sustain = opts.Window / sloFastDiv
	}
	if opts.MinEvents == 0 {
		opts.MinEvents = 10
	}
	slot := opts.Window.Nanoseconds() / sloSlots
	if slot < 1 {
		slot = 1
	}
	return &SLO{
		objective:  opts.ObjectiveSeconds,
		budget:     opts.Budget,
		window:     opts.Window,
		slotDur:    slot,
		fastSlots:  sloSlots / sloFastDiv,
		fastThresh: opts.FastBurnThreshold,
		sustainNS:  opts.Sustain.Nanoseconds(),
		minEvents:  opts.MinEvents,
	}
}

// Objective reports the latency threshold in seconds.
func (s *SLO) Objective() float64 {
	if s == nil {
		return 0
	}
	return s.objective
}

// Window reports the long evaluation window.
func (s *SLO) Window() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Observe classifies one end-to-end delivery latency (seconds)
// against the objective.
func (s *SLO) Observe(latencySeconds float64) {
	if s == nil {
		return
	}
	s.observeAt(time.Now().UnixNano(), s.objective > 0 && latencySeconds > s.objective)
}

// ObserveBad records one unconditionally bad event — a dropped
// delivery consumes budget regardless of latency.
func (s *SLO) ObserveBad() {
	if s == nil {
		return
	}
	s.observeAt(time.Now().UnixNano(), true)
}

// observeAt is the hot recording path: one ring-slot rotation check
// and two atomic adds. A slot whose epoch lags the current index is
// claimed by CAS and zeroed; counts racing the reset can be lost,
// which windowed alerting tolerates (the window is already an
// approximation of "recent").
func (s *SLO) observeAt(nowNS int64, bad bool) {
	idx := nowNS / s.slotDur
	sl := &s.slots[int(idx%sloSlots)]
	for {
		cur := sl.epoch.Load()
		if cur == idx {
			break
		}
		if cur > idx {
			return // a newer epoch claimed the slot; drop the stale count
		}
		if sl.epoch.CompareAndSwap(cur, idx) {
			sl.total.Store(0)
			sl.bad.Store(0)
			break
		}
	}
	sl.total.Add(1)
	if bad {
		sl.bad.Add(1)
	}
}

// SLOStatus is one evaluation of the objective, rendered by
// /debug/slo and pubsub-cli slo.
type SLOStatus struct {
	ObjectiveSeconds  float64 `json:"objective_seconds"`
	Budget            float64 `json:"budget"`
	WindowSeconds     float64 `json:"window_seconds"`
	FastWindowSeconds float64 `json:"fast_window_seconds"`
	FastBurn          float64 `json:"fast_burn"`
	SlowBurn          float64 `json:"slow_burn"`
	FastBad           uint64  `json:"fast_bad"`
	FastTotal         uint64  `json:"fast_total"`
	SlowBad           uint64  `json:"slow_bad"`
	SlowTotal         uint64  `json:"slow_total"`
	BurningForSeconds float64 `json:"burning_for_seconds"`
	State             string  `json:"state"`
	Reason            string  `json:"reason"`
}

// Status evaluates the objective now.
func (s *SLO) Status() SLOStatus {
	st, _ := s.evalAt(time.Now().UnixNano())
	return st
}

// evalAt computes both burn rates and advances the sustain state
// machine at the given probe time.
func (s *SLO) evalAt(nowNS int64) (SLOStatus, State) {
	idx := nowNS / s.slotDur
	var fastBad, fastTotal, slowBad, slowTotal uint64
	for i := range s.slots {
		sl := &s.slots[i]
		e := sl.epoch.Load()
		if e <= 0 || e > idx || idx-e >= sloSlots {
			continue
		}
		b, t := sl.bad.Load(), sl.total.Load()
		slowBad += b
		slowTotal += t
		if idx-e < s.fastSlots {
			fastBad += b
			fastTotal += t
		}
	}
	st := SLOStatus{
		ObjectiveSeconds:  s.objective,
		Budget:            s.budget,
		WindowSeconds:     s.window.Seconds(),
		FastWindowSeconds: (s.window / sloFastDiv).Seconds(),
		FastBurn:          s.burnRate(fastBad, fastTotal),
		SlowBurn:          s.burnRate(slowBad, slowTotal),
		FastBad:           fastBad,
		FastTotal:         fastTotal,
		SlowBad:           slowBad,
		SlowTotal:         slowTotal,
	}

	state := Healthy
	if st.FastBurn >= s.fastThresh {
		since := s.burningSince.Load()
		if since == 0 {
			s.burningSince.CompareAndSwap(0, nowNS)
			since = s.burningSince.Load()
		}
		st.BurningForSeconds = float64(nowNS-since) / 1e9
		if nowNS-since >= s.sustainNS && st.SlowBurn >= 1 {
			state = Unhealthy
			st.Reason = fmt.Sprintf("budget burn sustained %.0fs: fast %.1fx, long %.1fx budget",
				st.BurningForSeconds, st.FastBurn, st.SlowBurn)
		} else {
			state = Degraded
			st.Reason = fmt.Sprintf("fast burn %.1fx budget (%d/%d bad in %s window)",
				st.FastBurn, fastBad, fastTotal, s.window/sloFastDiv)
		}
	} else {
		s.burningSince.Store(0)
		st.Reason = fmt.Sprintf("within budget: fast %.2fx, long %.2fx", st.FastBurn, st.SlowBurn)
	}
	st.State = state.String()
	return st, state
}

// burnRate is (bad/total)/budget, 0 when the window lacks MinEvents.
func (s *SLO) burnRate(bad, total uint64) float64 {
	if total < s.minEvents || total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / s.budget
}

// Register wires the SLO into a health registry as the "slo"
// component: Degraded on fast burn, Unhealthy on sustained burn.
func (s *SLO) Register(r *Registry) {
	if s == nil || r == nil {
		return
	}
	r.Register("slo", s.check)
}

func (s *SLO) check() (State, string) {
	st, state := s.evalAt(time.Now().UnixNano())
	return state, st.Reason
}
