package health

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestStateOrderingAndString(t *testing.T) {
	if !(Healthy < Degraded && Degraded < Unhealthy) {
		t.Fatal("state severity ordering broken")
	}
	for st, want := range map[State]string{Healthy: "healthy", Degraded: "degraded", Unhealthy: "unhealthy"} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestEvaluateWorstStateWins(t *testing.T) {
	r := NewRegistry()
	r.Register("a", func() (State, string) { return Healthy, "" })
	r.Register("b", func() (State, string) { return Degraded, "stale index" })
	rep := r.Evaluate()
	if rep.State != Degraded {
		t.Fatalf("state = %v, want degraded", rep.State)
	}
	r.Register("c", func() (State, string) { return Unhealthy, "wal latched" })
	rep = r.Evaluate()
	if rep.State != Unhealthy {
		t.Fatalf("state = %v, want unhealthy", rep.State)
	}
	if len(rep.Results) != 3 || rep.Results[0].Component != "a" || rep.Results[2].Reason != "wal latched" {
		t.Fatalf("results wrong: %+v", rep.Results)
	}
}

func TestRegisterReplaceAndUnregister(t *testing.T) {
	r := NewRegistry()
	r.Register("x", func() (State, string) { return Unhealthy, "v1" })
	r.Register("x", func() (State, string) { return Healthy, "v2" })
	rep := r.Evaluate()
	if len(rep.Results) != 1 || rep.Results[0].Reason != "v2" {
		t.Fatalf("replacement not effective: %+v", rep.Results)
	}
	r.Register("x", nil)
	if rep := r.Evaluate(); len(rep.Results) != 0 {
		t.Fatalf("unregister left results: %+v", rep.Results)
	}
}

func TestGates(t *testing.T) {
	r := NewRegistry()
	if ready, _ := r.Ready(); !ready {
		t.Fatal("no gates should mean ready")
	}
	r.AddGate("wal-recovery")
	r.AddGate("snapshot")
	ready, pending := r.Ready()
	if ready || len(pending) != 2 {
		t.Fatalf("ready = %v pending = %v, want not ready with 2 pending", ready, pending)
	}
	r.PassGate("wal-recovery")
	ready, pending = r.Ready()
	if ready || len(pending) != 1 || pending[0] != "snapshot" {
		t.Fatalf("ready = %v pending = %v, want snapshot pending", ready, pending)
	}
	r.PassGate("snapshot")
	r.PassGate("snapshot") // idempotent
	if ready, _ := r.Ready(); !ready {
		t.Fatal("all gates passed but not ready")
	}
	// Re-declaring a passed gate keeps its state.
	r.AddGate("snapshot")
	if ready, _ := r.Ready(); !ready {
		t.Fatal("AddGate reset a passed gate")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Register("x", func() (State, string) { return Unhealthy, "" })
	r.AddGate("g")
	r.PassGate("g")
	if rep := r.Evaluate(); rep.State != Healthy || len(rep.Results) != 0 {
		t.Fatalf("nil Evaluate = %+v", rep)
	}
	if ready, _ := r.Ready(); !ready {
		t.Fatal("nil registry should be ready")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
}

func TestLivenessHandler(t *testing.T) {
	r := NewRegistry()
	state := Healthy
	var mu sync.Mutex
	r.Register("broker", func() (State, string) {
		mu.Lock()
		defer mu.Unlock()
		return state, "reason here"
	})

	probe := func() (int, livenessBody) {
		rec := httptest.NewRecorder()
		LivenessHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var body livenessBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad body: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, body
	}

	if code, body := probe(); code != 200 || body.Status != "healthy" {
		t.Fatalf("healthy probe = %d %+v", code, body)
	}
	mu.Lock()
	state = Degraded
	mu.Unlock()
	if code, body := probe(); code != 200 || body.Status != "degraded" {
		t.Fatalf("degraded probe = %d %+v (degraded must stay 200)", code, body)
	}
	mu.Lock()
	state = Unhealthy
	mu.Unlock()
	if code, body := probe(); code != 503 || body.Status != "unhealthy" || len(body.Components) != 1 {
		t.Fatalf("unhealthy probe = %d %+v", code, body)
	}
}

func TestReadinessHandler(t *testing.T) {
	r := NewRegistry()
	r.AddGate("boot")
	probe := func() (int, readinessBody) {
		rec := httptest.NewRecorder()
		ReadinessHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		var body readinessBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad body: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, body
	}
	if code, body := probe(); code != 503 || len(body.Pending) != 1 {
		t.Fatalf("pre-boot probe = %d %+v", code, body)
	}
	r.PassGate("boot")
	if code, body := probe(); code != 200 || body.Status != "ready" {
		t.Fatalf("post-boot probe = %d %+v", code, body)
	}
	// An unhealthy component un-readies even after boot.
	r.Register("wal", func() (State, string) { return Unhealthy, "latched" })
	if code, body := probe(); code != 503 || body.Status != "unhealthy" {
		t.Fatalf("unhealthy probe = %d %+v", code, body)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.AddGate("snapshot")
	r.Register("wal", func() (State, string) { return Degraded, "sync p99 high" })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"health: degraded", "not ready", "snapshot", "wal: degraded (sync p99 high)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConcurrentRegisterEvaluate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Register("c", func() (State, string) { return Healthy, "" })
				r.PassGate("g")
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Evaluate()
				r.Ready()
			}
		}()
	}
	wg.Wait()
}
